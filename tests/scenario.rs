//! Integration tests for the scenario API through the facade: TOML
//! round-trips, dotted-path overrides, and context-driven experiment runs.

use chasing_carbon::prelude::*;

#[test]
fn toml_round_trip_through_the_facade() {
    let scenario = Scenario::builder()
        .name("integration")
        .grid_intensity(99.5)
        .energy_source("solar")
        .renewable_fraction(0.25)
        .lifetime_years(4.0)
        .soc_budget_share(0.4)
        .fab_node_nm(5.0)
        .fab_yield_factor(1.5)
        .fab_renewable_share(0.6)
        .fleet_scale(2.0)
        .mc_seed(1234)
        .mc_samples(2_000)
        .build();
    scenario.validate().unwrap();
    let toml = scenario.to_toml();
    let back = Scenario::from_toml(&toml).unwrap();
    assert_eq!(back, scenario);
    assert_eq!(back.to_toml(), toml);
}

#[test]
fn overrides_and_files_agree() {
    let mut by_set = Scenario::paper_defaults();
    by_set.set("grid.intensity", "50").unwrap();
    by_set.set("fleet.scale", "4").unwrap();
    let by_file =
        Scenario::from_toml("[grid]\nintensity_g_per_kwh = 50.0\n[fleet]\nscale = 4.0\n").unwrap();
    assert_eq!(by_set, by_file);
}

#[test]
fn context_scenario_reaches_the_models() {
    // ext-sched scales its deferrable load with fleet.scale; the absolute
    // batch energies in the table must scale accordingly.
    let paper = chasing_carbon::core::experiments::find("ext-sched")
        .unwrap()
        .run(&RunContext::paper());
    let scaled = chasing_carbon::core::experiments::find("ext-sched")
        .unwrap()
        .run(&RunContext::new(
            Scenario::builder().fleet_scale(10.0).build(),
        ));
    let first = |out: &cc_report::ExperimentOutput| -> f64 {
        out.find_series("batch-carbon-cut").unwrap().points[0].x
    };
    assert!((first(&scaled) / first(&paper) - 10.0).abs() < 1e-9);
}

#[test]
fn fleet_params_drive_the_facility_experiment_through_the_facade() {
    // Paper defaults replay Prineville; a steeper growth factor pulls the
    // opex/capex break-even earlier.
    let run = |growth: f64| {
        chasing_carbon::core::experiments::find("ext-facility")
            .unwrap()
            .run(&RunContext::new(
                Scenario::builder().fleet_growth(growth).build(),
            ))
    };
    let slow = run(1.05).summary_scalar().unwrap().value;
    let fast = run(1.45).summary_scalar().unwrap().value;
    assert!(fast < slow, "growth 1.45 break-even {fast} vs 1.05 {slow}");
}

#[test]
fn fleet_mix_drives_the_facility_and_round_trips_through_the_facade() {
    // A mixed fleet must change the facility numbers, and the composition
    // must survive a TOML round-trip.
    let mixed = {
        let mut s = Scenario::paper_defaults();
        s.set("fleet.mix", "web:0.6,ai-training:0.4").unwrap();
        s
    };
    assert_eq!(Scenario::from_toml(&mixed.to_toml()).unwrap(), mixed);
    let run = |s: Scenario| {
        chasing_carbon::core::experiments::find("ext-facility")
            .unwrap()
            .run(&RunContext::new(s))
    };
    let paper = run(Scenario::paper_defaults());
    let ai = run(mixed);
    let payback = |out: &cc_report::ExperimentOutput| {
        out.find_scalar("cumulative-carbon-breakeven-year")
            .unwrap()
            .value
    };
    assert!(
        payback(&ai) < payback(&paper),
        "an AI-heavy fleet must pay its embodied investment back sooner"
    );
    assert!(
        ai.find_series("facility-capex-carbon-ai-training")
            .is_some(),
        "mixed fleets expose per-SKU series"
    );
}

#[test]
fn fleet_composition_validation_guards_the_context_boundary() {
    for (key, value) in [
        ("fleet.sku", "mainframe"),
        ("fleet.mix", "web:0.5,mainframe:0.5"),
        ("fleet.mix", "web:1.3,ai-training:-0.3"),
        ("fleet.mix", "web:0.6,ai-training:0.3"),
        ("fleet.mix", "web:0.5,web:0.5"),
    ] {
        let mut s = Scenario::paper_defaults();
        s.set(key, value).unwrap();
        assert!(
            RunContext::try_new(s).is_err(),
            "{key}={value} must be rejected before any model runs"
        );
    }
}

#[test]
fn fleet_validation_rejects_unphysical_facilities_at_the_context_boundary() {
    for (key, value) in [
        ("fleet.pue", "0.9"),
        ("fleet.growth", "0"),
        ("fleet.growth", "-1"),
        ("fleet.renewable_ramp", "\"\""),
        ("fleet.initial_servers", "0"),
    ] {
        let mut s = Scenario::paper_defaults();
        s.set(key, value).unwrap();
        assert!(
            RunContext::try_new(s).is_err(),
            "{key}={value} must be rejected before any model runs"
        );
    }
}

#[test]
fn mc_seed_changes_the_monte_carlo_run_but_defaults_are_stable() {
    let run = |seed: u64| {
        chasing_carbon::core::experiments::find("ext-mc")
            .unwrap()
            .run(&RunContext::new(
                Scenario::builder().mc_seed(seed).mc_samples(2_000).build(),
            ))
    };
    let a = run(1);
    let b = run(1);
    let c = run(2);
    assert_eq!(a, b, "same seed must reproduce identical output");
    assert_ne!(a, c, "different seeds must draw different samples");
}

#[test]
fn every_experiment_is_deterministic_under_a_fixed_context() {
    let ctx = RunContext::new(Scenario::builder().name("determinism").build());
    for entry in chasing_carbon::core::experiments::entries() {
        let first = entry.build().run(&ctx);
        let second = entry.build().run(&ctx);
        assert_eq!(first, second, "{} is not deterministic", entry.key);
    }
}
