//! Cross-crate pipeline tests: data flows that span three or more crates,
//! exactly as a downstream user would compose them.

use chasing_carbon::data::ai_models::CnnModel;
use chasing_carbon::fab::{DieModel, ProcessNode};
use chasing_carbon::ghg::Scope2Method;
use chasing_carbon::lca::{AmortizationAnalysis, Footprint, UsePhase};
use chasing_carbon::prelude::*;
use chasing_carbon::socsim::{ExecutionModel, Network, PowerMonitor, UnitKind};

/// socsim → monitor → lca: the measured (sampled) energy and the analytical
/// energy must lead to break-even estimates within a few percent.
#[test]
fn measured_and_analytical_breakeven_agree() {
    let model = ExecutionModel::pixel3();
    let report = model
        .run(&Network::build(CnnModel::MobileNetV2), UnitKind::Gpu)
        .unwrap();
    let static_power = model.soc().unit(UnitKind::Gpu).unwrap().static_power();
    let measured = PowerMonitor::monsoon().measure_energy(&report, static_power, 300);

    let analysis = AmortizationAnalysis::new(
        CarbonMass::from_kg(25.0),
        chasing_carbon::data::us_grid_intensity(),
    );
    let analytic = analysis.breakeven(report.energy, report.latency).unwrap();
    let sampled = analysis.breakeven(measured, report.latency).unwrap();
    let rel = (sampled.operations / analytic.operations - 1.0).abs();
    assert!(rel < 0.05, "breakeven mismatch {rel}");
}

/// fab → lca: build a phone footprint whose IC production comes from the die
/// model, and check the decomposition responds to fab greening.
#[test]
fn die_model_feeds_device_footprint() {
    let soc = DieModel::new(ProcessNode::N10, 94.0).unwrap();
    let dram = DieModel::new(ProcessNode::N14, 60.0).unwrap();
    let ics = soc.embodied_carbon() + dram.embodied_carbon() * 2.0;

    let use_model = UsePhase::builder(Power::from_watts(1.2))
        .utilization(Ratio::from_percent(20.0))
        .lifetime(TimeSpan::from_years(3.0))
        .build();
    let phone = Footprint::builder()
        .production(ics + CarbonMass::from_kg(30.0)) // ICs + rest of BOM
        .transport(CarbonMass::from_kg(3.0))
        .use_phase(use_model.lifetime_carbon())
        .end_of_life(CarbonMass::from_kg(1.0))
        .build();
    assert!(phone.capex_share().as_percent() > 60.0);

    // Greener fab -> smaller production term, all else equal.
    let taiwan = chasing_carbon::data::grids::Region::Taiwan.carbon_intensity();
    let wind = chasing_carbon::data::energy_sources::EnergySource::Wind.carbon_intensity();
    let green_soc = DieModel::new(ProcessNode::N10, 94.0)
        .unwrap()
        .with_fab_grid(taiwan, wind);
    assert!(green_soc.embodied_carbon() < soc.embodied_carbon() * 0.5);
}

/// dcsim → ghg → core: a simulated facility's inventory decomposes like the
/// corporate reports the paper analyzes.
#[test]
fn facility_inventory_matches_reported_shape() {
    let years = chasing_carbon::dcsim::prineville::simulate();
    let last = years.last().unwrap();
    let inv = last.inventory();
    let d =
        chasing_carbon::core::CarbonDecomposition::from_inventory(&inv, Scope2Method::MarketBased);
    assert!(d.is_capex_dominated());
    // And under the location-based counterfactual, opex is much larger.
    let counterfactual = chasing_carbon::core::CarbonDecomposition::from_inventory(
        &inv,
        Scope2Method::LocationBased,
    );
    assert!(counterfactual.opex() > d.opex() * 10.0);
}

/// units → everything: quantities survive a full route through the stack
/// without unit errors (type-checked, but verify magnitudes too).
#[test]
fn end_to_end_magnitudes_are_sane() {
    // One inference on the DSP emits well under a gram of CO2e.
    let model = ExecutionModel::pixel3();
    let r = model
        .run(&Network::build(CnnModel::MobileNetV3), UnitKind::Dsp)
        .unwrap();
    let per_inference = r.energy * chasing_carbon::data::us_grid_intensity();
    assert!(per_inference.as_grams() < 0.01);
    // A wafer is hundreds of kg; a die is under a kg; a phone tens of kg;
    // a data-center year is kilotonnes.
    assert!(
        chasing_carbon::fab::WaferFootprint::tsmc_300mm()
            .total()
            .as_kg()
            > 100.0
    );
    assert!(
        DieModel::new(ProcessNode::N7, 100.0)
            .unwrap()
            .embodied_carbon()
            .as_kg()
            < 5.0
    );
    let prineville = chasing_carbon::dcsim::prineville::simulate();
    assert!(prineville.last().unwrap().capex_carbon.as_kt() > 1.0);
}

/// report layer: every experiment's tables render and export to CSV with
/// consistent column counts.
#[test]
fn experiment_tables_are_rectangular() {
    let ctx = chasing_carbon::prelude::RunContext::paper();
    for e in chasing_carbon::core::experiments::all() {
        let out = e.run(&ctx);
        for (title, table) in &out.tables {
            let cols = table.header().len();
            for row in table.rows() {
                assert_eq!(row.len(), cols, "{title}: ragged row");
            }
            let csv = table.to_csv();
            assert_eq!(csv.lines().count(), table.len() + 1, "{title}: bad CSV");
        }
    }
}
