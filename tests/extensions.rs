//! Integration tests for the Section VI extension modules, exercised
//! together the way the paper's "future directions" section frames them.

use chasing_carbon::data::ai_models::CnnModel;
use chasing_carbon::lca::{lifetime, transport::FreightMode, transport::ShippingRoute, Footprint};
use chasing_carbon::prelude::*;
use chasing_carbon::socsim::{batch, dvfs, ExecutionModel, Network, Soc, UnitKind};

/// Longer lifetime + greener grid together: the two opex/capex levers
/// compose the way the paper argues they must.
#[test]
fn lifetime_extension_and_greening_compose() {
    let phone =
        Footprint::from_product_lca(chasing_carbon::data::devices::find("iPhone 11").unwrap());
    let assessed = TimeSpan::from_years(3.0);
    let base = lifetime::annualize(&phone, assessed, assessed).total_per_year();

    // Greening cuts opex; extension cuts capex. Together they beat either.
    let greened = phone.with_use_phase(phone.use_phase() * (11.0 / 380.0));
    let green_only = lifetime::annualize(&greened, assessed, assessed).total_per_year();
    let extend_only =
        lifetime::annualize(&phone, assessed, TimeSpan::from_years(5.0)).total_per_year();
    let both = lifetime::annualize(&greened, assessed, TimeSpan::from_years(5.0)).total_per_year();
    assert!(green_only < base);
    assert!(extend_only < base);
    assert!(both < green_only && both < extend_only);
    // For a capex-dominated device, extension is the bigger single lever.
    assert!(extend_only < green_only);
}

/// Sea freight vs air freight changes a phone's transport phase by an order
/// of magnitude — and the footprint API composes with the route model.
#[test]
fn freight_mode_swap_shrinks_transport_phase() {
    let air = ShippingRoute::new(0.5)
        .leg(FreightMode::Air, 11_000.0)
        .leg(FreightMode::Road, 800.0);
    let sea = ShippingRoute::new(0.5)
        .leg(FreightMode::Sea, 19_000.0)
        .leg(FreightMode::Rail, 1_200.0)
        .leg(FreightMode::Road, 300.0);
    let make = |transport: CarbonMass| {
        Footprint::builder()
            .production(CarbonMass::from_kg(59.0))
            .transport(transport)
            .use_phase(CarbonMass::from_kg(10.5))
            .end_of_life(CarbonMass::from_kg(1.5))
            .build()
    };
    let by_air = make(air.carbon());
    let by_sea = make(sea.carbon());
    assert!(by_air.transport() / by_sea.transport() > 10.0);
    assert!(by_sea.total() < by_air.total());
}

/// DVFS and batching both reduce energy per image on the same simulator, and
/// their effects are measurable through the public API.
#[test]
fn dvfs_and_batching_reduce_energy_per_image() {
    let model = ExecutionModel::pixel3();
    let network = Network::build(CnnModel::MobileNetV2);
    let nominal = model.run(&network, UnitKind::Cpu).unwrap();

    // DVFS: the energy-optimal point is cheaper than nominal.
    let cpu = *model.soc().unit(UnitKind::Cpu).unwrap();
    let scales: Vec<f64> = (3..=15).map(|i| f64::from(i) / 10.0).collect();
    let sweep = dvfs::sweep(&cpu, &network, &scales);
    let min_energy = sweep.iter().map(|p| p.2).fold(f64::INFINITY, f64::min);
    assert!(min_energy < nominal.energy.as_joules());

    // Batching: 32 images amortize weight traffic.
    let batched = batch::run_batch(&model, &network, UnitKind::Cpu, 32).unwrap();
    assert!(batched.energy_per_image() < nominal.energy);
}

/// A custom SoC built through the public API runs the whole Fig 10 pipeline.
#[test]
fn custom_soc_through_full_pipeline() {
    let mut npu = *ExecutionModel::pixel3().soc().unit(UnitKind::Dsp).unwrap();
    npu.peak_gmacs_per_s = 2_000.0; // a dedicated NPU
    npu.pj_per_mac = 5.0;
    let soc = Soc::new("hypothetical-npu", vec![npu]);
    let model = ExecutionModel::new(soc);
    let report = model
        .run(&Network::build(CnnModel::MobileNetV3), UnitKind::Dsp)
        .unwrap();

    let analysis = chasing_carbon::lca::AmortizationAnalysis::new(
        CarbonMass::from_kg(25.0),
        chasing_carbon::data::us_grid_intensity(),
    );
    let be = analysis.breakeven(report.energy, report.latency).unwrap();
    // Ever-more-efficient hardware pushes break-even ever further out:
    // the NPU needs (far) more images than the DSP.
    let dsp_report = ExecutionModel::pixel3()
        .run(&Network::build(CnnModel::MobileNetV3), UnitKind::Dsp)
        .unwrap();
    let dsp_be = analysis
        .breakeven(dsp_report.energy, dsp_report.latency)
        .unwrap();
    assert!(be.operations > dsp_be.operations);
}

/// The Monte-Carlo experiment, fab model and scheduler all run end to end
/// from the registry.
#[test]
fn extension_experiments_run_from_registry() {
    for key in [
        "ext-sched",
        "ext-die",
        "ext-dvfs",
        "ext-hetero",
        "ext-fab",
        "ext-mc",
    ] {
        let e = chasing_carbon::core::experiments::find(key)
            .unwrap_or_else(|| panic!("{key} missing from registry"));
        let out = e.run(&RunContext::paper());
        assert!(!out.tables.is_empty(), "{key} produced no tables");
    }
}
