//! Cross-crate property-based tests: invariants that must hold for *any*
//! input, not just the paper's datasets.

use chasing_carbon::analysis::pareto::{frontier, Point};
use chasing_carbon::core::CarbonDecomposition;
use chasing_carbon::lca::{AmortizationAnalysis, Footprint};
use chasing_carbon::prelude::*;
use proptest::prelude::*;

fn mass() -> impl Strategy<Value = f64> {
    0.0..1e6f64
}

proptest! {
    /// Opex + capex always reconstruct the footprint total, and the shares
    /// always sum to one for non-degenerate footprints.
    #[test]
    fn decomposition_conserves_mass(p in mass(), t in mass(), u in mass(), e in mass()) {
        prop_assume!(p + t + u + e > 1e-9);
        let fp = Footprint::from_phases(
            CarbonMass::from_kg(p),
            CarbonMass::from_kg(t),
            CarbonMass::from_kg(u),
            CarbonMass::from_kg(e),
        );
        let d = CarbonDecomposition::from_footprint(&fp);
        let total_err = ((d.total() - fp.total()) / fp.total()).abs();
        prop_assert!(total_err < 1e-12);
        let share_sum = d.capex_share().as_fraction() + d.opex_share().as_fraction();
        prop_assert!((share_sum - 1.0).abs() < 1e-9);
    }

    /// Greening the grid can only shrink use-phase carbon, never the capex
    /// phases, so the capex share is monotone in grid intensity.
    #[test]
    fn capex_share_monotone_in_grid_intensity(
        p in 1.0..1e4f64,
        watts in 0.1..1e3f64,
        g1 in 1.0..1000.0f64,
        g2 in 1.0..1000.0f64,
    ) {
        let (lo, hi) = if g1 <= g2 { (g1, g2) } else { (g2, g1) };
        let make = |g: f64| {
            let use_model = chasing_carbon::lca::UsePhase::builder(Power::from_watts(watts))
                .grid(CarbonIntensity::from_g_per_kwh(g))
                .build();
            Footprint::builder()
                .production(CarbonMass::from_kg(p))
                .use_phase(use_model.lifetime_carbon())
                .build()
        };
        let clean = make(lo);
        let dirty = make(hi);
        prop_assert!(clean.capex_share().as_fraction() >= dirty.capex_share().as_fraction() - 1e-12);
    }

    /// Break-even counts scale linearly with the manufacturing budget and
    /// inversely with per-operation energy.
    #[test]
    fn breakeven_scaling_laws(
        budget in 1.0..1e3f64,
        energy_j in 1e-3..10.0f64,
        k in 2.0..10.0f64,
    ) {
        let grid = CarbonIntensity::from_g_per_kwh(380.0);
        let base = AmortizationAnalysis::new(CarbonMass::from_kg(budget), grid)
            .breakeven(Energy::from_joules(energy_j), TimeSpan::from_millis(5.0))
            .unwrap();
        let double_budget = AmortizationAnalysis::new(CarbonMass::from_kg(budget * k), grid)
            .breakeven(Energy::from_joules(energy_j), TimeSpan::from_millis(5.0))
            .unwrap();
        prop_assert!((double_budget.operations / base.operations - k).abs() < 1e-6);
        let efficient = AmortizationAnalysis::new(CarbonMass::from_kg(budget), grid)
            .breakeven(Energy::from_joules(energy_j / k), TimeSpan::from_millis(5.0))
            .unwrap();
        prop_assert!((efficient.operations / base.operations - k).abs() < 1e-6);
    }

    /// No point on a Pareto frontier is dominated by any input point, and
    /// adding points never shrinks the best achievable benefit.
    #[test]
    fn pareto_frontier_is_undominated(
        points in proptest::collection::vec((0.0..100.0f64, 0.0..100.0f64), 1..40),
    ) {
        let pts: Vec<Point<usize>> = points
            .iter()
            .enumerate()
            .map(|(i, &(b, c))| Point::new(b, c, i))
            .collect();
        let front = frontier(&pts);
        prop_assert!(!front.is_empty());
        for f in &front {
            for p in &pts {
                prop_assert!(!p.dominates(f), "frontier point dominated");
            }
        }
        // Frontier contains the global best-benefit point.
        let best = pts.iter().map(|p| p.benefit).fold(f64::MIN, f64::max);
        prop_assert!(front.iter().any(|p| (p.benefit - best).abs() < 1e-12));
    }

    /// The wafer renewable sweep is monotone decreasing and floored by
    /// process emissions for any composition.
    #[test]
    fn wafer_sweep_monotone(energy_kg in 1.0..500.0f64, process_kg in 1.0..500.0f64) {
        let mut wafer = chasing_carbon::fab::WaferFootprint::new();
        wafer.add_component("Energy", CarbonMass::from_kg(energy_kg), true);
        wafer.add_component("Process", CarbonMass::from_kg(process_kg), false);
        let mut last = f64::INFINITY;
        for factor in [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0] {
            let total = wafer.with_renewable_scaling(factor).total().as_kg();
            prop_assert!(total <= last + 1e-12);
            prop_assert!(total >= process_kg);
            last = total;
        }
    }

    /// PPA portfolios: market-based carbon never exceeds location-based for
    /// green contracts, and coverage is within [0, 1].
    #[test]
    fn ppa_market_never_exceeds_location(
        demand_gwh in 0.1..1e3f64,
        contracted_gwh in 0.0..2e3f64,
    ) {
        let mut p = chasing_carbon::ghg::PpaPortfolio::new(
            CarbonIntensity::from_g_per_kwh(380.0),
        );
        p.contract(
            chasing_carbon::data::energy_sources::EnergySource::Wind,
            Energy::from_gwh(contracted_gwh),
        );
        let demand = Energy::from_gwh(demand_gwh);
        prop_assert!(p.market_carbon(demand) <= p.location_carbon(demand) + CarbonMass::from_grams(1e-3));
        let cov = p.coverage(demand);
        prop_assert!((0.0..=1.0).contains(&cov));
    }

    /// The carbon-aware scheduler never does worse than the uniform baseline
    /// whenever the uniform baseline is feasible.
    #[test]
    fn scheduler_never_worse(batch in 1.0..200.0f64, base in 0.1..5.0f64) {
        let capacity = base + batch / 24.0 + 1.0;
        let profile = chasing_carbon::dcsim::DayProfile::solar_grid(base, batch, capacity);
        let uniform = chasing_carbon::dcsim::CarbonAwareScheduler::uniform(&profile);
        let aware = chasing_carbon::dcsim::CarbonAwareScheduler::carbon_aware(&profile);
        prop_assert!(aware.total_carbon <= uniform.total_carbon + CarbonMass::from_grams(1e-3));
    }
}
