//! Integration tests asserting the paper's headline numbers across the whole
//! stack — every takeaway and contribution, regenerated from the models.

use chasing_carbon::core::experiments;
use chasing_carbon::core::CarbonDecomposition;
use chasing_carbon::ghg::Scope2Method;
use chasing_carbon::lca::Footprint;
use chasing_carbon::prelude::RunContext;

#[test]
fn contribution_1_iphone_manufacturing_share_49_to_86() {
    let gs = chasing_carbon::data::devices::find("iPhone 3GS").unwrap();
    let i11 = chasing_carbon::data::devices::find("iPhone 11").unwrap();
    assert!((gs.capex_share().as_percent() - 49.0).abs() < 0.5);
    assert!((i11.capex_share().as_percent() - 86.0).abs() < 0.5);
}

#[test]
fn contribution_2_pixel3_amortization_takes_years() {
    // "efficiently amortizing the manufacturing carbon footprint of a Google
    // Pixel 3 ... requires continuously running MobileNet image-
    // classification inference for three years — beyond the typical
    // smartphone lifetime."
    use chasing_carbon::data::ai_models::CnnModel;
    use chasing_carbon::lca::AmortizationAnalysis;
    use chasing_carbon::socsim::{ExecutionModel, Network, UnitKind};

    let pixel3 = chasing_carbon::data::devices::find("Pixel 3").unwrap();
    let ctx = RunContext::paper();
    let analysis = AmortizationAnalysis::new(
        pixel3.production() * ctx.soc_budget_share(),
        ctx.effective_grid_intensity(),
    );
    let model = ExecutionModel::pixel3();
    let best = model
        .run(&Network::build(CnnModel::MobileNetV3), UnitKind::Dsp)
        .unwrap();
    let be = analysis.breakeven(best.energy, best.latency).unwrap();
    // Best-efficiency path: around (or beyond) the three-year lifetime.
    assert!(be.days > 1_000.0, "days {}", be.days);
}

#[test]
fn contribution_3_facebook_capex_23x_opex() {
    let fb = chasing_carbon::ghg::CorporateInventory::from_scope_year(
        chasing_carbon::data::corporate::year_of(&chasing_carbon::data::corporate::FACEBOOK, 2019)
            .unwrap(),
    );
    let ratio = fb.scope3() / fb.scope2(Scope2Method::MarketBased);
    assert!((ratio - 23.0).abs() < 0.5);
}

#[test]
fn takeaway_1_ics_exceed_product_use_at_apple() {
    let ics = chasing_carbon::data::corporate::APPLE_2019_BREAKDOWN[0];
    assert_eq!(ics.label, "Integrated circuits");
    let product_use = chasing_carbon::data::corporate::apple_2019_group_share("Product Use");
    assert!(ics.share > product_use);
}

#[test]
fn takeaway_2_battery_vs_always_connected() {
    use chasing_carbon::data::devices::Category;
    let phones = chasing_carbon::lca::inventory::summarize(Category::Phone).unwrap();
    let consoles = chasing_carbon::lca::inventory::summarize(Category::GameConsole).unwrap();
    assert!(phones.manufacturing_share_mean > 0.60);
    assert!(consoles.use_share_mean > 0.60);
}

#[test]
fn takeaway_3_footprint_scales_with_capability() {
    use chasing_carbon::data::devices::Category;
    let summaries = chasing_carbon::lca::inventory::all_categories();
    let by = |c: Category| {
        summaries
            .iter()
            .find(|s| s.category == c)
            .unwrap()
            .total_mean
    };
    assert!(by(Category::Wearable) < by(Category::Phone));
    assert!(by(Category::Phone) < by(Category::Laptop));
    assert!(by(Category::Laptop) < by(Category::GameConsole));
}

#[test]
fn takeaway_7_capex_dominates_cloud_providers() {
    for (series, year) in [
        (&chasing_carbon::data::corporate::FACEBOOK[..], 2019),
        (&chasing_carbon::data::corporate::GOOGLE[..], 2018),
    ] {
        let inv = chasing_carbon::ghg::CorporateInventory::from_scope_year(
            chasing_carbon::data::corporate::year_of(series, year).unwrap(),
        );
        let d = CarbonDecomposition::from_inventory(&inv, Scope2Method::MarketBased);
        assert!(d.is_capex_dominated());
        assert!(d.capex_to_opex() > 10.0);
    }
}

#[test]
fn takeaway_9_renewables_flip_chip_vendor_breakdowns() {
    // Intel at 60% use on the US grid becomes >80% manufacturing on wind:
    // scale the use share by wind/US intensity and renormalize.
    let wind = chasing_carbon::data::energy_sources::EnergySource::Wind
        .carbon_intensity()
        .as_g_per_kwh();
    let scale = wind / chasing_carbon::data::US_GRID_G_PER_KWH;
    let raw: Vec<f64> = chasing_carbon::data::corporate::INTEL_LIFECYCLE
        .iter()
        .map(|c| {
            if c.scales_with_use_energy {
                c.share * scale
            } else {
                c.share
            }
        })
        .collect();
    let total: f64 = raw.iter().sum();
    let use_share = raw[0] / total;
    assert!(use_share < 0.20, "HW-use share on wind: {use_share}");
}

#[test]
fn takeaway_10_fab_renewables_bounded_by_process_emissions() {
    let wafer = chasing_carbon::fab::WaferFootprint::tsmc_300mm();
    let max_reduction = wafer.total() / wafer.process_carbon();
    // Even infinite renewable scaling cannot beat ~2.8x: process emissions floor it.
    assert!(max_reduction < 3.0);
    let at64 = wafer.total() / wafer.with_renewable_scaling(64.0).total();
    assert!((at64 - 2.7).abs() < 0.1);
}

#[test]
fn all_experiments_render_nonempty_reports() {
    let ctx = RunContext::paper();
    for e in experiments::all() {
        let out = e.run(&ctx);
        let text = out.render();
        assert!(text.len() > 40, "{} rendered almost nothing", e.id());
    }
}

#[test]
fn footprints_from_dataset_are_internally_consistent() {
    for d in chasing_carbon::data::devices::iter() {
        let fp = Footprint::from_product_lca(d);
        assert!((fp.total() / d.total() - 1.0).abs() < 1e-9, "{}", d.name);
        let share_sum = fp.capex_share().as_fraction() + fp.opex_share().as_fraction();
        assert!((share_sum - 1.0).abs() < 1e-9, "{}", d.name);
    }
}

/// The scenario satellite: `Scenario::paper_defaults()` must regenerate the
/// paper's Fig 10 anchors exactly — same break-even numbers the seed
/// hard-coded before the experiment API took a `RunContext`.
#[test]
fn paper_default_scenario_reproduces_fig10_anchors() {
    use chasing_carbon::prelude::Scenario;

    let defaults = Scenario::paper_defaults();
    assert_eq!(defaults.grid.intensity_g_per_kwh, 380.0); // Table III US average
    assert_eq!(defaults.device.lifetime_years, 3.0); // §III-C smartphone lifetime
    assert_eq!(defaults.device.soc_budget_share, 0.5); // Fig 5 IC share assumption
    defaults.validate().unwrap();

    let ctx = RunContext::new(defaults);
    assert!(ctx.is_paper());
    let out = chasing_carbon::core::experiments::find("fig10")
        .unwrap()
        .run(&ctx);
    // Paper: MobileNet v3 CPU ~350 days, DSP ~1200 days (beyond lifetime).
    let days = out.find_series("breakeven-days").unwrap();
    let cpu = days.y_for("MobileNet v3/CPU").unwrap();
    let dsp = days.y_for("MobileNet v3/DSP").unwrap();
    assert!((250.0..500.0).contains(&cpu), "CPU days {cpu}");
    assert!(dsp > 900.0, "DSP days {dsp}");
}

/// A custom scenario must actually change the answers: that is the point of
/// the redesign.
#[test]
fn custom_scenario_changes_fig10_breakeven() {
    use chasing_carbon::prelude::Scenario;

    let paper = chasing_carbon::core::experiments::find("fig10")
        .unwrap()
        .run(&RunContext::paper());
    let hydro = Scenario::builder()
        .name("hydro-5yr")
        .grid_intensity(24.0)
        .lifetime_years(5.0)
        .build();
    let custom = chasing_carbon::core::experiments::find("fig10")
        .unwrap()
        .run(&RunContext::new(hydro));
    let p = paper.find_series("breakeven-days").unwrap();
    let c = custom.find_series("breakeven-days").unwrap();
    assert_eq!(p.len(), c.len());
    for (pp, cc) in p.points.iter().zip(&c.points) {
        assert!(
            cc.y > pp.y * 10.0,
            "cleaner grid must stretch break-even: {pp:?} vs {cc:?}"
        );
    }
}
