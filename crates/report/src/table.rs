//! A simple column-aligned ASCII table with CSV export.

/// A rectangular table: a header row plus data rows.
///
/// ```
/// use cc_report::Table;
///
/// let mut t = Table::new(["Source", "g CO2e/kWh"]);
/// t.row(["Coal", "820"]);
/// t.row(["Wind", "11"]);
/// let text = t.render();
/// assert!(text.contains("Coal"));
/// assert!(t.to_csv().starts_with("Source,g CO2e/kWh\n"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given header.
    #[must_use]
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row. Rows shorter than the header are padded with empty
    /// cells; longer rows are truncated.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The header cells.
    #[must_use]
    pub fn header(&self) -> &[String] {
        &self.header
    }

    /// The data rows.
    #[must_use]
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(cell);
                line.push_str(&" ".repeat(widths[i].saturating_sub(cell.len())));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders the table as a GitHub-flavoured Markdown table.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let emit = |row: &[String], out: &mut String| {
            out.push('|');
            for cell in row {
                out.push(' ');
                out.push_str(&cell.replace('|', "\\|"));
                out.push_str(" |");
            }
            out.push('\n');
        };
        emit(&self.header, &mut out);
        out.push('|');
        for _ in &self.header {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }

    /// Emits RFC-4180-ish CSV (cells containing commas or quotes are
    /// quoted).
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let emit = |row: &[String], out: &mut String| {
            let line: Vec<String> = row.iter().map(|c| escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        emit(&self.header, &mut out);
        for row in &self.rows {
            emit(row, &mut out);
        }
        out
    }
}

impl core::fmt::Display for Table {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.render())
    }
}

/// Formats a float with the given number of decimals (helper for table
/// cells).
#[must_use]
pub fn num(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["A", "Long header"]);
        t.row(["very long cell", "x"]);
        t.row(["y", "z"]);
        let text = t.render();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("A "));
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1"]);
        t.row(["1", "2", "3"]);
        assert_eq!(t.rows()[0], vec!["1".to_string(), String::new()]);
        assert_eq!(t.rows()[1].len(), 2);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn markdown_rendering() {
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "x|y"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a | b |\n|---|---|\n"));
        assert!(md.contains("x\\|y"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(["name", "note"]);
        t.row(["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn num_helper() {
        assert_eq!(num(1.23456, 2), "1.23");
        assert_eq!(num(2.0, 0), "2");
    }

    #[test]
    fn display_matches_render() {
        let mut t = Table::new(["h"]);
        t.row(["v"]);
        assert_eq!(t.to_string(), t.render());
    }
}
