//! # cc-report
//!
//! Presentation layer for the reproduction: ASCII tables, CSV emission, text
//! bar charts, and the [`Experiment`] abstraction keyed by the paper's
//! figure/table ids.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod experiment;
pub mod table;

pub use experiment::{Experiment, ExperimentId, ExperimentOutput};
pub use table::Table;
