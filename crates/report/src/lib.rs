//! # cc-report
//!
//! Presentation layer for the reproduction: ASCII tables, CSV/JSON emission,
//! text bar charts, typed series artifacts, scenario parameters and the
//! [`Experiment`] abstraction keyed by the paper's figure/table ids.
//!
//! The scenario API is what turns the workspace from a fixed paper replay
//! into a modeling tool: a [`Scenario`] makes every assumption the paper
//! baked in (grid intensity, device lifetime, fab powering, fleet scale)
//! explicit and overridable, and a [`RunContext`] carries one scenario into
//! every experiment run. The [`scenario::deps`] module makes the *reverse*
//! mapping first-class: every settable dotted path is described by canonical
//! field metadata, experiments declare which fields they read
//! ([`ScenarioPath`]), tracking contexts verify those declarations against
//! actual reads, and [`dependency_fingerprint`] keys the sweep runner's
//! per-point result cache.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod experiment;
pub mod json;
pub mod scenario;
pub mod series;
pub mod table;

pub use experiment::{
    Experiment, ExperimentId, ExperimentOutput, Scalar, ScalarThreshold, KNOWN_EXTENSIONS,
};
pub use json::{JsonParseError, JsonValue};
pub use scenario::deps::{
    dedup_groups, dependency_fingerprint, FieldSource, ReadTracker, ScenarioPath,
};
pub use scenario::mc::{DistBinding, McComparison, MonteCarloMatrix};
pub use scenario::sweep::{
    Comparison, ComparisonRow, Crossing, ScenarioMatrix, ScenarioPoint, SweepError, SweepSpec,
};
pub use scenario::trace::{builtin_region_trace, BUILTIN_REGIONS};
pub use scenario::{
    FleetParams, RegionParams, RunContext, Scenario, ScenarioBuilder, ScenarioError,
    ScenarioOverlay, SiteParams,
};
pub use series::{Series, SeriesPoint};
pub use table::Table;
