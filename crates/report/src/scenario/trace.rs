//! Region-trace parsing: the `grid.region.<name>.trace` spec grammar and the
//! builtin region catalog.
//!
//! A trace spec is resolved **at set time** into 24 hourly g CO₂e/kWh values
//! (see [`super::RegionParams`]): parametric generators compute their shape,
//! inline lists and CSV files are resampled onto the hourly grid by
//! [`IntensityTrace::from_hourly`]. The scenario therefore stores — and
//! serializes, and fingerprints — only resolved numbers, so a scenario that
//! loaded a trace from `scenarios/traces/solar.csv` stays hermetic: the file
//! is never needed again (a serve daemon can run it without the CSV on
//! disk), and two specs that resolve to the same hours fingerprint
//! identically. The full grammar is documented in `docs/GRID-TRACES.md`.

use super::ScenarioError;
use cc_units::IntensityTrace;

/// Builtin region names accepted by `fleet.sites` without a matching
/// `grid.region.<name>.trace` entry, with their trace shapes:
///
/// * `default` — flat 380 g/kWh (the paper's average US grid, Table III);
/// * `solar` — the workspace's historical solar-heavy day
///   ([`IntensityTrace::solar_day`] between 380 and 120 g/kWh);
/// * `hydro` / `wind` / `nuclear` / `coal` / `gas` — flat at the Table II
///   generation intensity of that source (24, 11, 12, 820, 490 g/kWh).
pub const BUILTIN_REGIONS: [&str; 7] = [
    "default", "solar", "hydro", "wind", "nuclear", "coal", "gas",
];

/// The trace of a builtin region, or `None` for an unknown name.
///
/// Note the distinction for `solar`: a solar-*heavy grid region* still runs
/// gas peakers at night, so its trace dips from 380 to 120 g/kWh, while
/// Table II's 41 g/kWh is the generation intensity of solar power itself.
#[must_use]
pub fn builtin_region_trace(name: &str) -> Option<IntensityTrace> {
    Some(match name {
        "default" => IntensityTrace::flat(380.0),
        "solar" => IntensityTrace::solar_day(380.0, 120.0),
        "hydro" => IntensityTrace::flat(24.0),
        "wind" => IntensityTrace::flat(11.0),
        "nuclear" => IntensityTrace::flat(12.0),
        "coal" => IntensityTrace::flat(820.0),
        "gas" => IntensityTrace::flat(490.0),
        _ => return None,
    })
}

/// Resolves a `grid.region.<name>.trace` spec into 24 hourly values.
///
/// Grammar (see `docs/GRID-TRACES.md`):
///
/// * `solar(night,noon)` — the parametric solar-day generator;
/// * `flat(v)` — a constant trace;
/// * a path ending in `.csv` — loaded from disk (relative to the working
///   directory) and resampled;
/// * otherwise an inline comma-separated sample list, resampled.
///
/// # Errors
///
/// [`ScenarioError::InvalidValue`] for malformed specs or unparsable
/// numbers; [`ScenarioError::Invalid`] when a CSV file cannot be read.
pub fn parse_trace_spec(key: &str, value: &str) -> Result<Vec<f64>, ScenarioError> {
    let invalid = || ScenarioError::InvalidValue {
        key: key.to_string(),
        value: value.to_string(),
    };
    let text = super::unquote(value);
    let text = text.trim();
    if let Some(args) = call_args(text, "solar") {
        let [night, noon] = two_args(key, value, &args)?;
        return Ok(IntensityTrace::solar_day(night, noon).hours().to_vec());
    }
    if let Some(args) = call_args(text, "flat") {
        let [v] = one_arg(key, value, &args)?;
        return Ok(vec![v; 24]);
    }
    let samples = if text.ends_with(".csv") {
        load_trace_csv(key, text)?
    } else {
        text.split(',')
            .map(|part| part.trim().parse::<f64>().map_err(|_| invalid()))
            .collect::<Result<Vec<f64>, _>>()?
    };
    let trace = IntensityTrace::from_hourly(&samples).ok_or_else(invalid)?;
    Ok(trace.hours().to_vec())
}

/// The argument text of a `name(args)` call form, or `None` when `text` is
/// not such a call.
fn call_args(text: &str, name: &str) -> Option<String> {
    text.strip_prefix(name)?
        .trim_start()
        .strip_prefix('(')?
        .strip_suffix(')')
        .map(str::to_string)
}

fn one_arg(key: &str, value: &str, args: &str) -> Result<[f64; 1], ScenarioError> {
    let invalid = || ScenarioError::InvalidValue {
        key: key.to_string(),
        value: value.to_string(),
    };
    let v = args.trim().parse().map_err(|_| invalid())?;
    Ok([v])
}

fn two_args(key: &str, value: &str, args: &str) -> Result<[f64; 2], ScenarioError> {
    let invalid = || ScenarioError::InvalidValue {
        key: key.to_string(),
        value: value.to_string(),
    };
    let (a, b) = args.split_once(',').ok_or_else(invalid)?;
    Ok([
        a.trim().parse().map_err(|_| invalid())?,
        b.trim().parse().map_err(|_| invalid())?,
    ])
}

/// Loads trace samples from a CSV file: one sample per data line, either a
/// bare value or an `index,value` row (the index column — hour, half-hour,
/// whatever the file's resolution — is positional and ignored). Blank lines
/// and `#` comments are skipped.
fn load_trace_csv(key: &str, path: &str) -> Result<Vec<f64>, ScenarioError> {
    let text = std::fs::read_to_string(path).map_err(|e| {
        ScenarioError::Invalid(format!("{key}: cannot read trace file `{path}`: {e}"))
    })?;
    let mut samples = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or_default().trim();
        if line.is_empty() {
            continue;
        }
        let value_text = match line.rsplit_once(',') {
            Some((_, v)) => v.trim(),
            None => line,
        };
        let value: f64 = value_text.parse().map_err(|_| {
            ScenarioError::Invalid(format!(
                "{key}: trace file `{path}` line {}: `{line}` is not a sample",
                idx + 1
            ))
        })?;
        samples.push(value);
    }
    if samples.is_empty() {
        return Err(ScenarioError::Invalid(format!(
            "{key}: trace file `{path}` holds no samples"
        )));
    }
    Ok(samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtins_cover_the_catalog_exactly() {
        for name in BUILTIN_REGIONS {
            assert!(builtin_region_trace(name).is_some(), "missing {name}");
        }
        assert!(builtin_region_trace("mars").is_none());
        assert_eq!(builtin_region_trace("hydro").unwrap().g_per_kwh(3), 24.0);
        assert_eq!(builtin_region_trace("solar").unwrap().g_per_kwh(13), 120.0);
    }

    #[test]
    fn parametric_specs_resolve() {
        let solar = parse_trace_spec("k", "solar(380,120)").unwrap();
        assert_eq!(solar.len(), 24);
        assert_eq!(solar[13], 120.0);
        assert_eq!(solar[0], 380.0);
        let flat = parse_trace_spec("k", "flat(42)").unwrap();
        assert_eq!(flat, vec![42.0; 24]);
        // Quoted (TOML) forms parse identically.
        assert_eq!(parse_trace_spec("k", "\"flat(42)\"").unwrap(), flat);
    }

    #[test]
    fn inline_lists_resample_to_the_hourly_grid() {
        let two = parse_trace_spec("k", "100,300").unwrap();
        assert_eq!(two.len(), 24);
        assert_eq!(two[0], 100.0);
        assert_eq!(two[12], 300.0);
        let native: Vec<f64> = (0..24).map(f64::from).collect();
        let text = native
            .iter()
            .map(|v| format!("{v}"))
            .collect::<Vec<_>>()
            .join(",");
        assert_eq!(parse_trace_spec("k", &text).unwrap(), native);
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in ["", "solar(1)", "flat(a)", "1,two,3", "solar(1,2,3)"] {
            assert!(parse_trace_spec("k", bad).is_err(), "`{bad}`");
        }
        assert!(matches!(
            parse_trace_spec("k", "/nonexistent/trace.csv"),
            Err(ScenarioError::Invalid(m)) if m.contains("cannot read")
        ));
    }

    #[test]
    fn csv_files_load_with_comments_and_hour_columns() {
        let dir = std::env::temp_dir().join("cc-trace-csv-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mixed.csv");
        std::fs::write(&path, "# hourly trace\n0,100\n1,200\n\n300 # bare\n").unwrap();
        let spec = path.to_str().unwrap().to_string();
        let hours = parse_trace_spec("k", &spec).unwrap();
        assert_eq!(hours.len(), 24);
        assert_eq!(hours[0], 100.0);
        // 3 samples spread over 24 hours: sample 1 lands at 08:00.
        assert_eq!(hours[8], 200.0);

        let empty = dir.join("empty.csv");
        std::fs::write(&empty, "# nothing\n").unwrap();
        assert!(parse_trace_spec("k", empty.to_str().unwrap()).is_err());
        let junk = dir.join("junk.csv");
        std::fs::write(&junk, "0,fast\n").unwrap();
        assert!(matches!(
            parse_trace_spec("k", junk.to_str().unwrap()),
            Err(ScenarioError::Invalid(m)) if m.contains("not a sample")
        ));
    }
}
