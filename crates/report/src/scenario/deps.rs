//! Scenario-dependency metadata: which scenario fields an experiment reads.
//!
//! Most experiments read *nothing* from the scenario — they regenerate a
//! disclosed dataset verbatim — and produce bit-identical output at every
//! point of a sweep. Declaring each experiment's dependency set makes that
//! knowledge first-class:
//!
//! * a **[`ScenarioPath`]** names one declared dependency — either a single
//!   canonical field (`fab.node_nm`) or a whole section (`fleet.*`);
//! * **[`FIELDS`]** is the canonical registry of every settable dotted path
//!   (type, aliases, paper default via [`Scenario::field_value`], validation
//!   rule) — the single source of truth behind the generated
//!   `docs/scenario-reference.md`;
//! * **[`dependency_fingerprint`]** hashes only the declared fields of a
//!   scenario, so a sweep runner can dedupe (experiment × point) jobs across
//!   axes the experiment ignores ([`dedup_groups`]);
//! * a **[`ReadTracker`]** attached to a tracking
//!   [`RunContext`](crate::RunContext) records the fields an experiment
//!   *actually* read, so CI can fail any declaration that disagrees with the
//!   code.
//!
//! The honesty contract: an experiment's output must be a pure function of
//! the fields its declared paths match. Tracked accessors enforce it — raw
//! [`Scenario`] access (`RunContext::scenario`, `RunContext::is_paper`)
//! counts as reading *every* field, so experiments that want a small
//! dependency set must go through the typed accessors.

use super::{DeviceParams, FabParams, FleetParams, GridParams, McParams, Scenario};
use core::fmt::{self, Write as _};
use std::collections::BTreeSet;
use std::sync::Mutex;

/// One declared scenario dependency: a canonical dotted field path
/// (`"grid.intensity"`) or a section wildcard (`"fleet.*"`) covering every
/// semantic field in the section.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScenarioPath(&'static str);

impl ScenarioPath {
    /// Wraps a pattern. `const` so dependency sets can live in `static`
    /// registry entries.
    #[must_use]
    pub const fn of(pattern: &'static str) -> Self {
        Self(pattern)
    }

    /// The pattern text.
    #[must_use]
    pub const fn as_str(self) -> &'static str {
        self.0
    }

    /// Whether this pattern covers the canonical field `field`
    /// (`fleet.*` matches `fleet.growth`; `fab.node_nm` matches itself).
    #[must_use]
    pub fn matches(self, field: &str) -> bool {
        match self.0.strip_suffix(".*") {
            Some(section) => field
                .strip_prefix(section)
                .is_some_and(|rest| rest.starts_with('.')),
            None => self.0 == field,
        }
    }
}

impl core::fmt::Display for ScenarioPath {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.0)
    }
}

/// Metadata for one settable scenario field: the canonical dotted path, its
/// accepted aliases, type, one-line description and validation rule.
///
/// `semantic` distinguishes fields the *models* can read (part of dependency
/// fingerprints) from labeling/convenience fields: `name` only tags
/// artifacts, and `grid.source` is resolved into `grid.intensity` at set
/// time, so neither can change an experiment's numbers on its own.
#[derive(Debug, Clone, Copy)]
pub struct FieldInfo {
    /// Canonical dotted path (`grid.intensity`).
    pub path: &'static str,
    /// Accepted alias paths (`grid.intensity_g_per_kwh`).
    pub aliases: &'static [&'static str],
    /// Human-readable type (`f64`, `u32`, `string`, `list of f64`).
    pub ty: &'static str,
    /// One-line description.
    pub doc: &'static str,
    /// Human-readable validation rule enforced by [`Scenario::validate`].
    pub validation: &'static str,
    /// Whether the field participates in dependency fingerprints.
    pub semantic: bool,
}

impl FieldInfo {
    /// Whether the field can be bound to a distribution
    /// (`path ~ triangular(…)`) in a Monte-Carlo run: only semantic
    /// real-valued fields qualify — integer, string and list fields have no
    /// meaningful continuous sample space, and non-semantic fields cannot
    /// change any experiment's numbers.
    #[must_use]
    pub fn distribution_eligible(&self) -> bool {
        self.semantic && self.ty == "f64"
    }
}

/// Every settable scenario field, in canonical (TOML) order. The single
/// source of truth for `--set` documentation, dependency expansion and the
/// generated scenario reference.
pub const FIELDS: [FieldInfo; 25] = [
    FieldInfo {
        path: "name",
        aliases: &[],
        ty: "string",
        doc: "Human-readable scenario name; appears in artifact metadata only",
        validation: "any string",
        semantic: false,
    },
    FieldInfo {
        path: "grid.intensity",
        aliases: &["grid.intensity_g_per_kwh"],
        ty: "f64",
        doc: "Operational grid carbon intensity in g CO2e/kWh",
        validation: "finite and > 0",
        semantic: true,
    },
    FieldInfo {
        path: "grid.source",
        aliases: &[],
        ty: "string",
        doc: "Energy-source label; setting it resolves grid.intensity to the Table II value",
        validation: "must name a Table II energy source (case-insensitive)",
        semantic: false,
    },
    FieldInfo {
        path: "grid.renewable_fraction",
        aliases: &[],
        ty: "f64",
        doc: "Fraction of operational energy covered by renewable purchases",
        validation: "in [0, 1]",
        semantic: true,
    },
    FieldInfo {
        path: "grid.regions",
        aliases: &[],
        ty: "trace map",
        doc: "Named grid regions with 24-hour intensity traces; per-region specs \
              (`solar(night,noon)`, `flat(v)`, inline list, `*.csv`) are settable via \
              `grid.region.<name>.trace` and resolve at set time (see docs/GRID-TRACES.md)",
        validation: "unique non-empty names; 24 finite non-negative hourly values each",
        semantic: true,
    },
    FieldInfo {
        path: "device.lifetime",
        aliases: &["device.lifetime_years"],
        ty: "f64",
        doc: "Assumed device lifetime in years",
        validation: "finite and > 0",
        semantic: true,
    },
    FieldInfo {
        path: "device.soc_budget_share",
        aliases: &[],
        ty: "f64",
        doc: "Share of a device's production carbon attributed to its SoC",
        validation: "in (0, 1]",
        semantic: true,
    },
    FieldInfo {
        path: "fab.node_nm",
        aliases: &["fab.node"],
        ty: "f64",
        doc: "Featured process node in nanometres",
        validation: "> 0",
        semantic: true,
    },
    FieldInfo {
        path: "fab.yield_factor",
        aliases: &[],
        ty: "f64",
        doc: "Multiplier on the baseline defect density (1.0 = 0.1 /cm2)",
        validation: "finite and > 0",
        semantic: true,
    },
    FieldInfo {
        path: "fab.renewable_share",
        aliases: &[],
        ty: "f64",
        doc: "Share of fab electricity from renewables",
        validation: "in [0, 1]",
        semantic: true,
    },
    FieldInfo {
        path: "fleet.scale",
        aliases: &[],
        ty: "f64",
        doc: "Demand multiplier applied to fleet-sizing experiments",
        validation: "finite and > 0",
        semantic: true,
    },
    FieldInfo {
        path: "fleet.sku",
        aliases: &[],
        ty: "string",
        doc: "Server SKU of a pure (single-SKU) fleet; a non-empty fleet.mix overrides it",
        validation: "one of: web, storage, ai-training",
        semantic: true,
    },
    FieldInfo {
        path: "fleet.mix",
        aliases: &[],
        ty: "weighted list",
        doc: "Weighted fleet composition (`web:0.7,ai-training:0.3`); one SKU's weight is \
              sweepable via `fleet.mix[<sku>]`, which renormalizes the rest",
        validation: "known SKUs, no duplicates, weights >= 0 summing to 1; empty = pure fleet.sku",
        semantic: true,
    },
    FieldInfo {
        path: "fleet.sites",
        aliases: &[],
        ty: "weighted list",
        doc: "Multi-site fleet composition (`main@default:0.7,pnw@hydro:0.3`); one site's \
              share is sweepable via `fleet.sites[<site>].weight` (renormalizing the rest) \
              and its region settable via `fleet.sites[<site>].region`",
        validation: "unique names, weights >= 0 summing to 1, regions configured or builtin; \
                     empty = one `main` site in the `default` region",
        semantic: true,
    },
    FieldInfo {
        path: "fleet.deferrable",
        aliases: &[],
        ty: "f64",
        doc: "Fraction of fleet IT energy that is deferrable batch work the carbon-aware \
              scheduler may move across hours and sites",
        validation: "in [0, 1]",
        semantic: true,
    },
    FieldInfo {
        path: "fleet.initial_servers",
        aliases: &[],
        ty: "u64",
        doc: "Servers in service in the facility's first simulated year",
        validation: ">= 1",
        semantic: true,
    },
    FieldInfo {
        path: "fleet.growth",
        aliases: &[],
        ty: "f64",
        doc: "Annual server-fleet growth factor (1.0 = flat fleet)",
        validation: "finite and > 0",
        semantic: true,
    },
    FieldInfo {
        path: "fleet.pue",
        aliases: &[],
        ty: "f64",
        doc: "Power usage effectiveness of the facility",
        validation: "finite and >= 1.0",
        semantic: true,
    },
    FieldInfo {
        path: "fleet.renewable_ramp",
        aliases: &["fleet.ramp"],
        ty: "list of f64",
        doc: "Renewable (PPA) coverage fraction per simulated year; last value holds",
        validation: "non-empty, every value in [0, 1]",
        semantic: true,
    },
    FieldInfo {
        path: "fleet.construction_kt",
        aliases: &["fleet.construction"],
        ty: "f64",
        doc: "Total construction embodied carbon in kt CO2e",
        validation: "finite and >= 0",
        semantic: true,
    },
    FieldInfo {
        path: "fleet.building_amortization_years",
        aliases: &["fleet.building_amortization"],
        ty: "f64",
        doc: "Building-amortization window in years over which construction carbon is spread",
        validation: "finite and > 0",
        semantic: true,
    },
    FieldInfo {
        path: "fleet.start_year",
        aliases: &[],
        ty: "u16",
        doc: "Calendar year the facility enters service (shifts the year axis)",
        validation: "in 1900..=2100",
        semantic: true,
    },
    FieldInfo {
        path: "fleet.horizon_years",
        aliases: &["fleet.horizon"],
        ty: "u32",
        doc: "Simulated planning horizon in years",
        validation: "in 1..=200",
        semantic: true,
    },
    FieldInfo {
        path: "mc.seed",
        aliases: &[],
        ty: "u64",
        doc: "Base RNG seed for the Monte-Carlo experiment",
        validation: "any",
        semantic: true,
    },
    FieldInfo {
        path: "mc.samples",
        aliases: &[],
        ty: "u32",
        doc: "Monte-Carlo trials per propagated headline",
        validation: ">= 1",
        semantic: true,
    },
];

/// The canonical semantic fields covered by `deps`, in [`FIELDS`] order.
/// Wildcards expand to every semantic field of their section; non-semantic
/// fields (`name`, `grid.source`) never appear.
#[must_use]
pub fn expand(deps: &[ScenarioPath]) -> Vec<&'static str> {
    FIELDS
        .iter()
        .filter(|f| f.semantic && deps.iter().any(|d| d.matches(f.path)))
        .map(|f| f.path)
        .collect()
}

/// Read access to the scenario sections, without requiring an owned
/// [`Scenario`]. Implemented by `Scenario` itself and by
/// [`ScenarioOverlay`](crate::ScenarioOverlay), whose sections resolve
/// delta-first against a shared base. Fingerprinting and dedup are generic
/// over this trait, so the sweep machinery can hash copy-on-write points
/// without materializing full scenarios.
pub trait FieldSource {
    /// The scenario name (labeling only — never fingerprinted).
    fn name(&self) -> &str;
    /// Operational-energy parameters.
    fn grid(&self) -> &GridParams;
    /// Device parameters.
    fn device(&self) -> &DeviceParams;
    /// Fab parameters.
    fn fab(&self) -> &FabParams;
    /// Fleet parameters.
    fn fleet(&self) -> &FleetParams;
    /// Monte-Carlo parameters.
    fn mc(&self) -> &McParams;
}

impl FieldSource for Scenario {
    fn name(&self) -> &str {
        &self.name
    }
    fn grid(&self) -> &GridParams {
        &self.grid
    }
    fn device(&self) -> &DeviceParams {
        &self.device
    }
    fn fab(&self) -> &FabParams {
        &self.fab
    }
    fn fleet(&self) -> &FleetParams {
        &self.fleet
    }
    fn mc(&self) -> &McParams {
        &self.mc
    }
}

/// Writes the canonical string form of the field at `path` into `out` —
/// the exact text [`Scenario::field_value`] returns, but streamed, so
/// fingerprinting allocates no intermediate `String` per field. Returns
/// `None` when `path` names no canonical field.
fn write_field_value<S: FieldSource>(
    source: &S,
    path: &str,
    out: &mut impl fmt::Write,
) -> Option<()> {
    let result = match path {
        "name" => out.write_str(source.name()),
        "grid.intensity" => write!(out, "{:?}", source.grid().intensity_g_per_kwh),
        "grid.source" => out.write_str(source.grid().source.as_deref().unwrap_or_default()),
        "grid.renewable_fraction" => write!(out, "{:?}", source.grid().renewable_fraction),
        "grid.regions" => write_regions(&source.grid().regions, out),
        "device.lifetime" => write!(out, "{:?}", source.device().lifetime_years),
        "device.soc_budget_share" => write!(out, "{:?}", source.device().soc_budget_share),
        "fab.node_nm" => write!(out, "{:?}", source.fab().node_nm),
        "fab.yield_factor" => write!(out, "{:?}", source.fab().yield_factor),
        "fab.renewable_share" => write!(out, "{:?}", source.fab().renewable_share),
        "fleet.scale" => write!(out, "{:?}", source.fleet().scale),
        "fleet.sku" => out.write_str(&source.fleet().sku),
        "fleet.mix" => write_mix(&source.fleet().mix, out),
        "fleet.sites" => write_sites(&source.fleet().sites, out),
        "fleet.deferrable" => write!(out, "{:?}", source.fleet().deferrable),
        "fleet.initial_servers" => write!(out, "{}", source.fleet().initial_servers),
        "fleet.growth" => write!(out, "{:?}", source.fleet().growth),
        "fleet.pue" => write!(out, "{:?}", source.fleet().pue),
        "fleet.renewable_ramp" => write_ramp(&source.fleet().renewable_ramp, out),
        "fleet.construction_kt" => write!(out, "{:?}", source.fleet().construction_kt),
        "fleet.building_amortization_years" => {
            write!(out, "{:?}", source.fleet().building_amortization_years)
        }
        "fleet.start_year" => write!(out, "{}", source.fleet().start_year),
        "fleet.horizon_years" => write!(out, "{}", source.fleet().horizon_years),
        "mc.seed" => write!(out, "{}", source.mc().seed),
        "mc.samples" => write!(out, "{}", source.mc().samples),
        _ => return None,
    };
    result.expect("field-value sinks are infallible");
    Some(())
}

/// Streams the canonical `sku:weight,…` mix text (same bytes as
/// `format_mix`).
fn write_mix(mix: &[(String, f64)], out: &mut impl fmt::Write) -> fmt::Result {
    for (i, (name, w)) in mix.iter().enumerate() {
        if i > 0 {
            out.write_char(',')?;
        }
        write!(out, "{name}:{w:?}")?;
    }
    Ok(())
}

/// Streams the canonical comma-joined ramp text (same bytes as
/// `format_ramp`).
fn write_ramp(ramp: &[f64], out: &mut impl fmt::Write) -> fmt::Result {
    for (i, v) in ramp.iter().enumerate() {
        if i > 0 {
            out.write_char(',')?;
        }
        write!(out, "{v:?}")?;
    }
    Ok(())
}

/// Streams the canonical `name:h0,…,h23;…` region text (same bytes as
/// `format_regions`).
fn write_regions(regions: &[super::RegionParams], out: &mut impl fmt::Write) -> fmt::Result {
    for (i, region) in regions.iter().enumerate() {
        if i > 0 {
            out.write_char(';')?;
        }
        write!(out, "{}:", region.name)?;
        write_ramp(&region.hours, out)?;
    }
    Ok(())
}

/// Streams the canonical `name@region:weight,…` site text (same bytes as
/// `format_sites`).
fn write_sites(sites: &[super::SiteParams], out: &mut impl fmt::Write) -> fmt::Result {
    for (i, site) in sites.iter().enumerate() {
        if i > 0 {
            out.write_char(',')?;
        }
        write!(out, "{}@{}:{:?}", site.name, site.region, site.weight)?;
    }
    Ok(())
}

impl Scenario {
    /// The canonical string form of the field at `path` (canonical paths
    /// only — aliases are accepted by [`Scenario::set`], not here). This is
    /// the value text dependency fingerprints hash and the generated
    /// reference documents as the paper default.
    #[must_use]
    pub fn field_value(&self, path: &str) -> Option<String> {
        let mut out = String::new();
        write_field_value(self, path, &mut out)?;
        Some(out)
    }
}

/// FNV-1a accumulator behind `fmt::Write`: fingerprinting streams field
/// values straight out of the formatter into the hash, with an explicit
/// [`Self::separator`] between byte strings so the stream hashes
/// byte-identically to the historical buffered form (every string was
/// followed by one `0x00` terminator).
struct FnvWriter {
    hash: u64,
}

impl FnvWriter {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0100_0000_01b3;

    fn new() -> Self {
        Self {
            hash: Self::OFFSET_BASIS,
        }
    }

    fn step(&mut self, byte: u8) {
        self.hash ^= u64::from(byte);
        self.hash = self.hash.wrapping_mul(Self::PRIME);
    }

    /// The `0x00` terminator hashed after every byte string, keeping
    /// `("ab", "c")` distinct from `("a", "bc")`.
    fn separator(&mut self) {
        self.step(0);
    }
}

impl fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        for &b in s.as_bytes() {
            self.step(b);
        }
        Ok(())
    }
}

/// Hashes the pre-expanded canonical `fields` of `source`.
fn fingerprint_fields<S: FieldSource>(source: &S, fields: &[&'static str]) -> u64 {
    let mut writer = FnvWriter::new();
    for field in fields {
        writer
            .write_str(field)
            .expect("the FNV writer is infallible");
        writer.separator();
        write_field_value(source, field, &mut writer).expect("expand yields canonical fields");
        writer.separator();
    }
    writer.hash
}

/// Hashes only the scenario fields covered by `deps` (canonical path and
/// value text, FNV-1a). Two scenarios that agree on every declared field
/// fingerprint identically — the property the sweep cache keys on. Empty
/// `deps` hash identically for *every* scenario: a scenario-independent
/// experiment runs once per sweep. Generic over [`FieldSource`], so both
/// owned scenarios and copy-on-write overlays fingerprint without cloning.
#[must_use]
pub fn dependency_fingerprint<S: FieldSource>(source: &S, deps: &[ScenarioPath]) -> u64 {
    fingerprint_fields(source, &expand(deps))
}

/// Groups scenario indices by [`dependency_fingerprint`], preserving
/// first-occurrence order: each inner vec's first element is the
/// representative (the point that actually runs), the rest are cache reuses.
/// The dependency expansion is hoisted out of the per-scenario loop, so a
/// full-suite sweep pays for it once per experiment, not once per point.
#[must_use]
pub fn dedup_groups<S: FieldSource>(sources: &[&S], deps: &[ScenarioPath]) -> Vec<Vec<usize>> {
    let fields = expand(deps);
    let mut order: Vec<u64> = Vec::new();
    let mut groups: Vec<Vec<usize>> = Vec::new();
    for (index, source) in sources.iter().enumerate() {
        let fp = fingerprint_fields(*source, &fields);
        match order.iter().position(|&seen| seen == fp) {
            Some(at) => groups[at].push(index),
            None => {
                order.push(fp);
                groups.push(vec![index]);
            }
        }
    }
    groups
}

/// Records which canonical scenario fields an experiment read, via the
/// typed accessors of a tracking [`RunContext`](crate::RunContext).
/// Thread-safe so a tracked context can cross a scoped-thread boundary.
#[derive(Debug, Default)]
pub struct ReadTracker {
    reads: Mutex<BTreeSet<&'static str>>,
}

impl ReadTracker {
    /// A tracker with no recorded reads.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one canonical field read.
    pub fn record(&self, field: &'static str) {
        self.reads
            .lock()
            .expect("no panics under lock")
            .insert(field);
    }

    /// The recorded reads, sorted.
    #[must_use]
    pub fn reads(&self) -> Vec<&'static str> {
        self.reads
            .lock()
            .expect("no panics under lock")
            .iter()
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wildcards_match_sections_and_leaves_match_exactly() {
        let fleet = ScenarioPath::of("fleet.*");
        assert!(fleet.matches("fleet.growth"));
        assert!(fleet.matches("fleet.renewable_ramp"));
        assert!(!fleet.matches("fab.node_nm"));
        assert!(!fleet.matches("fleet"));
        let node = ScenarioPath::of("fab.node_nm");
        assert!(node.matches("fab.node_nm"));
        assert!(!node.matches("fab.yield_factor"));
        assert_eq!(node.to_string(), "fab.node_nm");
    }

    #[test]
    fn expansion_covers_sections_and_skips_labels() {
        assert_eq!(
            expand(&[ScenarioPath::of("grid.*")]),
            ["grid.intensity", "grid.renewable_fraction", "grid.regions"],
            "grid.source is a label, not a semantic field"
        );
        assert_eq!(expand(&[ScenarioPath::of("fleet.*")]).len(), 13);
        assert_eq!(expand(&[]), Vec::<&str>::new());
        // Expansion follows FIELDS order regardless of declaration order.
        assert_eq!(
            expand(&[ScenarioPath::of("mc.*"), ScenarioPath::of("device.*")]),
            [
                "device.lifetime",
                "device.soc_budget_share",
                "mc.seed",
                "mc.samples"
            ]
        );
    }

    #[test]
    fn distribution_eligibility_covers_exactly_the_semantic_floats() {
        let eligible: Vec<&str> = FIELDS
            .iter()
            .filter(|f| f.distribution_eligible())
            .map(|f| f.path)
            .collect();
        assert_eq!(
            eligible,
            [
                "grid.intensity",
                "grid.renewable_fraction",
                "device.lifetime",
                "device.soc_budget_share",
                "fab.node_nm",
                "fab.yield_factor",
                "fab.renewable_share",
                "fleet.scale",
                "fleet.deferrable",
                "fleet.growth",
                "fleet.pue",
                "fleet.construction_kt",
                "fleet.building_amortization_years",
            ]
        );
    }

    #[test]
    fn every_semantic_field_has_a_value_and_unknown_paths_do_not() {
        let s = Scenario::paper_defaults();
        for field in FIELDS {
            assert!(
                s.field_value(field.path).is_some(),
                "missing value for {}",
                field.path
            );
        }
        assert_eq!(s.field_value("grid.intensity").unwrap(), "380.0");
        assert_eq!(s.field_value("fleet.initial_servers").unwrap(), "60000");
        assert_eq!(
            s.field_value("fleet.renewable_ramp").unwrap(),
            "0.05,0.1,0.2,0.35,0.6,0.85,1.0"
        );
        assert!(s.field_value("grid.nope").is_none());
    }

    #[test]
    fn mix_and_sku_participate_in_fleet_fingerprints() {
        let deps = [ScenarioPath::of("fleet.*")];
        let base = Scenario::paper_defaults();
        let mut storage = base.clone();
        storage.set("fleet.sku", "storage").unwrap();
        assert_ne!(
            dependency_fingerprint(&base, &deps),
            dependency_fingerprint(&storage, &deps)
        );
        let mut mixed = base.clone();
        mixed.set("fleet.mix", "web:0.7,ai-training:0.3").unwrap();
        assert_ne!(
            dependency_fingerprint(&base, &deps),
            dependency_fingerprint(&mixed, &deps)
        );
        assert_eq!(
            mixed.field_value("fleet.mix").unwrap(),
            "web:0.7,ai-training:0.3"
        );
    }

    #[test]
    fn regions_and_sites_participate_in_fingerprints() {
        let base = Scenario::paper_defaults();
        let mut placed = base.clone();
        placed.set("fleet.sites[pnw].weight", "0.3").unwrap();
        assert_ne!(
            dependency_fingerprint(&base, &[ScenarioPath::of("fleet.sites")]),
            dependency_fingerprint(&placed, &[ScenarioPath::of("fleet.sites")])
        );
        assert_eq!(
            placed.field_value("fleet.sites").unwrap(),
            "main@default:0.7,pnw@pnw:0.3"
        );
        let mut traced = base.clone();
        traced.set("grid.region.pnw.trace", "flat(24)").unwrap();
        assert_ne!(
            dependency_fingerprint(&base, &[ScenarioPath::of("grid.regions")]),
            dependency_fingerprint(&traced, &[ScenarioPath::of("grid.regions")])
        );
        let value = traced.field_value("grid.regions").unwrap();
        assert!(value.starts_with("pnw:24.0,"), "{value}");
    }

    #[test]
    fn fingerprint_ignores_undeclared_fields() {
        let deps = [ScenarioPath::of("fab.node_nm")];
        let base = Scenario::paper_defaults();
        let mut other_axis = base.clone();
        other_axis.set("fleet.growth", "1.9").unwrap();
        other_axis.set("name", "elsewhere").unwrap();
        // Points that differ only in ignored fields fingerprint identically.
        assert_eq!(
            dependency_fingerprint(&base, &deps),
            dependency_fingerprint(&other_axis, &deps)
        );
        // A declared field moving changes the fingerprint.
        let mut moved = base.clone();
        moved.set("fab.node_nm", "7").unwrap();
        assert_ne!(
            dependency_fingerprint(&base, &deps),
            dependency_fingerprint(&moved, &deps)
        );
    }

    #[test]
    fn empty_deps_fingerprint_is_scenario_invariant() {
        let base = Scenario::paper_defaults();
        let mut wild = base.clone();
        for (k, v) in [
            ("grid.intensity", "11"),
            ("device.lifetime", "9"),
            ("fleet.growth", "1.01"),
            ("mc.seed", "999"),
        ] {
            wild.set(k, v).unwrap();
        }
        assert_eq!(
            dependency_fingerprint(&base, &[]),
            dependency_fingerprint(&wild, &[])
        );
    }

    #[test]
    fn fingerprints_do_not_collide_across_field_boundaries() {
        // The separator byte keeps ("fab.node_nm", "7") distinct from any
        // concatenation ambiguity with neighboring fields.
        let deps = [ScenarioPath::of("device.*")];
        let mut a = Scenario::paper_defaults();
        a.set("device.lifetime", "3.5").unwrap();
        let mut b = Scenario::paper_defaults();
        b.set("device.soc_budget_share", "0.35").unwrap();
        assert_ne!(
            dependency_fingerprint(&a, &deps),
            dependency_fingerprint(&b, &deps)
        );
    }

    #[test]
    fn dedup_groups_share_points_across_ignored_axes() {
        let base = Scenario::paper_defaults();
        let mut g15 = base.clone();
        g15.set("fleet.growth", "1.5").unwrap();
        let mut g15_other_name = g15.clone();
        g15_other_name.set("name", "b").unwrap();
        let scenarios = [&base, &g15, &g15_other_name];

        // Independent of the swept axis: one group of three.
        assert_eq!(dedup_groups(&scenarios, &[]), [vec![0, 1, 2]]);
        // Dependent on it: base alone, the two growth-1.5 points shared.
        assert_eq!(
            dedup_groups(&scenarios, &[ScenarioPath::of("fleet.*")]),
            [vec![0], vec![1, 2]]
        );
    }

    #[test]
    fn tracker_records_deduplicated_sorted_reads() {
        let t = ReadTracker::new();
        t.record("mc.seed");
        t.record("grid.intensity");
        t.record("mc.seed");
        assert_eq!(t.reads(), ["grid.intensity", "mc.seed"]);
    }
}
