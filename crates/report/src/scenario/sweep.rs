//! Scenario sweeps: matrix expansion and cross-scenario comparison.
//!
//! The paper's central observation is that carbon conclusions *flip* as the
//! scenario moves — a break-even that amortizes on the US grid never does on
//! wind. One scenario per invocation cannot show that; a sweep can. This
//! module turns `--sweep grid.intensity=10..800/100` strings into
//! [`SweepSpec`]s, expands the cartesian product of several specs over a base
//! [`Scenario`] into a lazily-generated [`ScenarioMatrix`] of labeled
//! [`ScenarioPoint`]s, and diffs one summary scalar across the points into a
//! [`Comparison`] artifact (table + JSON).

use super::{Scenario, ScenarioError, ScenarioOverlay};
use crate::experiment::ScalarThreshold;
use crate::json::JsonValue;
use crate::table::Table;
use cc_analysis::{crossover, stats};
use cc_data::energy_sources::EnergySource;
use std::sync::Arc;

/// One swept dimension: a dotted scenario path plus the values it takes.
///
/// Parsed from the `--sweep` grammar:
///
/// * range — `grid.intensity=10..800/100` (inclusive start, stepping until
///   the end; `/step` optional, defaulting to a quarter of the span, i.e.
///   five evenly spaced points),
/// * explicit list — `device.lifetime=2,3,4`, values parsed as the field's
///   type (so `grid.source=wind,coal` works),
/// * named source list — `grid.source=@sources` (all eight Table II
///   energy-source names) or `grid.intensity=@sources` (their intensities).
///
/// ```
/// use cc_report::SweepSpec;
///
/// let spec = SweepSpec::parse("grid.intensity=10..800/100").unwrap();
/// assert_eq!(spec.path, "grid.intensity");
/// assert_eq!(spec.values.len(), 8); // 10, 110, …, 710
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepSpec {
    /// The dotted scenario path being swept (`grid.intensity`).
    pub path: String,
    /// The values the path takes, as strings [`Scenario::set`] accepts.
    pub values: Vec<String>,
}

impl SweepSpec {
    /// Parses a `path=values` sweep specification and pre-validates every
    /// value against the paper-default scenario, so a typo'd path or a value
    /// of the wrong type fails here with a precise message rather than deep
    /// inside a run.
    ///
    /// # Errors
    ///
    /// [`SweepError`] describing exactly which part of the spec is malformed.
    pub fn parse(text: &str) -> Result<Self, SweepError> {
        let malformed = |message: String| SweepError::Malformed {
            spec: text.to_string(),
            message,
        };
        let Some((path, values_text)) = text.split_once('=') else {
            return Err(malformed(
                "expected `path=values`, e.g. `grid.intensity=10..800/100`".to_string(),
            ));
        };
        let path = path.trim().to_string();
        let values_text = values_text.trim();
        if path.is_empty() {
            return Err(malformed("empty scenario path".to_string()));
        }
        if values_text.is_empty() {
            return Err(malformed("no values given".to_string()));
        }

        let values = if let Some(range) = values_text.find("..").map(|dots| {
            let (start, rest) = values_text.split_at(dots);
            (start, &rest[2..])
        }) {
            let (start_text, rest) = range;
            let (end_text, step_text) = match rest.split_once('/') {
                Some((end, step)) => (end, Some(step)),
                None => (rest, None),
            };
            let parse_num = |what: &str, s: &str| -> Result<f64, SweepError> {
                s.trim()
                    .parse::<f64>()
                    .ok()
                    .filter(|v| v.is_finite())
                    .ok_or_else(|| {
                        malformed(format!("{what} `{}` is not a finite number", s.trim()))
                    })
            };
            let start = parse_num("range start", start_text)?;
            let end = parse_num("range end", end_text)?;
            if end < start {
                return Err(malformed(format!("range end {end} is below start {start}")));
            }
            let step = match step_text {
                Some(s) => {
                    let step = parse_num("range step", s)?;
                    if step <= 0.0 {
                        return Err(malformed(format!("range step {step} must be positive")));
                    }
                    step
                }
                // No explicit step: five evenly spaced points (or a single
                // point for a degenerate start..start range).
                None if end > start => (end - start) / 4.0,
                None => 1.0,
            };
            let span = (end - start).max(1.0);
            let mut values = Vec::new();
            let mut i = 0u32;
            loop {
                let x = step.mul_add(f64::from(i), start);
                if x > end + 1e-9 * span {
                    break;
                }
                values.push(format_value(x));
                if values.len() > 10_000 {
                    return Err(malformed(
                        "range expands to more than 10000 points".to_string(),
                    ));
                }
                i += 1;
            }
            values
        } else if let Some(name) = values_text.strip_prefix('@') {
            match name {
                "sources" | "table2" => {
                    if path == "grid.source" {
                        EnergySource::ALL
                            .into_iter()
                            .map(|s| s.name().to_lowercase())
                            .collect()
                    } else if path.starts_with("grid.intensity") {
                        EnergySource::ALL
                            .into_iter()
                            .map(|s| format_value(s.carbon_intensity().as_g_per_kwh()))
                            .collect()
                    } else {
                        return Err(malformed(format!(
                            "named list `@{name}` only applies to grid.source or grid.intensity"
                        )));
                    }
                }
                other => {
                    return Err(malformed(format!(
                        "unknown named list `@{other}` (known: @sources)"
                    )))
                }
            }
        } else {
            let values: Vec<String> = values_text
                .split(',')
                .map(|v| v.trim().to_string())
                .collect();
            if values.iter().any(String::is_empty) {
                return Err(malformed("list has an empty element".to_string()));
            }
            values
        };

        // Every value must apply cleanly to a scenario — this is where an
        // unknown path or a wrongly-typed value is reported.
        let mut probe = Scenario::paper_defaults();
        for value in &values {
            probe.set(&path, value).map_err(SweepError::Scenario)?;
            probe.validate().map_err(SweepError::Scenario)?;
        }
        Ok(Self { path, values })
    }
}

impl core::fmt::Display for SweepSpec {
    /// Canonical round-trippable text: the explicit-list form
    /// `path=v1,v2,…`. Range and named (`@sources`) specs display as the
    /// list they expanded to, so for any successfully parsed spec
    /// `SweepSpec::parse(&spec.to_string())` reproduces `spec` exactly —
    /// parsed values are trimmed, non-empty, and can contain neither `,`
    /// nor `..`, and a parsed first value never starts with `@`.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}={}", self.path, self.values.join(","))
    }
}

/// Formats a range point compactly (`710`, not `710.0000000000`), absorbing
/// accumulated floating-point noise like `0.30000000000000004`. Also the
/// canonical text for Monte-Carlo draws (`super::mc`), so sampled
/// assignments fingerprint and round-trip exactly like swept ones.
pub(crate) fn format_value(v: f64) -> String {
    let s = format!("{v:.10}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() || s == "-" {
        "0".to_string()
    } else {
        s.to_string()
    }
}

/// One point of an expanded matrix: a copy-on-write overlay over the shared
/// base scenario plus the assignments that produced it. The overlay carries
/// only the swept sections as a delta, so expanding a 10k-point matrix
/// allocates 10k small deltas, not 10k full scenario clones.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioPoint {
    /// Position in matrix expansion order (first spec slowest).
    pub index: usize,
    /// `key=value` assignments joined with `,` — the point's display label.
    /// Empty for the single point of a sweep-less matrix.
    pub label: String,
    /// The `(path, value)` assignments applied on top of the base scenario.
    pub assignments: Vec<(String, String)>,
    /// The applied scenario as a delta over the shared base (name suffixed
    /// with the label).
    pub overlay: ScenarioOverlay,
}

impl ScenarioPoint {
    /// The point's label, falling back to the scenario name when no sweep is
    /// active.
    #[must_use]
    pub fn display_label(&self) -> &str {
        if self.label.is_empty() {
            self.overlay.name()
        } else {
            &self.label
        }
    }

    /// The point as a JSON object (`index`, `label`, `assignments`).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("index", JsonValue::Integer(self.index as u64)),
            ("label", JsonValue::from(self.display_label())),
            (
                "assignments",
                JsonValue::object(
                    self.assignments
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::from(v.as_str()))),
                ),
            ),
        ])
    }
}

/// The cartesian product of sweep specs over a base scenario, expanded
/// lazily: points are materialized one at a time by [`Self::points`], so a
/// large grid costs memory proportional to one scenario, not the whole
/// product.
#[derive(Debug, Clone)]
pub struct ScenarioMatrix {
    base: Arc<Scenario>,
    specs: Vec<SweepSpec>,
}

impl ScenarioMatrix {
    /// The largest grid a matrix will expand: per-spec caps multiply, so the
    /// product — not the individual spec — is what needs bounding before a
    /// runner allocates per-point state (contexts, per-job scalar slots).
    pub const MAX_POINTS: usize = 10_000;

    /// Builds a matrix, probing every assignment against the base so that an
    /// invalid combination of base and sweep value is rejected up front.
    ///
    /// # Errors
    ///
    /// [`SweepError`] when any spec value fails to apply to (or validate
    /// against) the base scenario, when two specs sweep the same path (the
    /// later one would silently win at every point), or when the grid
    /// exceeds [`Self::MAX_POINTS`].
    pub fn new(base: Scenario, specs: Vec<SweepSpec>) -> Result<Self, SweepError> {
        let base = Arc::new(base);
        let mut points = 1usize;
        for (i, spec) in specs.iter().enumerate() {
            if spec.values.is_empty() {
                return Err(SweepError::Malformed {
                    spec: spec.path.clone(),
                    message: "spec has no values".to_string(),
                });
            }
            if specs[..i].iter().any(|prior| prior.path == spec.path) {
                return Err(SweepError::DuplicatePath(spec.path.clone()));
            }
            points = points
                .checked_mul(spec.values.len())
                .filter(|&n| n <= Self::MAX_POINTS)
                .ok_or(SweepError::TooLarge {
                    max: Self::MAX_POINTS,
                })?;
            for value in &spec.values {
                // Probing through an overlay clones only the touched
                // section, not the whole base scenario.
                let mut probe = ScenarioOverlay::new(Arc::clone(&base));
                probe.set(&spec.path, value).map_err(SweepError::Scenario)?;
                probe.validate().map_err(SweepError::Scenario)?;
            }
        }
        Ok(Self { base, specs })
    }

    /// The base scenario every point starts from.
    #[must_use]
    pub fn base(&self) -> &Scenario {
        self.base.as_ref()
    }

    /// The sweep specs, in nesting order (first varies slowest).
    #[must_use]
    pub fn specs(&self) -> &[SweepSpec] {
        &self.specs
    }

    /// Number of grid points (1 for a sweep-less matrix).
    #[must_use]
    pub fn len(&self) -> usize {
        self.specs.iter().map(|s| s.values.len()).product()
    }

    /// A matrix always has at least one point, so this is always `false`;
    /// provided for `len`/`is_empty` symmetry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether more than one point exists (i.e. a sweep is actually active).
    #[must_use]
    pub fn is_sweep(&self) -> bool {
        self.len() > 1
    }

    /// Lazily iterates the grid points in row-major order: the *last* spec
    /// varies fastest, so `--sweep a=1,2 --sweep b=x,y` yields
    /// `a=1,b=x`, `a=1,b=y`, `a=2,b=x`, `a=2,b=y`.
    pub fn points(&self) -> impl Iterator<Item = ScenarioPoint> + '_ {
        (0..self.len()).map(|index| self.point(index))
    }

    /// Materializes the grid point at `index` (expansion order).
    ///
    /// # Panics
    ///
    /// Panics when `index >= len()`. Assignments cannot fail: every value was
    /// validated against the base in [`Self::new`].
    #[must_use]
    pub fn point(&self, index: usize) -> ScenarioPoint {
        assert!(index < self.len(), "point {index} out of range");
        let mut overlay = ScenarioOverlay::new(Arc::clone(&self.base));
        let mut assignments = Vec::with_capacity(self.specs.len());
        let mut label = String::new();
        // Row-major decode without a digits buffer: the first spec has the
        // largest stride (varies slowest), the last a stride of 1.
        let mut stride = self.len();
        for spec in &self.specs {
            stride /= spec.values.len();
            let value = &spec.values[(index / stride) % spec.values.len()];
            overlay
                .set(&spec.path, value)
                .expect("matrix assignments were validated at construction");
            if !label.is_empty() {
                label.push(',');
            }
            label.push_str(&spec.path);
            label.push('=');
            label.push_str(value);
            assignments.push((spec.path.clone(), value.clone()));
        }
        if !label.is_empty() {
            overlay.set_name(format!("{}[{label}]", self.base.name));
        }
        ScenarioPoint {
            index,
            label,
            assignments,
            overlay,
        }
    }
}

/// One row of a [`Comparison`]: a grid point's label and the metric value it
/// produced (`None` when the experiment attached no summary scalar there).
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonRow {
    /// The point's display label.
    pub label: String,
    /// The point's numeric position along the swept axis, when the sweep
    /// has a single numeric dimension (enables crossover analysis).
    pub x: Option<f64>,
    /// The metric value at that point, if any.
    pub value: Option<f64>,
}

/// A located threshold crossing: the swept-axis position where a
/// comparison's metric crosses its threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct Crossing {
    /// Position along the swept axis.
    pub at: f64,
    /// The human-readable sentence sweep reports print (e.g.
    /// `fig10: breakeven-days crosses 365 (one-year amortization) at
    /// grid.intensity ≈ 352`).
    pub line: String,
}

/// A cross-scenario diff of one metric over the points of a sweep: the
/// artifact that answers "where does the conclusion flip?" without opening
/// every per-point artifact.
///
/// The first point carrying a value is the baseline; every row reports its
/// delta and ratio against it, and [`Self::summary`] digests the spread.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// The experiment key the metric comes from (`fig10`).
    pub experiment: String,
    /// The metric (summary-scalar) name being diffed.
    pub metric: String,
    /// The metric's unit label.
    pub unit: String,
    /// The swept dotted path, when the sweep has exactly one numeric
    /// dimension (the x-axis of crossover analysis).
    pub axis: Option<String>,
    /// The metric's decision threshold, when the experiment declared one on
    /// its summary scalar.
    pub threshold: Option<ScalarThreshold>,
    /// One row per grid point, in expansion order.
    pub rows: Vec<ComparisonRow>,
}

impl Comparison {
    /// An empty comparison for `experiment`'s `metric`.
    #[must_use]
    pub fn new(
        experiment: impl Into<String>,
        metric: impl Into<String>,
        unit: impl Into<String>,
    ) -> Self {
        Self {
            experiment: experiment.into(),
            metric: metric.into(),
            unit: unit.into(),
            axis: None,
            threshold: None,
            rows: Vec::new(),
        }
    }

    /// Declares the swept axis (a dotted scenario path) enabling crossover
    /// analysis over rows pushed with [`Self::push_at`].
    #[must_use]
    pub fn with_axis(mut self, axis: impl Into<String>) -> Self {
        self.axis = Some(axis.into());
        self
    }

    /// Declares the metric's decision threshold.
    #[must_use]
    pub fn with_threshold(mut self, threshold: ScalarThreshold) -> Self {
        self.threshold = Some(threshold);
        self
    }

    /// Appends one grid point's value.
    pub fn push(&mut self, label: impl Into<String>, value: Option<f64>) -> &mut Self {
        self.rows.push(ComparisonRow {
            label: label.into(),
            x: None,
            value,
        });
        self
    }

    /// Appends one grid point's value at a numeric position along the swept
    /// axis (the form crossover analysis consumes).
    pub fn push_at(&mut self, label: impl Into<String>, x: f64, value: Option<f64>) -> &mut Self {
        self.rows.push(ComparisonRow {
            label: label.into(),
            x: Some(x),
            value,
        });
        self
    }

    /// Where the metric crosses its declared threshold along the swept
    /// axis, via [`cc_analysis::crossover`] over the piecewise-linear
    /// interpolation of the rows. Empty without an axis, a threshold, or a
    /// bracketing pair of adjacent points.
    #[must_use]
    pub fn crossings(&self) -> Vec<Crossing> {
        let (Some(axis), Some(threshold)) = (&self.axis, &self.threshold) else {
            return Vec::new();
        };
        let mut points: Vec<(f64, f64)> = self
            .rows
            .iter()
            .filter_map(|r| Some((r.x?, r.value?)))
            .collect();
        points.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(core::cmp::Ordering::Equal));
        crossover::piecewise_crossings(&points, threshold.value)
            .into_iter()
            .map(|at| Crossing {
                at,
                line: format!(
                    "{}: {} crosses {} {} ({}) at {} ≈ {}",
                    self.experiment,
                    self.metric,
                    display_value(threshold.value),
                    self.unit,
                    threshold.label,
                    axis,
                    display_value(at),
                ),
            })
            .collect()
    }

    /// The baseline: the first row carrying a value.
    #[must_use]
    pub fn baseline(&self) -> Option<f64> {
        self.rows.iter().find_map(|r| r.value)
    }

    /// Summary statistics over the rows that carry values.
    #[must_use]
    pub fn summary(&self) -> Option<stats::Summary> {
        let values: Vec<f64> = self.rows.iter().filter_map(|r| r.value).collect();
        stats::summarize(&values)
    }

    /// The comparison as a table: point, value, delta and ratio vs baseline.
    #[must_use]
    pub fn to_table(&self) -> Table {
        let mut t = Table::new([
            "Point".to_string(),
            format!("{} ({})", self.metric, self.unit),
            "Delta vs first".to_string(),
            "Ratio".to_string(),
        ]);
        let baseline = self.baseline();
        for row in &self.rows {
            let (value, delta, ratio) = match (row.value, baseline) {
                (Some(v), Some(b)) => {
                    let ratio = safe_ratio(v, b);
                    (
                        display_value(v),
                        display_signed(v - b),
                        if ratio.is_finite() {
                            format!("{}x", display_value(ratio))
                        } else {
                            "-".to_string()
                        },
                    )
                }
                (Some(v), None) => (display_value(v), "-".to_string(), "-".to_string()),
                (None, _) => ("n/a".to_string(), "-".to_string(), "-".to_string()),
            };
            t.row([row.label.clone(), value, delta, ratio]);
        }
        t
    }

    /// The comparison as a JSON object, including per-row deltas/ratios and
    /// the summary digest.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let baseline = self.baseline();
        JsonValue::object([
            ("experiment", JsonValue::from(self.experiment.as_str())),
            ("metric", JsonValue::from(self.metric.as_str())),
            ("unit", JsonValue::from(self.unit.as_str())),
            (
                "axis",
                self.axis
                    .as_deref()
                    .map_or(JsonValue::Null, JsonValue::from),
            ),
            (
                "threshold",
                self.threshold
                    .as_ref()
                    .map_or(JsonValue::Null, ScalarThreshold::to_json),
            ),
            (
                "crossings",
                JsonValue::array(self.crossings().into_iter().map(|c| {
                    JsonValue::object([
                        ("at", JsonValue::from(c.at)),
                        ("line", JsonValue::from(c.line.as_str())),
                    ])
                })),
            ),
            (
                "baseline",
                baseline.map_or(JsonValue::Null, JsonValue::from),
            ),
            (
                "rows",
                JsonValue::array(self.rows.iter().map(|row| {
                    JsonValue::object([
                        ("label", JsonValue::from(row.label.as_str())),
                        ("x", row.x.map_or(JsonValue::Null, JsonValue::from)),
                        ("value", row.value.map_or(JsonValue::Null, JsonValue::from)),
                        (
                            "delta",
                            match (row.value, baseline) {
                                (Some(v), Some(b)) => JsonValue::from(v - b),
                                _ => JsonValue::Null,
                            },
                        ),
                        (
                            "ratio",
                            match (row.value, baseline) {
                                (Some(v), Some(b)) => JsonValue::from(safe_ratio(v, b)),
                                _ => JsonValue::Null,
                            },
                        ),
                    ])
                })),
            ),
            (
                "stats",
                self.summary().map_or(JsonValue::Null, |s| {
                    JsonValue::object([
                        ("n", JsonValue::Integer(s.n as u64)),
                        ("mean", JsonValue::from(s.mean)),
                        ("stddev", JsonValue::from(s.stddev)),
                        ("min", JsonValue::from(s.min)),
                        ("max", JsonValue::from(s.max)),
                        (
                            "spread_ratio",
                            s.spread_ratio().map_or(JsonValue::Null, JsonValue::from),
                        ),
                    ])
                }),
            ),
        ])
    }
}

/// `v / b`, with a zero baseline mapping to NaN (rendered as `null`/`-`).
fn safe_ratio(v: f64, b: f64) -> f64 {
    if b == 0.0 {
        f64::NAN
    } else {
        v / b
    }
}

/// Human-facing table cell: at most 4 decimals, trailing zeros trimmed (the
/// JSON artifact keeps full precision). Shared with the Monte-Carlo banded
/// headlines (`super::mc`).
pub(crate) fn display_value(v: f64) -> String {
    let s = format!("{v:.4}");
    let s = s.trim_end_matches('0').trim_end_matches('.');
    if s.is_empty() || s == "-" {
        "0".to_string()
    } else {
        s.to_string()
    }
}

/// [`display_value`] with an explicit sign, for delta cells.
fn display_signed(v: f64) -> String {
    if v.is_sign_negative() && v != 0.0 {
        display_value(v)
    } else {
        format!("+{}", display_value(v))
    }
}

/// Errors from sweep-spec parsing and matrix construction.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepError {
    /// The spec text itself is malformed.
    Malformed {
        /// The offending spec, verbatim.
        spec: String,
        /// What is wrong with it.
        message: String,
    },
    /// A value failed to apply to the scenario (unknown path, wrong type,
    /// out of physical range).
    Scenario(ScenarioError),
    /// Two specs sweep the same dotted path.
    DuplicatePath(String),
    /// The cartesian product exceeds [`ScenarioMatrix::MAX_POINTS`].
    TooLarge {
        /// The grid-size cap that was exceeded.
        max: usize,
    },
}

impl core::fmt::Display for SweepError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Malformed { spec, message } => {
                write!(f, "invalid sweep `{spec}`: {message}")
            }
            Self::Scenario(e) => write!(f, "invalid sweep: {e}"),
            Self::DuplicatePath(path) => {
                write!(f, "invalid sweep: `{path}` is swept more than once")
            }
            Self::TooLarge { max } => {
                write!(f, "invalid sweep: grid exceeds {max} points")
            }
        }
    }
}

impl std::error::Error for SweepError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_form_expands_inclusively() {
        let spec = SweepSpec::parse("grid.intensity=10..800/100").unwrap();
        assert_eq!(spec.path, "grid.intensity");
        assert_eq!(
            spec.values,
            ["10", "110", "210", "310", "410", "510", "610", "710"]
        );
        // An end that lands exactly on a step is included.
        let spec = SweepSpec::parse("grid.intensity=100..400/100").unwrap();
        assert_eq!(spec.values, ["100", "200", "300", "400"]);
        // Fractional steps don't accumulate float noise in labels.
        let spec = SweepSpec::parse("fab.renewable_share=0..0.4/0.1").unwrap();
        assert_eq!(spec.values, ["0", "0.1", "0.2", "0.3", "0.4"]);
    }

    #[test]
    fn stepless_range_yields_five_points() {
        let spec = SweepSpec::parse("device.lifetime=1..5").unwrap();
        assert_eq!(spec.values, ["1", "2", "3", "4", "5"]);
        let degenerate = SweepSpec::parse("device.lifetime=3..3").unwrap();
        assert_eq!(degenerate.values, ["3"]);
    }

    #[test]
    fn list_and_named_source_forms() {
        let spec = SweepSpec::parse("grid.intensity=50, 380 ,700").unwrap();
        assert_eq!(spec.values, ["50", "380", "700"]);
        let sources = SweepSpec::parse("grid.source=@sources").unwrap();
        assert_eq!(sources.values.len(), 8);
        assert!(sources.values.contains(&"wind".to_string()));
        assert!(sources.values.contains(&"coal".to_string()));
        let intensities = SweepSpec::parse("grid.intensity=@sources").unwrap();
        assert!(intensities.values.contains(&"820".to_string()));
        assert!(intensities.values.contains(&"11".to_string()));
        // Single-value "list" is a one-point sweep.
        let single = SweepSpec::parse("fleet.scale=2").unwrap();
        assert_eq!(single.values, ["2"]);
    }

    #[test]
    fn invalid_specs_fail_with_clear_messages() {
        let err = |text: &str| SweepSpec::parse(text).unwrap_err().to_string();
        assert!(err("grid.intensity").contains("path=values"));
        assert!(err("grid.intensity=").contains("no values"));
        assert!(err("=1,2").contains("empty scenario path"));
        assert!(err("grid.intensity=800..10/100").contains("below start"));
        assert!(err("grid.intensity=10..800/0").contains("must be positive"));
        assert!(err("grid.intensity=10..xyz").contains("not a finite number"));
        assert!(err("grid.intensity=1,,3").contains("empty element"));
        assert!(err("grid.nope=1,2").contains("unknown scenario key"));
        assert!(err("grid.intensity=dirty,clean").contains("invalid value"));
        assert!(err("device.lifetime=@sources").contains("only applies"));
        assert!(err("grid.source=@nope").contains("known: @sources"));
        // Values out of physical range are caught at parse time too.
        assert!(err("grid.renewable_fraction=0.5,2").contains("renewable_fraction"));
        assert!(err("grid.source=wind,unobtainium").contains("unknown energy source"));
    }

    #[test]
    fn two_spec_matrix_expands_row_major_with_labels() {
        let specs = vec![
            SweepSpec::parse("grid.intensity=100,200").unwrap(),
            SweepSpec::parse("device.lifetime=3,4,5").unwrap(),
        ];
        let matrix = ScenarioMatrix::new(Scenario::paper_defaults(), specs).unwrap();
        assert_eq!(matrix.len(), 6);
        assert!(matrix.is_sweep());
        assert!(!matrix.is_empty());
        let points: Vec<ScenarioPoint> = matrix.points().collect();
        let labels: Vec<&str> = points.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(
            labels,
            [
                "grid.intensity=100,device.lifetime=3",
                "grid.intensity=100,device.lifetime=4",
                "grid.intensity=100,device.lifetime=5",
                "grid.intensity=200,device.lifetime=3",
                "grid.intensity=200,device.lifetime=4",
                "grid.intensity=200,device.lifetime=5",
            ]
        );
        assert_eq!(points[4].overlay.grid().intensity_g_per_kwh, 200.0);
        assert_eq!(points[4].overlay.device().lifetime_years, 4.0);
        assert_eq!(
            points[4].overlay.name(),
            "paper[grid.intensity=200,device.lifetime=4]"
        );
        assert_eq!(points[4].index, 4);
        for p in &points {
            p.overlay.validate().unwrap();
            // The delta carries only the touched sections; the rest resolve
            // to the shared base.
            assert_eq!(p.overlay.fleet(), &matrix.base().fleet);
        }
        // Materializing reproduces exactly what clone-then-set used to build.
        let mut by_hand = matrix.base().clone();
        by_hand.set("grid.intensity", "200").unwrap();
        by_hand.set("device.lifetime", "4").unwrap();
        by_hand.name = "paper[grid.intensity=200,device.lifetime=4]".to_string();
        assert_eq!(points[4].overlay.materialize(), by_hand);
    }

    #[test]
    fn sweepless_matrix_is_the_base_point() {
        let matrix = ScenarioMatrix::new(Scenario::paper_defaults(), Vec::new()).unwrap();
        assert_eq!(matrix.len(), 1);
        assert!(!matrix.is_sweep());
        let p = matrix.point(0);
        assert!(p.label.is_empty());
        assert_eq!(p.display_label(), "paper");
        assert!(p.overlay.is_pristine());
        assert_eq!(p.overlay.materialize(), Scenario::paper_defaults());
        assert!(p.to_json().render().contains(r#""label":"paper""#));
    }

    #[test]
    fn matrix_rejects_values_invalid_against_the_base() {
        // 0 parses as f64 but fails physical validation.
        let specs = vec![SweepSpec {
            path: "grid.intensity".to_string(),
            values: vec!["380".to_string(), "0".to_string()],
        }];
        let err = ScenarioMatrix::new(Scenario::paper_defaults(), specs).unwrap_err();
        assert!(err.to_string().contains("grid.intensity"));
        let empty = vec![SweepSpec {
            path: "grid.intensity".to_string(),
            values: Vec::new(),
        }];
        assert!(ScenarioMatrix::new(Scenario::paper_defaults(), empty).is_err());
    }

    #[test]
    fn matrix_rejects_duplicate_paths_and_oversized_grids() {
        let dup = vec![
            SweepSpec::parse("grid.intensity=50,380").unwrap(),
            SweepSpec::parse("grid.intensity=700,800").unwrap(),
        ];
        let err = ScenarioMatrix::new(Scenario::paper_defaults(), dup).unwrap_err();
        assert!(matches!(err, SweepError::DuplicatePath(_)));
        assert!(err.to_string().contains("more than once"));

        // 5000 x 5000 points overflows the grid cap long before any
        // per-point state is allocated.
        let huge = vec![
            SweepSpec::parse("grid.intensity=1..5000/1").unwrap(),
            SweepSpec::parse("device.lifetime=1..5000/1").unwrap(),
        ];
        let err = ScenarioMatrix::new(Scenario::paper_defaults(), huge).unwrap_err();
        assert!(matches!(err, SweepError::TooLarge { .. }));
        assert!(err
            .to_string()
            .contains(&ScenarioMatrix::MAX_POINTS.to_string()));
    }

    #[test]
    fn zero_baseline_renders_dash_ratios() {
        let mut c = Comparison::new("x", "m", "u");
        c.push("a", Some(0.0)).push("b", Some(5.0));
        let t = c.to_table();
        assert_eq!(t.rows()[1][3], "-", "NaN ratio must not leak into cells");
        assert!(c.to_json().render().contains(r#""ratio":null"#));
    }

    #[test]
    fn source_sweep_points_resolve_intensities() {
        let specs = vec![SweepSpec::parse("grid.source=wind,coal").unwrap()];
        let matrix = ScenarioMatrix::new(Scenario::paper_defaults(), specs).unwrap();
        let points: Vec<ScenarioPoint> = matrix.points().collect();
        assert_eq!(points[0].overlay.grid().intensity_g_per_kwh, 11.0);
        assert_eq!(points[1].overlay.grid().intensity_g_per_kwh, 820.0);
    }

    #[test]
    fn comparison_diffs_against_the_first_value() {
        let mut c = Comparison::new("fig10", "breakeven-days", "days");
        c.push("grid.intensity=380", Some(350.0))
            .push("grid.intensity=50", Some(2660.0))
            .push("grid.intensity=700", Some(190.0))
            .push("grid.intensity=0", None);
        assert_eq!(c.baseline(), Some(350.0));
        let t = c.to_table();
        assert_eq!(t.len(), 4);
        assert_eq!(t.rows()[1][2], "+2310");
        assert_eq!(t.rows()[1][3], "7.6x");
        assert_eq!(t.rows()[3][1], "n/a");
        let s = c.summary().unwrap();
        assert_eq!(s.n, 3);
        assert_eq!(s.min, 190.0);
        assert_eq!(s.max, 2660.0);
        let json = c.to_json().render();
        assert!(json.contains(r#""experiment":"fig10""#));
        assert!(json.contains(r#""baseline":350.0"#));
        assert!(json.contains(r#""spread_ratio":14.0"#));
        // The valueless row carries nulls, not omissions.
        assert!(json.contains(
            r#"{"label":"grid.intensity=0","x":null,"value":null,"delta":null,"ratio":null}"#
        ));
    }

    #[test]
    fn crossings_locate_the_threshold_on_the_swept_axis() {
        let mut c = Comparison::new("fig10", "breakeven-days", "days")
            .with_axis("grid.intensity")
            .with_threshold(ScalarThreshold {
                value: 365.0,
                label: "one-year amortization".to_string(),
            });
        // Break-even days fall as the grid gets dirtier.
        c.push_at("grid.intensity=100", 100.0, Some(1330.0))
            .push_at("grid.intensity=400", 400.0, Some(332.5))
            .push_at("grid.intensity=700", 700.0, Some(190.0));
        let crossings = c.crossings();
        assert_eq!(crossings.len(), 1);
        // Linear interpolation between (100, 1330) and (400, 332.5).
        let expect = 100.0 + 300.0 * (1330.0 - 365.0) / (1330.0 - 332.5);
        assert!((crossings[0].at - expect).abs() < 1e-6, "{crossings:?}");
        assert!(crossings[0]
            .line
            .contains("breakeven-days crosses 365 days"));
        assert!(crossings[0].line.contains("one-year amortization"));
        assert!(crossings[0].line.contains("grid.intensity ≈"));
        let json = c.to_json().render();
        assert!(json.contains(r#""axis":"grid.intensity""#));
        assert!(json.contains(r#""crossings":[{"at":"#));
        assert!(json.contains("crosses 365 days"));
    }

    #[test]
    fn crossings_require_axis_threshold_and_bracketing() {
        // No axis/threshold: no crossings, and JSON carries explicit nulls.
        let mut plain = Comparison::new("x", "m", "u");
        plain
            .push_at("a", 1.0, Some(0.0))
            .push_at("b", 2.0, Some(10.0));
        assert!(plain.crossings().is_empty());
        assert!(plain.to_json().render().contains(r#""crossings":[]"#));

        // Axis + threshold but the metric never brackets it.
        let mut flat = Comparison::new("x", "m", "u")
            .with_axis("fleet.growth")
            .with_threshold(ScalarThreshold {
                value: 100.0,
                label: "never".to_string(),
            });
        flat.push_at("a", 1.0, Some(1.0))
            .push_at("b", 2.0, Some(2.0));
        assert!(flat.crossings().is_empty());

        // Rows without numeric positions (label-only sweeps) are skipped.
        let mut labeled = Comparison::new("x", "m", "u")
            .with_axis("grid.source")
            .with_threshold(ScalarThreshold {
                value: 5.0,
                label: "t".to_string(),
            });
        labeled.push("wind", Some(0.0)).push("coal", Some(10.0));
        assert!(labeled.crossings().is_empty());
    }

    #[test]
    fn empty_comparison_is_well_formed() {
        let c = Comparison::new("fig10", "m", "u");
        assert_eq!(c.baseline(), None);
        assert_eq!(c.summary(), None);
        assert!(c.to_table().is_empty());
        assert!(c.to_json().render().contains(r#""stats":null"#));
    }

    #[test]
    fn format_value_is_compact() {
        assert_eq!(format_value(710.0), "710");
        assert_eq!(format_value(0.1 + 0.2), "0.3");
        assert_eq!(format_value(-2.5), "-2.5");
        assert_eq!(format_value(0.0), "0");
    }

    #[test]
    fn display_is_the_canonical_list_form() {
        // A list spec displays verbatim; ranges and named lists display as
        // their expansion, and both re-parse to the same spec.
        let list = SweepSpec::parse("device.lifetime= 2 , 3 ,4").unwrap();
        assert_eq!(list.to_string(), "device.lifetime=2,3,4");
        let range = SweepSpec::parse("grid.intensity=10..50/20").unwrap();
        assert_eq!(range.to_string(), "grid.intensity=10,30,50");
        for spec in [
            list,
            range,
            SweepSpec::parse("grid.source=@sources").unwrap(),
        ] {
            assert_eq!(SweepSpec::parse(&spec.to_string()).unwrap(), spec);
        }
    }
}
