//! Scenario parameters and the experiment run context.
//!
//! The paper's headline conclusion — computing's carbon footprint is shifting
//! from operational (opex) to embodied (capex) emissions — is a function of a
//! handful of scenario parameters: how dirty the operational grid is, how
//! long hardware lives, how the fab is powered, how large the fleet is. A
//! [`Scenario`] captures exactly those knobs; a [`RunContext`] carries one
//! scenario (plus typed accessors) into every [`crate::Experiment::run`]
//! call. [`Scenario::paper_defaults`] pins the values Gupta et al. used, so
//! the default context regenerates the paper verbatim while any other
//! scenario answers a "what if?".
//!
//! Scenarios round-trip through a small TOML subset (tables, `key = value`
//! pairs with number/string/bool values, `#` comments) so they can live in
//! version-controlled files, and every field is addressable by a dotted path
//! (`grid.intensity`) for one-off command-line overrides.

pub mod deps;
pub mod mc;
pub mod sweep;
pub mod trace;

use crate::json::JsonValue;
use cc_data::energy_sources::EnergySource;
use cc_units::{CarbonIntensity, TimeSpan};
use deps::ReadTracker;
use std::sync::{Arc, OnceLock};

/// Carbon intensity assumed for renewable power purchases when blending
/// `grid.renewable_fraction` into the effective operational intensity
/// (wind, Table II).
pub const RENEWABLE_PPA_G_PER_KWH: f64 = 11.0;

/// Server SKU names a fleet may be composed of (`fleet.sku` /
/// `fleet.mix`). These mirror the `cc_dcsim::ServerConfig` catalog — a
/// cross-crate test in `cc_core` keeps the two lists agreeing — so the
/// scenario layer can validate fleet compositions without depending on the
/// simulator crate.
pub const KNOWN_SKUS: [&str; 3] = ["web", "storage", "ai-training"];

/// Tolerance when checking that `fleet.mix` weights sum to 1.
pub const MIX_WEIGHT_TOLERANCE: f64 = 1e-6;

/// Operational-energy parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct GridParams {
    /// Grid carbon intensity in g CO₂e/kWh (paper baseline: the 380 g/kWh
    /// average US grid, Table III).
    pub intensity_g_per_kwh: f64,
    /// Optional energy-source label (`"wind"`, `"coal"`, …). Setting it via
    /// [`Scenario::set`] or the builder resolves it to an intensity from the
    /// Table II dataset ([`Scenario::resolve_energy_source`]); the models
    /// only read `intensity_g_per_kwh`.
    pub source: Option<String>,
    /// Fraction of operational energy covered by renewable purchases,
    /// blended at [`RENEWABLE_PPA_G_PER_KWH`].
    pub renewable_fraction: f64,
    /// Named grid regions with time-resolved intensity traces, used by the
    /// multi-site scheduler (`ext-scheduler`). Configured per region via
    /// `grid.region.<name>.trace = "<spec>"` — see [`trace::parse_trace_spec`]
    /// for the spec grammar — or wholesale via `grid.regions`
    /// (`"name:h0,…,h23;…"`). Regions named after a
    /// [`trace::BUILTIN_REGIONS`] entry need no configuration.
    pub regions: Vec<RegionParams>,
}

/// One named grid region: a time-resolved carbon-intensity trace.
///
/// The hours are stored **resolved** — whatever spec form the user wrote
/// (parametric generator, inline list, CSV file) is evaluated at set time,
/// so scenarios stay hermetic and fingerprint by value. See
/// `docs/GRID-TRACES.md`.
#[derive(Debug, Clone, PartialEq)]
pub struct RegionParams {
    /// Region name, referenced by [`SiteParams::region`].
    pub name: String,
    /// Exactly 24 hourly carbon intensities in g CO₂e/kWh (hour 0 =
    /// midnight local time).
    pub hours: Vec<f64>,
}

/// Device parameters for the amortization analyses.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceParams {
    /// Assumed device lifetime in years (paper: 3-year smartphone lifetime).
    pub lifetime_years: f64,
    /// Share of a device's production carbon attributed to its SoC (paper:
    /// one half, via Fig 5's integrated-circuit share).
    pub soc_budget_share: f64,
}

/// Fab parameters for the manufacturing-side experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct FabParams {
    /// Featured process node in nanometres (paper: the projected 3 nm fab).
    pub node_nm: f64,
    /// Multiplier on the baseline defect density (1.0 = the models'
    /// 0.1 /cm²); >1 models a worse-yielding fab.
    pub yield_factor: f64,
    /// Share of fab electricity from renewables (paper: TSMC's 20% target).
    pub renewable_share: f64,
}

/// Datacenter-fleet parameters: everything `cc_dcsim::Facility` needs to
/// simulate a warehouse-scale facility over a planning horizon. The paper
/// defaults pin the Prineville-like facility behind Fig 2 (left), so the
/// default scenario replays the disclosed trajectory while any other fleet
/// answers a capacity-planning question ("at what growth does construction
/// carbon overtake operations?").
#[derive(Debug, Clone, PartialEq)]
pub struct FleetParams {
    /// Demand multiplier applied to fleet-sizing experiments (scales the
    /// initial server count of the facility model).
    pub scale: f64,
    /// Server SKU of a pure (single-SKU) fleet — one of [`KNOWN_SKUS`]. The
    /// paper's facility deploys web servers; a non-empty [`Self::mix`]
    /// overrides this with a weighted composition.
    pub sku: String,
    /// Weighted fleet composition as `(sku, weight)` pairs (weights sum
    /// to 1). Empty means a pure fleet of [`Self::sku`]. Settable as
    /// `fleet.mix = "web:0.7,ai-training:0.3"` or per-SKU via
    /// `fleet.mix[ai-training] = 0.3` (which renormalizes the rest).
    pub mix: Vec<(String, f64)>,
    /// Multi-site fleet composition as weighted `(site, region)` placements
    /// (weights sum to 1). Empty means one site named `main` in the
    /// `default` region. Settable as
    /// `fleet.sites = "main@default:0.7,pnw@hydro:0.3"` or per-site via
    /// `fleet.sites[pnw].weight = 0.3` / `fleet.sites[pnw].region = "hydro"`
    /// (weight assignment renormalizes the other sites; a site first named
    /// that way starts in the region of the same name).
    pub sites: Vec<SiteParams>,
    /// Fraction of fleet IT energy that is deferrable batch work the
    /// carbon-aware scheduler may move across hours and sites
    /// (`ext-scheduler`).
    pub deferrable: f64,
    /// Servers in service in the facility's first simulated year.
    pub initial_servers: u64,
    /// Annual server-fleet growth factor (1.0 = flat fleet).
    pub growth: f64,
    /// Power usage effectiveness of the facility (>= 1).
    pub pue: f64,
    /// Renewable (PPA) coverage fraction per simulated year; the last value
    /// holds for every later year. This is the facility's renewable-ramp
    /// slope knob.
    pub renewable_ramp: Vec<f64>,
    /// Total construction embodied carbon in kt CO₂e (amortized by the
    /// facility model over [`Self::building_amortization_years`]).
    pub construction_kt: f64,
    /// Building-amortization window in years over which construction carbon
    /// is spread (paper: a 20-year building life).
    pub building_amortization_years: f64,
    /// Calendar year the facility enters service (paper: Prineville's
    /// 2013 expansion). Shifts the year axis of fleet experiments.
    pub start_year: u16,
    /// Simulated planning horizon in years.
    pub horizon_years: u32,
}

/// One site of a multi-site fleet: a share of the fleet placed in a grid
/// region.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteParams {
    /// Site name (appears in `ext-scheduler` series and tables).
    pub name: String,
    /// Grid region the site draws power from — a [`GridParams::regions`]
    /// entry or a [`trace::BUILTIN_REGIONS`] name.
    pub region: String,
    /// Share of the fleet hosted at this site (weights sum to 1).
    pub weight: f64,
}

impl FleetParams {
    /// The effective fleet composition: [`Self::mix`] when non-empty,
    /// otherwise a pure fleet of [`Self::sku`] at weight 1.
    #[must_use]
    pub fn composition(&self) -> Vec<(String, f64)> {
        if self.mix.is_empty() {
            vec![(self.sku.clone(), 1.0)]
        } else {
            self.mix.clone()
        }
    }

    /// Sets one SKU's weight in the composition, rescaling every other
    /// entry proportionally so the weights keep summing to 1. An empty mix
    /// starts from the pure [`Self::sku`] fleet, so
    /// `set_mix_weight("ai-training", 0.3)` on the paper defaults yields
    /// `web:0.7,ai-training:0.3`.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Invalid`] when `weight` lies outside `[0, 1]`, or
    /// when the remaining entries carry no weight to rescale (e.g. setting
    /// the only SKU's weight below 1), which would leave the weights unable
    /// to sum to 1.
    pub fn set_mix_weight(&mut self, sku: &str, weight: f64) -> Result<(), ScenarioError> {
        if !weight.is_finite() || !(0.0..=1.0).contains(&weight) {
            // Rejecting here names the assignment the user actually made;
            // rescaling first would surface as a negative weight on some
            // *other* SKU at validation time.
            return Err(ScenarioError::Invalid(format!(
                "fleet.mix[{sku}] weight must lie in [0, 1], got {weight}"
            )));
        }
        let mut mix = self.composition();
        if !mix.iter().any(|(name, _)| name == sku) {
            mix.push((sku.to_string(), 0.0));
        }
        let others: f64 = mix
            .iter()
            .filter(|(name, _)| name != sku)
            .map(|(_, w)| w)
            .sum();
        if others == 0.0 && weight != 1.0 {
            return Err(ScenarioError::Invalid(format!(
                "fleet.mix[{sku}] = {weight} leaves no other SKU weight to rescale \
                 (the mix must keep summing to 1)"
            )));
        }
        for (name, w) in &mut mix {
            if name == sku {
                *w = weight;
            } else if others > 0.0 {
                *w *= (1.0 - weight) / others;
            }
        }
        self.mix = mix;
        Ok(())
    }

    /// The effective multi-site composition: [`Self::sites`] when non-empty,
    /// otherwise a single site `main` in the `default` region at weight 1.
    #[must_use]
    pub fn site_composition(&self) -> Vec<SiteParams> {
        if self.sites.is_empty() {
            vec![SiteParams {
                name: "main".to_string(),
                region: "default".to_string(),
                weight: 1.0,
            }]
        } else {
            self.sites.clone()
        }
    }

    /// Sets one site's fleet share, rescaling every other site
    /// proportionally so the weights keep summing to 1 — the multi-site
    /// analogue of [`Self::set_mix_weight`]. An empty site list starts from
    /// the single `main@default` site, and a site introduced this way is
    /// placed in the region of the same name, so
    /// `set_site_weight("hydro", 0.3)` on the paper defaults yields
    /// `main@default:0.7,hydro@hydro:0.3`.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Invalid`] when `weight` lies outside `[0, 1]`, or
    /// when the remaining sites carry no weight to rescale.
    pub fn set_site_weight(&mut self, site: &str, weight: f64) -> Result<(), ScenarioError> {
        if !weight.is_finite() || !(0.0..=1.0).contains(&weight) {
            return Err(ScenarioError::Invalid(format!(
                "fleet.sites[{site}] weight must lie in [0, 1], got {weight}"
            )));
        }
        let mut sites = self.site_composition();
        if !sites.iter().any(|s| s.name == site) {
            sites.push(SiteParams {
                name: site.to_string(),
                region: site.to_string(),
                weight: 0.0,
            });
        }
        let others: f64 = sites
            .iter()
            .filter(|s| s.name != site)
            .map(|s| s.weight)
            .sum();
        if others == 0.0 && weight != 1.0 {
            return Err(ScenarioError::Invalid(format!(
                "fleet.sites[{site}] = {weight} leaves no other site weight to rescale \
                 (the sites must keep summing to 1)"
            )));
        }
        for s in &mut sites {
            if s.name == site {
                s.weight = weight;
            } else if others > 0.0 {
                s.weight *= (1.0 - weight) / others;
            }
        }
        self.sites = sites;
        Ok(())
    }

    /// Re-points one site at a grid region, materializing the default
    /// composition first. A site not yet in the composition is added at
    /// weight 0 so `.region` and `.weight` assignments commute.
    pub fn set_site_region(&mut self, site: &str, region: &str) {
        let mut sites = self.site_composition();
        match sites.iter_mut().find(|s| s.name == site) {
            Some(s) => s.region = region.to_string(),
            None => sites.push(SiteParams {
                name: site.to_string(),
                region: region.to_string(),
                weight: 0.0,
            }),
        }
        self.sites = sites;
    }
}

/// Monte-Carlo parameters for `ext-mc`.
#[derive(Debug, Clone, PartialEq)]
pub struct McParams {
    /// Base RNG seed; an experiment deriving several streams offsets it.
    pub seed: u64,
    /// Trials per propagated headline.
    pub samples: u32,
}

/// A complete experiment scenario: every model parameter the paper fixed,
/// made explicit.
///
/// ```
/// use cc_report::Scenario;
///
/// let wind = Scenario::builder()
///     .name("wind-grid")
///     .grid_intensity(11.0)
///     .lifetime_years(4.0)
///     .build();
/// let toml = wind.to_toml();
/// assert_eq!(Scenario::from_toml(&toml).unwrap(), wind);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable scenario name (appears in artifacts).
    pub name: String,
    /// Operational-energy parameters.
    pub grid: GridParams,
    /// Device parameters.
    pub device: DeviceParams,
    /// Fab parameters.
    pub fab: FabParams,
    /// Fleet parameters.
    pub fleet: FleetParams,
    /// Monte-Carlo parameters.
    pub mc: McParams,
}

impl Default for Scenario {
    fn default() -> Self {
        Self::paper_defaults()
    }
}

impl Scenario {
    /// The exact parameter values the paper's evaluation used.
    #[must_use]
    pub fn paper_defaults() -> Self {
        Self {
            name: "paper".to_string(),
            grid: GridParams {
                intensity_g_per_kwh: 380.0,
                source: None,
                renewable_fraction: 0.0,
                regions: Vec::new(),
            },
            device: DeviceParams {
                lifetime_years: 3.0,
                soc_budget_share: 0.5,
            },
            fab: FabParams {
                node_nm: 3.0,
                yield_factor: 1.0,
                renewable_share: 0.2,
            },
            fleet: FleetParams {
                scale: 1.0,
                sku: "web".to_string(),
                mix: Vec::new(),
                sites: Vec::new(),
                deferrable: 0.2,
                initial_servers: 60_000,
                growth: 1.28,
                pue: 1.10,
                renewable_ramp: vec![0.05, 0.10, 0.20, 0.35, 0.60, 0.85, 1.0],
                construction_kt: 150.0,
                building_amortization_years: 20.0,
                start_year: 2013,
                horizon_years: 7,
            },
            mc: McParams {
                seed: 10,
                samples: 20_000,
            },
        }
    }

    /// Starts a builder seeded with the paper defaults.
    #[must_use]
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder {
            scenario: Self::paper_defaults(),
        }
    }

    /// Sets one field by its dotted path, parsing `value` as the field's
    /// type. This backs both the TOML reader and `--set key=value` command
    /// line overrides.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::UnknownKey`] for an unrecognized path and
    /// [`ScenarioError::InvalidValue`] when `value` does not parse.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), ScenarioError> {
        if key == "name" {
            self.name = unquote(value);
            return Ok(());
        }
        // Dispatch on the section prefix so each arm borrows only its own
        // section — the same per-section setters back [`ScenarioOverlay::set`],
        // which clones just the touched section into its delta.
        match key.split_once('.').map(|(section, _)| section) {
            Some("grid") => set_grid_field(&mut self.grid, key, value),
            Some("device") => set_device_field(&mut self.device, key, value),
            Some("fab") => set_fab_field(&mut self.fab, key, value),
            Some("fleet") => set_fleet_field(&mut self.fleet, key, value),
            Some("mc") => set_mc_field(&mut self.mc, key, value),
            _ => Err(ScenarioError::UnknownKey(key.to_string())),
        }
    }

    /// Parses a scenario from the TOML subset written by [`Self::to_toml`]:
    /// `[section]` tables, `key = value` pairs, `#` comments. Unlisted fields
    /// keep their paper-default values; unknown keys are rejected so typos
    /// cannot silently run the wrong scenario.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Parse`] for malformed lines, plus the [`Self::set`]
    /// errors for unknown keys or unparsable values.
    pub fn from_toml(text: &str) -> Result<Self, ScenarioError> {
        Self::from_toml_keys(text).map(|(scenario, _)| scenario)
    }

    /// Like [`Self::from_toml`], additionally returning the dotted paths the
    /// file explicitly set — callers resolving defaults (e.g. the CLI turning
    /// `grid.source` into an intensity) need to know whether the file pinned
    /// `grid.intensity` itself.
    ///
    /// # Errors
    ///
    /// Same conditions as [`Self::from_toml`].
    pub fn from_toml_keys(text: &str) -> Result<(Self, Vec<String>), ScenarioError> {
        let mut scenario = Self::paper_defaults();
        let mut keys = Vec::new();
        let mut values = Vec::new();
        let mut section = String::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if let Some(rest) = line.strip_prefix('[') {
                let Some(name) = rest.strip_suffix(']') else {
                    return Err(ScenarioError::Parse {
                        line: line_no,
                        message: "unterminated table header".to_string(),
                    });
                };
                section = name.trim().to_string();
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(ScenarioError::Parse {
                    line: line_no,
                    message: format!("expected `key = value`, got `{line}`"),
                });
            };
            let path = if section.is_empty() {
                key.trim().to_string()
            } else {
                format!("{section}.{}", key.trim())
            };
            scenario.set(&path, value.trim())?;
            keys.push(path);
            values.push(value.trim().to_string());
        }
        // Within a file, an explicitly written intensity wins over the
        // source's Table II value regardless of line order (a file is a
        // declaration, not a sequence of overrides); the source then stays
        // an informational label.
        if keys.iter().any(|k| k == "grid.source") {
            if let Some(last_pinned) = keys
                .iter()
                .zip(&values)
                .rev()
                .find(|(k, _)| *k == "grid.intensity" || *k == "grid.intensity_g_per_kwh")
            {
                scenario.set(last_pinned.0, last_pinned.1)?;
            }
        }
        Ok((scenario, keys))
    }

    /// Serializes the scenario to canonical TOML (parseable by
    /// [`Self::from_toml`]).
    #[must_use]
    pub fn to_toml(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("name = {}\n\n", quote(&self.name)));
        out.push_str("[grid]\n");
        out.push_str(&format!(
            "intensity_g_per_kwh = {:?}\n",
            self.grid.intensity_g_per_kwh
        ));
        if let Some(source) = &self.grid.source {
            out.push_str(&format!("source = {}\n", quote(source)));
        }
        out.push_str(&format!(
            "renewable_fraction = {:?}\n",
            self.grid.renewable_fraction
        ));
        if !self.grid.regions.is_empty() {
            out.push_str(&format!(
                "regions = {}\n",
                quote(&format_regions(&self.grid.regions))
            ));
        }
        out.push_str("\n[device]\n");
        out.push_str(&format!(
            "lifetime_years = {:?}\n",
            self.device.lifetime_years
        ));
        out.push_str(&format!(
            "soc_budget_share = {:?}\n",
            self.device.soc_budget_share
        ));
        out.push_str("\n[fab]\n");
        out.push_str(&format!("node_nm = {:?}\n", self.fab.node_nm));
        out.push_str(&format!("yield_factor = {:?}\n", self.fab.yield_factor));
        out.push_str(&format!(
            "renewable_share = {:?}\n",
            self.fab.renewable_share
        ));
        out.push_str("\n[fleet]\n");
        out.push_str(&format!("scale = {:?}\n", self.fleet.scale));
        out.push_str(&format!("sku = {}\n", quote(&self.fleet.sku)));
        if !self.fleet.mix.is_empty() {
            out.push_str(&format!("mix = {}\n", quote(&format_mix(&self.fleet.mix))));
        }
        if !self.fleet.sites.is_empty() {
            out.push_str(&format!(
                "sites = {}\n",
                quote(&format_sites(&self.fleet.sites))
            ));
        }
        out.push_str(&format!("deferrable = {:?}\n", self.fleet.deferrable));
        out.push_str(&format!(
            "initial_servers = {}\n",
            self.fleet.initial_servers
        ));
        out.push_str(&format!("growth = {:?}\n", self.fleet.growth));
        out.push_str(&format!("pue = {:?}\n", self.fleet.pue));
        out.push_str(&format!(
            "renewable_ramp = {}\n",
            quote(&format_ramp(&self.fleet.renewable_ramp))
        ));
        out.push_str(&format!(
            "construction_kt = {:?}\n",
            self.fleet.construction_kt
        ));
        out.push_str(&format!(
            "building_amortization_years = {:?}\n",
            self.fleet.building_amortization_years
        ));
        out.push_str(&format!("start_year = {}\n", self.fleet.start_year));
        out.push_str(&format!("horizon_years = {}\n", self.fleet.horizon_years));
        out.push_str("\n[mc]\n");
        out.push_str(&format!("seed = {}\n", self.mc.seed));
        out.push_str(&format!("samples = {}\n", self.mc.samples));
        out
    }

    /// The scenario as a JSON object (for `--json` artifacts).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("name", JsonValue::from(self.name.as_str())),
            (
                "grid",
                JsonValue::object([
                    (
                        "intensity_g_per_kwh",
                        JsonValue::from(self.grid.intensity_g_per_kwh),
                    ),
                    (
                        "source",
                        self.grid
                            .source
                            .as_deref()
                            .map_or(JsonValue::Null, JsonValue::from),
                    ),
                    (
                        "renewable_fraction",
                        JsonValue::from(self.grid.renewable_fraction),
                    ),
                    (
                        "regions",
                        JsonValue::array(self.grid.regions.iter().map(|r| {
                            JsonValue::object([
                                ("name", JsonValue::from(r.name.as_str())),
                                (
                                    "hours",
                                    JsonValue::array(r.hours.iter().map(|&h| JsonValue::from(h))),
                                ),
                            ])
                        })),
                    ),
                ]),
            ),
            (
                "device",
                JsonValue::object([
                    (
                        "lifetime_years",
                        JsonValue::from(self.device.lifetime_years),
                    ),
                    (
                        "soc_budget_share",
                        JsonValue::from(self.device.soc_budget_share),
                    ),
                ]),
            ),
            (
                "fab",
                JsonValue::object([
                    ("node_nm", JsonValue::from(self.fab.node_nm)),
                    ("yield_factor", JsonValue::from(self.fab.yield_factor)),
                    ("renewable_share", JsonValue::from(self.fab.renewable_share)),
                ]),
            ),
            (
                "fleet",
                JsonValue::object([
                    ("scale", JsonValue::from(self.fleet.scale)),
                    ("sku", JsonValue::from(self.fleet.sku.as_str())),
                    (
                        "mix",
                        JsonValue::object(
                            self.fleet
                                .mix
                                .iter()
                                .map(|(name, w)| (name.clone(), JsonValue::from(*w))),
                        ),
                    ),
                    (
                        "sites",
                        JsonValue::array(self.fleet.sites.iter().map(|s| {
                            JsonValue::object([
                                ("name", JsonValue::from(s.name.as_str())),
                                ("region", JsonValue::from(s.region.as_str())),
                                ("weight", JsonValue::from(s.weight)),
                            ])
                        })),
                    ),
                    ("deferrable", JsonValue::from(self.fleet.deferrable)),
                    (
                        "initial_servers",
                        JsonValue::Integer(self.fleet.initial_servers),
                    ),
                    ("growth", JsonValue::from(self.fleet.growth)),
                    ("pue", JsonValue::from(self.fleet.pue)),
                    (
                        "renewable_ramp",
                        JsonValue::array(
                            self.fleet
                                .renewable_ramp
                                .iter()
                                .map(|&v| JsonValue::from(v)),
                        ),
                    ),
                    (
                        "construction_kt",
                        JsonValue::from(self.fleet.construction_kt),
                    ),
                    (
                        "building_amortization_years",
                        JsonValue::from(self.fleet.building_amortization_years),
                    ),
                    (
                        "start_year",
                        JsonValue::Integer(u64::from(self.fleet.start_year)),
                    ),
                    (
                        "horizon_years",
                        JsonValue::Integer(u64::from(self.fleet.horizon_years)),
                    ),
                ]),
            ),
            (
                "mc",
                JsonValue::object([
                    ("seed", JsonValue::Integer(self.mc.seed)),
                    ("samples", JsonValue::Integer(u64::from(self.mc.samples))),
                ]),
            ),
        ])
    }

    /// Overwrites `grid.intensity_g_per_kwh` with the Table II intensity of
    /// the named `grid.source` (case-insensitive). A no-op when no source is
    /// set. [`Self::set`] calls this automatically; it is public so code
    /// mutating the fields directly can opt into the same resolution the CLI
    /// performs.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::UnknownSource`] when the name matches no Table II
    /// row.
    pub fn resolve_energy_source(&mut self) -> Result<(), ScenarioError> {
        resolve_energy_source_in(&mut self.grid)
    }

    /// Checks every parameter is physically sensible.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Invalid`] naming the first offending field, or
    /// [`ScenarioError::UnknownSource`] for a `grid.source` label naming no
    /// Table II energy source.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        validate_parts(&self.grid, &self.device, &self.fab, &self.fleet, &self.mc)
    }
}

/// [`Scenario::validate`] over bare sections, so copy-on-write overlays
/// validate their resolved views without materializing a scenario.
fn validate_parts(
    grid: &GridParams,
    device: &DeviceParams,
    fab: &FabParams,
    fleet: &FleetParams,
    mc: &McParams,
) -> Result<(), ScenarioError> {
    if let Some(source) = &grid.source {
        if lookup_energy_source(source).is_none() {
            return Err(ScenarioError::UnknownSource(source.clone()));
        }
    }
    validate_fleet_composition(fleet)?;
    validate_grid_regions(grid)?;
    validate_sites(grid, fleet)?;
    let checks: [(&str, bool); 18] = [
        (
            "grid.intensity must be finite and positive",
            grid.intensity_g_per_kwh.is_finite() && grid.intensity_g_per_kwh > 0.0,
        ),
        (
            "grid.renewable_fraction must lie in [0, 1]",
            (0.0..=1.0).contains(&grid.renewable_fraction),
        ),
        (
            "device.lifetime_years must be finite and positive",
            device.lifetime_years.is_finite() && device.lifetime_years > 0.0,
        ),
        (
            "device.soc_budget_share must lie in (0, 1]",
            device.soc_budget_share > 0.0 && device.soc_budget_share <= 1.0,
        ),
        ("fab.node_nm must be positive", fab.node_nm > 0.0),
        (
            "fab.yield_factor must be finite and positive",
            fab.yield_factor.is_finite() && fab.yield_factor > 0.0,
        ),
        (
            "fab.renewable_share must lie in [0, 1]",
            (0.0..=1.0).contains(&fab.renewable_share),
        ),
        (
            "fleet.scale must be finite and positive",
            fleet.scale.is_finite() && fleet.scale > 0.0,
        ),
        (
            "fleet.initial_servers must be at least 1",
            fleet.initial_servers >= 1,
        ),
        (
            "fleet.growth must be finite and positive",
            fleet.growth.is_finite() && fleet.growth > 0.0,
        ),
        (
            "fleet.pue must be finite and at least 1.0",
            fleet.pue.is_finite() && fleet.pue >= 1.0,
        ),
        (
            "fleet.renewable_ramp must be non-empty with every value in [0, 1]",
            !fleet.renewable_ramp.is_empty()
                && fleet.renewable_ramp.iter().all(|v| (0.0..=1.0).contains(v)),
        ),
        (
            "fleet.deferrable must lie in [0, 1]",
            fleet.deferrable.is_finite() && (0.0..=1.0).contains(&fleet.deferrable),
        ),
        (
            "fleet.construction_kt must be finite and non-negative",
            fleet.construction_kt.is_finite() && fleet.construction_kt >= 0.0,
        ),
        (
            "fleet.building_amortization_years must be finite and positive",
            fleet.building_amortization_years.is_finite()
                && fleet.building_amortization_years > 0.0,
        ),
        (
            "fleet.start_year must lie in 1900..=2100",
            (1900..=2100).contains(&fleet.start_year),
        ),
        (
            "fleet.horizon_years must lie in 1..=200",
            (1..=200).contains(&fleet.horizon_years),
        ),
        ("mc.samples must be at least 1", mc.samples >= 1),
    ];
    for (message, ok) in checks {
        if !ok {
            return Err(ScenarioError::Invalid(message.to_string()));
        }
    }
    Ok(())
}

/// Checks `fleet.sku` and `fleet.mix` describe a deployable fleet:
/// known SKU names only, no duplicates, finite non-negative weights
/// summing to 1 within [`MIX_WEIGHT_TOLERANCE`].
fn validate_fleet_composition(fleet: &FleetParams) -> Result<(), ScenarioError> {
    let known = |name: &str| KNOWN_SKUS.contains(&name);
    let unknown = |field: &str, name: &str| {
        ScenarioError::Invalid(format!(
            "{field} names unknown server SKU `{name}` (known: {})",
            KNOWN_SKUS.join(", ")
        ))
    };
    if !known(&fleet.sku) {
        return Err(unknown("fleet.sku", &fleet.sku));
    }
    let mut sum = 0.0;
    for (i, (name, weight)) in fleet.mix.iter().enumerate() {
        if !known(name) {
            return Err(unknown("fleet.mix", name));
        }
        if fleet.mix[..i].iter().any(|(prior, _)| prior == name) {
            return Err(ScenarioError::Invalid(format!(
                "fleet.mix lists SKU `{name}` more than once"
            )));
        }
        if !weight.is_finite() || *weight < 0.0 {
            return Err(ScenarioError::Invalid(format!(
                "fleet.mix weight for `{name}` must be finite and non-negative, got {weight}"
            )));
        }
        sum += weight;
    }
    if !fleet.mix.is_empty() && (sum - 1.0).abs() > MIX_WEIGHT_TOLERANCE {
        return Err(ScenarioError::Invalid(format!(
            "fleet.mix weights must sum to 1, got {sum}"
        )));
    }
    Ok(())
}

/// Checks every configured grid region carries a physical 24-hour trace:
/// unique non-empty names, exactly 24 finite non-negative hourly values.
fn validate_grid_regions(grid: &GridParams) -> Result<(), ScenarioError> {
    for (i, region) in grid.regions.iter().enumerate() {
        if region.name.is_empty() {
            return Err(ScenarioError::Invalid(
                "grid.regions lists a region with an empty name".to_string(),
            ));
        }
        if grid.regions[..i].iter().any(|r| r.name == region.name) {
            return Err(ScenarioError::Invalid(format!(
                "grid.regions lists region `{}` more than once",
                region.name
            )));
        }
        if region.hours.len() != 24 {
            return Err(ScenarioError::Invalid(format!(
                "grid.region.{}.trace must resolve to 24 hourly values, got {}",
                region.name,
                region.hours.len()
            )));
        }
        if !region.hours.iter().all(|h| h.is_finite() && *h >= 0.0) {
            return Err(ScenarioError::Invalid(format!(
                "grid.region.{}.trace must hold finite non-negative intensities",
                region.name
            )));
        }
    }
    Ok(())
}

/// Checks `fleet.sites` describes a placeable multi-site fleet: unique
/// non-empty site names, finite non-negative weights summing to 1 within
/// [`MIX_WEIGHT_TOLERANCE`], and every referenced region either configured
/// in `grid.regions` or a [`trace::BUILTIN_REGIONS`] name.
fn validate_sites(grid: &GridParams, fleet: &FleetParams) -> Result<(), ScenarioError> {
    let mut sum = 0.0;
    for (i, site) in fleet.sites.iter().enumerate() {
        if site.name.is_empty() {
            return Err(ScenarioError::Invalid(
                "fleet.sites lists a site with an empty name".to_string(),
            ));
        }
        if fleet.sites[..i].iter().any(|s| s.name == site.name) {
            return Err(ScenarioError::Invalid(format!(
                "fleet.sites lists site `{}` more than once",
                site.name
            )));
        }
        if !site.weight.is_finite() || site.weight < 0.0 {
            return Err(ScenarioError::Invalid(format!(
                "fleet.sites weight for `{}` must be finite and non-negative, got {}",
                site.name, site.weight
            )));
        }
        let configured = grid.regions.iter().any(|r| r.name == site.region);
        if !configured && trace::builtin_region_trace(&site.region).is_none() {
            return Err(ScenarioError::Invalid(format!(
                "fleet.sites[{}] names region `{}` with no grid.region.{}.trace \
                 entry (builtin regions: {})",
                site.name,
                site.region,
                site.region,
                trace::BUILTIN_REGIONS.join(", ")
            )));
        }
        sum += site.weight;
    }
    if !fleet.sites.is_empty() && (sum - 1.0).abs() > MIX_WEIGHT_TOLERANCE {
        return Err(ScenarioError::Invalid(format!(
            "fleet.sites weights must sum to 1, got {sum}"
        )));
    }
    Ok(())
}

/// Fluent construction of a [`Scenario`], starting from the paper defaults.
#[derive(Debug, Clone)]
pub struct ScenarioBuilder {
    scenario: Scenario,
}

impl ScenarioBuilder {
    /// Sets the scenario name.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.scenario.name = name.into();
        self
    }

    /// Sets the operational grid intensity (g CO₂e/kWh).
    #[must_use]
    pub fn grid_intensity(mut self, g_per_kwh: f64) -> Self {
        self.scenario.grid.intensity_g_per_kwh = g_per_kwh;
        self
    }

    /// Labels the operational energy source. A recognized Table II name also
    /// resolves to its intensity (a later [`Self::grid_intensity`] call still
    /// wins); an unrecognized name is kept and rejected by
    /// [`Scenario::validate`].
    #[must_use]
    pub fn energy_source(mut self, source: impl Into<String>) -> Self {
        self.scenario.grid.source = Some(source.into());
        let _ = self.scenario.resolve_energy_source();
        self
    }

    /// Sets the renewable-purchase fraction of operational energy.
    #[must_use]
    pub fn renewable_fraction(mut self, fraction: f64) -> Self {
        self.scenario.grid.renewable_fraction = fraction;
        self
    }

    /// Adds (or replaces) a named grid region with 24 hourly intensities
    /// (g CO₂e/kWh).
    #[must_use]
    pub fn grid_region(mut self, name: impl Into<String>, hours: Vec<f64>) -> Self {
        let name = name.into();
        let regions = &mut self.scenario.grid.regions;
        match regions.iter_mut().find(|r| r.name == name) {
            Some(r) => r.hours = hours,
            None => regions.push(RegionParams { name, hours }),
        }
        self
    }

    /// Sets the device lifetime in years.
    #[must_use]
    pub fn lifetime_years(mut self, years: f64) -> Self {
        self.scenario.device.lifetime_years = years;
        self
    }

    /// Sets the SoC share of device production carbon.
    #[must_use]
    pub fn soc_budget_share(mut self, share: f64) -> Self {
        self.scenario.device.soc_budget_share = share;
        self
    }

    /// Sets the featured fab process node (nm).
    #[must_use]
    pub fn fab_node_nm(mut self, nm: f64) -> Self {
        self.scenario.fab.node_nm = nm;
        self
    }

    /// Sets the defect-density multiplier.
    #[must_use]
    pub fn fab_yield_factor(mut self, factor: f64) -> Self {
        self.scenario.fab.yield_factor = factor;
        self
    }

    /// Sets the renewable share of fab electricity.
    #[must_use]
    pub fn fab_renewable_share(mut self, share: f64) -> Self {
        self.scenario.fab.renewable_share = share;
        self
    }

    /// Sets the fleet demand multiplier.
    #[must_use]
    pub fn fleet_scale(mut self, scale: f64) -> Self {
        self.scenario.fleet.scale = scale;
        self
    }

    /// Sets the server SKU of a pure fleet (one of
    /// [`KNOWN_SKUS`]; unknown names are rejected by
    /// [`Scenario::validate`]).
    #[must_use]
    pub fn fleet_sku(mut self, sku: impl Into<String>) -> Self {
        self.scenario.fleet.sku = sku.into();
        self
    }

    /// Sets the weighted fleet composition as `(sku, weight)` pairs
    /// (weights must sum to 1; an empty mix means a pure
    /// [`Self::fleet_sku`] fleet).
    #[must_use]
    pub fn fleet_mix(mut self, mix: Vec<(String, f64)>) -> Self {
        self.scenario.fleet.mix = mix;
        self
    }

    /// Sets the multi-site fleet composition (weights must sum to 1; an
    /// empty list means the single `main@default` site).
    #[must_use]
    pub fn fleet_sites(mut self, sites: Vec<SiteParams>) -> Self {
        self.scenario.fleet.sites = sites;
        self
    }

    /// Sets the deferrable share of fleet IT energy.
    #[must_use]
    pub fn fleet_deferrable(mut self, share: f64) -> Self {
        self.scenario.fleet.deferrable = share;
        self
    }

    /// Sets the facility's first-year server count.
    #[must_use]
    pub fn fleet_initial_servers(mut self, servers: u64) -> Self {
        self.scenario.fleet.initial_servers = servers;
        self
    }

    /// Sets the annual server-fleet growth factor.
    #[must_use]
    pub fn fleet_growth(mut self, factor: f64) -> Self {
        self.scenario.fleet.growth = factor;
        self
    }

    /// Sets the facility power usage effectiveness.
    #[must_use]
    pub fn fleet_pue(mut self, pue: f64) -> Self {
        self.scenario.fleet.pue = pue;
        self
    }

    /// Sets the renewable coverage ramp (fraction per simulated year; the
    /// last value holds thereafter).
    #[must_use]
    pub fn fleet_renewable_ramp(mut self, ramp: Vec<f64>) -> Self {
        self.scenario.fleet.renewable_ramp = ramp;
        self
    }

    /// Sets the facility construction embodied carbon in kt CO₂e.
    #[must_use]
    pub fn fleet_construction_kt(mut self, kt: f64) -> Self {
        self.scenario.fleet.construction_kt = kt;
        self
    }

    /// Sets the building-amortization window in years.
    #[must_use]
    pub fn fleet_building_amortization_years(mut self, years: f64) -> Self {
        self.scenario.fleet.building_amortization_years = years;
        self
    }

    /// Sets the facility's first simulated calendar year.
    #[must_use]
    pub fn fleet_start_year(mut self, year: u16) -> Self {
        self.scenario.fleet.start_year = year;
        self
    }

    /// Sets the simulated planning horizon in years.
    #[must_use]
    pub fn fleet_horizon_years(mut self, years: u32) -> Self {
        self.scenario.fleet.horizon_years = years;
        self
    }

    /// Sets the Monte-Carlo base seed.
    #[must_use]
    pub fn mc_seed(mut self, seed: u64) -> Self {
        self.scenario.mc.seed = seed;
        self
    }

    /// Sets the Monte-Carlo trial count.
    #[must_use]
    pub fn mc_samples(mut self, samples: u32) -> Self {
        self.scenario.mc.samples = samples;
        self
    }

    /// Finishes the builder.
    #[must_use]
    pub fn build(self) -> Scenario {
        self.scenario
    }
}

/// Errors from scenario parsing, overrides and validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioError {
    /// A dotted path that names no scenario field.
    UnknownKey(String),
    /// A value that does not parse as the field's type.
    InvalidValue {
        /// The offending path.
        key: String,
        /// The raw value text.
        value: String,
    },
    /// A malformed TOML line.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A parameter outside its physical range.
    Invalid(String),
    /// A `grid.source` label naming no Table II energy source.
    UnknownSource(String),
}

impl core::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::UnknownKey(key) => write!(f, "unknown scenario key `{key}`"),
            Self::InvalidValue { key, value } => {
                write!(f, "invalid value `{value}` for scenario key `{key}`")
            }
            Self::Parse { line, message } => write!(f, "scenario TOML line {line}: {message}"),
            Self::Invalid(message) => write!(f, "invalid scenario: {message}"),
            Self::UnknownSource(source) => {
                let names: Vec<String> = EnergySource::ALL
                    .into_iter()
                    .map(|s| s.name().to_lowercase())
                    .collect();
                write!(
                    f,
                    "unknown energy source `{source}` (known: {})",
                    names.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

/// Parses `value` as an `f64`, naming `key` on failure.
fn f64_of(key: &str, value: &str) -> Result<f64, ScenarioError> {
    value
        .trim()
        .parse()
        .map_err(|_| ScenarioError::InvalidValue {
            key: key.to_string(),
            value: value.to_string(),
        })
}

/// Parses `value` as a `u64`, naming `key` on failure.
fn u64_of(key: &str, value: &str) -> Result<u64, ScenarioError> {
    value
        .trim()
        .parse()
        .map_err(|_| ScenarioError::InvalidValue {
            key: key.to_string(),
            value: value.to_string(),
        })
}

/// [`Scenario::resolve_energy_source`] over a bare grid section, so
/// copy-on-write overlays resolve a `grid.source` assignment without a full
/// scenario in hand.
fn resolve_energy_source_in(grid: &mut GridParams) -> Result<(), ScenarioError> {
    let Some(source) = &grid.source else {
        return Ok(());
    };
    let matched =
        lookup_energy_source(source).ok_or_else(|| ScenarioError::UnknownSource(source.clone()))?;
    grid.intensity_g_per_kwh = matched.carbon_intensity().as_g_per_kwh();
    Ok(())
}

/// The `grid.*` arm of [`Scenario::set`], over the bare section.
fn set_grid_field(grid: &mut GridParams, key: &str, value: &str) -> Result<(), ScenarioError> {
    match key {
        "grid.intensity" | "grid.intensity_g_per_kwh" => {
            grid.intensity_g_per_kwh = f64_of(key, value)?;
        }
        "grid.source" => {
            let v = unquote(value);
            grid.source = if v.is_empty() { None } else { Some(v) };
            // Resolving here (not in the CLI) means library users setting
            // `grid.source = "wind"` get the Table II intensity too. A
            // later `set("grid.intensity", …)` still wins: overrides
            // apply strictly in call order.
            resolve_energy_source_in(grid)?;
        }
        "grid.renewable_fraction" => grid.renewable_fraction = f64_of(key, value)?,
        "grid.regions" => grid.regions = parse_regions(key, value)?,
        _ if key.starts_with("grid.region.") && key.ends_with(".trace") => {
            let name = key["grid.region.".len()..key.len() - ".trace".len()].trim();
            if name.is_empty() {
                return Err(ScenarioError::UnknownKey(key.to_string()));
            }
            let hours = trace::parse_trace_spec(key, value)?;
            match grid.regions.iter_mut().find(|r| r.name == name) {
                Some(region) => region.hours = hours,
                None => grid.regions.push(RegionParams {
                    name: name.to_string(),
                    hours,
                }),
            }
        }
        _ => return Err(ScenarioError::UnknownKey(key.to_string())),
    }
    Ok(())
}

/// The `device.*` arm of [`Scenario::set`], over the bare section.
fn set_device_field(
    device: &mut DeviceParams,
    key: &str,
    value: &str,
) -> Result<(), ScenarioError> {
    match key {
        "device.lifetime" | "device.lifetime_years" => {
            device.lifetime_years = f64_of(key, value)?;
        }
        "device.soc_budget_share" => device.soc_budget_share = f64_of(key, value)?,
        _ => return Err(ScenarioError::UnknownKey(key.to_string())),
    }
    Ok(())
}

/// The `fab.*` arm of [`Scenario::set`], over the bare section.
fn set_fab_field(fab: &mut FabParams, key: &str, value: &str) -> Result<(), ScenarioError> {
    match key {
        "fab.node" | "fab.node_nm" => fab.node_nm = f64_of(key, value)?,
        "fab.yield_factor" => fab.yield_factor = f64_of(key, value)?,
        "fab.renewable_share" => fab.renewable_share = f64_of(key, value)?,
        _ => return Err(ScenarioError::UnknownKey(key.to_string())),
    }
    Ok(())
}

/// The `fleet.*` arm of [`Scenario::set`], over the bare section.
fn set_fleet_field(fleet: &mut FleetParams, key: &str, value: &str) -> Result<(), ScenarioError> {
    match key {
        "fleet.scale" => fleet.scale = f64_of(key, value)?,
        "fleet.sku" => fleet.sku = unquote(value),
        "fleet.mix" => fleet.mix = parse_mix(key, value)?,
        _ if key.starts_with("fleet.mix[") && key.ends_with(']') => {
            let sku = key["fleet.mix[".len()..key.len() - 1].trim();
            if sku.is_empty() {
                return Err(ScenarioError::UnknownKey(key.to_string()));
            }
            fleet.set_mix_weight(sku, f64_of(key, value)?)?;
        }
        "fleet.sites" => fleet.sites = parse_sites(key, value)?,
        _ if key.starts_with("fleet.sites[") => {
            let rest = &key["fleet.sites[".len()..];
            let (name, field) = rest
                .split_once(']')
                .ok_or_else(|| ScenarioError::UnknownKey(key.to_string()))?;
            let name = name.trim();
            if name.is_empty() {
                return Err(ScenarioError::UnknownKey(key.to_string()));
            }
            match field {
                "" | ".weight" => fleet.set_site_weight(name, f64_of(key, value)?)?,
                ".region" => fleet.set_site_region(name, unquote(value).trim()),
                _ => return Err(ScenarioError::UnknownKey(key.to_string())),
            }
        }
        "fleet.deferrable" => fleet.deferrable = f64_of(key, value)?,
        "fleet.initial_servers" => fleet.initial_servers = u64_of(key, value)?,
        "fleet.growth" => fleet.growth = f64_of(key, value)?,
        "fleet.pue" => fleet.pue = f64_of(key, value)?,
        "fleet.renewable_ramp" | "fleet.ramp" => {
            fleet.renewable_ramp = parse_ramp(key, value)?;
        }
        "fleet.construction_kt" | "fleet.construction" => {
            fleet.construction_kt = f64_of(key, value)?;
        }
        "fleet.building_amortization_years" | "fleet.building_amortization" => {
            fleet.building_amortization_years = f64_of(key, value)?;
        }
        "fleet.start_year" => {
            fleet.start_year =
                u16::try_from(u64_of(key, value)?).map_err(|_| ScenarioError::InvalidValue {
                    key: key.to_string(),
                    value: value.to_string(),
                })?;
        }
        "fleet.horizon_years" | "fleet.horizon" => {
            fleet.horizon_years =
                u32::try_from(u64_of(key, value)?).map_err(|_| ScenarioError::InvalidValue {
                    key: key.to_string(),
                    value: value.to_string(),
                })?;
        }
        _ => return Err(ScenarioError::UnknownKey(key.to_string())),
    }
    Ok(())
}

/// The `mc.*` arm of [`Scenario::set`], over the bare section.
fn set_mc_field(mc: &mut McParams, key: &str, value: &str) -> Result<(), ScenarioError> {
    match key {
        "mc.seed" => mc.seed = u64_of(key, value)?,
        "mc.samples" => {
            mc.samples =
                u32::try_from(u64_of(key, value)?).map_err(|_| ScenarioError::InvalidValue {
                    key: key.to_string(),
                    value: value.to_string(),
                })?;
        }
        _ => return Err(ScenarioError::UnknownKey(key.to_string())),
    }
    Ok(())
}

/// Parses a renewable-ramp value: comma-separated coverage fractions,
/// optionally TOML-quoted (`"0.05,0.1,1.0"`). Range checking happens in
/// [`Scenario::validate`]; this only requires every element to be a number.
fn parse_ramp(key: &str, value: &str) -> Result<Vec<f64>, ScenarioError> {
    let invalid = || ScenarioError::InvalidValue {
        key: key.to_string(),
        value: value.to_string(),
    };
    let text = unquote(value);
    let text = text.trim();
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(',')
        .map(|part| part.trim().parse::<f64>().map_err(|_| invalid()))
        .collect()
}

/// Parses a fleet-mix value: comma-separated `sku:weight` pairs, optionally
/// TOML-quoted (`"web:0.7,ai-training:0.3"`). An empty string is the empty
/// mix (a pure `fleet.sku` fleet). SKU-name and weight-sum checking happens
/// in [`Scenario::validate`]; this only requires the `name:number` shape.
fn parse_mix(key: &str, value: &str) -> Result<Vec<(String, f64)>, ScenarioError> {
    let invalid = || ScenarioError::InvalidValue {
        key: key.to_string(),
        value: value.to_string(),
    };
    let text = unquote(value);
    let text = text.trim();
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(',')
        .map(|part| {
            let (name, weight) = part.split_once(':').ok_or_else(invalid)?;
            let name = name.trim();
            if name.is_empty() {
                return Err(invalid());
            }
            let weight: f64 = weight.trim().parse().map_err(|_| invalid())?;
            Ok((name.to_string(), weight))
        })
        .collect()
}

/// Canonical text form of a fleet mix, parseable by [`parse_mix`].
fn format_mix(mix: &[(String, f64)]) -> String {
    mix.iter()
        .map(|(name, w)| format!("{name}:{w:?}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Parses a `grid.regions` value: semicolon-separated `name:trace-spec`
/// entries, optionally TOML-quoted. Each spec goes through
/// [`trace::parse_trace_spec`], so the canonical resolved form
/// (`name:h0,…,h23;…`) and the generator shorthands both parse. An empty
/// string is the empty region list.
fn parse_regions(key: &str, value: &str) -> Result<Vec<RegionParams>, ScenarioError> {
    let invalid = || ScenarioError::InvalidValue {
        key: key.to_string(),
        value: value.to_string(),
    };
    let text = unquote(value);
    let text = text.trim();
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(';')
        .map(|part| {
            let (name, spec) = part.split_once(':').ok_or_else(invalid)?;
            let name = name.trim();
            if name.is_empty() {
                return Err(invalid());
            }
            Ok(RegionParams {
                name: name.to_string(),
                hours: trace::parse_trace_spec(key, spec)?,
            })
        })
        .collect()
}

/// Canonical text form of the grid regions, parseable by [`parse_regions`].
fn format_regions(regions: &[RegionParams]) -> String {
    regions
        .iter()
        .map(|r| {
            let hours = r
                .hours
                .iter()
                .map(|h| format!("{h:?}"))
                .collect::<Vec<_>>()
                .join(",");
            format!("{}:{hours}", r.name)
        })
        .collect::<Vec<_>>()
        .join(";")
}

/// Parses a `fleet.sites` value: comma-separated `name@region:weight`
/// triples, optionally TOML-quoted. An empty string is the empty site list
/// (the single `main@default` site). Region existence and weight-sum
/// checking happens in [`Scenario::validate`].
fn parse_sites(key: &str, value: &str) -> Result<Vec<SiteParams>, ScenarioError> {
    let invalid = || ScenarioError::InvalidValue {
        key: key.to_string(),
        value: value.to_string(),
    };
    let text = unquote(value);
    let text = text.trim();
    if text.is_empty() {
        return Ok(Vec::new());
    }
    text.split(',')
        .map(|part| {
            let (name, rest) = part.split_once('@').ok_or_else(invalid)?;
            let (region, weight) = rest.rsplit_once(':').ok_or_else(invalid)?;
            let (name, region) = (name.trim(), region.trim());
            if name.is_empty() || region.is_empty() {
                return Err(invalid());
            }
            Ok(SiteParams {
                name: name.to_string(),
                region: region.to_string(),
                weight: weight.trim().parse().map_err(|_| invalid())?,
            })
        })
        .collect()
}

/// Canonical text form of the fleet sites, parseable by [`parse_sites`].
fn format_sites(sites: &[SiteParams]) -> String {
    sites
        .iter()
        .map(|s| format!("{}@{}:{:?}", s.name, s.region, s.weight))
        .collect::<Vec<_>>()
        .join(",")
}

/// Canonical text form of a renewable ramp, parseable by [`parse_ramp`].
fn format_ramp(ramp: &[f64]) -> String {
    ramp.iter()
        .map(|v| format!("{v:?}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Finds the Table II energy source matching `name`, case-insensitively.
fn lookup_energy_source(name: &str) -> Option<EnergySource> {
    let wanted = name.to_lowercase();
    EnergySource::ALL
        .into_iter()
        .find(|s| s.name().to_lowercase() == wanted)
}

/// Quotes a TOML basic string, escaping backslashes and double quotes (the
/// only escapes [`Scenario`] fields can need).
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Inverse of [`quote`]: strips one layer of surrounding double quotes and
/// unescapes `\"` and `\\`. Unquoted input is returned verbatim.
fn unquote(value: &str) -> String {
    let value = value.trim();
    let Some(inner) = value
        .strip_prefix('"')
        .and_then(|rest| rest.strip_suffix('"'))
    else {
        return value.to_string();
    };
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('t') => out.push('\t'),
                Some(other) => {
                    out.push('\\');
                    out.push(other);
                }
                None => out.push('\\'),
            }
        } else {
            out.push(c);
        }
    }
    out
}

/// Removes a `#` comment, respecting double-quoted strings (including
/// `\"` escapes inside them).
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

/// A copy-on-write view over a shared base [`Scenario`]: untouched sections
/// resolve to the base's, a touched section is cloned once into the
/// overlay's delta and edited there. Sweep expansion builds one overlay per
/// point, so a 10k-point matrix allocates 10k small deltas (typically one
/// section each) instead of 10k full scenario clones.
///
/// Resolution order is always **delta → base**, per section: a section is
/// either wholly owned by the delta (because some field in it was set) or
/// wholly the base's — there is no field-level merging, which keeps reads
/// branch-cheap and the semantics identical to "clone the scenario, then
/// `set`".
#[derive(Debug, Clone)]
pub struct ScenarioOverlay {
    base: Arc<Scenario>,
    name: Option<String>,
    grid: Option<GridParams>,
    device: Option<DeviceParams>,
    fab: Option<FabParams>,
    fleet: Option<FleetParams>,
    mc: Option<McParams>,
}

impl PartialEq for ScenarioOverlay {
    /// Overlays compare by *resolved* values, not delta shape: a pristine
    /// overlay equals one whose delta restates the base verbatim.
    fn eq(&self, other: &Self) -> bool {
        self.name() == other.name()
            && self.grid() == other.grid()
            && self.device() == other.device()
            && self.fab() == other.fab()
            && self.fleet() == other.fleet()
            && self.mc() == other.mc()
    }
}

impl ScenarioOverlay {
    /// A pristine overlay: every read resolves to `base`.
    #[must_use]
    pub fn new(base: Arc<Scenario>) -> Self {
        Self {
            base,
            name: None,
            grid: None,
            device: None,
            fab: None,
            fleet: None,
            mc: None,
        }
    }

    /// The shared base scenario the overlay resolves against.
    #[must_use]
    pub fn base(&self) -> &Arc<Scenario> {
        &self.base
    }

    /// Whether the overlay carries no delta at all, so every read — and a
    /// [`Self::materialize`] — is exactly the base.
    #[must_use]
    pub fn is_pristine(&self) -> bool {
        self.name.is_none()
            && self.grid.is_none()
            && self.device.is_none()
            && self.fab.is_none()
            && self.fleet.is_none()
            && self.mc.is_none()
    }

    /// The resolved scenario name.
    #[must_use]
    pub fn name(&self) -> &str {
        self.name.as_deref().unwrap_or(&self.base.name)
    }

    /// The resolved operational-energy parameters.
    #[must_use]
    pub fn grid(&self) -> &GridParams {
        self.grid.as_ref().unwrap_or(&self.base.grid)
    }

    /// The resolved device parameters.
    #[must_use]
    pub fn device(&self) -> &DeviceParams {
        self.device.as_ref().unwrap_or(&self.base.device)
    }

    /// The resolved fab parameters.
    #[must_use]
    pub fn fab(&self) -> &FabParams {
        self.fab.as_ref().unwrap_or(&self.base.fab)
    }

    /// The resolved fleet parameters.
    #[must_use]
    pub fn fleet(&self) -> &FleetParams {
        self.fleet.as_ref().unwrap_or(&self.base.fleet)
    }

    /// The resolved Monte-Carlo parameters.
    #[must_use]
    pub fn mc(&self) -> &McParams {
        self.mc.as_ref().unwrap_or(&self.base.mc)
    }

    /// Renames the point (labeling only — the name is never fingerprinted).
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = Some(name.into());
    }

    /// Sets one field by its dotted path — the overlay analogue of
    /// [`Scenario::set`] — cloning only the touched section into the delta.
    ///
    /// # Errors
    ///
    /// The same [`Scenario::set`] errors: [`ScenarioError::UnknownKey`] for
    /// an unrecognized path, [`ScenarioError::InvalidValue`] when `value`
    /// does not parse.
    pub fn set(&mut self, key: &str, value: &str) -> Result<(), ScenarioError> {
        if key == "name" {
            self.name = Some(unquote(value));
            return Ok(());
        }
        let base = &self.base;
        match key.split_once('.').map(|(section, _)| section) {
            Some("grid") => set_grid_field(
                self.grid.get_or_insert_with(|| base.grid.clone()),
                key,
                value,
            ),
            Some("device") => set_device_field(
                self.device.get_or_insert_with(|| base.device.clone()),
                key,
                value,
            ),
            Some("fab") => {
                set_fab_field(self.fab.get_or_insert_with(|| base.fab.clone()), key, value)
            }
            Some("fleet") => set_fleet_field(
                self.fleet.get_or_insert_with(|| base.fleet.clone()),
                key,
                value,
            ),
            Some("mc") => set_mc_field(self.mc.get_or_insert_with(|| base.mc.clone()), key, value),
            _ => Err(ScenarioError::UnknownKey(key.to_string())),
        }
    }

    /// Clones the resolved view out into an owned [`Scenario`].
    #[must_use]
    pub fn materialize(&self) -> Scenario {
        Scenario {
            name: self.name.clone().unwrap_or_else(|| self.base.name.clone()),
            grid: self.grid.clone().unwrap_or_else(|| self.base.grid.clone()),
            device: self
                .device
                .clone()
                .unwrap_or_else(|| self.base.device.clone()),
            fab: self.fab.clone().unwrap_or_else(|| self.base.fab.clone()),
            fleet: self
                .fleet
                .clone()
                .unwrap_or_else(|| self.base.fleet.clone()),
            mc: self.mc.clone().unwrap_or_else(|| self.base.mc.clone()),
        }
    }

    /// [`Scenario::validate`] over the resolved sections.
    ///
    /// # Errors
    ///
    /// The same [`Scenario::validate`] errors for unphysical parameters.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        validate_parts(
            self.grid(),
            self.device(),
            self.fab(),
            self.fleet(),
            self.mc(),
        )
    }
}

impl deps::FieldSource for ScenarioOverlay {
    fn name(&self) -> &str {
        ScenarioOverlay::name(self)
    }
    fn grid(&self) -> &GridParams {
        ScenarioOverlay::grid(self)
    }
    fn device(&self) -> &DeviceParams {
        ScenarioOverlay::device(self)
    }
    fn fab(&self) -> &FabParams {
        ScenarioOverlay::fab(self)
    }
    fn fleet(&self) -> &FleetParams {
        ScenarioOverlay::fleet(self)
    }
    fn mc(&self) -> &McParams {
        ScenarioOverlay::mc(self)
    }
}

/// The context every experiment runs in: one scenario plus typed accessors
/// for the quantities the models consume.
///
/// A context built by [`Self::tracking`] additionally records every
/// canonical scenario field the typed accessors touch, which is how CI
/// verifies each experiment's declared dependency set
/// ([`deps::ScenarioPath`]) against its actual reads. Raw scenario access
/// ([`Self::scenario`], [`Self::is_paper`]) counts as reading *every*
/// semantic field — an experiment wanting a small dependency set must stay
/// on the typed accessors.
#[derive(Debug)]
pub struct RunContext {
    overlay: ScenarioOverlay,
    /// Lazily materialized owned scenario backing the `&Scenario` return of
    /// [`Self::scenario`]. Typed accessors never pay for it; a context whose
    /// overlay is pristine never pays for it either (raw access borrows the
    /// shared base directly).
    materialized: OnceLock<Scenario>,
    tracker: Option<Arc<ReadTracker>>,
}

impl Clone for RunContext {
    fn clone(&self) -> Self {
        Self {
            overlay: self.overlay.clone(),
            materialized: OnceLock::new(),
            tracker: self.tracker.clone(),
        }
    }
}

impl Default for RunContext {
    fn default() -> Self {
        Self::paper()
    }
}

impl PartialEq for RunContext {
    /// Contexts compare by (resolved) scenario; whether reads are being
    /// tracked is an observation concern, not an identity one.
    fn eq(&self, other: &Self) -> bool {
        self.overlay == other.overlay
    }
}

impl RunContext {
    /// Records one canonical field read (no-op without a tracker).
    fn record(&self, field: &'static str) {
        if let Some(tracker) = &self.tracker {
            tracker.record(field);
        }
    }

    /// Records a read of every semantic field (raw scenario access).
    fn record_all(&self) {
        if let Some(tracker) = &self.tracker {
            for field in deps::FIELDS.iter().filter(|f| f.semantic) {
                tracker.record(field.path);
            }
        }
    }
    /// A context running the given scenario.
    ///
    /// # Panics
    ///
    /// Panics when the scenario fails [`Scenario::validate`] — constructing
    /// the context is the last moment an unphysical parameter can be named
    /// precisely; deeper in the models it would surface as an opaque solver
    /// panic. Use [`Self::try_new`] to handle the error instead.
    #[must_use]
    pub fn new(scenario: Scenario) -> Self {
        Self::try_new(scenario).unwrap_or_else(|e| panic!("{e}"))
    }

    /// A context running the given scenario, rejecting invalid parameters.
    ///
    /// # Errors
    ///
    /// Returns the [`Scenario::validate`] error for unphysical parameters.
    pub fn try_new(scenario: Scenario) -> Result<Self, ScenarioError> {
        scenario.validate()?;
        Ok(Self {
            overlay: ScenarioOverlay::new(Arc::new(scenario)),
            materialized: OnceLock::new(),
            tracker: None,
        })
    }

    /// A context running a copy-on-write sweep point directly — no owned
    /// scenario clone is made. This is how the sweep grid turns a
    /// [`sweep::ScenarioPoint`] into a runnable context.
    ///
    /// # Errors
    ///
    /// Returns the [`Scenario::validate`] error for unphysical parameters.
    pub fn try_from_overlay(overlay: ScenarioOverlay) -> Result<Self, ScenarioError> {
        overlay.validate()?;
        Ok(Self {
            overlay,
            materialized: OnceLock::new(),
            tracker: None,
        })
    }

    /// A context that records every canonical scenario field the typed
    /// accessors read, returned alongside its [`ReadTracker`]. This is the
    /// instrument behind the dependency-declaration CI check: run an
    /// experiment under a tracking context and compare
    /// [`ReadTracker::reads`] with the expansion of its declared paths.
    ///
    /// # Errors
    ///
    /// Returns the [`Scenario::validate`] error for unphysical parameters.
    pub fn tracking(scenario: Scenario) -> Result<(Self, Arc<ReadTracker>), ScenarioError> {
        let mut ctx = Self::try_new(scenario)?;
        let tracker = Arc::new(ReadTracker::new());
        ctx.tracker = Some(Arc::clone(&tracker));
        Ok((ctx, tracker))
    }

    /// The context reproducing the paper exactly.
    #[must_use]
    pub fn paper() -> Self {
        Self::new(Scenario::paper_defaults())
    }

    /// The underlying scenario. Counts as reading every semantic field when
    /// tracking: raw access gives no visibility into which fields the caller
    /// consumed. For a sweep-point context this materializes (once, lazily)
    /// an owned scenario from the overlay; typed accessors never do.
    #[must_use]
    pub fn scenario(&self) -> &Scenario {
        self.record_all();
        if self.overlay.is_pristine() {
            self.overlay.base().as_ref()
        } else {
            self.materialized.get_or_init(|| self.overlay.materialize())
        }
    }

    /// Whether this context runs the unmodified paper scenario (used to
    /// label artifacts and keep paper-anchor notes honest). Compares — and
    /// therefore reads — every field; experiments with narrow dependency
    /// sets should use [`Self::grid_is_paper`] / [`Self::fleet_is_paper`]
    /// instead.
    #[must_use]
    pub fn is_paper(&self) -> bool {
        self.record_all();
        let paper = Scenario::paper_defaults();
        self.overlay.name() == paper.name
            && *self.overlay.grid() == paper.grid
            && *self.overlay.device() == paper.device
            && *self.overlay.fab() == paper.fab
            && *self.overlay.fleet() == paper.fleet
            && *self.overlay.mc() == paper.mc
    }

    /// Whether the operational-grid parameters (intensity and renewable
    /// fraction) match the paper defaults. Reads only those two fields, so
    /// grid-labeled output stays cacheable across non-grid sweep axes.
    #[must_use]
    pub fn grid_is_paper(&self) -> bool {
        self.record("grid.intensity");
        self.record("grid.renewable_fraction");
        let paper = Scenario::paper_defaults();
        let grid = self.overlay.grid();
        grid.intensity_g_per_kwh == paper.grid.intensity_g_per_kwh
            && grid.renewable_fraction == paper.grid.renewable_fraction
    }

    /// Whether the fleet/facility parameters match the paper's Prineville
    /// configuration. Reads only the `fleet.*` fields.
    #[must_use]
    pub fn fleet_is_paper(&self) -> bool {
        self.record_fleet();
        *self.overlay.fleet() == Scenario::paper_defaults().fleet
    }

    /// Whether the *raw* grid intensity matches the paper default. Reads
    /// only `grid.intensity` — for paths (the facility model) that consume
    /// the unblended intensity and ignore the renewable fraction.
    #[must_use]
    pub fn grid_intensity_is_paper(&self) -> bool {
        self.record("grid.intensity");
        self.overlay.grid().intensity_g_per_kwh
            == Scenario::paper_defaults().grid.intensity_g_per_kwh
    }

    /// Records every `fleet.*` semantic field, derived from the canonical
    /// registry so a new fleet field cannot leave this list behind.
    fn record_fleet(&self) {
        for field in deps::expand(&[deps::ScenarioPath::of("fleet.*")]) {
            self.record(field);
        }
    }

    /// The raw operational grid intensity.
    #[must_use]
    pub fn grid_intensity(&self) -> CarbonIntensity {
        self.record("grid.intensity");
        CarbonIntensity::from_g_per_kwh(self.overlay.grid().intensity_g_per_kwh)
    }

    /// The configured grid regions (time-resolved intensity traces). May be
    /// empty: site regions then resolve against the builtin catalog
    /// ([`trace::builtin_region_trace`]).
    #[must_use]
    pub fn grid_regions(&self) -> &[RegionParams] {
        self.record("grid.regions");
        &self.overlay.grid().regions
    }

    /// The operational intensity after blending the renewable fraction at
    /// [`RENEWABLE_PPA_G_PER_KWH`].
    #[must_use]
    pub fn effective_grid_intensity(&self) -> CarbonIntensity {
        self.record("grid.renewable_fraction");
        self.grid_intensity().blend(
            CarbonIntensity::from_g_per_kwh(RENEWABLE_PPA_G_PER_KWH),
            1.0 - self.overlay.grid().renewable_fraction,
        )
    }

    /// The assumed device lifetime.
    #[must_use]
    pub fn device_lifetime(&self) -> TimeSpan {
        self.record("device.lifetime");
        TimeSpan::from_years(self.overlay.device().lifetime_years)
    }

    /// The SoC share of device production carbon.
    #[must_use]
    pub fn soc_budget_share(&self) -> f64 {
        self.record("device.soc_budget_share");
        self.overlay.device().soc_budget_share
    }

    /// The featured fab node in nanometres.
    #[must_use]
    pub fn fab_node_nm(&self) -> f64 {
        self.record("fab.node_nm");
        self.overlay.fab().node_nm
    }

    /// The defect-density multiplier.
    #[must_use]
    pub fn fab_yield_factor(&self) -> f64 {
        self.record("fab.yield_factor");
        self.overlay.fab().yield_factor
    }

    /// The renewable share of fab electricity.
    #[must_use]
    pub fn fab_renewable_share(&self) -> f64 {
        self.record("fab.renewable_share");
        self.overlay.fab().renewable_share
    }

    /// The fleet demand multiplier.
    #[must_use]
    pub fn fleet_scale(&self) -> f64 {
        self.record("fleet.scale");
        self.overlay.fleet().scale
    }

    /// The full fleet/facility parameter block. Returning the whole struct
    /// counts as reading every `fleet.*` field.
    #[must_use]
    pub fn fleet(&self) -> &FleetParams {
        self.record_fleet();
        self.overlay.fleet()
    }

    /// The facility planning horizon in whole years.
    #[must_use]
    pub fn fleet_horizon_years(&self) -> usize {
        self.record("fleet.horizon_years");
        self.overlay.fleet().horizon_years as usize
    }

    /// The Monte-Carlo base seed.
    #[must_use]
    pub fn mc_seed(&self) -> u64 {
        self.record("mc.seed");
        self.overlay.mc().seed
    }

    /// The Monte-Carlo trial count.
    #[must_use]
    pub fn mc_samples(&self) -> u32 {
        self.record("mc.samples");
        self.overlay.mc().samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toml_round_trips_paper_defaults() {
        let s = Scenario::paper_defaults();
        let parsed = Scenario::from_toml(&s.to_toml()).unwrap();
        assert_eq!(parsed, s);
        // A second emit is byte-identical: canonical form.
        assert_eq!(parsed.to_toml(), s.to_toml());
    }

    #[test]
    fn toml_round_trips_custom_scenario() {
        let s = Scenario::builder()
            .name("green-fab")
            .grid_intensity(50.0)
            .energy_source("hydropower")
            .renewable_fraction(0.5)
            .lifetime_years(4.5)
            .fab_renewable_share(0.9)
            .fleet_scale(10.0)
            .mc_seed(99)
            .mc_samples(5_000)
            .build();
        assert_eq!(Scenario::from_toml(&s.to_toml()).unwrap(), s);
    }

    #[test]
    fn partial_toml_keeps_paper_defaults() {
        let s = Scenario::from_toml("[grid]\nintensity_g_per_kwh = 50 # BPA hydro\n").unwrap();
        assert_eq!(s.grid.intensity_g_per_kwh, 50.0);
        assert_eq!(s.device.lifetime_years, 3.0);
        assert_eq!(s.mc.samples, 20_000);
    }

    #[test]
    fn unknown_keys_and_bad_values_are_rejected() {
        assert!(matches!(
            Scenario::from_toml("[grid]\nintesnity = 50\n"),
            Err(ScenarioError::UnknownKey(_))
        ));
        assert!(matches!(
            Scenario::from_toml("[grid]\nintensity_g_per_kwh = dirty\n"),
            Err(ScenarioError::InvalidValue { .. })
        ));
        assert!(matches!(
            Scenario::from_toml("just some words\n"),
            Err(ScenarioError::Parse { line: 1, .. })
        ));
        assert!(matches!(
            Scenario::from_toml("[grid\nintensity = 1\n"),
            Err(ScenarioError::Parse { .. })
        ));
    }

    #[test]
    fn dotted_set_overrides_every_section() {
        let mut s = Scenario::paper_defaults();
        for (key, value) in [
            ("grid.intensity", "11"),
            ("grid.renewable_fraction", "0.25"),
            ("device.lifetime", "5"),
            ("device.soc_budget_share", "0.6"),
            ("fab.node", "5"),
            ("fab.yield_factor", "2"),
            ("fab.renewable_share", "1.0"),
            ("fleet.scale", "3"),
            ("fleet.initial_servers", "5000"),
            ("fleet.growth", "1.4"),
            ("fleet.pue", "1.5"),
            ("fleet.renewable_ramp", "0,0.5,1"),
            ("fleet.deferrable", "0.35"),
            ("fleet.construction_kt", "80"),
            ("fleet.building_amortization", "15"),
            ("fleet.start_year", "2021"),
            ("fleet.horizon", "10"),
            ("mc.seed", "77"),
            ("mc.samples", "1000"),
        ] {
            s.set(key, value).unwrap();
        }
        assert_eq!(s.grid.intensity_g_per_kwh, 11.0);
        assert_eq!(s.device.lifetime_years, 5.0);
        assert_eq!(s.fab.node_nm, 5.0);
        assert_eq!(s.fleet.initial_servers, 5_000);
        assert_eq!(s.fleet.growth, 1.4);
        assert_eq!(s.fleet.pue, 1.5);
        assert_eq!(s.fleet.renewable_ramp, vec![0.0, 0.5, 1.0]);
        assert_eq!(s.fleet.deferrable, 0.35);
        assert_eq!(s.fleet.construction_kt, 80.0);
        assert_eq!(s.fleet.building_amortization_years, 15.0);
        assert_eq!(s.fleet.start_year, 2021);
        assert_eq!(s.fleet.horizon_years, 10);
        assert_eq!(s.mc.seed, 77);
        assert_eq!(s.mc.samples, 1_000);
        s.validate().unwrap();
        assert_eq!(
            s.set("nope.key", "1"),
            Err(ScenarioError::UnknownKey("nope.key".to_string()))
        );
    }

    #[test]
    fn regions_and_sites_round_trip_through_toml_and_set() {
        let mut s = Scenario::paper_defaults();
        s.set("grid.region.pnw.trace", "flat(24)").unwrap();
        s.set("grid.region.sunny.trace", "solar(380,120)").unwrap();
        s.set("fleet.sites", "main@default:0.6,pnw@pnw:0.4")
            .unwrap();
        s.validate().unwrap();
        assert_eq!(s.grid.regions.len(), 2);
        assert_eq!(s.grid.regions[0].hours, vec![24.0; 24]);
        assert_eq!(s.fleet.sites[1].region, "pnw");
        let back = Scenario::from_toml(&s.to_toml()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_toml(), s.to_toml());
        // Re-assigning an existing region replaces its trace in place.
        s.set("grid.region.pnw.trace", "flat(30)").unwrap();
        assert_eq!(s.grid.regions.len(), 2);
        assert_eq!(s.grid.regions[0].hours, vec![30.0; 24]);
    }

    #[test]
    fn site_bracket_paths_set_weight_and_region() {
        // A site introduced by weight starts from the main@default fleet and
        // lands in the region of its own name.
        let mut s = Scenario::paper_defaults();
        s.set("fleet.sites[hydro].weight", "0.3").unwrap();
        s.validate().unwrap();
        assert_eq!(s.fleet.sites.len(), 2);
        assert_eq!(s.fleet.sites[0].name, "main");
        assert!((s.fleet.sites[0].weight - 0.7).abs() < 1e-12);
        assert_eq!(s.fleet.sites[1].region, "hydro");
        assert_eq!(s.fleet.sites[1].weight, 0.3);
        // Bare bracket form is the weight; `.region` re-points the site.
        s.set("fleet.sites[hydro]", "0.5").unwrap();
        assert_eq!(s.fleet.sites[1].weight, 0.5);
        s.set("fleet.sites[hydro].region", "wind").unwrap();
        assert_eq!(s.fleet.sites[1].region, "wind");
        s.validate().unwrap();
        // `.region` on a fresh site materializes it at weight 0 so the two
        // assignments commute.
        let mut fresh = Scenario::paper_defaults();
        fresh.set("fleet.sites[aux].region", "solar").unwrap();
        fresh.set("fleet.sites[aux].weight", "0.2").unwrap();
        assert_eq!(fresh.fleet.sites[1].region, "solar");
        assert_eq!(fresh.fleet.sites[1].weight, 0.2);
        fresh.validate().unwrap();
        // Unknown bracket suffixes stay unknown keys.
        assert!(matches!(
            fresh.set("fleet.sites[aux].nope", "1"),
            Err(ScenarioError::UnknownKey(_))
        ));
        assert!(matches!(
            fresh.set("fleet.sites[].weight", "1"),
            Err(ScenarioError::UnknownKey(_))
        ));
    }

    #[test]
    fn validation_rejects_broken_regions_and_sites() {
        // A site naming neither a configured nor a builtin region.
        let mut s = Scenario::paper_defaults();
        s.set("fleet.sites", "main@default:0.5,far@mars:0.5")
            .unwrap();
        assert!(matches!(
            s.validate(),
            Err(ScenarioError::Invalid(m)) if m.contains("mars") && m.contains("builtin")
        ));
        // Configuring the region fixes it.
        s.set("grid.region.mars.trace", "flat(500)").unwrap();
        s.validate().unwrap();
        // Weights must sum to 1.
        let mut lop = Scenario::paper_defaults();
        lop.set("fleet.sites", "a@default:0.5,b@default:0.2")
            .unwrap();
        assert!(matches!(
            lop.validate(),
            Err(ScenarioError::Invalid(m)) if m.contains("sum to 1")
        ));
        // Duplicate site and region names are rejected.
        let mut dup = Scenario::paper_defaults();
        dup.set("fleet.sites", "a@default:0.5,a@default:0.5")
            .unwrap();
        assert!(matches!(
            dup.validate(),
            Err(ScenarioError::Invalid(m)) if m.contains("more than once")
        ));
        let mut dup_region = Scenario::paper_defaults();
        dup_region.grid.regions = vec![
            RegionParams {
                name: "x".to_string(),
                hours: vec![1.0; 24],
            },
            RegionParams {
                name: "x".to_string(),
                hours: vec![2.0; 24],
            },
        ];
        assert!(matches!(
            dup_region.validate(),
            Err(ScenarioError::Invalid(m)) if m.contains("more than once")
        ));
        // Traces must be physical and hourly.
        let mut neg = Scenario::paper_defaults();
        neg.grid.regions = vec![RegionParams {
            name: "bad".to_string(),
            hours: vec![-1.0; 24],
        }];
        assert!(matches!(
            neg.validate(),
            Err(ScenarioError::Invalid(m)) if m.contains("non-negative")
        ));
        let mut short = Scenario::paper_defaults();
        short.grid.regions = vec![RegionParams {
            name: "bad".to_string(),
            hours: vec![1.0; 7],
        }];
        assert!(matches!(
            short.validate(),
            Err(ScenarioError::Invalid(m)) if m.contains("24 hourly values")
        ));
        // The new scalar fields have range checks too.
        for (key, value, needle) in [
            ("fleet.deferrable", "1.5", "[0, 1]"),
            ("fleet.building_amortization_years", "0", "positive"),
            ("fleet.start_year", "1492", "1900..=2100"),
        ] {
            let mut bad = Scenario::paper_defaults();
            bad.set(key, value).unwrap();
            assert!(
                matches!(bad.validate(), Err(ScenarioError::Invalid(m)) if m.contains(needle)),
                "{key}"
            );
        }
    }

    #[test]
    fn validation_rejects_unphysical_parameters() {
        let mut s = Scenario::paper_defaults();
        s.validate().unwrap();
        s.grid.renewable_fraction = 1.5;
        assert!(matches!(s.validate(), Err(ScenarioError::Invalid(_))));
        s = Scenario::paper_defaults();
        s.device.lifetime_years = 0.0;
        assert!(s.validate().is_err());
        s = Scenario::paper_defaults();
        s.grid.intensity_g_per_kwh = f64::NAN;
        assert!(s.validate().is_err());
    }

    #[test]
    fn fleet_params_round_trip_and_reject_unphysical_values() {
        // The ramp serializes as a quoted list and round-trips through TOML.
        let s = Scenario::builder()
            .name("capacity")
            .fleet_initial_servers(5_000)
            .fleet_growth(1.18)
            .fleet_pue(1.4)
            .fleet_renewable_ramp(vec![0.0, 0.25, 0.5, 1.0])
            .fleet_construction_kt(42.5)
            .fleet_horizon_years(12)
            .build();
        s.validate().unwrap();
        let back = Scenario::from_toml(&s.to_toml()).unwrap();
        assert_eq!(back, s);

        // PUE below 1 is unphysical (cooling cannot generate energy).
        let mut bad = Scenario::paper_defaults();
        bad.set("fleet.pue", "0.9").unwrap();
        assert!(matches!(bad.validate(), Err(ScenarioError::Invalid(m)) if m.contains("pue")));

        // Growth must be strictly positive.
        for growth in ["0", "-0.5", "nan"] {
            let mut bad = Scenario::paper_defaults();
            bad.set("fleet.growth", growth).unwrap();
            assert!(bad.validate().is_err(), "growth {growth} must be rejected");
        }

        // An empty ramp leaves the facility with no renewable trajectory.
        let mut bad = Scenario::paper_defaults();
        bad.set("fleet.renewable_ramp", "\"\"").unwrap();
        assert!(
            matches!(bad.validate(), Err(ScenarioError::Invalid(m)) if m.contains("ramp")),
            "empty ramp must be rejected"
        );
        // Coverage beyond 100% is rejected too.
        let mut bad = Scenario::paper_defaults();
        bad.set("fleet.ramp", "0.5,1.5").unwrap();
        assert!(bad.validate().is_err());
        // A non-numeric ramp element fails at set time.
        let mut s = Scenario::paper_defaults();
        assert!(matches!(
            s.set("fleet.renewable_ramp", "0.1,high,1"),
            Err(ScenarioError::InvalidValue { .. })
        ));

        // Degenerate fleets are rejected.
        let mut bad = Scenario::paper_defaults();
        bad.set("fleet.initial_servers", "0").unwrap();
        assert!(bad.validate().is_err());
        let mut bad = Scenario::paper_defaults();
        bad.set("fleet.horizon_years", "0").unwrap();
        assert!(bad.validate().is_err());
    }

    #[test]
    fn fleet_mix_round_trips_through_toml_and_set() {
        let s = Scenario::builder()
            .name("ai-buildout")
            .fleet_mix(vec![
                ("web".to_string(), 0.7),
                ("ai-training".to_string(), 0.3),
            ])
            .build();
        s.validate().unwrap();
        let back = Scenario::from_toml(&s.to_toml()).unwrap();
        assert_eq!(back, s);
        assert_eq!(back.to_toml(), s.to_toml());

        // --set style: the whole composition in one assignment.
        let mut by_set = Scenario::paper_defaults();
        by_set.set("fleet.mix", "web:0.7,ai-training:0.3").unwrap();
        assert_eq!(by_set.fleet.mix, s.fleet.mix);
        by_set.validate().unwrap();

        // A quoted value (the TOML form) parses identically.
        let mut quoted = Scenario::paper_defaults();
        quoted
            .set("fleet.mix", "\"web:0.7,ai-training:0.3\"")
            .unwrap();
        assert_eq!(quoted.fleet.mix, s.fleet.mix);

        // fleet.sku round-trips and defaults to the paper's web SKU.
        assert_eq!(Scenario::paper_defaults().fleet.sku, "web");
        let mut storage = Scenario::paper_defaults();
        storage.set("fleet.sku", "storage").unwrap();
        storage.validate().unwrap();
        assert_eq!(
            Scenario::from_toml(&storage.to_toml()).unwrap().fleet.sku,
            "storage"
        );
    }

    #[test]
    fn fleet_mix_bracket_paths_set_one_weight_and_renormalize() {
        // On the paper defaults (pure web) the complement goes to web.
        let mut s = Scenario::paper_defaults();
        s.set("fleet.mix[ai-training]", "0.3").unwrap();
        assert_eq!(
            s.fleet.mix,
            vec![("web".to_string(), 0.7), ("ai-training".to_string(), 0.3)]
        );
        s.validate().unwrap();

        // Weight 0 keeps the pure fleet's numbers exact (web stays at 1.0).
        let mut zero = Scenario::paper_defaults();
        zero.set("fleet.mix[ai-training]", "0").unwrap();
        assert_eq!(
            zero.fleet.mix,
            vec![("web".to_string(), 1.0), ("ai-training".to_string(), 0.0)]
        );
        zero.validate().unwrap();

        // Re-setting an existing entry rescales the others proportionally.
        let mut s = Scenario::paper_defaults();
        s.set("fleet.mix", "web:0.5,storage:0.25,ai-training:0.25")
            .unwrap();
        s.set("fleet.mix[ai-training]", "0.5").unwrap();
        let weight = |s: &Scenario, name: &str| {
            s.fleet
                .mix
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, w)| *w)
                .unwrap()
        };
        assert!((weight(&s, "ai-training") - 0.5).abs() < 1e-12);
        assert!((weight(&s, "web") - 1.0 / 3.0).abs() < 1e-12);
        assert!((weight(&s, "storage") - 1.0 / 6.0).abs() < 1e-12);
        s.validate().unwrap();

        // Setting the only SKU below full weight cannot renormalize.
        let mut stuck = Scenario::paper_defaults();
        assert!(matches!(
            stuck.set("fleet.mix[web]", "0.5"),
            Err(ScenarioError::Invalid(_))
        ));
        // Out-of-range weights are rejected at set time, naming the SKU the
        // user actually assigned (not whichever other SKU would have gone
        // negative after rescaling).
        let mut over = Scenario::paper_defaults();
        let err = over.set("fleet.mix[ai-training]", "1.5").unwrap_err();
        assert!(
            matches!(&err, ScenarioError::Invalid(m) if m.contains("fleet.mix[ai-training]")),
            "got {err:?}"
        );
        assert!(over.set("fleet.mix[ai-training]", "-0.1").is_err());
        // An empty bracket name is an unknown key, not a silent no-op.
        assert!(matches!(
            Scenario::paper_defaults().set("fleet.mix[]", "0.5"),
            Err(ScenarioError::UnknownKey(_))
        ));
    }

    #[test]
    fn fleet_mix_validation_rejects_bad_compositions() {
        let invalid = |key: &str, value: &str| {
            let mut s = Scenario::paper_defaults();
            s.set(key, value).unwrap();
            match s.validate() {
                Err(ScenarioError::Invalid(message)) => message,
                other => panic!("{key}={value} must fail validation, got {other:?}"),
            }
        };
        // Unknown SKU names, in both the pure field and the mix.
        assert!(invalid("fleet.sku", "mainframe").contains("unknown server SKU"));
        assert!(invalid("fleet.mix", "web:0.5,mainframe:0.5").contains("mainframe"));
        // Negative weights.
        assert!(invalid("fleet.mix", "web:1.5,ai-training:-0.5").contains("non-negative"));
        // Weights that don't sum to 1 (outside tolerance).
        assert!(invalid("fleet.mix", "web:0.5,ai-training:0.4").contains("sum to 1"));
        // Duplicate SKUs.
        assert!(invalid("fleet.mix", "web:0.5,web:0.5").contains("more than once"));
        // Within tolerance passes.
        let mut ok = Scenario::paper_defaults();
        ok.set("fleet.mix", "web:0.3333333,ai-training:0.6666667")
            .unwrap();
        ok.validate().unwrap();
        // Malformed pairs fail at set time.
        let mut s = Scenario::paper_defaults();
        assert!(matches!(
            s.set("fleet.mix", "web-0.5"),
            Err(ScenarioError::InvalidValue { .. })
        ));
        assert!(matches!(
            s.set("fleet.mix", "web:heavy"),
            Err(ScenarioError::InvalidValue { .. })
        ));
        assert!(matches!(
            s.set("fleet.mix", ":0.5"),
            Err(ScenarioError::InvalidValue { .. })
        ));
    }

    #[test]
    fn paper_fleet_defaults_pin_the_prineville_facility() {
        let fleet = Scenario::paper_defaults().fleet;
        assert_eq!(fleet.initial_servers, 60_000);
        assert_eq!(fleet.growth, 1.28);
        assert_eq!(fleet.pue, 1.10);
        assert_eq!(fleet.construction_kt, 150.0);
        assert_eq!(fleet.horizon_years, 7);
        assert_eq!(fleet.renewable_ramp.len(), 7);
        assert_eq!(*fleet.renewable_ramp.last().unwrap(), 1.0);
    }

    #[test]
    fn contexts_reject_unphysical_scenarios() {
        let mut s = Scenario::paper_defaults();
        s.grid.intensity_g_per_kwh = 0.0;
        assert!(matches!(
            RunContext::try_new(s.clone()),
            Err(ScenarioError::Invalid(_))
        ));
        let result = std::panic::catch_unwind(|| RunContext::new(s));
        assert!(
            result.is_err(),
            "RunContext::new must reject invalid scenarios"
        );
    }

    #[test]
    fn context_accessors_blend_and_convert() {
        let ctx = RunContext::paper();
        assert!(ctx.is_paper());
        assert_eq!(ctx.grid_intensity().as_g_per_kwh(), 380.0);
        assert_eq!(ctx.effective_grid_intensity(), ctx.grid_intensity());
        assert_eq!(ctx.device_lifetime().as_days().round(), 1096.0);

        let half_green = RunContext::new(Scenario::builder().renewable_fraction(0.5).build());
        assert!(!half_green.is_paper());
        let blended = half_green.effective_grid_intensity().as_g_per_kwh();
        assert!((blended - (0.5 * 380.0 + 0.5 * 11.0)).abs() < 1e-12);
    }

    #[test]
    fn names_with_quotes_and_backslashes_round_trip() {
        for name in [
            r#"a "b" c"#,
            r"back\slash",
            r#"mix \" end"#,
            "has # hash",
            "multi\nline\tname",
        ] {
            let s = Scenario::builder().name(name).build();
            let back = Scenario::from_toml(&s.to_toml()).unwrap();
            assert_eq!(back.name, name, "emitted: {}", s.to_toml());
            assert_eq!(back, s);
        }
    }

    #[test]
    fn large_mc_seeds_serialize_losslessly() {
        let seed = (1u64 << 53) + 1;
        let s = Scenario::builder().mc_seed(seed).build();
        assert!(s.to_json().render().contains(&format!("\"seed\":{seed}")));
        assert_eq!(Scenario::from_toml(&s.to_toml()).unwrap().mc.seed, seed);
    }

    #[test]
    fn energy_sources_resolve_in_the_library() {
        // `set` resolves the Table II intensity, so library users match the
        // CLI without any CLI-side lookup.
        let mut s = Scenario::paper_defaults();
        s.set("grid.source", "wind").unwrap();
        assert_eq!(s.grid.intensity_g_per_kwh, 11.0);
        // A later explicit intensity wins, strictly in call order.
        s.set("grid.intensity", "100").unwrap();
        assert_eq!(s.grid.intensity_g_per_kwh, 100.0);
        // Unknown names fail at set time, naming the known sources.
        let err = s.set("grid.source", "unobtainium").unwrap_err();
        assert!(matches!(err, ScenarioError::UnknownSource(_)));
        assert!(err.to_string().contains("wind"));
        // The builder resolves too.
        let hydro = Scenario::builder().energy_source("Hydropower").build();
        assert_eq!(hydro.grid.intensity_g_per_kwh, 24.0);
        // Directly-poked unknown sources are caught by validate.
        let mut poked = Scenario::paper_defaults();
        poked.grid.source = Some("dark-matter".to_string());
        assert!(matches!(
            poked.validate(),
            Err(ScenarioError::UnknownSource(_))
        ));
    }

    #[test]
    fn toml_pinned_intensity_beats_source_in_any_order() {
        // Intensity written before the source line still wins: a file is a
        // declaration, not an override sequence.
        let s =
            Scenario::from_toml("[grid]\nintensity_g_per_kwh = 200\nsource = \"wind\"\n").unwrap();
        assert_eq!(s.grid.intensity_g_per_kwh, 200.0);
        let s =
            Scenario::from_toml("[grid]\nsource = \"wind\"\nintensity_g_per_kwh = 200\n").unwrap();
        assert_eq!(s.grid.intensity_g_per_kwh, 200.0);
        // Without a pinned intensity the source decides.
        let s = Scenario::from_toml("[grid]\nsource = \"coal\"\n").unwrap();
        assert_eq!(s.grid.intensity_g_per_kwh, 820.0);
    }

    #[test]
    fn tracking_contexts_record_typed_reads() {
        let (ctx, tracker) = RunContext::tracking(Scenario::paper_defaults()).unwrap();
        assert!(tracker.reads().is_empty());
        let _ = ctx.effective_grid_intensity();
        let _ = ctx.mc_seed();
        assert_eq!(
            tracker.reads(),
            ["grid.intensity", "grid.renewable_fraction", "mc.seed"]
        );
        let _ = ctx.fleet();
        assert!(tracker.reads().contains(&"fleet.renewable_ramp"));
        // Raw scenario access reads everything semantic.
        let _ = ctx.scenario();
        assert_eq!(
            tracker.reads().len(),
            deps::FIELDS.iter().filter(|f| f.semantic).count()
        );
        // Untracked contexts record nothing and still compare by scenario.
        let plain = RunContext::paper();
        let _ = plain.mc_seed();
        assert_eq!(plain, ctx);
    }

    #[test]
    fn sectional_paper_checks_read_only_their_sections() {
        let (ctx, tracker) = RunContext::tracking(Scenario::paper_defaults()).unwrap();
        assert!(ctx.grid_is_paper());
        assert_eq!(
            tracker.reads(),
            ["grid.intensity", "grid.renewable_fraction"]
        );
        assert!(ctx.fleet_is_paper());
        // grid.intensity + grid.renewable_fraction + the thirteen fleet
        // fields.
        assert_eq!(tracker.reads().len(), 15);

        // A non-grid change leaves the grid paper-like but not the fleet.
        let mut s = Scenario::paper_defaults();
        s.set("fleet.growth", "1.9").unwrap();
        let ctx = RunContext::new(s);
        assert!(ctx.grid_is_paper());
        assert!(!ctx.fleet_is_paper());
        let windy = RunContext::new(Scenario::builder().grid_intensity(11.0).build());
        assert!(!windy.grid_is_paper());
        assert!(windy.fleet_is_paper());
    }

    #[test]
    fn error_messages_name_the_problem() {
        assert_eq!(
            ScenarioError::UnknownKey("x.y".to_string()).to_string(),
            "unknown scenario key `x.y`"
        );
        assert!(ScenarioError::Parse {
            line: 3,
            message: "m".to_string()
        }
        .to_string()
        .contains("line 3"));
    }
}
