//! A minimal JSON document builder.
//!
//! The workspace builds offline, so instead of `serde_json` the report layer
//! carries this small value type: enough to emit well-formed, escaped JSON
//! artifacts for every experiment, with non-finite numbers mapped to `null`
//! (JSON has no NaN/Infinity).

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Number(f64),
    /// An integer, rendered losslessly (an `f64` cannot hold every `u64`,
    /// e.g. Monte-Carlo seeds above 2^53).
    Integer(u64),
    /// A string (escaped on output).
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, JsonValue)>>(pairs: I) -> Self {
        Self::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    #[must_use]
    pub fn array<I: IntoIterator<Item = JsonValue>>(items: I) -> Self {
        Self::Array(items.into_iter().collect())
    }

    /// Serializes to a compact JSON string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::Number(n) => {
                if n.is_finite() {
                    // `{:?}` is the shortest representation that round-trips.
                    out.push_str(&format!("{n:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Self::Integer(n) => out.push_str(&n.to_string()),
            Self::String(s) => write_escaped(s, out),
            Self::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Self::Object(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        Self::Number(n)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        Self::String(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        Self::String(s)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        Self::Bool(b)
    }
}

impl core::fmt::Display for JsonValue {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = JsonValue::object([
            ("name", JsonValue::from("fig10")),
            ("count", JsonValue::from(3.0)),
            ("ok", JsonValue::from(true)),
            (
                "tags",
                JsonValue::array([JsonValue::from("a"), JsonValue::Null]),
            ),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"fig10","count":3.0,"ok":true,"tags":["a",null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = JsonValue::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(JsonValue::from(f64::NAN).render(), "null");
        assert_eq!(JsonValue::from(f64::INFINITY).render(), "null");
        assert_eq!(JsonValue::from(1.5e300).render(), "1.5e300");
    }
}
