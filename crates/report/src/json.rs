//! A minimal JSON document builder and parser.
//!
//! The workspace builds offline, so instead of `serde_json` the report layer
//! carries this small value type: enough to emit well-formed, escaped JSON
//! artifacts for every experiment, with non-finite numbers mapped to `null`
//! (JSON has no NaN/Infinity). [`JsonValue::parse`] reads the same dialect
//! back — the `repro serve` wire protocol and the bench baseline gate both
//! speak newline-delimited JSON, so the workspace needs to consume JSON, not
//! just emit it. Parsing is round-trip stable on this module's own output:
//! `JsonValue::parse(v.render())?.render() == v.render()` (numbers render
//! via `{:?}`, the shortest form that round-trips; integer tokens without
//! `.`/`e` stay [`JsonValue::Integer`]).

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A finite number (non-finite values serialize as `null`).
    Number(f64),
    /// An integer, rendered losslessly (an `f64` cannot hold every `u64`,
    /// e.g. Monte-Carlo seeds above 2^53).
    Integer(u64),
    /// A string (escaped on output).
    String(String),
    /// An ordered array.
    Array(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs.
    #[must_use]
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, JsonValue)>>(pairs: I) -> Self {
        Self::Object(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    #[must_use]
    pub fn array<I: IntoIterator<Item = JsonValue>>(items: I) -> Self {
        Self::Array(items.into_iter().collect())
    }

    /// Serializes to a compact JSON string.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Self::Number(n) => {
                if n.is_finite() {
                    // `{:?}` is the shortest representation that round-trips.
                    out.push_str(&format!("{n:?}"));
                } else {
                    out.push_str("null");
                }
            }
            Self::Integer(n) => out.push_str(&n.to_string()),
            Self::String(s) => write_escaped(s, out),
            Self::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Self::Object(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(key, out);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// An error from [`JsonValue::parse`]: the byte offset where parsing failed
/// plus what was expected there.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl core::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", char::from(byte))))
        }
    }

    fn literal(&mut self, text: &str, value: JsonValue) -> Result<JsonValue, JsonParseError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{text}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonParseError> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::String),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| core::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs: a leading surrogate must be
                            // followed by `\uDC00..\uDFFF`.
                            let scalar = if (0xD800..0xDC00).contains(&hex) {
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 2;
                                let low = self
                                    .bytes
                                    .get(self.pos..self.pos + 4)
                                    .and_then(|h| core::str::from_utf8(h).ok())
                                    .and_then(|h| u32::from_str_radix(h, 16).ok())
                                    .filter(|l| (0xDC00..0xE000).contains(l))
                                    .ok_or_else(|| self.err("unpaired surrogate"))?;
                                self.pos += 4;
                                0x10000 + ((hex - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                hex
                            };
                            out.push(
                                char::from_u32(scalar)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?,
                            );
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                // Multi-byte UTF-8: copy the whole character through.
                _ if b >= 0x80 => {
                    let start = self.pos - 1;
                    while self.peek().is_some_and(|n| n & 0xC0 == 0x80) {
                        self.pos += 1;
                    }
                    let chunk = core::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    out.push_str(chunk);
                }
                _ if b < 0x20 => return Err(self.err("unescaped control character")),
                _ => out.push(char::from(b)),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut fractional = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    fractional = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        // Integer tokens stay `Integer` so `parse(render(v))` re-renders
        // byte-identically (an f64 would turn `60000` into `60000.0`).
        if !fractional {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(JsonValue::Integer(n));
            }
        }
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(JsonValue::Number)
            .ok_or_else(|| self.err(format!("invalid number `{text}`")))
    }
}

impl JsonValue {
    /// Parses a JSON document. Trailing whitespace is allowed; trailing
    /// non-whitespace is an error (a protocol line must be exactly one
    /// value).
    ///
    /// # Errors
    ///
    /// [`JsonParseError`] with the byte offset of the first problem.
    pub fn parse(text: &str) -> Result<Self, JsonParseError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing characters after JSON value"));
        }
        Ok(value)
    }

    /// Member lookup on an object (`None` for other variants or a missing
    /// key; first occurrence wins on duplicate keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            Self::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload ([`Self::Number`] or [`Self::Integer`]).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Number(n) => Some(*n),
            #[allow(clippy::cast_precision_loss)]
            Self::Integer(n) => Some(*n as f64),
            _ => None,
        }
    }

    /// The value as an unsigned integer: an [`Self::Integer`], or a
    /// [`Self::Number`] with zero fraction.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Integer(n) => Some(*n),
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Self::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The items, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            Self::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            Self::Object(pairs) => Some(pairs),
            _ => None,
        }
    }
}

impl From<f64> for JsonValue {
    fn from(n: f64) -> Self {
        Self::Number(n)
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        Self::String(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        Self::String(s)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        Self::Bool(b)
    }
}

impl core::fmt::Display for JsonValue {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(&self.render())
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_documents() {
        let doc = JsonValue::object([
            ("name", JsonValue::from("fig10")),
            ("count", JsonValue::from(3.0)),
            ("ok", JsonValue::from(true)),
            (
                "tags",
                JsonValue::array([JsonValue::from("a"), JsonValue::Null]),
            ),
        ]);
        assert_eq!(
            doc.render(),
            r#"{"name":"fig10","count":3.0,"ok":true,"tags":["a",null]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = JsonValue::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(v.render(), "\"a\\\"b\\\\c\\nd\\te\\u0001\"");
    }

    #[test]
    fn non_finite_numbers_become_null() {
        assert_eq!(JsonValue::from(f64::NAN).render(), "null");
        assert_eq!(JsonValue::from(f64::INFINITY).render(), "null");
        assert_eq!(JsonValue::from(1.5e300).render(), "1.5e300");
    }

    #[test]
    fn parses_scalars_arrays_and_objects() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse("42").unwrap(), JsonValue::Integer(42));
        assert_eq!(JsonValue::parse("42.5").unwrap(), JsonValue::Number(42.5));
        assert_eq!(JsonValue::parse("-3").unwrap(), JsonValue::Number(-3.0));
        assert_eq!(JsonValue::parse("1e3").unwrap(), JsonValue::Number(1000.0));
        assert_eq!(
            JsonValue::parse(r#"{"a":[1,"x",{"b":false}],"c":null}"#).unwrap(),
            JsonValue::object([
                (
                    "a",
                    JsonValue::array([
                        JsonValue::Integer(1),
                        JsonValue::from("x"),
                        JsonValue::object([("b", JsonValue::Bool(false))]),
                    ]),
                ),
                ("c", JsonValue::Null),
            ])
        );
    }

    #[test]
    fn parse_render_round_trips_own_output() {
        // The wire protocol depends on this: a client that parses an
        // artifact envelope and re-renders the inner object must reproduce
        // the CLI's bytes exactly.
        let doc = JsonValue::object([
            ("intensity", JsonValue::from(380.0)),
            ("servers", JsonValue::Integer(60_000)),
            ("seed", JsonValue::Integer(u64::MAX)),
            ("ratio", JsonValue::from(1.28)),
            ("tiny", JsonValue::from(1.5e-9)),
            ("huge", JsonValue::from(1.5e300)),
            ("label", JsonValue::from("a\"b\\c\nd\te\u{1}ü")),
            ("none", JsonValue::Null),
            ("flags", JsonValue::array([JsonValue::Bool(true)])),
        ]);
        let rendered = doc.render();
        let reparsed = JsonValue::parse(&rendered).unwrap();
        assert_eq!(reparsed, doc);
        assert_eq!(reparsed.render(), rendered);
    }

    #[test]
    fn parses_string_escapes_and_surrogate_pairs() {
        assert_eq!(
            JsonValue::parse(r#""a\"b\\c\ndAü""#).unwrap(),
            JsonValue::from("a\"b\\c\nd\u{41}ü")
        );
        assert_eq!(JsonValue::parse(r#""😀""#).unwrap(), JsonValue::from("😀"));
        assert!(
            JsonValue::parse(r#""\ud83d""#).is_err(),
            "unpaired surrogate"
        );
    }

    #[test]
    fn rejects_malformed_documents_with_offsets() {
        for bad in [
            "",
            "{",
            "[1,",
            r#"{"a":}"#,
            r#"{"a" 1}"#,
            "nul",
            "1 2",
            "\"unterminated",
            "{\"a\":1,}",
        ] {
            assert!(JsonValue::parse(bad).is_err(), "should reject `{bad}`");
        }
        let err = JsonValue::parse("[1, oops]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }

    #[test]
    fn accessors_navigate_parsed_documents() {
        let doc =
            JsonValue::parse(r#"{"name":"fig10","n":3,"x":1.5,"ok":true,"xs":[1,2]}"#).unwrap();
        assert_eq!(doc.get("name").and_then(JsonValue::as_str), Some("fig10"));
        assert_eq!(doc.get("n").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(doc.get("x").and_then(JsonValue::as_f64), Some(1.5));
        assert_eq!(doc.get("ok").and_then(JsonValue::as_bool), Some(true));
        assert_eq!(
            doc.get("xs").and_then(JsonValue::as_array).map(<[_]>::len),
            Some(2)
        );
        assert!(doc.get("missing").is_none());
        assert!(doc.as_object().is_some());
        assert!(JsonValue::Null.get("name").is_none());
    }
}
