//! Typed series artifacts.
//!
//! Tables render for humans; a [`Series`] is the machine-readable shape of a
//! figure: named axes, explicit units, numeric points with optional category
//! labels. Experiments attach series next to their tables so downstream
//! tooling (plotters, regression checks, the `--json` artifact writer) never
//! has to re-parse formatted strings.

use crate::json::JsonValue;

/// One sample of a series: a numeric x (year, sweep factor, index …), an
/// optional category label (device name, compute unit …) and the y value.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesPoint {
    /// Numeric x coordinate.
    pub x: f64,
    /// Optional category label for the point.
    pub label: Option<String>,
    /// The measured/modeled value.
    pub y: f64,
}

/// A typed (x, y) series with named, unit-bearing axes.
///
/// ```
/// use cc_report::Series;
///
/// let mut s = Series::new("breakeven", "frequency scale", "days");
/// s.push(0.4, 812.0).push(1.0, 350.0);
/// assert_eq!(s.len(), 2);
/// assert_eq!(s.y_at(1.0), Some(350.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Series name (unique within one experiment output).
    pub name: String,
    /// X-axis label, units included (e.g. `"year"`, `"renewable factor"`).
    pub x_label: String,
    /// Y-axis label, units included (e.g. `"kg CO2e"`, `"days"`).
    pub y_label: String,
    /// The points, in insertion order.
    pub points: Vec<SeriesPoint>,
}

impl Series {
    /// Creates an empty series.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Self {
            name: name.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            points: Vec::new(),
        }
    }

    /// Appends an unlabeled point.
    pub fn push(&mut self, x: f64, y: f64) -> &mut Self {
        self.points.push(SeriesPoint { x, label: None, y });
        self
    }

    /// Appends a labeled point.
    pub fn push_labeled(&mut self, x: f64, label: impl Into<String>, y: f64) -> &mut Self {
        self.points.push(SeriesPoint {
            x,
            label: Some(label.into()),
            y,
        });
        self
    }

    /// Builds a series from `(x, y)` pairs.
    #[must_use]
    pub fn from_pairs<I: IntoIterator<Item = (f64, f64)>>(
        name: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
        pairs: I,
    ) -> Self {
        let mut s = Self::new(name, x_label, y_label);
        for (x, y) in pairs {
            s.push(x, y);
        }
        s
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series has no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The y value at the first point with exactly this x, if any.
    #[must_use]
    pub fn y_at(&self, x: f64) -> Option<f64> {
        self.points.iter().find(|p| p.x == x).map(|p| p.y)
    }

    /// The y value at the first point carrying this label, if any.
    #[must_use]
    pub fn y_for(&self, label: &str) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.label.as_deref() == Some(label))
            .map(|p| p.y)
    }

    /// Smallest y value (`None` when empty).
    #[must_use]
    pub fn min_y(&self) -> Option<f64> {
        self.points.iter().map(|p| p.y).reduce(f64::min)
    }

    /// Largest y value (`None` when empty).
    #[must_use]
    pub fn max_y(&self) -> Option<f64> {
        self.points.iter().map(|p| p.y).reduce(f64::max)
    }

    /// The series as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("name", JsonValue::from(self.name.as_str())),
            ("x_label", JsonValue::from(self.x_label.as_str())),
            ("y_label", JsonValue::from(self.y_label.as_str())),
            (
                "points",
                JsonValue::array(self.points.iter().map(|p| {
                    JsonValue::object([
                        ("x", JsonValue::from(p.x)),
                        (
                            "label",
                            p.label.as_deref().map_or(JsonValue::Null, JsonValue::from),
                        ),
                        ("y", JsonValue::from(p.y)),
                    ])
                })),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_lookup() {
        let mut s = Series::new("s", "x", "y");
        s.push(1.0, 10.0).push_labeled(2.0, "dsp", 20.0);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
        assert_eq!(s.y_at(2.0), Some(20.0));
        assert_eq!(s.y_at(3.0), None);
        assert_eq!(s.y_for("dsp"), Some(20.0));
        assert_eq!(s.y_for("cpu"), None);
        assert_eq!(s.min_y(), Some(10.0));
        assert_eq!(s.max_y(), Some(20.0));
    }

    #[test]
    fn from_pairs_preserves_order() {
        let s = Series::from_pairs("s", "year", "twh", [(2010.0, 1.0), (2020.0, 2.0)]);
        assert_eq!(s.points[0].x, 2010.0);
        assert_eq!(s.points[1].y, 2.0);
    }

    #[test]
    fn json_shape() {
        let mut s = Series::new("be", "scale", "days");
        s.push_labeled(1.0, "cpu", 350.0);
        let json = s.to_json().render();
        assert!(json.contains(r#""name":"be""#));
        assert!(json.contains(r#""label":"cpu""#));
        assert!(json.contains(r#""y":350.0"#));
    }

    #[test]
    fn empty_series_extrema_are_none() {
        let s = Series::new("s", "x", "y");
        assert_eq!(s.min_y(), None);
        assert_eq!(s.max_y(), None);
    }
}
