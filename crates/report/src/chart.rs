//! Text bar charts for quick terminal visualization of figure series.

/// Renders a horizontal bar chart: one `(label, value)` bar per line, scaled
/// to `width` characters at the maximum value.
///
/// Negative values render as empty bars. Returns an empty string for empty
/// input.
///
/// ```
/// let chart = cc_report::chart::bars(&[("Coal", 820.0), ("Wind", 11.0)], 40);
/// assert!(chart.lines().count() == 2);
/// ```
#[must_use]
pub fn bars(data: &[(&str, f64)], width: usize) -> String {
    let max = data.iter().map(|&(_, v)| v).fold(0.0f64, f64::max);
    if data.is_empty() || max <= 0.0 || width == 0 {
        return data
            .iter()
            .map(|&(label, v)| format!("{label:>20} | {v:.3}\n"))
            .collect();
    }
    let label_w = data.iter().map(|&(l, _)| l.len()).max().unwrap_or(0);
    let mut out = String::new();
    for &(label, value) in data {
        let n = if value > 0.0 {
            ((value / max) * width as f64).round() as usize
        } else {
            0
        };
        out.push_str(&format!(
            "{label:>label_w$} | {} {value:.3}\n",
            "#".repeat(n)
        ));
    }
    out
}

/// Renders a stacked-share bar (e.g. a pie chart flattened to one line):
/// each `(label, share)` gets a proportional segment of `width` characters.
#[must_use]
pub fn stacked(data: &[(&str, f64)], width: usize) -> String {
    let total: f64 = data.iter().map(|&(_, v)| v.max(0.0)).sum();
    if total <= 0.0 || width == 0 {
        return String::new();
    }
    let glyphs = ['#', '=', '+', '-', '.', '*', 'o', '~'];
    let mut bar = String::new();
    let mut legend = String::new();
    for (i, &(label, value)) in data.iter().enumerate() {
        let glyph = glyphs[i % glyphs.len()];
        let n = ((value.max(0.0) / total) * width as f64).round() as usize;
        bar.push_str(&glyph.to_string().repeat(n));
        legend.push_str(&format!(
            "  {glyph} {label} ({:.1}%)\n",
            100.0 * value.max(0.0) / total
        ));
    }
    format!("[{bar}]\n{legend}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bars_scale_to_max() {
        let chart = bars(&[("a", 100.0), ("b", 50.0)], 10);
        let lines: Vec<&str> = chart.lines().collect();
        assert!(lines[0].matches('#').count() == 10);
        assert!(lines[1].matches('#').count() == 5);
    }

    #[test]
    fn bars_handle_degenerate_input() {
        assert_eq!(bars(&[], 10), "");
        let zero = bars(&[("a", 0.0)], 10);
        assert!(zero.contains('a'));
        let neg = bars(&[("a", -5.0), ("b", 10.0)], 10);
        assert!(neg.lines().next().unwrap().matches('#').count() == 0);
    }

    #[test]
    fn stacked_sums_to_width() {
        let chart = stacked(&[("capex", 86.0), ("opex", 14.0)], 50);
        let bar_line = chart.lines().next().unwrap();
        // Within rounding of the requested width (+2 brackets).
        assert!((bar_line.len() as i64 - 52).abs() <= 1);
        assert!(chart.contains("86.0%"));
    }

    #[test]
    fn stacked_empty() {
        assert_eq!(stacked(&[], 10), "");
        assert_eq!(stacked(&[("a", 0.0)], 10), "");
    }
}
