//! The experiment abstraction: every paper figure/table is an [`Experiment`]
//! that consumes a [`RunContext`] and produces tables, typed series and
//! commentary.

use crate::json::JsonValue;
use crate::scenario::RunContext;
use crate::series::Series;
use crate::table::Table;

/// Extension experiments known to the workspace, registered here so that
/// `ExperimentId::parse` can round-trip `ext-…` keys without allocating.
/// (`ExperimentId` stays `Copy` by holding `&'static str` names.)
pub const KNOWN_EXTENSIONS: [&str; 8] = [
    "sched",
    "die",
    "dvfs",
    "hetero",
    "fab",
    "mc",
    "facility",
    "scheduler",
];

/// Identifier of a paper artifact being reproduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ExperimentId {
    /// A numbered figure.
    Figure(u8),
    /// A numbered table (1 = Table I, …).
    Table(u8),
    /// A named extension experiment (not in the paper's evaluation).
    Extension(&'static str),
}

impl ExperimentId {
    /// Canonical command-line key: `fig05`, `table2`, `ext-sched`.
    #[must_use]
    pub fn key(&self) -> String {
        match self {
            Self::Figure(n) => format!("fig{n:02}"),
            Self::Table(n) => format!("table{n}"),
            Self::Extension(name) => format!("ext-{name}"),
        }
    }

    /// Parses a command-line key. Every key emitted by [`Self::key`] parses
    /// back, including `ext-…` keys for the extensions listed in
    /// [`KNOWN_EXTENSIONS`].
    #[must_use]
    pub fn parse(key: &str) -> Option<Self> {
        if let Some(rest) = key.strip_prefix("fig") {
            return rest.parse().ok().map(Self::Figure);
        }
        if let Some(rest) = key.strip_prefix("table") {
            return rest.parse().ok().map(Self::Table);
        }
        if let Some(rest) = key.strip_prefix("ext-") {
            return KNOWN_EXTENSIONS
                .iter()
                .find(|&&name| name == rest)
                .map(|&name| Self::Extension(name));
        }
        None
    }
}

/// Formats `n` as a roman numeral (any `u8`; `0` stays `"0"` since roman
/// numerals have no zero).
fn roman(n: u8) -> String {
    if n == 0 {
        return "0".to_string();
    }
    const DIGITS: [(u8, &str); 9] = [
        (100, "C"),
        (90, "XC"),
        (50, "L"),
        (40, "XL"),
        (10, "X"),
        (9, "IX"),
        (5, "V"),
        (4, "IV"),
        (1, "I"),
    ];
    let mut n = n;
    let mut out = String::new();
    for (value, digit) in DIGITS {
        while n >= value {
            out.push_str(digit);
            n -= value;
        }
    }
    out
}

impl core::fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Figure(n) => write!(f, "Figure {n}"),
            Self::Table(n) => write!(f, "Table {}", roman(*n)),
            Self::Extension(name) => write!(f, "Extension `{name}`"),
        }
    }
}

/// A decision threshold attached to a [`Scalar`]: the value at which the
/// experiment's conclusion flips, plus a label saying what flips. Sweep
/// comparisons use it to report *where along the swept axis* the scalar
/// crosses the threshold ("construction overtakes operations at growth ≈
/// 1.18").
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarThreshold {
    /// The threshold value, in the scalar's unit.
    pub value: f64,
    /// What crossing the threshold means (e.g. `"one-year amortization"`).
    pub label: String,
}

impl ScalarThreshold {
    /// The threshold as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("value", JsonValue::from(self.value)),
            ("label", JsonValue::from(self.label.as_str())),
        ])
    }
}

/// A named headline number with a unit — the single value a cross-scenario
/// comparison report diffs for this experiment (e.g. Fig 10's MobileNet-v3
/// CPU break-even days). The first scalar an experiment attaches is its
/// summary scalar.
#[derive(Debug, Clone, PartialEq)]
pub struct Scalar {
    /// Scalar name (unique within one experiment output).
    pub name: String,
    /// Unit label (e.g. `"days"`, `"kg CO2e"`).
    pub unit: String,
    /// The value.
    pub value: f64,
    /// Optional decision threshold for sweep crossover analysis.
    pub threshold: Option<ScalarThreshold>,
}

impl Scalar {
    /// The scalar as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("name", JsonValue::from(self.name.as_str())),
            ("unit", JsonValue::from(self.unit.as_str())),
            ("value", JsonValue::from(self.value)),
            (
                "threshold",
                self.threshold
                    .as_ref()
                    .map_or(JsonValue::Null, ScalarThreshold::to_json),
            ),
        ])
    }
}

/// The output of running an experiment: named tables, typed series, summary
/// scalars, plus free-form notes recording paper-vs-measured anchors.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ExperimentOutput {
    /// Titled tables, in presentation order.
    pub tables: Vec<(String, Table)>,
    /// Typed series artifacts, in presentation order.
    pub series: Vec<Series>,
    /// Named headline numbers; the first is the experiment's summary scalar.
    pub scalars: Vec<Scalar>,
    /// Commentary lines: what the paper reports vs what this run measured.
    pub notes: Vec<String>,
}

impl ExperimentOutput {
    /// Creates an empty output.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a titled table.
    pub fn table(&mut self, title: impl Into<String>, table: Table) -> &mut Self {
        self.tables.push((title.into(), table));
        self
    }

    /// Adds a typed series.
    pub fn series(&mut self, series: Series) -> &mut Self {
        self.series.push(series);
        self
    }

    /// Adds a commentary line.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Adds a named scalar; the first one added becomes the experiment's
    /// summary scalar.
    pub fn scalar(
        &mut self,
        name: impl Into<String>,
        unit: impl Into<String>,
        value: f64,
    ) -> &mut Self {
        self.scalars.push(Scalar {
            name: name.into(),
            unit: unit.into(),
            value,
            threshold: None,
        });
        self
    }

    /// Adds a named scalar carrying a decision threshold: sweep comparisons
    /// report where along the swept axis the scalar crosses it.
    pub fn scalar_with_threshold(
        &mut self,
        name: impl Into<String>,
        unit: impl Into<String>,
        value: f64,
        threshold: f64,
        threshold_label: impl Into<String>,
    ) -> &mut Self {
        self.scalars.push(Scalar {
            name: name.into(),
            unit: unit.into(),
            value,
            threshold: Some(ScalarThreshold {
                value: threshold,
                label: threshold_label.into(),
            }),
        });
        self
    }

    /// Finds an attached series by name.
    #[must_use]
    pub fn find_series(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }

    /// Finds an attached scalar by name.
    #[must_use]
    pub fn find_scalar(&self, name: &str) -> Option<&Scalar> {
        self.scalars.iter().find(|s| s.name == name)
    }

    /// The experiment's summary scalar — the first scalar attached — which
    /// cross-scenario comparison reports diff across sweep points.
    #[must_use]
    pub fn summary_scalar(&self) -> Option<&Scalar> {
        self.scalars.first()
    }

    /// Renders everything as Markdown (tables become GFM tables, notes a
    /// bullet list; series are artifact data and are skipped).
    #[must_use]
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        for (title, table) in &self.tables {
            out.push_str("### ");
            out.push_str(title);
            out.push_str("\n\n");
            out.push_str(&table.to_markdown());
            out.push('\n');
        }
        for scalar in &self.scalars {
            out.push_str(&format!(
                "- **{}**: {} {}\n",
                scalar.name, scalar.value, scalar.unit
            ));
        }
        for note in &self.notes {
            out.push_str("- ");
            out.push_str(note);
            out.push('\n');
        }
        out
    }

    /// Renders every table as CSV, separated by blank lines (notes are
    /// emitted as `# ` comment lines).
    #[must_use]
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        for (title, table) in &self.tables {
            out.push_str("# ");
            out.push_str(title);
            out.push('\n');
            out.push_str(&table.to_csv());
            out.push('\n');
        }
        for scalar in &self.scalars {
            out.push_str(&format!(
                "# scalar: {},{},{}\n",
                scalar.name, scalar.value, scalar.unit
            ));
        }
        for note in &self.notes {
            out.push_str("# note: ");
            out.push_str(note);
            out.push('\n');
        }
        out
    }

    /// The output as a JSON object: `tables`, `series`, `notes`.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            (
                "tables",
                JsonValue::array(self.tables.iter().map(|(title, table)| {
                    JsonValue::object([
                        ("title", JsonValue::from(title.as_str())),
                        (
                            "header",
                            JsonValue::array(
                                table.header().iter().map(|h| JsonValue::from(h.as_str())),
                            ),
                        ),
                        (
                            "rows",
                            JsonValue::array(table.rows().iter().map(|row| {
                                JsonValue::array(
                                    row.iter().map(|cell| JsonValue::from(cell.as_str())),
                                )
                            })),
                        ),
                    ])
                })),
            ),
            (
                "series",
                JsonValue::array(self.series.iter().map(Series::to_json)),
            ),
            (
                "scalars",
                JsonValue::array(self.scalars.iter().map(Scalar::to_json)),
            ),
            (
                "notes",
                JsonValue::array(self.notes.iter().map(|n| JsonValue::from(n.as_str()))),
            ),
        ])
    }

    /// Reconstructs an output from [`Self::to_json`]'s object shape — the
    /// exact inverse: `from_json(&out.to_json()) == Some(out)` for every
    /// finite output. Any structural mismatch (missing key, wrong type)
    /// yields `None`; the persistent cache treats that as a corrupt entry,
    /// i.e. a miss.
    #[must_use]
    pub fn from_json(value: &JsonValue) -> Option<Self> {
        fn strings(value: &JsonValue) -> Option<Vec<String>> {
            value
                .as_array()?
                .iter()
                .map(|v| v.as_str().map(str::to_string))
                .collect()
        }
        let mut output = Self::new();
        for table in value.get("tables")?.as_array()? {
            let mut t = Table::new(strings(table.get("header")?)?);
            for row in table.get("rows")?.as_array()? {
                t.row(strings(row)?);
            }
            let title = table.get("title")?.as_str()?.to_string();
            output.tables.push((title, t));
        }
        for series in value.get("series")?.as_array()? {
            let mut s = Series::new(
                series.get("name")?.as_str()?,
                series.get("x_label")?.as_str()?,
                series.get("y_label")?.as_str()?,
            );
            for point in series.get("points")?.as_array()? {
                let x = point.get("x")?.as_f64()?;
                let y = point.get("y")?.as_f64()?;
                match point.get("label")? {
                    JsonValue::Null => s.push(x, y),
                    label => s.push_labeled(x, label.as_str()?, y),
                };
            }
            output.series.push(s);
        }
        for scalar in value.get("scalars")?.as_array()? {
            let threshold = match scalar.get("threshold")? {
                JsonValue::Null => None,
                threshold => Some(ScalarThreshold {
                    value: threshold.get("value")?.as_f64()?,
                    label: threshold.get("label")?.as_str()?.to_string(),
                }),
            };
            output.scalars.push(Scalar {
                name: scalar.get("name")?.as_str()?.to_string(),
                unit: scalar.get("unit")?.as_str()?.to_string(),
                value: scalar.get("value")?.as_f64()?,
                threshold,
            });
        }
        for note in value.get("notes")?.as_array()? {
            output.notes.push(note.as_str()?.to_string());
        }
        Some(output)
    }

    /// Renders the output as a compact JSON string.
    #[must_use]
    pub fn render_json(&self) -> String {
        self.to_json().render()
    }

    /// Renders everything to text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (title, table) in &self.tables {
            out.push_str(title);
            out.push('\n');
            out.push_str(&table.render());
            out.push('\n');
        }
        for scalar in &self.scalars {
            out.push_str(&format!(
                "scalar: {} = {} {}\n",
                scalar.name, scalar.value, scalar.unit
            ));
        }
        for note in &self.notes {
            out.push_str("note: ");
            out.push_str(note);
            out.push('\n');
        }
        out
    }
}

/// A reproducible paper artifact, parameterized by a scenario.
///
/// Implementations must be deterministic functions of the context: the same
/// `ctx` always yields the same output (`ext-mc` derives its randomness from
/// the context's seed).
pub trait Experiment {
    /// Which figure/table this reproduces.
    fn id(&self) -> ExperimentId;

    /// One-line description (the figure caption, abbreviated).
    fn description(&self) -> &'static str;

    /// Runs the models under `ctx`'s scenario and produces the artifact's
    /// rows/series. With [`RunContext::paper`] the output reproduces the
    /// paper's numbers.
    fn run(&self, ctx: &RunContext) -> ExperimentOutput;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_round_trip() {
        assert_eq!(ExperimentId::Figure(5).key(), "fig05");
        assert_eq!(ExperimentId::parse("fig05"), Some(ExperimentId::Figure(5)));
        assert_eq!(ExperimentId::Table(2).key(), "table2");
        assert_eq!(ExperimentId::parse("table2"), Some(ExperimentId::Table(2)));
        assert_eq!(ExperimentId::parse("nope"), None);
        assert_eq!(ExperimentId::Extension("sched").key(), "ext-sched");
        // Extensions round-trip through parse too.
        for name in KNOWN_EXTENSIONS {
            let id = ExperimentId::Extension(name);
            assert_eq!(ExperimentId::parse(&id.key()), Some(id), "ext `{name}`");
        }
        assert_eq!(ExperimentId::parse("ext-unknown"), None);
    }

    #[test]
    fn display_uses_roman_numerals_for_tables() {
        assert_eq!(ExperimentId::Table(4).to_string(), "Table IV");
        assert_eq!(ExperimentId::Figure(10).to_string(), "Figure 10");
        assert_eq!(ExperimentId::Extension("x").to_string(), "Extension `x`");
    }

    #[test]
    fn roman_numerals_beyond_the_paper_range() {
        for (n, expect) in [
            (0, "0"),
            (1, "I"),
            (4, "IV"),
            (6, "VI"),
            (9, "IX"),
            (14, "XIV"),
            (40, "XL"),
            (99, "XCIX"),
            (148, "CXLVIII"),
            (255, "CCLV"),
        ] {
            assert_eq!(
                ExperimentId::Table(n).to_string(),
                format!("Table {expect}")
            );
        }
    }

    #[test]
    fn markdown_and_csv_renderings() {
        let mut out = ExperimentOutput::new();
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        out.table("T", t).note("n");
        let md = out.render_markdown();
        assert!(md.contains("### T"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("- n"));
        let csv = out.render_csv();
        assert!(csv.contains("# T"));
        assert!(csv.contains("a,b"));
        assert!(csv.contains("# note: n"));
    }

    #[test]
    fn output_renders_tables_and_notes() {
        let mut out = ExperimentOutput::new();
        let mut t = Table::new(["a"]);
        t.row(["1"]);
        out.table("My table", t)
            .note("paper: 2.7x; measured: 2.70x");
        let text = out.render();
        assert!(text.contains("My table"));
        assert!(text.contains("note: paper"));
    }

    #[test]
    fn scalars_render_everywhere_and_first_is_summary() {
        let mut out = ExperimentOutput::new();
        out.scalar("breakeven-days", "days", 350.0)
            .scalar("breakeven-images", "images", 5e9);
        assert_eq!(out.summary_scalar().unwrap().name, "breakeven-days");
        assert_eq!(out.find_scalar("breakeven-images").unwrap().value, 5e9);
        assert!(out.find_scalar("missing").is_none());
        assert!(out.render().contains("scalar: breakeven-days = 350 days"));
        assert!(out
            .render_markdown()
            .contains("**breakeven-days**: 350 days"));
        assert!(out
            .render_csv()
            .contains("# scalar: breakeven-days,350,days"));
        assert!(out.render_json().contains(
            r#""scalars":[{"name":"breakeven-days","unit":"days","value":350.0,"threshold":null}"#
        ));
    }

    #[test]
    fn thresholds_attach_and_serialize() {
        let mut out = ExperimentOutput::new();
        out.scalar_with_threshold(
            "breakeven-days",
            "days",
            350.0,
            365.0,
            "one-year amortization",
        );
        let scalar = out.summary_scalar().unwrap();
        let threshold = scalar.threshold.as_ref().unwrap();
        assert_eq!(threshold.value, 365.0);
        assert!(out
            .render_json()
            .contains(r#""threshold":{"value":365.0,"label":"one-year amortization"}"#));
    }

    #[test]
    fn from_json_inverts_to_json_exactly() {
        let mut out = ExperimentOutput::new();
        let mut t = Table::new(["device", "kg CO2e"]);
        t.row(["cpu", "18.2"]).row(["dsp", "3.4"]);
        let mut s = Series::new("trend", "year", "kg");
        s.push(2020.0, 5.5).push_labeled(2021.0, "cpu", 6.25);
        out.table("Embodied", t)
            .series(s)
            .scalar("breakeven-days", "days", 350.0)
            .scalar_with_threshold("ratio", "x", 1.28, 1.0, "parity")
            .note("paper: 2.7x; measured: 2.70x");
        let round_tripped = ExperimentOutput::from_json(&out.to_json()).unwrap();
        assert_eq!(round_tripped, out);
        // And the re-rendered JSON is byte-identical (floats via `{:?}`).
        assert_eq!(round_tripped.render_json(), out.render_json());
    }

    #[test]
    fn from_json_rejects_malformed_shapes() {
        use crate::json::JsonValue;
        for bad in [
            "null",
            "{}",
            r#"{"tables":[],"series":[],"scalars":[],"notes":null}"#,
            r#"{"tables":[{"title":"T"}],"series":[],"scalars":[],"notes":[]}"#,
            r#"{"tables":[],"series":[],"scalars":[{"name":"s","unit":"u","value":"oops","threshold":null}],"notes":[]}"#,
        ] {
            let value = JsonValue::parse(bad).unwrap();
            assert!(ExperimentOutput::from_json(&value).is_none(), "`{bad}`");
        }
    }

    #[test]
    fn output_json_includes_tables_series_and_notes() {
        let mut out = ExperimentOutput::new();
        let mut t = Table::new(["a"]);
        t.row(["1"]);
        let mut s = Series::new("trend", "year", "kg");
        s.push(2020.0, 5.0);
        out.table("T", t).series(s).note("anchor");
        let json = out.render_json();
        assert!(json.contains(r#""title":"T""#));
        assert!(json.contains(r#""name":"trend""#));
        assert!(json.contains(r#""notes":["anchor"]"#));
        assert_eq!(out.find_series("trend").unwrap().len(), 1);
        assert!(out.find_series("missing").is_none());
    }
}
