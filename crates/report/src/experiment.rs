//! The experiment abstraction: every paper figure/table is an [`Experiment`]
//! that produces tables and commentary.

use crate::table::Table;

/// Identifier of a paper artifact being reproduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord,
         serde::Serialize, serde::Deserialize)]
pub enum ExperimentId {
    /// A numbered figure.
    Figure(u8),
    /// A numbered table (1 = Table I, …).
    Table(u8),
    /// A named extension experiment (not in the paper's evaluation).
    Extension(&'static str),
}

impl ExperimentId {
    /// Canonical command-line key: `fig05`, `table2`, `ext-sched`.
    #[must_use]
    pub fn key(&self) -> String {
        match self {
            Self::Figure(n) => format!("fig{n:02}"),
            Self::Table(n) => format!("table{n}"),
            Self::Extension(name) => format!("ext-{name}"),
        }
    }

    /// Parses a command-line key.
    #[must_use]
    pub fn parse(key: &str) -> Option<Self> {
        if let Some(rest) = key.strip_prefix("fig") {
            return rest.parse().ok().map(Self::Figure);
        }
        if let Some(rest) = key.strip_prefix("table") {
            return rest.parse().ok().map(Self::Table);
        }
        // Extensions are matched by the registry against known names, so
        // parsing returns None here.
        None
    }
}

impl core::fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::Figure(n) => write!(f, "Figure {n}"),
            Self::Table(n) => {
                const ROMAN: [&str; 6] = ["0", "I", "II", "III", "IV", "V"];
                write!(f, "Table {}", ROMAN.get(*n as usize).copied().unwrap_or("?"))
            }
            Self::Extension(name) => write!(f, "Extension `{name}`"),
        }
    }
}

/// The output of running an experiment: named tables plus free-form notes
/// recording paper-vs-measured anchors.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct ExperimentOutput {
    /// Titled tables, in presentation order.
    pub tables: Vec<(String, Table)>,
    /// Commentary lines: what the paper reports vs what this run measured.
    pub notes: Vec<String>,
}

impl ExperimentOutput {
    /// Creates an empty output.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a titled table.
    pub fn table(&mut self, title: impl Into<String>, table: Table) -> &mut Self {
        self.tables.push((title.into(), table));
        self
    }

    /// Adds a commentary line.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Self {
        self.notes.push(note.into());
        self
    }

    /// Renders everything as Markdown (tables become GFM tables, notes a
    /// bullet list).
    #[must_use]
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        for (title, table) in &self.tables {
            out.push_str("### ");
            out.push_str(title);
            out.push_str("\n\n");
            out.push_str(&table.to_markdown());
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str("- ");
            out.push_str(note);
            out.push('\n');
        }
        out
    }

    /// Renders every table as CSV, separated by blank lines (notes are
    /// emitted as `# ` comment lines).
    #[must_use]
    pub fn render_csv(&self) -> String {
        let mut out = String::new();
        for (title, table) in &self.tables {
            out.push_str("# ");
            out.push_str(title);
            out.push('\n');
            out.push_str(&table.to_csv());
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str("# note: ");
            out.push_str(note);
            out.push('\n');
        }
        out
    }

    /// Renders everything to text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (title, table) in &self.tables {
            out.push_str(title);
            out.push('\n');
            out.push_str(&table.render());
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str("note: ");
            out.push_str(note);
            out.push('\n');
        }
        out
    }
}

/// A reproducible paper artifact.
pub trait Experiment {
    /// Which figure/table this reproduces.
    fn id(&self) -> ExperimentId;

    /// One-line description (the figure caption, abbreviated).
    fn description(&self) -> &'static str;

    /// Runs the models and produces the artifact's rows/series.
    fn run(&self) -> ExperimentOutput;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_round_trip() {
        assert_eq!(ExperimentId::Figure(5).key(), "fig05");
        assert_eq!(ExperimentId::parse("fig05"), Some(ExperimentId::Figure(5)));
        assert_eq!(ExperimentId::Table(2).key(), "table2");
        assert_eq!(ExperimentId::parse("table2"), Some(ExperimentId::Table(2)));
        assert_eq!(ExperimentId::parse("nope"), None);
        assert_eq!(ExperimentId::Extension("sched").key(), "ext-sched");
    }

    #[test]
    fn display_uses_roman_numerals_for_tables() {
        assert_eq!(ExperimentId::Table(4).to_string(), "Table IV");
        assert_eq!(ExperimentId::Figure(10).to_string(), "Figure 10");
        assert_eq!(ExperimentId::Extension("x").to_string(), "Extension `x`");
    }

    #[test]
    fn markdown_and_csv_renderings() {
        let mut out = ExperimentOutput::new();
        let mut t = Table::new(["a", "b"]);
        t.row(["1", "2"]);
        out.table("T", t).note("n");
        let md = out.render_markdown();
        assert!(md.contains("### T"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("- n"));
        let csv = out.render_csv();
        assert!(csv.contains("# T"));
        assert!(csv.contains("a,b"));
        assert!(csv.contains("# note: n"));
    }

    #[test]
    fn output_renders_tables_and_notes() {
        let mut out = ExperimentOutput::new();
        let mut t = Table::new(["a"]);
        t.row(["1"]);
        out.table("My table", t).note("paper: 2.7x; measured: 2.70x");
        let text = out.render();
        assert!(text.contains("My table"));
        assert!(text.contains("note: paper"));
    }
}
