//! Property-based tests for the sweep grammar and dependency patterns.
//!
//! [`SweepSpec::parse`] feeds the daemon's interner and the CLI alike, and
//! its new `Display` is documented canonical: for any spec that parsed,
//! `parse ∘ to_string` must be the identity. [`ScenarioPath`] matching
//! decides which scenario fields participate in dedup fingerprints, so its
//! wildcard semantics get the same treatment.

use cc_report::{ScenarioPath, SweepSpec};
use proptest::prelude::*;

/// Numeric paths whose validation rule is `finite and > 0`, so any
/// positive integer literal is an accepted sweep value.
const POSITIVE_PATHS: [&str; 4] = [
    "grid.intensity",
    "device.lifetime",
    "fleet.scale",
    "fleet.growth",
];

/// Declared-dependency patterns: every section wildcard plus exact leaves.
const PATTERNS: [&str; 8] = [
    "grid.*",
    "device.*",
    "fab.*",
    "fleet.*",
    "mc.*",
    "grid.intensity",
    "fab.node_nm",
    "fleet.growth",
];

/// Canonical fields the patterns are probed against.
const FIELDS: [&str; 8] = [
    "grid.intensity",
    "grid.renewable_fraction",
    "device.lifetime",
    "fab.node_nm",
    "fab.yield_factor",
    "fleet.growth",
    "mc.seed",
    "mc.samples",
];

proptest! {
    #[test]
    fn list_specs_round_trip(
        path_index in 0..POSITIVE_PATHS.len(),
        values in proptest::collection::vec(1u32..10_000, 1..6),
    ) {
        let path = POSITIVE_PATHS[path_index];
        let rendered: Vec<String> = values.iter().map(u32::to_string).collect();
        let text = format!("{path}={}", rendered.join(","));
        let spec = SweepSpec::parse(&text).unwrap();
        prop_assert_eq!(&spec.path, path);
        prop_assert_eq!(&spec.values, &rendered);
        // Display reproduces the compact list text, and re-parsing the
        // display reproduces the spec.
        prop_assert_eq!(spec.to_string(), text);
        prop_assert_eq!(SweepSpec::parse(&spec.to_string()).unwrap(), spec);
    }

    #[test]
    fn whitespace_around_list_values_is_immaterial(
        path_index in 0..POSITIVE_PATHS.len(),
        values in proptest::collection::vec(1u32..10_000, 1..6),
    ) {
        let path = POSITIVE_PATHS[path_index];
        let compact: Vec<String> = values.iter().map(u32::to_string).collect();
        let padded = format!(" {path} = {} ", compact.join(" , "));
        let spec = SweepSpec::parse(&padded).unwrap();
        prop_assert_eq!(spec.values, compact);
    }

    #[test]
    fn range_specs_round_trip_through_their_expansion(
        path_index in 0..POSITIVE_PATHS.len(),
        start in 1u32..500,
        span in 1u32..400,
        step in 1u32..100,
    ) {
        let path = POSITIVE_PATHS[path_index];
        let text = format!("{path}={start}..{}/{step}", start + span);
        let spec = SweepSpec::parse(&text).unwrap();
        // Inclusive start, stepping while within the end.
        prop_assert_eq!(spec.values.len(), (span / step) as usize + 1);
        prop_assert_eq!(&spec.values[0], &start.to_string());
        prop_assert_eq!(SweepSpec::parse(&spec.to_string()).unwrap(), spec);
    }

    #[test]
    fn wildcards_cover_exactly_their_section(
        pattern_index in 0..PATTERNS.len(),
        field_index in 0..FIELDS.len(),
    ) {
        let pattern = PATTERNS[pattern_index];
        let field = FIELDS[field_index];
        let path = ScenarioPath::of(pattern);
        prop_assert_eq!(path.as_str(), pattern);
        prop_assert_eq!(path.to_string(), pattern);
        let expected = match pattern.strip_suffix(".*") {
            Some(section) => {
                field.split_once('.').is_some_and(|(s, _)| s == section)
            }
            None => pattern == field,
        };
        prop_assert_eq!(path.matches(field), expected);
        // A wildcard never matches its bare section name, and an exact
        // pattern always matches itself.
        match pattern.strip_suffix(".*") {
            Some(section) => prop_assert!(!path.matches(section)),
            None => prop_assert!(path.matches(pattern)),
        }
    }
}
