//! Figure 1: projected growth of global ICT energy consumption.

use cc_data::ict::{self, Scenario, Segment};
use cc_report::{
    table::num, Experiment, ExperimentId, ExperimentOutput, RunContext, Series, Table,
};

/// Reproduces Fig 1's optimistic and expected ICT-energy projections.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig01IctProjections;

impl Experiment for Fig01IctProjections {
    fn id(&self) -> ExperimentId {
        ExperimentId::Figure(1)
    }

    fn description(&self) -> &'static str {
        "Projected global ICT energy consumption 2010-2030, optimistic vs expected"
    }

    fn run(&self, _ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        for scenario in Scenario::ALL {
            let mut t = Table::new([
                "Year",
                "Consumer (TWh)",
                "Networking (TWh)",
                "Datacenter (TWh)",
                "Total (TWh)",
                "Share of global demand",
            ]);
            let totals = ict::total_twh(scenario);
            for (i, year) in ict::YEARS.iter().enumerate() {
                let consumer = ict::segment_twh(scenario, Segment::ConsumerDevices)[i];
                let network = ict::segment_twh(scenario, Segment::Networking)[i];
                let dc = ict::segment_twh(scenario, Segment::Datacenter)[i];
                let share = totals[i] / ict::GLOBAL_DEMAND_TWH[i];
                t.row([
                    year.to_string(),
                    num(consumer, 0),
                    num(network, 0),
                    num(dc, 0),
                    num(totals[i], 0),
                    format!("{:.1}%", share * 100.0),
                ]);
            }
            out.table(format!("{scenario} ICT energy projections"), t);
            out.series(Series::from_pairs(
                format!("total-twh-{}", scenario.to_string().to_lowercase()),
                "year",
                "TWh",
                ict::YEARS
                    .iter()
                    .zip(&totals)
                    .map(|(&y, &v)| (f64::from(y), v)),
            ));
        }
        let opt_2030 = ict::total_twh(Scenario::Optimistic)[4] / ict::GLOBAL_DEMAND_TWH[4];
        let exp_2030 = ict::total_twh(Scenario::Expected)[4] / ict::GLOBAL_DEMAND_TWH[4];
        out.scalar("expected-2030-demand-share", "%", exp_2030 * 100.0);
        out.note(format!(
            "paper: 7% of global demand by 2030 (optimistic); measured {:.1}%",
            opt_2030 * 100.0
        ));
        out.note(format!(
            "paper: 20% of global demand by 2030 (expected); measured {:.1}%",
            exp_2030 * 100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn produces_two_scenario_tables_with_five_years() {
        let out = Fig01IctProjections.run(&RunContext::paper());
        assert_eq!(out.tables.len(), 2);
        for (_, table) in &out.tables {
            assert_eq!(table.len(), 5);
        }
        assert_eq!(out.notes.len(), 2);
    }

    #[test]
    fn shares_hit_paper_anchors() {
        let out = Fig01IctProjections.run(&RunContext::paper());
        // The last row of each table carries the 2030 share.
        let opt_share = out.tables[0].1.rows().last().unwrap()[5].clone();
        assert!(
            opt_share.starts_with("6.") || opt_share.starts_with("7."),
            "{opt_share}"
        );
        let exp_share = out.tables[1].1.rows().last().unwrap()[5].clone();
        assert!(exp_share.starts_with("20"), "{exp_share}");
    }
}
