//! Figure 7: emissions across iPhone, Apple Watch and iPad generations.

use cc_lca::generational::Family;
use cc_report::{
    table::num, Experiment, ExperimentId, ExperimentOutput, RunContext, Series, Table,
};

/// Reproduces Fig 7.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig07Generations;

impl Experiment for Fig07Generations {
    fn id(&self) -> ExperimentId {
        ExperimentId::Figure(7)
    }

    fn description(&self) -> &'static str {
        "Generational trends: manufacturing share rises across iPhones, Watches, iPads"
    }

    fn run(&self, _ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        let mut iphone_rise_pp = 0.0;
        for family in Family::fig7_families() {
            let mut t = Table::new([
                "Generation",
                "Year",
                "Total (kg)",
                "Manufacturing share",
                "Manufacturing (kg)",
                "Use (kg)",
            ]);
            for d in family.records() {
                t.row([
                    d.name.to_string(),
                    d.year.to_string(),
                    num(d.total_kg, 0),
                    format!("{:.0}%", d.production_share * 100.0),
                    num(d.production().as_kg(), 1),
                    num(d.use_phase().as_kg(), 1),
                ]);
            }
            out.table(format!("{} generations", family.name), t);

            let share = family.manufacturing_share_series();
            out.series(Series::from_pairs(
                format!(
                    "manufacturing-share-{}",
                    family.name.to_lowercase().replace(' ', "-")
                ),
                "year",
                "manufacturing share",
                share.iter().map(|(y, v)| (f64::from(y), v)),
            ));
            let (first, last) = (
                share.values().next().unwrap_or(0.0),
                share.values().last().unwrap_or(0.0),
            );
            if family.name.contains("iPhone") {
                iphone_rise_pp = (last - first) * 100.0;
            }
            out.note(format!(
                "{}: manufacturing share {:.0}% -> {:.0}%",
                family.name,
                first * 100.0,
                last * 100.0
            ));
        }
        out.scalar("iphone-manufacturing-share-rise", "pp", iphone_rise_pp);
        out.note("paper anchors: iPhone 40%->75% (3GS->XR), Watch 60%->75%, iPad 60%->75%");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_family_tables() {
        let out = Fig07Generations.run(&RunContext::paper());
        assert_eq!(out.tables.len(), 3);
        assert!(out.tables[0].0.contains("iPhone"));
    }

    #[test]
    fn share_notes_show_increase() {
        let out = Fig07Generations.run(&RunContext::paper());
        for note in out.notes.iter().take(3) {
            let (a, b) = note
                .rsplit_once("share ")
                .unwrap()
                .1
                .split_once(" -> ")
                .unwrap();
            let first: f64 = a.trim_end_matches('%').parse().unwrap();
            let last: f64 = b.trim_end_matches('%').parse().unwrap();
            assert!(last > first, "{note}");
        }
    }
}
