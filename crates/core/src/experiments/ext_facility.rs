//! Extension: the scenario-driven facility model — capacity planning over a
//! fleet-growth horizon.
//!
//! Fig 2 (left) replays the disclosed Prineville trajectory; this experiment
//! generalizes it. The scenario's [`FleetParams`](cc_report::FleetParams)
//! describe any warehouse-scale facility (initial fleet, growth factor, PUE,
//! renewable-ramp slope, construction carbon, planning horizon); the model
//! simulates the horizon year by year and answers the paper's
//! datacenter-side question quantitatively: *when does embodied/construction
//! carbon overtake operational carbon?* Under the paper defaults the
//! simulated facility is exactly the Prineville configuration.

use cc_dcsim::{Facility, FacilityYear, FleetMix, ServerConfig};
use cc_report::{
    table::num, Experiment, ExperimentId, ExperimentOutput, RunContext, Series, Table,
};
use cc_units::CarbonMass;

/// The paper-default first simulated calendar year — Prineville's 2013.
/// Scenarios shift the time axis via `fleet.start_year`; the break-even
/// thresholds below are stated on the default axis.
pub const START_YEAR: u16 = 2013;

/// The break-even threshold sweep comparisons track: the paper observes
/// Prineville's operational carbon starting to fall below capex around 2017.
pub const PAPER_CROSSOVER_YEAR: f64 = 2017.0;

/// The cumulative break-even threshold: [`START_YEAR`] + 1, i.e. "the
/// embodied investment pays back within the first year of operation".
/// Under the paper defaults the web fleet's operations-to-date overtake its
/// embodied-to-date investment partway through the second simulated year
/// (~2014.6); AI-heavier mixes burn proportionally more energy per embodied
/// tonne and pay back sooner, so a `fleet.mix[ai-training]` sweep's
/// crossover line locates the composition where payback first fits inside
/// year one (≈ 0.3 AI weight).
pub const PAPER_CUMULATIVE_PAYBACK_YEAR: f64 = 2014.0;

/// Builds the scenario's fleet composition from the SKU catalog:
/// `fleet.mix` when non-empty, else a pure `fleet.sku` fleet. SKU names
/// were validated against the catalog when the context was built.
#[must_use]
pub fn fleet_mix_from_context(ctx: &RunContext) -> FleetMix {
    FleetMix::weighted(
        ctx.fleet()
            .composition()
            .into_iter()
            .map(|(name, weight)| {
                let sku = ServerConfig::by_name(&name).unwrap_or_else(|| {
                    panic!("scenario validation admits only catalog SKUs, got `{name}`")
                });
                (sku, weight)
            })
            .collect(),
    )
}

/// Builds the scenario's facility: the fleet parameters applied to the
/// scenario's SKU composition on the scenario grid. `fleet.scale`
/// multiplies the initial fleet, so the demand knob and the
/// capacity-planning knobs compose.
#[must_use]
pub fn facility_from_context(ctx: &RunContext) -> Facility {
    let fleet = ctx.fleet();
    let initial = (fleet.initial_servers as f64 * fleet.scale)
        .round()
        .max(1.0) as u64;
    // A fixed facility name: the scenario *name* is per-sweep-point labeling
    // and never reaches the simulated output, so reading it here would only
    // poison the experiment's dependency set.
    Facility::builder("scenario-facility", fleet.start_year, ServerConfig::web())
        .mix(fleet_mix_from_context(ctx))
        .initial_servers(initial)
        .server_growth(fleet.growth)
        .pue(fleet.pue)
        .construction(CarbonMass::from_kt(fleet.construction_kt))
        .construction_amortization_years(fleet.building_amortization_years)
        .grid(ctx.grid_intensity())
        .renewable_ramp(fleet.renewable_ramp.clone())
        .build()
}

/// Simulates the scenario's facility over its planning horizon.
#[must_use]
pub fn simulate_from_context(ctx: &RunContext) -> Vec<FacilityYear> {
    facility_from_context(ctx).simulate(ctx.fleet_horizon_years())
}

/// The fractional calendar year where annual capex carbon overtakes annual
/// market-based operational carbon, linearly interpolated between simulated
/// years. Year 0 is skipped: it books the entire initial fleet's embodied
/// carbon, a construction artifact rather than a trend. Returns the year
/// after the horizon when capex never overtakes within it — a clamp, not
/// the true (possibly much later) break-even. In sweep comparisons the
/// clamp keeps threshold *bracketing* correct (any in-horizon threshold
/// lies below it), but a crossing interpolated against a clamped point is
/// positionally approximate — within the `≈` the crossing line already
/// claims, and the run's note says when the clamp was hit.
#[must_use]
pub fn capex_overtake_year(years: &[FacilityYear]) -> f64 {
    let diff = |y: &FacilityYear| y.capex_carbon.as_tonnes() - y.market_carbon.as_tonnes();
    for pair in years.windows(2).skip(1) {
        let (d0, d1) = (diff(&pair[0]), diff(&pair[1]));
        if d0 < 0.0 && d1 >= 0.0 {
            // Fraction of the year at which the interpolated difference
            // hits zero.
            return f64::from(pair[0].year) + d0 / (d0 - d1);
        }
    }
    match years {
        // Capex-dominated from the first organic year onward.
        [_, second, ..] if diff(second) >= 0.0 => f64::from(second.year),
        _ => f64::from(years.last().map_or(START_YEAR, |y| y.year)) + 1.0,
    }
}

/// The cumulative-carbon break-even: the fractional calendar year where
/// *total operational carbon to date* overtakes *total embodied (capex)
/// carbon to date* — when the facility's embodied investment has paid
/// itself back in operational terms. Both totals accrue linearly within a
/// year, so the crossing interpolates between year-end balances. Returns
/// the start year when operations outpace capex from the very first year,
/// and the year after the horizon (a clamp, like
/// [`capex_overtake_year`]'s) when the investment is never amortized
/// within it.
#[must_use]
pub fn cumulative_payback_year(years: &[FacilityYear]) -> f64 {
    // Balance = cumulative capex - cumulative operational, in tonnes.
    let mut balance = 0.0f64;
    for (i, y) in years.iter().enumerate() {
        let prev = balance;
        balance += y.capex_carbon.as_tonnes() - y.market_carbon.as_tonnes();
        if balance <= 0.0 {
            if i == 0 {
                // Operations outrun the embodied investment within the
                // first year: paid back immediately.
                return f64::from(y.year);
            }
            return f64::from(y.year) + prev / (prev - balance);
        }
    }
    f64::from(years.last().map_or(START_YEAR, |y| y.year)) + 1.0
}

/// Scenario-driven facility capacity planning.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExtFacility;

impl Experiment for ExtFacility {
    fn id(&self) -> ExperimentId {
        ExperimentId::Extension("facility")
    }

    fn description(&self) -> &'static str {
        "Scenario facility over the planning horizon: operational vs embodied carbon, break-even year"
    }

    fn run(&self, ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        let years = simulate_from_context(ctx);

        let mut t = Table::new([
            "Year",
            "Servers",
            "Energy (GWh)",
            "Operational (kt, market)",
            "Capex (kt)",
            "Capex share",
        ]);
        let mut operational = Series::new("facility-operational-carbon", "year", "kt CO2e");
        let mut capex = Series::new("facility-capex-carbon", "year", "kt CO2e");
        let mut cumulative_opex = CarbonMass::ZERO;
        let mut cumulative_capex = CarbonMass::ZERO;
        for y in &years {
            let total = y.capex_carbon + y.market_carbon;
            t.row([
                y.year.to_string(),
                y.servers.to_string(),
                num(y.energy.as_gwh(), 0),
                num(y.market_carbon.as_kt(), 1),
                num(y.capex_carbon.as_kt(), 1),
                format!("{:.0}%", 100.0 * (y.capex_carbon / total)),
            ]);
            operational.push(f64::from(y.year), y.market_carbon.as_kt());
            capex.push(f64::from(y.year), y.capex_carbon.as_kt());
            cumulative_opex += y.market_carbon;
            cumulative_capex += y.capex_carbon;
        }
        out.table("Facility horizon: operational vs embodied carbon", t);
        out.series(operational).series(capex);

        // Composition breakdown: per-SKU opex/capex series (and a table)
        // whenever the fleet actually mixes SKUs. A pure fleet's breakdown
        // would only duplicate the totals above, row for row.
        if years.first().is_some_and(|y| y.per_sku.len() > 1) {
            let mut sku_table = Table::new([
                "Year",
                "SKU",
                "Servers",
                "Energy (GWh)",
                "Operational (kt, market)",
                "Embodied (kt)",
            ]);
            let sku_names: Vec<String> = years[0].per_sku.iter().map(|s| s.sku.clone()).collect();
            for name in &sku_names {
                let mut opex = Series::new(
                    format!("facility-operational-carbon-{name}"),
                    "year",
                    "kt CO2e",
                );
                let mut capex =
                    Series::new(format!("facility-capex-carbon-{name}"), "year", "kt CO2e");
                for y in &years {
                    let slice = y
                        .per_sku
                        .iter()
                        .find(|s| &s.sku == name)
                        .expect("every year carries every composition slice");
                    opex.push(f64::from(y.year), slice.market_carbon.as_kt());
                    capex.push(f64::from(y.year), slice.embodied_carbon.as_kt());
                }
                out.series(opex).series(capex);
            }
            for y in &years {
                for slice in &y.per_sku {
                    sku_table.row([
                        y.year.to_string(),
                        slice.sku.clone(),
                        num(slice.servers, 0),
                        num(slice.energy.as_gwh(), 0),
                        num(slice.market_carbon.as_kt(), 1),
                        num(slice.embodied_carbon.as_kt(), 1),
                    ]);
                }
            }
            out.table("Per-SKU fleet breakdown", sku_table);
        }

        let breakeven = capex_overtake_year(&years);
        let horizon_end = f64::from(years.last().expect("horizon >= 1").year);
        out.scalar_with_threshold(
            "opex-capex-breakeven-year",
            "year",
            breakeven,
            PAPER_CROSSOVER_YEAR,
            "construction overtakes operations",
        );
        let payback = cumulative_payback_year(&years);
        out.scalar_with_threshold(
            "cumulative-carbon-breakeven-year",
            "year",
            payback,
            PAPER_CUMULATIVE_PAYBACK_YEAR,
            "embodied pays back within a year",
        );
        let capex_share = 100.0 * (cumulative_capex / (cumulative_capex + cumulative_opex));
        out.scalar("capex-share-cumulative", "%", capex_share);

        if breakeven > horizon_end {
            out.note(format!(
                "capex never overtakes operational carbon within the horizon \
                 (break-even clamped to {breakeven})"
            ));
        } else {
            out.note(format!(
                "annual capex carbon overtakes market-based operational carbon at ~{breakeven:.1} \
                 (paper: Prineville crosses around {PAPER_CROSSOVER_YEAR:.0})"
            ));
        }
        // A genuine crossing interpolated inside the final year lands in
        // (horizon_end, horizon_end + 1); only the exact clamp value means
        // "never paid back within the horizon".
        if payback >= horizon_end + 1.0 {
            out.note(format!(
                "cumulative operational carbon never overtakes the embodied investment within \
                 the horizon (cumulative break-even clamped to {payback})"
            ));
        } else {
            out.note(format!(
                "total operational carbon to date overtakes total embodied carbon to date at \
                 ~{payback:.1} — the embodied investment is paid back in operational terms"
            ));
        }
        out.note(format!(
            "over the {}-year horizon, embodied+construction carbon is {:.0}% of the total — \
             the paper's capex-dominance claim as a capacity-planning output",
            years.len(),
            capex_share
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_report::Scenario;

    #[test]
    fn paper_defaults_reproduce_the_prineville_facility() {
        let years = simulate_from_context(&RunContext::paper());
        assert_eq!(years, cc_dcsim::prineville::simulate());
    }

    #[test]
    fn paper_breakeven_lands_near_the_disclosed_crossover() {
        let out = ExtFacility.run(&RunContext::paper());
        let be = out.summary_scalar().unwrap();
        assert_eq!(be.name, "opex-capex-breakeven-year");
        assert!(
            (2016.0..=2018.5).contains(&be.value),
            "paper break-even {} should straddle the disclosed ~2017 crossover",
            be.value
        );
        assert_eq!(be.threshold.as_ref().unwrap().value, PAPER_CROSSOVER_YEAR);
    }

    #[test]
    fn growth_sweep_brackets_the_paper_crossover_year() {
        // The acceptance-criterion sweep: fleet.growth=1.0..1.5 must move
        // the break-even year across 2017 so the comparison report prints a
        // crossover line.
        let be_at = |growth: f64| {
            let scenario = Scenario::builder().fleet_growth(growth).build();
            ExtFacility
                .run(&RunContext::new(scenario))
                .summary_scalar()
                .unwrap()
                .value
        };
        let slow = be_at(1.0);
        let fast = be_at(1.5);
        assert!(
            slow > fast,
            "faster fleet growth must pull break-even earlier"
        );
        assert!(
            slow > PAPER_CROSSOVER_YEAR && fast < PAPER_CROSSOVER_YEAR,
            "sweep endpoints must bracket {PAPER_CROSSOVER_YEAR}: got {slow}..{fast}"
        );
    }

    #[test]
    fn renewable_ramp_slope_moves_the_breakeven() {
        let be_with_ramp = |ramp: &str| {
            let mut s = Scenario::paper_defaults();
            s.set("fleet.renewable_ramp", ramp).unwrap();
            ExtFacility
                .run(&RunContext::new(s))
                .summary_scalar()
                .unwrap()
                .value
        };
        // A steeper ramp zeroes operational carbon sooner: earlier break-even.
        let steep = be_with_ramp("0.2,0.6,1.0");
        let shallow = be_with_ramp("0,0.05,0.1,0.15,0.2,0.25,0.3");
        assert!(steep < shallow, "steep {steep} vs shallow {shallow}");
    }

    #[test]
    fn brown_flat_fleet_never_breaks_even() {
        // No renewables, no growth: operations dominate every organic year,
        // so the break-even clamps past the horizon.
        let mut s = Scenario::paper_defaults();
        s.set("fleet.renewable_ramp", "0").unwrap();
        s.set("fleet.growth", "1.0").unwrap();
        let out = ExtFacility.run(&RunContext::new(s));
        let be = out.summary_scalar().unwrap().value;
        assert!(be > f64::from(START_YEAR) + 6.0, "break-even {be}");
        assert!(out.notes[0].contains("never overtakes"));
    }

    #[test]
    fn start_year_shifts_the_time_axis_only() {
        let paper = simulate_from_context(&RunContext::paper());
        let shifted = simulate_from_context(&RunContext::new(
            Scenario::builder().fleet_start_year(2021).build(),
        ));
        assert_eq!(shifted[0].year, 2021);
        for (p, s) in paper.iter().zip(&shifted) {
            assert_eq!(s.year, p.year + 8);
            assert_eq!(s.energy, p.energy, "a pure relabeling of the axis");
            assert_eq!(s.capex_carbon, p.capex_carbon);
            assert_eq!(s.market_carbon, p.market_carbon);
        }
    }

    #[test]
    fn building_amortization_window_scales_annual_construction_carbon() {
        // Halving the window doubles the per-year construction charge, which
        // pulls the capex-overtake year earlier.
        let run = |years: f64| {
            simulate_from_context(&RunContext::new(
                Scenario::builder()
                    .fleet_building_amortization_years(years)
                    .build(),
            ))
        };
        let fast = run(10.0);
        let paper = run(20.0);
        assert!(fast[0].capex_carbon > paper[0].capex_carbon);
        assert!(capex_overtake_year(&fast) <= capex_overtake_year(&paper));
        // The paper default is bit-identical to the unparameterized model.
        assert_eq!(paper, cc_dcsim::prineville::simulate());
    }

    #[test]
    fn scale_multiplies_the_initial_fleet() {
        let paper = simulate_from_context(&RunContext::paper());
        let scaled = simulate_from_context(&RunContext::new(
            Scenario::builder().fleet_scale(2.0).build(),
        ));
        assert_eq!(scaled[0].servers, paper[0].servers * 2);
    }

    #[test]
    fn paper_cumulative_payback_lands_in_the_second_year() {
        let out = ExtFacility.run(&RunContext::paper());
        let payback = out.find_scalar("cumulative-carbon-breakeven-year").unwrap();
        assert!(
            (2014.0..2015.0).contains(&payback.value),
            "paper cumulative break-even {} should land in 2014",
            payback.value
        );
        assert_eq!(
            payback.threshold.as_ref().unwrap().value,
            PAPER_CUMULATIVE_PAYBACK_YEAR
        );
        // The annual scalar stays the summary (sweep comparisons diff it
        // first); the cumulative one rides alongside.
        assert_eq!(
            out.summary_scalar().unwrap().name,
            "opex-capex-breakeven-year"
        );
    }

    #[test]
    fn ai_mix_sweep_brackets_the_cumulative_payback_threshold() {
        // The mixed-fleet acceptance criterion: sweeping the AI-training
        // weight from 0 to 0.4 must move the cumulative break-even across
        // the one-year-payback threshold so the comparison report prints an
        // "embodied pays back" crossover line.
        let payback_at = |weight: &str| {
            let mut s = Scenario::paper_defaults();
            s.set("fleet.mix[ai-training]", weight).unwrap();
            ExtFacility
                .run(&RunContext::new(s))
                .find_scalar("cumulative-carbon-breakeven-year")
                .unwrap()
                .value
        };
        let pure = payback_at("0");
        let heavy = payback_at("0.4");
        assert!(
            pure > heavy,
            "AI-heavier fleets must pay their embodied investment back sooner"
        );
        assert!(
            pure > PAPER_CUMULATIVE_PAYBACK_YEAR && heavy < PAPER_CUMULATIVE_PAYBACK_YEAR,
            "sweep endpoints must bracket {PAPER_CUMULATIVE_PAYBACK_YEAR}: got {heavy}..{pure}"
        );
        // The zero-weight point is numerically the pure web fleet.
        let paper = ExtFacility.run(&RunContext::paper());
        assert_eq!(
            payback_at("0"),
            paper
                .find_scalar("cumulative-carbon-breakeven-year")
                .unwrap()
                .value
        );
    }

    #[test]
    fn mixed_fleets_emit_per_sku_series_and_table() {
        let mut s = Scenario::paper_defaults();
        s.set("fleet.mix", "web:0.7,ai-training:0.3").unwrap();
        let out = ExtFacility.run(&RunContext::new(s));
        for name in [
            "facility-operational-carbon-web",
            "facility-capex-carbon-web",
            "facility-operational-carbon-ai-training",
            "facility-capex-carbon-ai-training",
        ] {
            assert_eq!(
                out.find_series(name).map(cc_report::Series::len),
                Some(7),
                "missing per-SKU series {name}"
            );
        }
        let (title, table) = &out.tables[1];
        assert_eq!(title, "Per-SKU fleet breakdown");
        assert_eq!(table.len(), 7 * 2);

        // A pure fleet keeps the original artifact shape: no breakdown.
        let paper = ExtFacility.run(&RunContext::paper());
        assert!(paper
            .find_series("facility-operational-carbon-web")
            .is_none());
        assert_eq!(paper.tables.len(), 1);
    }

    #[test]
    fn storage_sku_fleet_runs_heavier_than_web() {
        let mut s = Scenario::paper_defaults();
        s.set("fleet.sku", "storage").unwrap();
        let storage = ExtFacility.run(&RunContext::new(s));
        let paper = ExtFacility.run(&RunContext::paper());
        let last = |out: &cc_report::ExperimentOutput, name: &str| {
            out.find_series(name).unwrap().points.last().unwrap().y
        };
        assert!(
            last(&storage, "facility-capex-carbon") > last(&paper, "facility-capex-carbon"),
            "storage servers embody more carbon per box"
        );
        assert!(
            last(&storage, "facility-operational-carbon")
                > last(&paper, "facility-operational-carbon")
        );
    }

    #[test]
    fn final_year_payback_is_reported_as_paid_back_not_clamped() {
        // The paper-default payback (~2014.6) lands inside the final year of
        // a two-year horizon: a genuine crossing, not a clamp — the note
        // must say so even though the value exceeds the last simulated year.
        let ctx = RunContext::new(Scenario::builder().fleet_horizon_years(2).build());
        let out = ExtFacility.run(&ctx);
        let payback = out
            .find_scalar("cumulative-carbon-breakeven-year")
            .unwrap()
            .value;
        assert!(
            (2014.0..2015.0).contains(&payback),
            "crossing should land inside the final year, got {payback}"
        );
        assert!(
            out.notes
                .iter()
                .any(|n| n.contains("paid back in operational terms")),
            "a final-year crossing must not be reported as clamped: {:?}",
            out.notes
        );
    }

    #[test]
    fn cumulative_payback_clamps_when_operations_never_catch_up() {
        // A fleet that keeps growing on fully-renewable operations never
        // amortizes its embodied carbon: the scalar clamps past the horizon.
        let mut s = Scenario::paper_defaults();
        s.set("fleet.renewable_ramp", "1.0").unwrap();
        let out = ExtFacility.run(&RunContext::new(s));
        let payback = out
            .find_scalar("cumulative-carbon-breakeven-year")
            .unwrap()
            .value;
        assert_eq!(payback, 2020.0, "clamped to horizon end + 1");
        assert!(out
            .notes
            .iter()
            .any(|n| n.contains("cumulative") && n.contains("clamped")));
    }

    #[test]
    fn horizon_controls_the_series_length() {
        let ctx = RunContext::new(Scenario::builder().fleet_horizon_years(12).build());
        let out = ExtFacility.run(&ctx);
        assert_eq!(out.tables[0].1.len(), 12);
        assert_eq!(out.find_series("facility-capex-carbon").unwrap().len(), 12);
    }
}
