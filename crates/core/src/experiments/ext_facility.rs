//! Extension: the scenario-driven facility model — capacity planning over a
//! fleet-growth horizon.
//!
//! Fig 2 (left) replays the disclosed Prineville trajectory; this experiment
//! generalizes it. The scenario's [`FleetParams`](cc_report::FleetParams)
//! describe any warehouse-scale facility (initial fleet, growth factor, PUE,
//! renewable-ramp slope, construction carbon, planning horizon); the model
//! simulates the horizon year by year and answers the paper's
//! datacenter-side question quantitatively: *when does embodied/construction
//! carbon overtake operational carbon?* Under the paper defaults the
//! simulated facility is exactly the Prineville configuration.

use cc_dcsim::{Facility, FacilityYear, ServerConfig};
use cc_report::{
    table::num, Experiment, ExperimentId, ExperimentOutput, RunContext, Series, Table,
};
use cc_units::CarbonMass;

/// The first simulated calendar year — Prineville's 2013, kept fixed so
/// break-even years from different scenarios share one time axis.
pub const START_YEAR: u16 = 2013;

/// The break-even threshold sweep comparisons track: the paper observes
/// Prineville's operational carbon starting to fall below capex around 2017.
pub const PAPER_CROSSOVER_YEAR: f64 = 2017.0;

/// Builds the scenario's facility: the fleet parameters applied to the web
/// SKU on the scenario grid. `fleet.scale` multiplies the initial fleet, so
/// the demand knob and the capacity-planning knobs compose.
#[must_use]
pub fn facility_from_context(ctx: &RunContext) -> Facility {
    let fleet = ctx.fleet();
    let initial = (fleet.initial_servers as f64 * fleet.scale)
        .round()
        .max(1.0) as u64;
    // A fixed facility name: the scenario *name* is per-sweep-point labeling
    // and never reaches the simulated output, so reading it here would only
    // poison the experiment's dependency set.
    Facility::builder("scenario-facility", START_YEAR, ServerConfig::web())
        .initial_servers(initial)
        .server_growth(fleet.growth)
        .pue(fleet.pue)
        .construction(CarbonMass::from_kt(fleet.construction_kt))
        .grid(ctx.grid_intensity())
        .renewable_ramp(fleet.renewable_ramp.clone())
        .build()
}

/// Simulates the scenario's facility over its planning horizon.
#[must_use]
pub fn simulate_from_context(ctx: &RunContext) -> Vec<FacilityYear> {
    facility_from_context(ctx).simulate(ctx.fleet_horizon_years())
}

/// The fractional calendar year where annual capex carbon overtakes annual
/// market-based operational carbon, linearly interpolated between simulated
/// years. Year 0 is skipped: it books the entire initial fleet's embodied
/// carbon, a construction artifact rather than a trend. Returns the year
/// after the horizon when capex never overtakes within it — a clamp, not
/// the true (possibly much later) break-even. In sweep comparisons the
/// clamp keeps threshold *bracketing* correct (any in-horizon threshold
/// lies below it), but a crossing interpolated against a clamped point is
/// positionally approximate — within the `≈` the crossing line already
/// claims, and the run's note says when the clamp was hit.
#[must_use]
pub fn capex_overtake_year(years: &[FacilityYear]) -> f64 {
    let diff = |y: &FacilityYear| y.capex_carbon.as_tonnes() - y.market_carbon.as_tonnes();
    for pair in years.windows(2).skip(1) {
        let (d0, d1) = (diff(&pair[0]), diff(&pair[1]));
        if d0 < 0.0 && d1 >= 0.0 {
            // Fraction of the year at which the interpolated difference
            // hits zero.
            return f64::from(pair[0].year) + d0 / (d0 - d1);
        }
    }
    match years {
        // Capex-dominated from the first organic year onward.
        [_, second, ..] if diff(second) >= 0.0 => f64::from(second.year),
        _ => f64::from(years.last().map_or(START_YEAR, |y| y.year)) + 1.0,
    }
}

/// Scenario-driven facility capacity planning.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExtFacility;

impl Experiment for ExtFacility {
    fn id(&self) -> ExperimentId {
        ExperimentId::Extension("facility")
    }

    fn description(&self) -> &'static str {
        "Scenario facility over the planning horizon: operational vs embodied carbon, break-even year"
    }

    fn run(&self, ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        let years = simulate_from_context(ctx);

        let mut t = Table::new([
            "Year",
            "Servers",
            "Energy (GWh)",
            "Operational (kt, market)",
            "Capex (kt)",
            "Capex share",
        ]);
        let mut operational = Series::new("facility-operational-carbon", "year", "kt CO2e");
        let mut capex = Series::new("facility-capex-carbon", "year", "kt CO2e");
        let mut cumulative_opex = CarbonMass::ZERO;
        let mut cumulative_capex = CarbonMass::ZERO;
        for y in &years {
            let total = y.capex_carbon + y.market_carbon;
            t.row([
                y.year.to_string(),
                y.servers.to_string(),
                num(y.energy.as_gwh(), 0),
                num(y.market_carbon.as_kt(), 1),
                num(y.capex_carbon.as_kt(), 1),
                format!("{:.0}%", 100.0 * (y.capex_carbon / total)),
            ]);
            operational.push(f64::from(y.year), y.market_carbon.as_kt());
            capex.push(f64::from(y.year), y.capex_carbon.as_kt());
            cumulative_opex += y.market_carbon;
            cumulative_capex += y.capex_carbon;
        }
        out.table("Facility horizon: operational vs embodied carbon", t);
        out.series(operational).series(capex);

        let breakeven = capex_overtake_year(&years);
        let horizon_end = f64::from(years.last().expect("horizon >= 1").year);
        out.scalar_with_threshold(
            "opex-capex-breakeven-year",
            "year",
            breakeven,
            PAPER_CROSSOVER_YEAR,
            "construction overtakes operations",
        );
        let capex_share = 100.0 * (cumulative_capex / (cumulative_capex + cumulative_opex));
        out.scalar("capex-share-cumulative", "%", capex_share);

        if breakeven > horizon_end {
            out.note(format!(
                "capex never overtakes operational carbon within the horizon \
                 (break-even clamped to {breakeven})"
            ));
        } else {
            out.note(format!(
                "annual capex carbon overtakes market-based operational carbon at ~{breakeven:.1} \
                 (paper: Prineville crosses around {PAPER_CROSSOVER_YEAR:.0})"
            ));
        }
        out.note(format!(
            "over the {}-year horizon, embodied+construction carbon is {:.0}% of the total — \
             the paper's capex-dominance claim as a capacity-planning output",
            years.len(),
            capex_share
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_report::Scenario;

    #[test]
    fn paper_defaults_reproduce_the_prineville_facility() {
        let years = simulate_from_context(&RunContext::paper());
        assert_eq!(years, cc_dcsim::prineville::simulate());
    }

    #[test]
    fn paper_breakeven_lands_near_the_disclosed_crossover() {
        let out = ExtFacility.run(&RunContext::paper());
        let be = out.summary_scalar().unwrap();
        assert_eq!(be.name, "opex-capex-breakeven-year");
        assert!(
            (2016.0..=2018.5).contains(&be.value),
            "paper break-even {} should straddle the disclosed ~2017 crossover",
            be.value
        );
        assert_eq!(be.threshold.as_ref().unwrap().value, PAPER_CROSSOVER_YEAR);
    }

    #[test]
    fn growth_sweep_brackets_the_paper_crossover_year() {
        // The acceptance-criterion sweep: fleet.growth=1.0..1.5 must move
        // the break-even year across 2017 so the comparison report prints a
        // crossover line.
        let be_at = |growth: f64| {
            let scenario = Scenario::builder().fleet_growth(growth).build();
            ExtFacility
                .run(&RunContext::new(scenario))
                .summary_scalar()
                .unwrap()
                .value
        };
        let slow = be_at(1.0);
        let fast = be_at(1.5);
        assert!(
            slow > fast,
            "faster fleet growth must pull break-even earlier"
        );
        assert!(
            slow > PAPER_CROSSOVER_YEAR && fast < PAPER_CROSSOVER_YEAR,
            "sweep endpoints must bracket {PAPER_CROSSOVER_YEAR}: got {slow}..{fast}"
        );
    }

    #[test]
    fn renewable_ramp_slope_moves_the_breakeven() {
        let be_with_ramp = |ramp: &str| {
            let mut s = Scenario::paper_defaults();
            s.set("fleet.renewable_ramp", ramp).unwrap();
            ExtFacility
                .run(&RunContext::new(s))
                .summary_scalar()
                .unwrap()
                .value
        };
        // A steeper ramp zeroes operational carbon sooner: earlier break-even.
        let steep = be_with_ramp("0.2,0.6,1.0");
        let shallow = be_with_ramp("0,0.05,0.1,0.15,0.2,0.25,0.3");
        assert!(steep < shallow, "steep {steep} vs shallow {shallow}");
    }

    #[test]
    fn brown_flat_fleet_never_breaks_even() {
        // No renewables, no growth: operations dominate every organic year,
        // so the break-even clamps past the horizon.
        let mut s = Scenario::paper_defaults();
        s.set("fleet.renewable_ramp", "0").unwrap();
        s.set("fleet.growth", "1.0").unwrap();
        let out = ExtFacility.run(&RunContext::new(s));
        let be = out.summary_scalar().unwrap().value;
        assert!(be > f64::from(START_YEAR) + 6.0, "break-even {be}");
        assert!(out.notes[0].contains("never overtakes"));
    }

    #[test]
    fn scale_multiplies_the_initial_fleet() {
        let paper = simulate_from_context(&RunContext::paper());
        let scaled = simulate_from_context(&RunContext::new(
            Scenario::builder().fleet_scale(2.0).build(),
        ));
        assert_eq!(scaled[0].servers, paper[0].servers * 2);
    }

    #[test]
    fn horizon_controls_the_series_length() {
        let ctx = RunContext::new(Scenario::builder().fleet_horizon_years(12).build());
        let out = ExtFacility.run(&ctx);
        assert_eq!(out.tables[0].1.len(), 12);
        assert_eq!(out.find_series("facility-capex-carbon").unwrap().len(), 12);
    }
}
