//! Extension: DVFS energy/latency trade-off and its effect on the Fig 10
//! break-even (Section VI, architecture).

use cc_data::ai_models::CnnModel;
use cc_lca::AmortizationAnalysis;
use cc_report::{
    table::num, Experiment, ExperimentId, ExperimentOutput, RunContext, Series, Table,
};
use cc_socsim::{dvfs, Network, Soc, UnitKind};
use cc_units::{Energy, TimeSpan};

/// Sweeps CPU frequency scales for MobileNet v3 and reports latency, energy
/// and the resulting manufacturing break-even.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExtDvfs;

impl Experiment for ExtDvfs {
    fn id(&self) -> ExperimentId {
        ExperimentId::Extension("dvfs")
    }

    fn description(&self) -> &'static str {
        "DVFS sweep on the Pixel 3 CPU: latency vs energy vs amortization time"
    }

    fn run(&self, ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        let cpu = *Soc::snapdragon_845().unit(UnitKind::Cpu).expect("cpu");
        let network = Network::build(CnnModel::MobileNetV3);
        let scales = [0.4, 0.6, 0.8, 1.0, 1.2, 1.4];
        let analysis = AmortizationAnalysis::new(
            crate::experiments::fig10::pixel3_soc_budget(ctx.soc_budget_share()),
            ctx.effective_grid_intensity(),
        );

        let mut t = Table::new([
            "Frequency scale",
            "Latency (ms)",
            "Energy (mJ)",
            "Breakeven images",
            "Breakeven days",
        ]);
        let mut energy_series = Series::new("energy-per-image", "frequency scale", "mJ");
        let mut days_series = Series::new("breakeven-days", "frequency scale", "days");
        for (scale, latency_s, energy_j) in dvfs::sweep(&cpu, &network, &scales) {
            let be = analysis
                .breakeven(
                    Energy::from_joules(energy_j),
                    TimeSpan::from_seconds(latency_s),
                )
                .expect("positive energy");
            energy_series.push(scale, energy_j * 1e3);
            days_series.push(scale, be.days);
            t.row([
                format!("{scale:.1}x"),
                num(latency_s * 1e3, 2),
                num(energy_j * 1e3, 1),
                format!("{:.2e}", be.operations),
                num(be.days, 0),
            ]);
        }
        out.table("MobileNet v3 on the Pixel 3 CPU under DVFS", t);

        let opt = dvfs::energy_optimal_scale(&cpu, &network, &scales).expect("nonempty sweep");
        // Headline: break-even days at the energy-optimal operating point —
        // the best case DVFS can make for amortization under this scenario.
        let optimal_days = scales
            .iter()
            .position(|&s| (s - opt).abs() < 1e-9)
            .and_then(|i| days_series.points.get(i))
            .map_or(f64::NAN, |p| p.y);
        out.series(energy_series).series(days_series);
        out.scalar("energy-optimal-breakeven", "days", optimal_days);
        out.note(format!(
            "energy-optimal operating point: {opt:.1}x nominal frequency — downclocking saves \
             energy per image, which *lengthens* amortization (the paper's efficiency paradox)"
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_sweep_rows() {
        let out = ExtDvfs.run(&RunContext::paper());
        assert_eq!(out.tables[0].1.len(), 6);
    }

    #[test]
    fn lower_frequency_means_more_breakeven_days() {
        let out = ExtDvfs.run(&RunContext::paper());
        let days: Vec<f64> = out.tables[0]
            .1
            .rows()
            .iter()
            .map(|r| r[4].parse().unwrap())
            .collect();
        // 0.4x (slow, efficient) needs more days to amortize than 1.4x.
        assert!(days[0] > days[5], "{days:?}");
    }
}
