//! Figure 9: inference latency and energy for four CNNs on CPU/GPU/DSP,
//! simulated on the Pixel-3-class SoC.

use cc_data::ai_models::CnnModel;
use cc_report::{table::num, Experiment, ExperimentId, ExperimentOutput, RunContext, Table};
use cc_socsim::UnitKind;
#[cfg(test)]
use cc_socsim::{ExecutionModel, Network};

/// Reproduces Fig 9 by running the SoC simulator.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig09InferencePerf;

impl Experiment for Fig09InferencePerf {
    fn id(&self) -> ExperimentId {
        ExperimentId::Figure(9)
    }

    fn description(&self) -> &'static str {
        "Inference latency (top) and energy (bottom) per CNN and compute unit on Pixel 3"
    }

    fn run(&self, _ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        let inputs = super::inputs::shared();
        let model = inputs.pixel3();

        let mut t = Table::new([
            "Network",
            "Unit",
            "Latency (ms)",
            "Energy (mJ)",
            "Throughput (img/s)",
            "Avg power (W)",
        ]);
        for &(cnn, ref network) in inputs.networks() {
            for report in model.run_all_units(network) {
                t.row([
                    cnn.to_string(),
                    report.unit.to_string(),
                    num(report.latency.as_millis(), 2),
                    num(report.energy.as_joules() * 1e3, 1),
                    num(report.throughput_ips(), 0),
                    num(report.average_power().as_watts(), 1),
                ]);
            }
        }
        out.table("Simulated Pixel 3 inference (batch 1, 224x224)", t);

        // The paper's annotated ratios.
        let lat = |cnn: CnnModel, unit: UnitKind| {
            let network = inputs.network(cnn).expect("FIG9 network is cached");
            model.run(network, unit).expect("pixel3 has all units")
        };
        let algo_speedup = lat(CnnModel::InceptionV3, UnitKind::Cpu).latency
            / lat(CnnModel::MobileNetV2, UnitKind::Cpu).latency;
        let hw_speedup = lat(CnnModel::MobileNetV2, UnitKind::Cpu).latency
            / lat(CnnModel::MobileNetV2, UnitKind::Dsp).latency;
        let algo_energy = lat(CnnModel::InceptionV3, UnitKind::Cpu).energy
            / lat(CnnModel::MobileNetV3, UnitKind::Cpu).energy;
        let hw_energy = lat(CnnModel::MobileNetV3, UnitKind::Cpu).energy
            / lat(CnnModel::MobileNetV3, UnitKind::Dsp).energy;
        out.scalar("algorithmic-speedup", "x", algo_speedup);
        out.note(format!(
            "paper: ~17x algorithmic speedup (Inception v3 -> MobileNet v2, CPU); measured {algo_speedup:.1}x"
        ));
        out.note(format!(
            "paper: ~3x hardware speedup (MobileNet v2, CPU -> DSP); measured {hw_speedup:.1}x"
        ));
        out.note(format!(
            "paper: ~30-36x algorithmic energy improvement; measured {algo_energy:.0}x"
        ));
        out.note(format!(
            "paper: ~2x hardware energy improvement (CPU -> DSP); measured {hw_energy:.1}x"
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_rows_four_notes() {
        let out = Fig09InferencePerf.run(&RunContext::paper());
        assert_eq!(out.tables[0].1.len(), 12);
        assert_eq!(out.notes.len(), 4);
    }

    #[test]
    fn mobilenets_beat_classics_on_every_unit() {
        let model = ExecutionModel::pixel3();
        for unit in UnitKind::ALL {
            let heavy = model
                .run(&Network::build(CnnModel::InceptionV3), unit)
                .unwrap();
            let light = model
                .run(&Network::build(CnnModel::MobileNetV3), unit)
                .unwrap();
            assert!(light.latency < heavy.latency);
            assert!(light.energy < heavy.energy);
        }
    }
}
