//! Figure 2: energy consumption vs carbon footprint (Prineville), and the
//! opex/capex pies (iPhone 3GS vs iPhone 11; Facebook with/without
//! renewables).

use crate::decomposition::CarbonDecomposition;
use cc_report::{
    table::num, Experiment, ExperimentId, ExperimentOutput, RunContext, Series, Table,
};
use cc_units::CarbonMass;

/// Reproduces Fig 2.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig02EnergyVsCarbon;

impl Experiment for Fig02EnergyVsCarbon {
    fn id(&self) -> ExperimentId {
        ExperimentId::Figure(2)
    }

    fn description(&self) -> &'static str {
        "Prineville energy vs operational carbon; opex/capex pies for iPhones and Facebook"
    }

    fn run(&self, ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();

        // Left panel: the facility model under the scenario's fleet. The
        // paper-default fleet *is* the Prineville configuration, so the
        // default scenario reproduces the disclosed trajectory exactly; any
        // other fleet replays the figure for a hypothetical facility.
        let mut t = Table::new(["Year", "Energy (GWh)", "Operational CO2e (kt, market)"]);
        let years = super::ext_facility::simulate_from_context(ctx);
        for y in &years {
            t.row([
                y.year.to_string(),
                num(y.energy.as_gwh(), 0),
                num(y.market_carbon.as_kt(), 1),
            ]);
        }
        // The title claims "Prineville" only when the inputs the facility
        // model consumes (fleet block + raw grid intensity) are the paper's.
        // Checking those fields — not the whole scenario — keeps this output
        // a pure function of its declared dependency set, so a sweep along
        // any other axis can reuse it.
        let prineville = ctx.fleet_is_paper() && ctx.grid_intensity_is_paper();
        out.table(
            if prineville {
                "Prineville data center: energy vs purchased-energy carbon"
            } else {
                "Scenario facility: energy vs purchased-energy carbon"
            },
            t,
        );
        out.series(Series::from_pairs(
            "prineville-market-carbon",
            "year",
            "kt CO2e",
            years
                .iter()
                .map(|y| (f64::from(y.year), y.market_carbon.as_kt())),
        ));
        out.series(Series::from_pairs(
            "prineville-energy",
            "year",
            "GWh",
            years.iter().map(|y| (f64::from(y.year), y.energy.as_gwh())),
        ));
        let peak = years
            .iter()
            .max_by(|a, b| a.market_carbon.partial_cmp(&b.market_carbon).unwrap())
            .unwrap();
        let last = years.last().unwrap();
        // The figure's headline as a sweep-comparable scalar: how far the
        // renewable ramp pushed final-year operational carbon below its peak.
        out.scalar(
            "final-opex-vs-peak",
            "%",
            100.0 * (last.market_carbon / peak.market_carbon),
        );
        out.note(format!(
            "paper: carbon starts decreasing in 2017 and is near zero by 2019; \
             measured peak {} with {} at {:.0}% of peak",
            peak.year,
            last.year,
            100.0 * (last.market_carbon / peak.market_carbon)
        ));

        // Right panels: the four pies.
        let mut pies = Table::new(["System", "Opex share", "Capex share"]);
        for name in ["iPhone 3GS", "iPhone 11"] {
            let lca = cc_data::devices::find(name).expect("device dataset");
            let d = CarbonDecomposition::from_footprint(&cc_lca::Footprint::from_product_lca(lca));
            pies.row([
                name.to_string(),
                d.opex_share().to_string(),
                d.capex_share().to_string(),
            ]);
        }
        let fb2018 = cc_data::corporate::year_of(&cc_data::corporate::FACEBOOK, 2018).unwrap();
        // With renewables: market-based Scope 2 against full Scope 3.
        let with = CarbonDecomposition::new(
            CarbonMass::from_mt(fb2018.scope1_mt + fb2018.scope2_market_mt),
            CarbonMass::from_mt(fb2018.scope3_mt),
        );
        pies.row([
            "Facebook 2018 (with renewables)".to_string(),
            with.opex_share().to_string(),
            with.capex_share().to_string(),
        ]);
        // Without renewables: location-based Scope 2 against the
        // pre-disclosure-change Scope 3 comparable.
        let without = CarbonDecomposition::new(
            CarbonMass::from_mt(fb2018.scope1_mt + fb2018.scope2_location_mt),
            CarbonMass::from_mt(cc_data::corporate::FACEBOOK_2018_SCOPE3_LEGACY_MT),
        );
        pies.row([
            "Facebook 2018 (without renewables)".to_string(),
            without.opex_share().to_string(),
            without.capex_share().to_string(),
        ]);
        out.table("Opex/capex breakdown pies", pies);
        out.note("paper: iPhone 3GS 51%/49% opex/capex; iPhone 11 14%/86%".to_string());
        out.note(format!(
            "paper: Facebook capex 82% with renewables / 35% without; measured {} / {}",
            with.capex_share(),
            without.capex_share()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pies_match_paper() {
        let out = Fig02EnergyVsCarbon.run(&RunContext::paper());
        let pies = &out.tables[1].1;
        assert_eq!(pies.len(), 4);
        // iPhone 11 capex 86%.
        assert!(pies.rows()[1][2].starts_with("86"));
        // iPhone 3GS capex 49%.
        assert!(pies.rows()[0][2].starts_with("49"));
        // Facebook with renewables: capex ~82%.
        let fb = &pies.rows()[2][2];
        let v: f64 = fb.trim_end_matches('%').parse().unwrap();
        assert!((v - 82.0).abs() < 1.5, "{fb}");
    }

    #[test]
    fn prineville_table_spans_2013_to_2019() {
        let out = Fig02EnergyVsCarbon.run(&RunContext::paper());
        let t = &out.tables[0].1;
        assert_eq!(t.rows().first().unwrap()[0], "2013");
        assert_eq!(t.rows().last().unwrap()[0], "2019");
    }

    #[test]
    fn paper_defaults_replay_disclosed_prineville_rows() {
        // The facility path must not perturb the disclosed replay: every
        // rendered cell matches a direct Prineville simulation bit-for-bit.
        let out = Fig02EnergyVsCarbon.run(&RunContext::paper());
        let t = &out.tables[0].1;
        let direct = cc_dcsim::prineville::simulate();
        assert_eq!(t.len(), direct.len());
        for (row, y) in t.rows().iter().zip(&direct) {
            assert_eq!(row[0], y.year.to_string());
            assert_eq!(row[1], num(y.energy.as_gwh(), 0));
            assert_eq!(row[2], num(y.market_carbon.as_kt(), 1));
        }
        assert!(
            out.summary_scalar().unwrap().value < 10.0,
            "near zero by 2019"
        );
    }

    #[test]
    fn fleet_scenario_redraws_the_left_panel() {
        let brown = {
            let mut s = cc_report::Scenario::builder().name("brown").build();
            s.set("fleet.renewable_ramp", "0").unwrap();
            s
        };
        let out = Fig02EnergyVsCarbon.run(&RunContext::new(brown));
        assert!(out.tables[0].0.starts_with("Scenario facility"));
        // Without the ramp, operational carbon never collapses.
        assert!(out.summary_scalar().unwrap().value > 90.0);
    }
}
