//! Figure 13: Intel and AMD life-cycle carbon breakdowns as hardware
//! operation shifts to greener energy sources.
//!
//! The model: each vendor reports a life-cycle composition at the baseline
//! (average US) grid. The hardware-use component scales with the carbon
//! intensity of the energy source powering operation; every other component
//! is manufacturing/logistics and does not. The figure sweeps sources from
//! the world average down to wind.

use cc_data::corporate::LifecycleComponent;
use cc_data::energy_sources::EnergySource;
use cc_data::grids::Region;
use cc_report::{Experiment, ExperimentId, ExperimentOutput, RunContext, Series, Table};

/// Reproduces Fig 13.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig13EnergySourceSweep;

/// The x-axis of Fig 13: "increasingly green" energy sources.
#[must_use]
pub fn sweep_points() -> Vec<(&'static str, f64)> {
    let mut points = vec![
        ("World Avg", Region::World.carbon_intensity().as_g_per_kwh()),
        ("Coal", EnergySource::Coal.carbon_intensity().as_g_per_kwh()),
        ("Gas", EnergySource::Gas.carbon_intensity().as_g_per_kwh()),
        (
            "America Avg",
            Region::UnitedStates.carbon_intensity().as_g_per_kwh(),
        ),
        (
            "Biomass",
            EnergySource::Biomass.carbon_intensity().as_g_per_kwh(),
        ),
        (
            "Solar",
            EnergySource::Solar.carbon_intensity().as_g_per_kwh(),
        ),
        (
            "Geothermal",
            EnergySource::Geothermal.carbon_intensity().as_g_per_kwh(),
        ),
        (
            "Hydropower",
            EnergySource::Hydropower.carbon_intensity().as_g_per_kwh(),
        ),
        (
            "Nuclear",
            EnergySource::Nuclear.carbon_intensity().as_g_per_kwh(),
        ),
        ("Wind", EnergySource::Wind.carbon_intensity().as_g_per_kwh()),
    ];
    // Keep the figure's left-to-right ordering (it is not strictly sorted,
    // matching the paper's axis): World, Coal, Gas, America, then greens.
    points.shrink_to_fit();
    points
}

/// Re-normalized life-cycle shares when hardware use runs on a source of
/// intensity `g_per_kwh`, relative to the 380 g/kWh baseline.
#[must_use]
pub fn rescaled_shares(
    baseline: &[LifecycleComponent],
    g_per_kwh: f64,
) -> Vec<(&'static str, f64)> {
    let scale = g_per_kwh / cc_data::US_GRID_G_PER_KWH;
    let raw: Vec<(&'static str, f64)> = baseline
        .iter()
        .map(|c| {
            (
                c.label,
                if c.scales_with_use_energy {
                    c.share * scale
                } else {
                    c.share
                },
            )
        })
        .collect();
    let total: f64 = raw.iter().map(|&(_, v)| v).sum();
    raw.into_iter().map(|(l, v)| (l, v / total)).collect()
}

fn vendor_table(
    baseline: &[LifecycleComponent],
    extra_points: &[(&'static str, f64)],
) -> (Table, Series, f64, f64) {
    let mut header: Vec<String> = vec!["Energy source".into(), "g CO2e/kWh".into()];
    header.extend(baseline.iter().map(|c| c.label.to_string()));
    let mut t = Table::new(header);
    let mut hw_use = Series::new("hw-use-share", "g CO2e/kWh", "share of life cycle");
    let mut hw_use_baseline = 0.0;
    let mut hw_use_wind = 0.0;
    let mut points = sweep_points();
    points.extend_from_slice(extra_points);
    for (label, g) in points {
        let shares = rescaled_shares(baseline, g);
        let mut row = vec![label.to_string(), format!("{g:.0}")];
        for (component, share) in &shares {
            row.push(format!("{:.0}%", share * 100.0));
            if *component == "HW use" {
                hw_use.push_labeled(g, label, *share);
                if label == "America Avg" {
                    hw_use_baseline = *share;
                }
                if label == "Wind" {
                    hw_use_wind = *share;
                }
            }
        }
        t.row(row);
    }
    (t, hw_use, hw_use_baseline, hw_use_wind)
}

impl Experiment for Fig13EnergySourceSweep {
    fn id(&self) -> ExperimentId {
        ExperimentId::Figure(13)
    }

    fn description(&self) -> &'static str {
        "Intel/AMD life-cycle breakdown as hardware use shifts to greener energy"
    }

    fn run(&self, ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        // Scenarios with a non-paper *grid* contribute their own grid as an
        // extra sweep point, so the figure answers "where does *my* grid
        // land?". Only the grid fields decide — the figure ignores the rest
        // of the scenario, and declaring that keeps it cacheable across
        // non-grid sweep axes.
        let extra: Vec<(&'static str, f64)> = if ctx.grid_is_paper() {
            Vec::new()
        } else {
            vec![(
                "Scenario grid",
                ctx.effective_grid_intensity().as_g_per_kwh(),
            )]
        };
        let (intel, mut intel_series, intel_base, intel_wind) =
            vendor_table(&cc_data::corporate::INTEL_LIFECYCLE, &extra);
        out.table("Intel life-cycle breakdown by energy source", intel);
        intel_series.name = "intel-hw-use-share".to_string();
        out.series(intel_series);
        let (amd, mut amd_series, amd_base, amd_wind) =
            vendor_table(&cc_data::corporate::AMD_LIFECYCLE, &extra);
        out.table("AMD life-cycle breakdown by energy source", amd);
        amd_series.name = "amd-hw-use-share".to_string();
        out.series(amd_series);

        // The headline scalar tracks the scenario: the HW-use share of
        // Intel's life cycle on the *effective* scenario grid.
        let intel_scenario_use = rescaled_shares(
            &cc_data::corporate::INTEL_LIFECYCLE,
            ctx.effective_grid_intensity().as_g_per_kwh(),
        )
        .iter()
        .find(|(l, _)| *l == "HW use")
        .map_or(0.0, |(_, v)| *v);
        out.scalar("intel-hw-use-share", "%", intel_scenario_use * 100.0);
        out.note(format!(
            "paper: ~60% of Intel's and ~45% of AMD's life-cycle emissions are hardware use on \
             the US grid; measured {:.0}% / {:.0}%",
            intel_base * 100.0,
            amd_base * 100.0
        ));
        out.note(format!(
            "paper: with solar/wind, over 80% of emissions come from manufacturing; measured \
             manufacturing-side shares {:.0}% (Intel) / {:.0}% (AMD) on wind",
            (1.0 - intel_wind) * 100.0,
            (1.0 - amd_wind) * 100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_shares_recover_reported_values() {
        let shares = rescaled_shares(&cc_data::corporate::INTEL_LIFECYCLE, 380.0);
        let hw_use = shares.iter().find(|(l, _)| *l == "HW use").unwrap().1;
        assert!((hw_use - 0.60).abs() < 1e-9);
        let total: f64 = shares.iter().map(|&(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn wind_pushes_manufacturing_above_80_percent() {
        for baseline in [
            &cc_data::corporate::INTEL_LIFECYCLE[..],
            &cc_data::corporate::AMD_LIFECYCLE[..],
        ] {
            let shares = rescaled_shares(baseline, 11.0);
            let hw_use = shares.iter().find(|(l, _)| *l == "HW use").unwrap().1;
            assert!(hw_use < 0.20, "use share on wind {hw_use}");
        }
    }

    #[test]
    fn coal_increases_use_share_above_baseline() {
        let shares = rescaled_shares(&cc_data::corporate::INTEL_LIFECYCLE, 820.0);
        let hw_use = shares.iter().find(|(l, _)| *l == "HW use").unwrap().1;
        assert!(hw_use > 0.60);
    }

    #[test]
    fn sweep_has_ten_points() {
        assert_eq!(sweep_points().len(), 10);
        let out = Fig13EnergySourceSweep.run(&RunContext::paper());
        assert_eq!(out.tables[0].1.len(), 10);
        assert_eq!(out.tables[1].1.len(), 10);
    }
}
