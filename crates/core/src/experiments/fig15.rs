//! Figure 15: cross-stack research directions for reducing carbon.

use cc_report::{Experiment, ExperimentId, ExperimentOutput, RunContext, Table};

/// Reproduces Fig 15's taxonomy, cross-referencing the modules in this
/// workspace that implement each direction.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig15ResearchDirections;

impl Experiment for Fig15ResearchDirections {
    fn id(&self) -> ExperimentId {
        ExperimentId::Figure(15)
    }

    fn description(&self) -> &'static str {
        "Cross-layer optimization opportunities across the computing stack"
    }

    fn run(&self, _ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        let mut t = Table::new(["Stack layer", "Opportunity", "Modelled in this repo by"]);
        t.row([
            "Applications/Algorithms",
            "Operational energy minimization (leaner models)",
            "cc-socsim networks: MobileNet family vs ResNet/Inception",
        ]);
        t.row([
            "Runtime systems",
            "Carbon-aware load balancing / scheduling workloads",
            "cc-dcsim::scheduler (ext-sched)",
        ]);
        t.row([
            "Systems",
            "Scale down hardware; datacenter heterogeneity",
            "Table IV experiment; cc-dcsim server SKUs",
        ]);
        t.row([
            "Compilers",
            "Energy-aware code generation",
            "(out of scope: no compiler substrate in the paper's evaluation)",
        ]);
        t.row([
            "Architecture",
            "Specialized hardware; judicious provisioning",
            "cc-socsim DSP path; Fig 9/10 experiments",
        ]);
        t.row([
            "Circuits",
            "Lower-footprint circuit design; reliability (longer lifetime)",
            "cc-lca amortization lifetime sensitivity",
        ]);
        t.row([
            "Devices & Manufacturing",
            "Greener fabs; yield; PFC abatement",
            "cc-fab: wafer sweep, die model, abatement",
        ]);
        let modelled = t
            .rows()
            .iter()
            .filter(|r| !r[2].starts_with("(out of scope"))
            .count();
        out.table("Research directions (Fig 15)", t);
        out.scalar("stack-layers-modelled", "layers", modelled as f64);
        out.note("structural figure: the mapping doubles as this repository's coverage index");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_seven_stack_layers() {
        let out = Fig15ResearchDirections.run(&RunContext::paper());
        assert_eq!(out.tables[0].1.len(), 7);
    }
}
