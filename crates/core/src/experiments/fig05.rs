//! Figure 5: Apple's FY2019 carbon-emission breakdown.

use cc_data::corporate::{apple_2019_group_share, apple_2019_total, APPLE_2019_BREAKDOWN};
use cc_report::{table::num, Experiment, ExperimentId, ExperimentOutput, RunContext, Table};

/// Reproduces Fig 5.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig05AppleBreakdown;

impl Experiment for Fig05AppleBreakdown {
    fn id(&self) -> ExperimentId {
        ExperimentId::Figure(5)
    }

    fn description(&self) -> &'static str {
        "Apple FY2019 footprint: manufacturing 74%, product use 19%, ICs 33% of total"
    }

    fn run(&self, _ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        let total = apple_2019_total();
        let mut t = Table::new(["Slice", "Group", "Share", "Mt CO2e"]);
        for slice in APPLE_2019_BREAKDOWN {
            t.row([
                slice.label.to_string(),
                slice.group.to_string(),
                format!("{:.1}%", slice.share * 100.0),
                num((total * slice.share).as_mt(), 2),
            ]);
        }
        out.table("Apple FY2019 breakdown (total 25 Mt CO2e)", t);

        let manufacturing = apple_2019_group_share("Manufacturing");
        let product_use = apple_2019_group_share("Product Use");
        let ics = APPLE_2019_BREAKDOWN[0].share;
        out.scalar("manufacturing-share", "%", manufacturing * 100.0);
        out.note(format!(
            "paper: manufacturing 74% / use 19%; measured {:.0}% / {:.0}%",
            manufacturing * 100.0,
            product_use * 100.0
        ));
        out.note(format!(
            "paper: integrated circuits (~33%) alone exceed all product use; measured ICs {:.0}% {} use {:.0}%",
            ics * 100.0,
            if ics > product_use { ">" } else { "<=" },
            product_use * 100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_slices_and_anchor_notes() {
        let out = Fig05AppleBreakdown.run(&RunContext::paper());
        assert_eq!(out.tables[0].1.len(), 16);
        assert!(out.notes[1].contains('>'));
    }
}
