//! Figure 12: Facebook's 2019 Scope 3 category breakdown.

use cc_report::{table::num, Experiment, ExperimentId, ExperimentOutput, RunContext, Table};
use cc_units::CarbonMass;

/// Reproduces Fig 12.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig12Scope3Breakdown;

impl Experiment for Fig12Scope3Breakdown {
    fn id(&self) -> ExperimentId {
        ExperimentId::Figure(12)
    }

    fn description(&self) -> &'static str {
        "Facebook 2019 Scope 3: capital goods 48%, purchased goods 39%, travel 10%, other 3%"
    }

    fn run(&self, _ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        let scope3 = CarbonMass::from_mt(
            cc_data::corporate::year_of(&cc_data::corporate::FACEBOOK, 2019)
                .expect("2019 in series")
                .scope3_mt,
        );
        let mut t = Table::new(["Category", "Share", "Mt CO2e", "Capex-related"]);
        let mut capex_share = 0.0;
        for cat in cc_data::corporate::FACEBOOK_2019_SCOPE3 {
            if cat.is_capex {
                capex_share += cat.share;
            }
            t.row([
                cat.label.to_string(),
                format!("{:.0}%", cat.share * 100.0),
                num((scope3 * cat.share).as_mt(), 2),
                if cat.is_capex { "yes" } else { "no" }.to_string(),
            ]);
        }
        out.table("Facebook 2019 Scope 3 breakdown", t);
        out.scalar("capex-related-scope3-share", "%", capex_share * 100.0);
        out.note(format!(
            "paper: construction and hardware (capital goods) account for up to 48% of Scope 3; \
             capex-related categories total {:.0}%",
            capex_share * 100.0
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_categories_with_capital_goods_at_48() {
        let out = Fig12Scope3Breakdown.run(&RunContext::paper());
        let t = &out.tables[0].1;
        assert_eq!(t.len(), 4);
        assert_eq!(t.rows()[0][0], "Capital goods");
        assert_eq!(t.rows()[0][1], "48%");
    }
}
