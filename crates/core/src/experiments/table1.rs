//! Table I: salient Scope 1/2/3 emissions by company archetype.

use cc_ghg::scope::{CompanyKind, Scope};
use cc_report::{Experiment, ExperimentId, ExperimentOutput, RunContext, Table};

/// Reproduces Table I.
#[derive(Debug, Clone, Copy, Default)]
pub struct Table1Scopes;

impl Experiment for Table1Scopes {
    fn id(&self) -> ExperimentId {
        ExperimentId::Table(1)
    }

    fn description(&self) -> &'static str {
        "Salient Scope 1/2/3 emissions for chip manufacturers, mobile vendors, DC operators"
    }

    fn run(&self, _ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        let mut t = Table::new(["Technology company", "Scope 1", "Scope 2", "Scope 3"]);
        for kind in CompanyKind::ALL {
            t.row([
                kind.to_string(),
                kind.salient_emissions(Scope::Scope1).to_string(),
                kind.salient_emissions(Scope::Scope2).to_string(),
                kind.salient_emissions(Scope::Scope3).to_string(),
            ]);
        }
        out.table("Table I: GHG Protocol scopes by company type", t);
        out.scalar(
            "company-archetypes",
            "archetypes",
            CompanyKind::ALL.len() as f64,
        );
        out.note(
            "Scope 1 dominates operational output only for chip manufacturers \
             (PFCs, chemicals, gases)",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_archetypes() {
        let out = Table1Scopes.run(&RunContext::paper());
        let t = &out.tables[0].1;
        assert_eq!(t.len(), 3);
        assert!(t.rows()[0][1].contains("PFCs"));
    }
}
