//! Extension: annual fab decarbonization (Section VI, devices &
//! manufacturing) — the 3 nm fab under renewable-share and PFC-abatement
//! recipes.

use cc_fab::FabModel;
use cc_report::{
    table::num, Experiment, ExperimentId, ExperimentOutput, RunContext, Series, Table,
};

/// Sweeps renewable coverage for the paper's projected 3 nm fab.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExtFabDecarbonization;

impl Experiment for ExtFabDecarbonization {
    fn id(&self) -> ExperimentId {
        ExperimentId::Extension("fab")
    }

    fn description(&self) -> &'static str {
        "A 7.7 TWh/yr 3nm fab under rising renewable coverage: Scope 1 vs Scope 2"
    }

    fn run(&self, ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        let mut t = Table::new([
            "Renewable share",
            "Scope 1 (Mt/yr)",
            "Scope 2 (Mt/yr)",
            "Total (Mt/yr)",
            "Per wafer (kg)",
        ]);
        let mut totals = Series::new("fab-total", "renewable share", "Mt CO2e/yr");
        let mut shares = vec![0.0, 0.2, 0.5, 0.8, 1.0];
        // Make sure the scenario's own share appears as a sweep point.
        if !shares
            .iter()
            .any(|&s| (s - ctx.fab_renewable_share()).abs() < 1e-12)
        {
            shares.push(ctx.fab_renewable_share());
            shares.sort_by(|a, b| a.partial_cmp(b).unwrap());
        }
        for share in shares {
            let fab = FabModel::tsmc_3nm_2025().with_renewable_share(share);
            totals.push(share, fab.annual_carbon().as_mt());
            t.row([
                format!("{:.0}%", share * 100.0),
                num(fab.scope1().as_mt(), 2),
                num(fab.scope2().as_mt(), 2),
                num(fab.annual_carbon().as_mt(), 2),
                num(fab.carbon_per_wafer().as_kg(), 0),
            ]);
        }
        out.table("3 nm fab annual footprint vs renewable coverage", t);
        out.series(totals);
        let at_scenario = FabModel::tsmc_3nm_2025().with_renewable_share(ctx.fab_renewable_share());
        out.scalar(
            "annual-carbon-at-scenario-share",
            "Mt CO2e/yr",
            at_scenario.annual_carbon().as_mt(),
        );
        out.note(format!(
            "scenario fab.renewable_share = {:.0}%: {:.2} Mt/yr ({:.0} kg per wafer)",
            ctx.fab_renewable_share() * 100.0,
            at_scenario.annual_carbon().as_mt(),
            at_scenario.carbon_per_wafer().as_kg()
        ));
        out.note(
            "paper anchors: 7.7 TWh/yr projected demand; TSMC's renewable target covers 20% of \
             fab electricity; even at 100% renewables, Scope 1 process emissions remain",
        );
        let fab0 = FabModel::tsmc_3nm_2025().with_renewable_share(0.0);
        let fab100 = FabModel::tsmc_3nm_2025().with_renewable_share(1.0);
        out.note(format!(
            "full renewables cut the fab total {:.1}x; the floor is PFC/chemical Scope 1",
            fab0.annual_carbon() / fab100.annual_carbon()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope1_is_constant_across_rows() {
        let out = ExtFabDecarbonization.run(&RunContext::paper());
        let t = &out.tables[0].1;
        assert_eq!(t.len(), 5);
        let s1: Vec<&String> = t.rows().iter().map(|r| &r[1]).collect();
        assert!(s1.windows(2).all(|w| w[0] == w[1]), "{s1:?}");
    }

    #[test]
    fn totals_fall_monotonically() {
        let out = ExtFabDecarbonization.run(&RunContext::paper());
        let totals: Vec<f64> = out.tables[0]
            .1
            .rows()
            .iter()
            .map(|r| r[3].parse().unwrap())
            .collect();
        for pair in totals.windows(2) {
            assert!(pair[1] < pair[0]);
        }
    }
}
