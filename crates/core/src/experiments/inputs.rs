//! Shared, lazily-built model inputs.
//!
//! A sweep runs the same experiment at every grid point, and several
//! experiments start from the same expensive inputs: the Pixel-3 execution
//! model and the built CNN networks. Rebuilding them per (point × experiment)
//! job wastes most of a sweep's wall-clock, so the registry exposes one
//! process-wide [`SharedInputs`] handle — each input is built once, on first
//! use, and shared (immutably) across every worker thread and grid point.

use cc_data::ai_models::CnnModel;
use cc_socsim::{ExecutionModel, Network};
use std::sync::OnceLock;

/// Lazily-built inputs shared by every experiment instance and worker
/// thread. Obtain the process-wide handle via [`shared`] (or
/// [`super::Entry::inputs`]).
#[derive(Debug)]
pub struct SharedInputs {
    pixel3: OnceLock<ExecutionModel>,
    networks: OnceLock<Vec<(CnnModel, Network)>>,
}

impl SharedInputs {
    /// An empty cache; inputs are built on first access.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            pixel3: OnceLock::new(),
            networks: OnceLock::new(),
        }
    }

    /// The Pixel-3 (Snapdragon 845) execution model, built once.
    pub fn pixel3(&self) -> &ExecutionModel {
        self.pixel3.get_or_init(ExecutionModel::pixel3)
    }

    /// The built networks for every Fig 9 CNN, in [`CnnModel::FIG9`] order.
    pub fn networks(&self) -> &[(CnnModel, Network)] {
        self.networks.get_or_init(|| {
            CnnModel::FIG9
                .into_iter()
                .map(|cnn| (cnn, Network::build(cnn)))
                .collect()
        })
    }

    /// The built network for one Fig 9 CNN (`None` for CNNs outside the
    /// Fig 9 set — build those directly).
    pub fn network(&self, cnn: CnnModel) -> Option<&Network> {
        self.networks()
            .iter()
            .find(|(c, _)| *c == cnn)
            .map(|(_, n)| n)
    }
}

impl Default for SharedInputs {
    fn default() -> Self {
        Self::new()
    }
}

/// The process-wide shared-inputs handle.
#[must_use]
pub fn shared() -> &'static SharedInputs {
    static SHARED: SharedInputs = SharedInputs::new();
    &SHARED
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inputs_are_built_once_and_shared() {
        let a: *const ExecutionModel = shared().pixel3();
        let b: *const ExecutionModel = shared().pixel3();
        assert_eq!(a, b, "second access must reuse the first build");
        assert_eq!(shared().networks().len(), CnnModel::FIG9.len());
        for cnn in CnnModel::FIG9 {
            assert!(shared().network(cnn).is_some());
        }
    }

    #[test]
    fn shared_handle_is_thread_safe() {
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    let model = shared().pixel3();
                    let (_, net) = &shared().networks()[0];
                    assert!(model.run_all_units(net).len() >= 2);
                });
            }
        });
    }
}
