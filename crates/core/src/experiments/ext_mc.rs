//! Extension: Monte-Carlo robustness of the paper's headline claims under
//! disclosure-level input uncertainty.

use cc_analysis::uncertainty::{propagate, Triangular};
use cc_report::{table::num, Experiment, ExperimentId, ExperimentOutput, RunContext, Table};

/// Propagates triangular input uncertainty through three headline results:
/// the Fig 10 break-even, the Fig 11 capex/opex ratio, and the Fig 14 wafer
/// reduction.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExtMonteCarlo;

impl Experiment for ExtMonteCarlo {
    fn id(&self) -> ExperimentId {
        ExperimentId::Extension("mc")
    }

    fn description(&self) -> &'static str {
        "Monte-Carlo robustness of the headline claims under input uncertainty"
    }

    fn run(&self, ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        let mut t = Table::new(["Headline", "Median", "90% band", "Claim survives?"]);

        // 1. Fig 10: MobileNet v3 CPU break-even images.
        //    budget +/-20%, grid +/-15%, energy/image +/-25%.
        let trials = ctx.mc_samples();
        let soc_budget = super::fig10::pixel3_soc_budget(ctx.soc_budget_share()).as_grams();
        let be = propagate(
            &[
                Triangular::around(soc_budget, 0.20),
                Triangular::around(ctx.effective_grid_intensity().as_g_per_kwh(), 0.15),
                Triangular::around(0.0447, 0.25),
            ],
            trials,
            ctx.mc_seed(),
            |x| x[0] / ((x[2] / 3.6e6) * x[1]),
        );
        let survives = be.p05 > 10.0 * cc_data::ai_models::IMAGENET_TRAIN_IMAGES as f64;
        out.scalar("fig10-breakeven-median", "images", be.p50);
        t.row([
            "Fig 10 break-even (images)".to_string(),
            format!("{:.1e}", be.p50),
            format!("{:.1e}..{:.1e}", be.p05, be.p95),
            (if survives { "yes" } else { "no" }).to_string(),
        ]);

        // 2. Fig 11: Facebook capex/opex ratio with +/-30% Scope 3 (embodied
        //    factors are coarse) and +/-10% Scope 2 (metered energy).
        let fb = cc_data::corporate::year_of(&cc_data::corporate::FACEBOOK, 2019).unwrap();
        let ratio = propagate(
            &[
                Triangular::around(fb.scope3_mt, 0.30),
                Triangular::around(fb.scope1_mt + fb.scope2_market_mt, 0.10),
            ],
            trials,
            ctx.mc_seed().wrapping_add(1),
            |x| x[0] / x[1],
        );
        t.row([
            "Fig 11 capex/opex ratio".to_string(),
            num(ratio.p50, 1),
            format!("{}..{}", num(ratio.p05, 1), num(ratio.p95, 1)),
            (if ratio.p05 > 10.0 { "yes" } else { "no" }).to_string(),
        ]);

        // 3. Fig 14: wafer reduction at 64x with the energy share known only
        //    to +/-5 percentage points.
        let reduction = propagate(
            &[Triangular::new(0.59, 0.64, 0.69)],
            trials,
            ctx.mc_seed().wrapping_add(2),
            |x| 1.0 / ((1.0 - x[0]) + x[0] / 64.0),
        );
        t.row([
            "Fig 14 reduction at 64x".to_string(),
            format!("{}x", num(reduction.p50, 2)),
            format!("{}x..{}x", num(reduction.p05, 2), num(reduction.p95, 2)),
            (if reduction.p05 > 2.0 && reduction.p95 < 3.5 {
                "yes"
            } else {
                "no"
            })
            .to_string(),
        ]);

        out.table("Headline robustness under triangular input uncertainty", t);
        out.note(
            "all three headlines survive disclosure-level uncertainty: the paper's conclusions \
             are not artifacts of point estimates",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_claims_survive() {
        let out = ExtMonteCarlo.run(&RunContext::paper());
        let t = &out.tables[0].1;
        assert_eq!(t.len(), 3);
        for row in t.rows() {
            assert_eq!(row[3], "yes", "{row:?}");
        }
    }
}
