//! Figure 6: carbon breakdown and absolute footprint across device
//! categories.

use cc_lca::inventory;
use cc_report::{table::num, Experiment, ExperimentId, ExperimentOutput, RunContext, Table};

/// Reproduces Fig 6.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig06DeviceBreakdown;

impl Experiment for Fig06DeviceBreakdown {
    fn id(&self) -> ExperimentId {
        ExperimentId::Figure(6)
    }

    fn description(&self) -> &'static str {
        "Capex/opex breakdown (top) and absolute footprint (bottom) by device category"
    }

    fn run(&self, _ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        let summaries = inventory::all_categories();

        let mut top = Table::new([
            "Category",
            "Power model",
            "Devices",
            "Manufacturing share (mean +/- std)",
            "Use share (mean +/- std)",
        ]);
        for s in &summaries {
            top.row([
                s.category.to_string(),
                if s.category.is_battery_operated() {
                    "battery".to_string()
                } else {
                    "always connected".to_string()
                },
                s.count.to_string(),
                format!(
                    "{:.0}% +/- {:.0}%",
                    s.manufacturing_share_mean * 100.0,
                    s.manufacturing_share_std * 100.0
                ),
                format!(
                    "{:.0}% +/- {:.0}%",
                    s.use_share_mean * 100.0,
                    s.use_share_std * 100.0
                ),
            ]);
        }
        out.table("Breakdown by category (Fig 6 top)", top);

        let mut bottom = Table::new([
            "Category",
            "Total (kg CO2e, mean)",
            "Manufacturing (kg, mean)",
            "Use (kg, mean)",
        ]);
        for s in &summaries {
            bottom.row([
                s.category.to_string(),
                num(s.total_mean.as_kg(), 0),
                num(s.manufacturing_mean.as_kg(), 0),
                num(s.use_mean.as_kg(), 0),
            ]);
        }
        out.table("Absolute footprint by category (Fig 6 bottom)", bottom);

        let battery: Vec<_> = summaries
            .iter()
            .filter(|s| s.category.is_battery_operated())
            .collect();
        let avg_mfg: f64 = battery
            .iter()
            .map(|s| s.manufacturing_share_mean)
            .sum::<f64>()
            / battery.len() as f64;
        out.scalar("battery-manufacturing-share", "%", avg_mfg * 100.0);
        out.note(format!(
            "paper: manufacturing ~75% for battery-powered devices; measured {:.0}%",
            avg_mfg * 100.0
        ));
        out.note(
            "paper: always-connected devices (speakers, desktops, consoles) are use-dominated",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_categories_in_both_panels() {
        let out = Fig06DeviceBreakdown.run(&RunContext::paper());
        assert_eq!(out.tables[0].1.len(), 8);
        assert_eq!(out.tables[1].1.len(), 8);
    }

    #[test]
    fn battery_manufacturing_share_is_about_75_percent() {
        let out = Fig06DeviceBreakdown.run(&RunContext::paper());
        let note = &out.notes[0];
        let measured: f64 = note
            .rsplit_once("measured ")
            .unwrap()
            .1
            .trim_end_matches('%')
            .parse()
            .unwrap();
        assert!((measured - 70.0).abs() < 8.0, "measured {measured}%");
    }
}
