//! Extension: fleet heterogeneity / specialization (Section VI, systems).

use cc_dcsim::heterogeneity::{provision, SkuCapability};
use cc_report::{table::num, Experiment, ExperimentId, ExperimentOutput, RunContext, Table};
use cc_units::CarbonIntensity;

/// Compares general-purpose and accelerator fleets across grids and demand
/// scales.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExtHeterogeneity;

impl Experiment for ExtHeterogeneity {
    fn id(&self) -> ExperimentId {
        ExperimentId::Extension("hetero")
    }

    fn description(&self) -> &'static str {
        "Specialized accelerators vs general-purpose fleets: yearly opex+capex carbon"
    }

    fn run(&self, ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        let mut scenario_advantage = f64::NAN;
        let mut t = Table::new([
            "Grid",
            "Demand (units)",
            "General total (t/yr)",
            "Accelerator total (t/yr)",
            "Advantage",
            "Accel capex share",
        ]);
        // Row block one is the scenario grid (the paper's US 380 g/kWh by
        // default); block two is the all-wind endpoint for contrast.
        let scenario_g = ctx.effective_grid_intensity().as_g_per_kwh();
        let scenario_label = format!(
            "{} {:.0}",
            if ctx.grid_is_paper() {
                "US"
            } else {
                "Scenario"
            },
            scenario_g
        );
        for (grid_name, g) in [(scenario_label.as_str(), scenario_g), ("Wind 11", 11.0)] {
            for demand in [
                1_000.0 * ctx.fleet_scale(),
                10_000.0 * ctx.fleet_scale(),
                100_000.0 * ctx.fleet_scale(),
            ] {
                let grid = CarbonIntensity::from_g_per_kwh(g);
                let (_, general) = provision(&SkuCapability::general_purpose(), demand, grid, 1.1);
                let (_, special) = provision(&SkuCapability::accelerator(), demand, grid, 1.1);
                if grid_name != "Wind 11" && scenario_advantage.is_nan() {
                    // Headline: the specialization advantage at the smallest
                    // demand tier on the scenario grid.
                    scenario_advantage = general.total() / special.total();
                }
                t.row([
                    grid_name.to_string(),
                    num(demand, 0),
                    num(general.total().as_tonnes(), 0),
                    num(special.total().as_tonnes(), 0),
                    format!("{:.1}x", general.total() / special.total()),
                    format!("{:.0}%", 100.0 * (special.capex_per_year / special.total())),
                ]);
            }
        }
        out.table("Specialization comparison", t);
        out.scalar("specialization-advantage", "x", scenario_advantage);
        out.note(
            "on a green grid the accelerator's remaining advantage is embodied carbon: \
             fewer boxes for the same work — heterogeneity as a capex lever",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_rows_all_with_advantage_above_one() {
        let out = ExtHeterogeneity.run(&RunContext::paper());
        let t = &out.tables[0].1;
        assert_eq!(t.len(), 6);
        for row in t.rows() {
            let adv: f64 = row[4].trim_end_matches('x').parse().unwrap();
            assert!(adv > 1.0, "{row:?}");
        }
    }

    #[test]
    fn capex_share_rises_on_wind() {
        let out = ExtHeterogeneity.run(&RunContext::paper());
        let t = &out.tables[0].1;
        let us_share: f64 = t.rows()[1][5].trim_end_matches('%').parse().unwrap();
        let wind_share: f64 = t.rows()[4][5].trim_end_matches('%').parse().unwrap();
        assert!(wind_share > us_share);
    }
}
