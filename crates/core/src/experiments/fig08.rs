//! Figure 8: performance vs manufacturing-carbon Pareto frontier by phone
//! generation.

use cc_analysis::pareto::{benefit_shift, frontier, Point};
use cc_data::phone_perf;
use cc_report::{table::num, Experiment, ExperimentId, ExperimentOutput, RunContext, Table};

/// Reproduces Fig 8.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig08Pareto;

fn cohort_points(year: u16) -> Vec<Point<&'static str>> {
    phone_perf::cohort(year)
        .map(|p| Point::new(p.throughput_ips, p.manufacturing().as_kg(), p.device))
        .collect()
}

impl Experiment for Fig08Pareto {
    fn id(&self) -> ExperimentId {
        ExperimentId::Figure(8)
    }

    fn description(&self) -> &'static str {
        "MobileNet v1 throughput vs manufacturing CO2e; Pareto frontiers 2017 vs 2019"
    }

    fn run(&self, _ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();

        let mut points = Table::new([
            "Device",
            "Vendor",
            "Year",
            "Throughput (img/s)",
            "Manufacturing (kg CO2e)",
        ]);
        for p in &phone_perf::ALL {
            let lca = p.lca();
            points.row([
                p.device.to_string(),
                lca.vendor.tag().to_string(),
                lca.year.to_string(),
                num(p.throughput_ips, 0),
                num(p.manufacturing().as_kg(), 1),
            ]);
        }
        out.table("Measurement points", points);

        let front2017 = frontier(&cohort_points(2017));
        let front2019 = frontier(&cohort_points(2019));
        for (year, front) in [(2017, &front2017), (2019, &front2019)] {
            let mut t = Table::new(["Device", "Throughput (img/s)", "Manufacturing (kg CO2e)"]);
            for p in front {
                t.row([p.tag.to_string(), num(p.benefit, 0), num(p.cost, 1)]);
            }
            out.table(format!("Pareto frontier, devices through {year}"), t);
        }

        let shift = benefit_shift(&front2017, &front2019);
        out.scalar("frontier-benefit-shift", "x", shift);
        out.note(format!(
            "paper: frontier shifted primarily right (more performance, similar carbon); \
             measured mean benefit shift {shift:.1}x at matched carbon budgets"
        ));
        out.note(
            "paper anchors: iPhone 11 Pro 75 img/s @ 66 kg; Pixel 3a 20 img/s @ 45 kg; \
             iPhone 11 doubles iPhone X throughput at slightly lower carbon",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frontier_2019_extends_beyond_2017() {
        let f17 = frontier(&cohort_points(2017));
        let f19 = frontier(&cohort_points(2019));
        let best17 = f17.iter().map(|p| p.benefit).fold(0.0, f64::max);
        let best19 = f19.iter().map(|p| p.benefit).fold(0.0, f64::max);
        assert!(
            best19 > best17 * 1.8,
            "2019 frontier should roughly double peak throughput"
        );
    }

    #[test]
    fn output_has_points_and_two_frontiers() {
        let out = Fig08Pareto.run(&RunContext::paper());
        assert_eq!(out.tables.len(), 3);
        assert_eq!(out.tables[0].1.len(), phone_perf::ALL.len());
    }

    #[test]
    fn shift_exceeds_one() {
        let f17 = frontier(&cohort_points(2017));
        let f19 = frontier(&cohort_points(2019));
        assert!(benefit_shift(&f17, &f19) > 1.2);
    }
}
