//! Table IV: the two Mac Pro configurations.

use cc_data::mac_pro::{MAC_PRO_1, MAC_PRO_2};
use cc_report::{table::num, Experiment, ExperimentId, ExperimentOutput, RunContext, Table};

/// Reproduces Table IV.
#[derive(Debug, Clone, Copy, Default)]
pub struct Table4MacPro;

impl Experiment for Table4MacPro {
    fn id(&self) -> ExperimentId {
        ExperimentId::Table(4)
    }

    fn description(&self) -> &'static str {
        "Mac Pro base vs scaled-up configuration: 2.7x manufacturing CO2"
    }

    fn run(&self, _ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        let mut t = Table::new(["Parameter", MAC_PRO_1.name, MAC_PRO_2.name]);
        t.row([
            "CPU (cores x threads)".to_string(),
            format!("{}x{}", MAC_PRO_1.cpu_cores, MAC_PRO_1.threads_per_core),
            format!("{}x{}", MAC_PRO_2.cpu_cores, MAC_PRO_2.threads_per_core),
        ]);
        t.row([
            "DRAM (GB)".to_string(),
            MAC_PRO_1.dram_gb.to_string(),
            MAC_PRO_2.dram_gb.to_string(),
        ]);
        t.row([
            "Storage (GB)".to_string(),
            MAC_PRO_1.storage_gb.to_string(),
            MAC_PRO_2.storage_gb.to_string(),
        ]);
        t.row([
            "GPU performance (teraflops)".to_string(),
            num(MAC_PRO_1.gpu_tflops, 1),
            num(MAC_PRO_2.gpu_tflops, 1),
        ]);
        t.row([
            "GPU-memory BW (GB/s)".to_string(),
            num(MAC_PRO_1.gpu_mem_bw_gbps, 0),
            num(MAC_PRO_2.gpu_mem_bw_gbps, 0),
        ]);
        t.row([
            "System TDP (W)".to_string(),
            num(MAC_PRO_1.tdp_watts, 0),
            num(MAC_PRO_2.tdp_watts, 0),
        ]);
        t.row([
            "Manufacturing CO2 (kg)".to_string(),
            num(MAC_PRO_1.manufacturing_kg, 0),
            num(MAC_PRO_2.manufacturing_kg, 0),
        ]);
        out.table("Table IV: Apple Mac Pro configurations", t);
        out.scalar(
            "scaleup-manufacturing-ratio",
            "x",
            MAC_PRO_2.manufacturing() / MAC_PRO_1.manufacturing(),
        );
        out.note(format!(
            "paper: the high-performance configuration has ~2.7x higher manufacturing CO2; \
             measured {:.2}x",
            MAC_PRO_2.manufacturing() / MAC_PRO_1.manufacturing()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_parameters() {
        let out = Table4MacPro.run(&RunContext::paper());
        assert_eq!(out.tables[0].1.len(), 7);
        assert!(out.notes[0].contains("2.7"));
    }
}
