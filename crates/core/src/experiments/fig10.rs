//! Figure 10: break-even between manufacturing and operational carbon on a
//! Pixel 3, end to end through the simulator.
//!
//! Pipeline: `cc-socsim` produces per-inference energy and latency for each
//! CNN × unit; the SoC manufacturing budget is the scenario's share of the
//! Pixel 3's production footprint (the paper assumed one half, via Fig 5's IC
//! share); the `cc-lca` amortization solver converts both into break-even
//! images and days on the scenario's grid (paper: the 380 g CO₂e/kWh average
//! US grid). Grid intensity, SoC budget share and device lifetime all come
//! from the [`RunContext`], so `repro --scenario` re-answers the figure under
//! any assumptions.

use cc_data::ai_models::CnnModel;
use cc_lca::AmortizationAnalysis;
use cc_report::{
    table::num, Experiment, ExperimentId, ExperimentOutput, RunContext, Series, Table,
};
use cc_socsim::UnitKind;
#[cfg(test)]
use cc_socsim::{ExecutionModel, Network};
#[cfg(test)]
use cc_units::TimeSpan;

/// Reproduces Fig 10.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig10Breakeven;

/// The Pixel 3 SoC manufacturing budget: `share` of the device's production
/// carbon (the paper used one half).
#[must_use]
pub fn pixel3_soc_budget(share: f64) -> cc_units::CarbonMass {
    let pixel3 = cc_data::devices::find("Pixel 3").expect("device dataset");
    pixel3.production() * share
}

impl Experiment for Fig10Breakeven {
    fn id(&self) -> ExperimentId {
        ExperimentId::Figure(10)
    }

    fn description(&self) -> &'static str {
        "Inferences (top) and days (bottom) until operational carbon equals SoC manufacturing"
    }

    fn run(&self, ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        // The execution model and built networks are scenario-independent, so
        // a sweep shares one cached copy across all grid points and threads.
        let inputs = super::inputs::shared();
        let model = inputs.pixel3();
        let analysis = AmortizationAnalysis::new(
            pixel3_soc_budget(ctx.soc_budget_share()),
            ctx.effective_grid_intensity(),
        );
        let lifetime = ctx.device_lifetime();

        let mut t = Table::new([
            "Network".to_string(),
            "Unit".to_string(),
            "Breakeven images".to_string(),
            "Breakeven days (continuous)".to_string(),
            format!("Beyond {}-yr lifetime?", lifetime.as_years()),
        ]);
        let mut days_series = Series::new("breakeven-days", "network x unit index", "days");
        let mut mnv3 = Vec::new();
        for &(cnn, ref network) in inputs.networks() {
            for report in model.run_all_units(network) {
                let be = analysis
                    .breakeven(report.energy, report.latency)
                    .expect("positive per-inference energy");
                if cnn == CnnModel::MobileNetV3 {
                    mnv3.push((report.unit, be));
                }
                days_series.push_labeled(
                    days_series.len() as f64,
                    format!("{cnn}/{}", report.unit),
                    be.days,
                );
                t.row([
                    cnn.to_string(),
                    report.unit.to_string(),
                    format!("{:.2e}", be.operations),
                    num(be.days, 0),
                    if be.exceeds(lifetime) { "yes" } else { "no" }.to_string(),
                ]);
            }
        }
        // The title states the two knobs that shape the table; it must not
        // embed the scenario *name* (per-sweep-point labels would defeat the
        // cache without changing any number).
        out.table(
            format!(
                "Break-even on Pixel 3 (SoC budget {}, grid {})",
                analysis.manufacturing(),
                ctx.effective_grid_intensity()
            ),
            t,
        );
        out.series(days_series);

        let cpu = mnv3.iter().find(|(u, _)| *u == UnitKind::Cpu).unwrap().1;
        let dsp = mnv3.iter().find(|(u, _)| *u == UnitKind::Dsp).unwrap().1;
        // The figure's headline, as sweep-comparable scalars: how long the
        // efficient-network/CPU case takes to amortize the SoC's embodied
        // carbon, and the images it implies.
        out.scalar_with_threshold(
            "mobilenet-v3-cpu-breakeven",
            "days",
            cpu.days,
            365.0,
            "one-year amortization",
        );
        out.scalar(
            "mobilenet-v3-cpu-breakeven-images",
            "images",
            cpu.operations,
        );
        out.scalar("mobilenet-v3-dsp-breakeven", "days", dsp.days);
        out.note(format!(
            "paper: MobileNet v3 CPU ~5e9 images / ~350 days; measured {:.1e} images / {:.0} days",
            cpu.operations, cpu.days
        ));
        out.note(format!(
            "paper: MobileNet v3 DSP ~1e10 images / ~1200 days (beyond the ~1100-day lifetime); \
             measured {:.1e} images / {:.0} days",
            dsp.operations, dsp.days
        ));
        out.note(
            "known paper inconsistency: the stated 1.5x/2.2x DSP improvements cannot yield both \
             10e9 images and 1200 days; this reproduction preserves the days-based headline",
        );
        out.note(format!(
            "scale: the ImageNet training set is {} images",
            cc_data::ai_models::IMAGENET_TRAIN_IMAGES
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakeven(cnn: CnnModel, unit: UnitKind) -> cc_lca::Breakeven {
        let model = ExecutionModel::pixel3();
        let report = model.run(&Network::build(cnn), unit).unwrap();
        AmortizationAnalysis::new(pixel3_soc_budget(0.5), cc_data::us_grid_intensity())
            .breakeven(report.energy, report.latency)
            .unwrap()
    }

    #[test]
    fn resnet_and_inception_need_hundreds_of_millions_of_images() {
        let resnet = breakeven(CnnModel::ResNet50, UnitKind::Cpu);
        let inception = breakeven(CnnModel::InceptionV3, UnitKind::Cpu);
        // Paper: 200M and 150M respectively. Same order of magnitude, with
        // Inception needing fewer (it burns more energy per image).
        assert!(
            resnet.operations > 1e8 && resnet.operations < 1e9,
            "{}",
            resnet.operations
        );
        assert!(inception.operations < resnet.operations);
    }

    #[test]
    fn mobilenet_v3_cpu_is_billions_of_images_and_about_a_year() {
        let be = breakeven(CnnModel::MobileNetV3, UnitKind::Cpu);
        assert!(
            be.operations > 3e9 && be.operations < 9e9,
            "{}",
            be.operations
        );
        assert!(be.days > 250.0 && be.days < 500.0, "{}", be.days);
    }

    #[test]
    fn dsp_pushes_breakeven_beyond_lifetime() {
        let be = breakeven(CnnModel::MobileNetV3, UnitKind::Dsp);
        assert!(
            be.exceeds(TimeSpan::from_years(3.0)) || be.days > 900.0,
            "DSP days {}",
            be.days
        );
        let cpu = breakeven(CnnModel::MobileNetV3, UnitKind::Cpu);
        assert!(
            be.days > cpu.days * 2.0,
            "DSP should lengthen amortization substantially"
        );
    }

    #[test]
    fn soc_budget_is_about_25_kg() {
        assert!((pixel3_soc_budget(0.5).as_kg() - 24.85).abs() < 0.5);
    }

    #[test]
    fn greener_grid_lengthens_breakeven() {
        use cc_report::Scenario;
        let paper = Fig10Breakeven.run(&RunContext::paper());
        let wind = Fig10Breakeven.run(&RunContext::new(
            Scenario::builder()
                .name("wind")
                .grid_intensity(11.0)
                .build(),
        ));
        let p = paper.find_series("breakeven-days").unwrap();
        let w = wind.find_series("breakeven-days").unwrap();
        // On an 11 g/kWh grid every break-even horizon stretches ~35x.
        for (pp, wp) in p.points.iter().zip(&w.points) {
            assert!(wp.y > pp.y * 20.0, "{:?} {:?}", pp, wp);
        }
    }

    #[test]
    fn breakeven_images_dwarf_imagenet() {
        let be = breakeven(CnnModel::MobileNetV3, UnitKind::Cpu);
        assert!(be.operations > 100.0 * cc_data::ai_models::IMAGENET_TRAIN_IMAGES as f64);
    }
}
