//! One experiment per paper figure/table, plus extensions.
//!
//! Every module implements [`cc_report::Experiment`]; the [`entries`]
//! registry — metadata-carrying entries with stable keys and topic tags —
//! drives the `repro` binary and the benchmark harness. Each experiment's
//! `run` executes the *models* under a [`cc_report::RunContext`] (not
//! hard-coded answers): e.g. Fig 10 runs the SoC simulator and the
//! amortization solver end to end against the context's grid and lifetime.

pub mod ext_die;
pub mod ext_dvfs;
pub mod ext_fab;
pub mod ext_facility;
pub mod ext_hetero;
pub mod ext_mc;
pub mod ext_sched;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod inputs;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;

pub use ext_die::ExtDieCarbon;
pub use ext_dvfs::ExtDvfs;
pub use ext_fab::ExtFabDecarbonization;
pub use ext_facility::ExtFacility;
pub use ext_hetero::ExtHeterogeneity;
pub use ext_mc::ExtMonteCarlo;
pub use ext_sched::ExtCarbonAwareScheduling;
pub use fig01::Fig01IctProjections;
pub use fig02::Fig02EnergyVsCarbon;
pub use fig03::Fig03GhgScopes;
pub use fig04::Fig04Lifecycle;
pub use fig05::Fig05AppleBreakdown;
pub use fig06::Fig06DeviceBreakdown;
pub use fig07::Fig07Generations;
pub use fig08::Fig08Pareto;
pub use fig09::Fig09InferencePerf;
pub use fig10::Fig10Breakeven;
pub use fig11::Fig11CorporateFootprints;
pub use fig12::Fig12Scope3Breakdown;
pub use fig13::Fig13EnergySourceSweep;
pub use fig14::Fig14WaferSweep;
pub use fig15::Fig15ResearchDirections;
pub use inputs::SharedInputs;
pub use table1::Table1Scopes;
pub use table2::Table2EnergySources;
pub use table3::Table3Grids;
pub use table4::Table4MacPro;

use cc_report::Experiment;

/// Topic tags for registry filtering (`repro --tag mobile`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tag {
    /// A paper figure.
    Figure,
    /// A paper table.
    Table,
    /// An extension beyond the paper's evaluation.
    Extension,
    /// Mobile/SoC experiments.
    Mobile,
    /// Warehouse-scale/datacenter experiments.
    Datacenter,
    /// Semiconductor-manufacturing experiments.
    Fab,
    /// Corporate sustainability-report experiments.
    Corporate,
    /// Energy-source and grid experiments.
    Energy,
    /// Consumer-device LCA experiments.
    Device,
}

impl Tag {
    /// Every tag, for enumeration in help text.
    pub const ALL: [Self; 9] = [
        Self::Figure,
        Self::Table,
        Self::Extension,
        Self::Mobile,
        Self::Datacenter,
        Self::Fab,
        Self::Corporate,
        Self::Energy,
        Self::Device,
    ];

    /// The tag's lowercase command-line name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Figure => "figure",
            Self::Table => "table",
            Self::Extension => "extension",
            Self::Mobile => "mobile",
            Self::Datacenter => "datacenter",
            Self::Fab => "fab",
            Self::Corporate => "corporate",
            Self::Energy => "energy",
            Self::Device => "device",
        }
    }

    /// Parses a command-line tag name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|t| t.name() == name)
    }
}

impl core::fmt::Display for Tag {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A registry entry: the experiment's stable key, its topic tags, and a
/// constructor. Entries are `'static`, cheap to scan, and each worker thread
/// of a parallel run builds its own experiment instance from the
/// constructor.
pub struct Entry {
    /// Stable command-line key (`fig10`, `table2`, `ext-sched`).
    pub key: &'static str,
    /// Topic tags for filtering.
    pub tags: &'static [Tag],
    ctor: fn() -> Box<dyn Experiment>,
}

impl Entry {
    /// Instantiates the experiment.
    #[must_use]
    pub fn build(&self) -> Box<dyn Experiment> {
        (self.ctor)()
    }

    /// The presentation title, e.g. `Figure 10`.
    #[must_use]
    pub fn title(&self) -> String {
        self.build().id().to_string()
    }

    /// The one-line description.
    #[must_use]
    pub fn description(&self) -> &'static str {
        self.build().description()
    }

    /// Whether the entry carries `tag`.
    #[must_use]
    pub fn has_tag(&self, tag: Tag) -> bool {
        self.tags.contains(&tag)
    }

    /// The shared cached-inputs handle: lazily-built models and dataset
    /// tables built once and reused across every grid point of a sweep
    /// (and every worker thread of a parallel run).
    #[must_use]
    pub fn inputs(&self) -> &'static SharedInputs {
        inputs::shared()
    }
}

impl core::fmt::Debug for Entry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Entry")
            .field("key", &self.key)
            .field("tags", &self.tags)
            .finish_non_exhaustive()
    }
}

macro_rules! entry {
    ($key:literal, $ty:ty, [$($tag:ident),+ $(,)?]) => {
        Entry {
            key: $key,
            tags: &[$(Tag::$tag),+],
            ctor: || Box::new(<$ty>::default()),
        }
    };
}

static ENTRIES: [Entry; 26] = [
    entry!("fig01", Fig01IctProjections, [Figure, Energy]),
    entry!(
        "fig02",
        Fig02EnergyVsCarbon,
        [Figure, Datacenter, Corporate]
    ),
    entry!("fig03", Fig03GhgScopes, [Figure, Corporate]),
    entry!("fig04", Fig04Lifecycle, [Figure, Device]),
    entry!("fig05", Fig05AppleBreakdown, [Figure, Corporate]),
    entry!("fig06", Fig06DeviceBreakdown, [Figure, Device]),
    entry!("fig07", Fig07Generations, [Figure, Device]),
    entry!("fig08", Fig08Pareto, [Figure, Mobile, Device]),
    entry!("fig09", Fig09InferencePerf, [Figure, Mobile]),
    entry!("fig10", Fig10Breakeven, [Figure, Mobile]),
    entry!(
        "fig11",
        Fig11CorporateFootprints,
        [Figure, Corporate, Datacenter]
    ),
    entry!("fig12", Fig12Scope3Breakdown, [Figure, Corporate]),
    entry!("fig13", Fig13EnergySourceSweep, [Figure, Energy, Corporate]),
    entry!("fig14", Fig14WaferSweep, [Figure, Fab]),
    entry!("fig15", Fig15ResearchDirections, [Figure]),
    entry!("table1", Table1Scopes, [Table, Corporate]),
    entry!("table2", Table2EnergySources, [Table, Energy]),
    entry!("table3", Table3Grids, [Table, Energy]),
    entry!("table4", Table4MacPro, [Table, Device]),
    entry!(
        "ext-sched",
        ExtCarbonAwareScheduling,
        [Extension, Datacenter]
    ),
    entry!("ext-die", ExtDieCarbon, [Extension, Fab]),
    entry!("ext-dvfs", ExtDvfs, [Extension, Mobile]),
    entry!("ext-hetero", ExtHeterogeneity, [Extension, Datacenter]),
    entry!("ext-fab", ExtFabDecarbonization, [Extension, Fab]),
    entry!("ext-mc", ExtMonteCarlo, [Extension]),
    entry!("ext-facility", ExtFacility, [Extension, Datacenter]),
];

/// Every registry entry, in presentation order: figures 1–15, tables I–IV,
/// then extensions.
#[must_use]
pub fn entries() -> &'static [Entry] {
    &ENTRIES
}

/// Finds a registry entry by its command-line key.
#[must_use]
pub fn find_entry(key: &str) -> Option<&'static Entry> {
    ENTRIES.iter().find(|e| e.key == key)
}

/// Entries carrying every tag in `tags` (all entries when `tags` is empty).
#[must_use]
pub fn with_tags(tags: &[Tag]) -> Vec<&'static Entry> {
    ENTRIES
        .iter()
        .filter(|e| tags.iter().all(|&t| e.has_tag(t)))
        .collect()
}

/// Every experiment instantiated, in presentation order.
#[must_use]
pub fn all() -> Vec<Box<dyn Experiment>> {
    ENTRIES.iter().map(Entry::build).collect()
}

/// Finds and instantiates an experiment by its command-line key (`fig10`,
/// `table2`, `ext-sched`).
#[must_use]
pub fn find(key: &str) -> Option<Box<dyn Experiment>> {
    find_entry(key).map(Entry::build)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_report::RunContext;

    #[test]
    fn registry_is_complete() {
        let experiments = all();
        assert_eq!(experiments.len(), 26);
        // 15 figures, 4 tables, 7 extensions.
        let figs = experiments
            .iter()
            .filter(|e| matches!(e.id(), cc_report::ExperimentId::Figure(_)))
            .count();
        assert_eq!(figs, 15);
    }

    #[test]
    fn keys_are_unique_and_resolvable() {
        let mut keys: Vec<String> = all().iter().map(|e| e.id().key()).collect();
        keys.sort();
        let n = keys.len();
        keys.dedup();
        assert_eq!(n, keys.len());
        for key in keys {
            assert!(find(&key).is_some(), "key {key} not resolvable");
        }
        assert!(find("fig99").is_none());
    }

    #[test]
    fn entry_keys_match_experiment_ids() {
        for entry in entries() {
            let built = entry.build();
            assert_eq!(entry.key, built.id().key(), "stale key for {}", entry.key);
            // Keys registered here must also parse at the report layer.
            assert_eq!(
                cc_report::ExperimentId::parse(entry.key),
                Some(built.id()),
                "{} does not round-trip through ExperimentId::parse",
                entry.key
            );
            assert!(!entry.title().is_empty());
            assert!(!entry.description().is_empty());
        }
    }

    #[test]
    fn every_entry_has_a_kind_tag() {
        for entry in entries() {
            let kinds = [Tag::Figure, Tag::Table, Tag::Extension];
            assert_eq!(
                entry.tags.iter().filter(|t| kinds.contains(t)).count(),
                1,
                "{} must have exactly one kind tag",
                entry.key
            );
        }
    }

    #[test]
    fn tag_filtering_selects_subsets() {
        assert_eq!(with_tags(&[Tag::Figure]).len(), 15);
        assert_eq!(with_tags(&[Tag::Table]).len(), 4);
        assert_eq!(with_tags(&[Tag::Extension]).len(), 7);
        assert_eq!(with_tags(&[]).len(), 26);
        let mobile_figures = with_tags(&[Tag::Figure, Tag::Mobile]);
        assert!(mobile_figures.iter().any(|e| e.key == "fig10"));
        assert!(mobile_figures.iter().all(|e| e.has_tag(Tag::Figure)));
        assert!(with_tags(&[Tag::Mobile, Tag::Datacenter]).is_empty());
    }

    #[test]
    fn tag_names_round_trip() {
        for tag in Tag::ALL {
            assert_eq!(Tag::parse(tag.name()), Some(tag));
            assert_eq!(tag.to_string(), tag.name());
        }
        assert_eq!(Tag::parse("nope"), None);
    }

    #[test]
    fn every_experiment_produces_output() {
        let ctx = RunContext::paper();
        for e in all() {
            let out = e.run(&ctx);
            assert!(
                !out.tables.is_empty() || !out.notes.is_empty(),
                "{} produced nothing",
                e.id()
            );
            assert!(!e.description().is_empty());
        }
    }

    #[test]
    fn entries_share_one_cached_inputs_handle() {
        let a: *const SharedInputs = find_entry("fig10").unwrap().inputs();
        let b: *const SharedInputs = find_entry("fig09").unwrap().inputs();
        assert_eq!(a, b, "all entries must share the same cache");
    }

    #[test]
    fn every_experiment_exposes_a_summary_scalar() {
        // Full-suite sweeps are only diffable when every experiment carries
        // a headline scalar — comparison reports must never render a
        // `(no summary scalar)` row.
        let ctx = RunContext::paper();
        for entry in entries() {
            let out = entry.build().run(&ctx);
            let scalar = out
                .summary_scalar()
                .unwrap_or_else(|| panic!("{} must expose a summary scalar", entry.key));
            assert!(
                scalar.value.is_finite(),
                "{}: summary scalar `{}` is not finite",
                entry.key,
                scalar.name
            );
            assert!(!scalar.name.is_empty() && !scalar.unit.is_empty());
        }
    }
}
