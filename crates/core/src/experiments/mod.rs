//! One experiment per paper figure/table, plus extensions.
//!
//! Every module implements [`cc_report::Experiment`]; the [`entries`]
//! registry — metadata-carrying entries with stable keys, topic tags and
//! declared scenario-dependency sets — drives the `repro` binary, the sweep
//! cache and the generated scenario reference. Each experiment's `run`
//! executes the *models* under a [`cc_report::RunContext`] (not hard-coded
//! answers): e.g. Fig 10 runs the SoC simulator and the amortization solver
//! end to end against the context's grid and lifetime. Dependency
//! declarations ([`Entry::deps`]) are verified against the fields each
//! experiment actually reads by the read-tracking test in this module, so a
//! sweep runner may safely reuse output across grid points whose declared
//! fields agree.

pub mod ext_die;
pub mod ext_dvfs;
pub mod ext_fab;
pub mod ext_facility;
pub mod ext_hetero;
pub mod ext_mc;
pub mod ext_sched;
pub mod ext_scheduler;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod inputs;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;

pub use ext_die::ExtDieCarbon;
pub use ext_dvfs::ExtDvfs;
pub use ext_fab::ExtFabDecarbonization;
pub use ext_facility::ExtFacility;
pub use ext_hetero::ExtHeterogeneity;
pub use ext_mc::ExtMonteCarlo;
pub use ext_sched::ExtCarbonAwareScheduling;
pub use ext_scheduler::ExtScheduler;
pub use fig01::Fig01IctProjections;
pub use fig02::Fig02EnergyVsCarbon;
pub use fig03::Fig03GhgScopes;
pub use fig04::Fig04Lifecycle;
pub use fig05::Fig05AppleBreakdown;
pub use fig06::Fig06DeviceBreakdown;
pub use fig07::Fig07Generations;
pub use fig08::Fig08Pareto;
pub use fig09::Fig09InferencePerf;
pub use fig10::Fig10Breakeven;
pub use fig11::Fig11CorporateFootprints;
pub use fig12::Fig12Scope3Breakdown;
pub use fig13::Fig13EnergySourceSweep;
pub use fig14::Fig14WaferSweep;
pub use fig15::Fig15ResearchDirections;
pub use inputs::SharedInputs;
pub use table1::Table1Scopes;
pub use table2::Table2EnergySources;
pub use table3::Table3Grids;
pub use table4::Table4MacPro;

use cc_report::{Experiment, ScenarioPath};

/// Topic tags for registry filtering (`repro --tag mobile`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tag {
    /// A paper figure.
    Figure,
    /// A paper table.
    Table,
    /// An extension beyond the paper's evaluation.
    Extension,
    /// Mobile/SoC experiments.
    Mobile,
    /// Warehouse-scale/datacenter experiments.
    Datacenter,
    /// Semiconductor-manufacturing experiments.
    Fab,
    /// Corporate sustainability-report experiments.
    Corporate,
    /// Energy-source and grid experiments.
    Energy,
    /// Consumer-device LCA experiments.
    Device,
}

impl Tag {
    /// Every tag, for enumeration in help text.
    pub const ALL: [Self; 9] = [
        Self::Figure,
        Self::Table,
        Self::Extension,
        Self::Mobile,
        Self::Datacenter,
        Self::Fab,
        Self::Corporate,
        Self::Energy,
        Self::Device,
    ];

    /// The tag's lowercase command-line name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Figure => "figure",
            Self::Table => "table",
            Self::Extension => "extension",
            Self::Mobile => "mobile",
            Self::Datacenter => "datacenter",
            Self::Fab => "fab",
            Self::Corporate => "corporate",
            Self::Energy => "energy",
            Self::Device => "device",
        }
    }

    /// Parses a command-line tag name.
    #[must_use]
    pub fn parse(name: &str) -> Option<Self> {
        Self::ALL.into_iter().find(|t| t.name() == name)
    }
}

impl core::fmt::Display for Tag {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// A registry entry: the experiment's stable key, its topic tags, its
/// declared scenario-dependency set, and a constructor. Entries are
/// `'static`, cheap to scan, and each worker thread of a parallel run builds
/// its own experiment instance from the constructor.
pub struct Entry {
    /// Stable command-line key (`fig10`, `table2`, `ext-sched`).
    pub key: &'static str,
    /// Topic tags for filtering.
    pub tags: &'static [Tag],
    deps: &'static [ScenarioPath],
    ctor: fn() -> Box<dyn Experiment>,
}

impl Entry {
    /// The scenario fields this experiment's output depends on, as declared
    /// dependency paths (`fleet.*`, `fab.node_nm`). An empty set means the
    /// experiment is scenario-independent: its output is identical at every
    /// point of any sweep. Declarations are verified against actual reads by
    /// a read-tracking test, so they can be trusted for caching.
    #[must_use]
    pub fn deps(&self) -> &'static [ScenarioPath] {
        self.deps
    }

    /// Whether the experiment reads nothing from the scenario.
    #[must_use]
    pub fn is_scenario_independent(&self) -> bool {
        self.deps.is_empty()
    }

    /// Fingerprint of a scenario (or copy-on-write overlay) restricted to
    /// this experiment's declared dependency fields: two sources with equal
    /// fingerprints produce identical output from this experiment
    /// ([`cc_report::dependency_fingerprint`]).
    #[must_use]
    pub fn fingerprint<S: cc_report::FieldSource>(&self, source: &S) -> u64 {
        cc_report::dependency_fingerprint(source, self.deps)
    }
    /// Instantiates the experiment.
    #[must_use]
    pub fn build(&self) -> Box<dyn Experiment> {
        (self.ctor)()
    }

    /// The presentation title, e.g. `Figure 10`.
    #[must_use]
    pub fn title(&self) -> String {
        self.build().id().to_string()
    }

    /// The one-line description.
    #[must_use]
    pub fn description(&self) -> &'static str {
        self.build().description()
    }

    /// Whether the entry carries `tag`.
    #[must_use]
    pub fn has_tag(&self, tag: Tag) -> bool {
        self.tags.contains(&tag)
    }

    /// The shared cached-inputs handle: lazily-built models and dataset
    /// tables built once and reused across every grid point of a sweep
    /// (and every worker thread of a parallel run).
    #[must_use]
    pub fn inputs(&self) -> &'static SharedInputs {
        inputs::shared()
    }
}

impl core::fmt::Debug for Entry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("Entry")
            .field("key", &self.key)
            .field("tags", &self.tags)
            .finish_non_exhaustive()
    }
}

macro_rules! entry {
    ($key:literal, $ty:ty, [$($tag:ident),+ $(,)?], deps: [$($dep:literal),* $(,)?]) => {
        Entry {
            key: $key,
            tags: &[$(Tag::$tag),+],
            deps: &[$(ScenarioPath::of($dep)),*],
            ctor: || Box::new(<$ty>::default()),
        }
    };
}

// Dependency declarations are load-bearing: the sweep cache reuses an
// experiment's output across grid points whose declared fields agree, so an
// under-declaration would serve stale results. The
// `declared_deps_match_actual_reads` test runs every experiment under a
// read-tracking context and fails on any disagreement, in either direction.
static ENTRIES: [Entry; 27] = [
    entry!("fig01", Fig01IctProjections, [Figure, Energy], deps: []),
    entry!(
        "fig02",
        Fig02EnergyVsCarbon,
        [Figure, Datacenter, Corporate],
        deps: ["fleet.*", "grid.intensity"]
    ),
    entry!("fig03", Fig03GhgScopes, [Figure, Corporate], deps: []),
    entry!("fig04", Fig04Lifecycle, [Figure, Device], deps: []),
    entry!("fig05", Fig05AppleBreakdown, [Figure, Corporate], deps: []),
    entry!("fig06", Fig06DeviceBreakdown, [Figure, Device], deps: []),
    entry!("fig07", Fig07Generations, [Figure, Device], deps: []),
    entry!("fig08", Fig08Pareto, [Figure, Mobile, Device], deps: []),
    entry!("fig09", Fig09InferencePerf, [Figure, Mobile], deps: []),
    entry!(
        "fig10",
        Fig10Breakeven,
        [Figure, Mobile],
        deps: ["device.*", "grid.intensity", "grid.renewable_fraction"]
    ),
    entry!(
        "fig11",
        Fig11CorporateFootprints,
        [Figure, Corporate, Datacenter],
        deps: ["fleet.*", "grid.intensity"]
    ),
    entry!("fig12", Fig12Scope3Breakdown, [Figure, Corporate], deps: []),
    entry!(
        "fig13",
        Fig13EnergySourceSweep,
        [Figure, Energy, Corporate],
        deps: ["grid.intensity", "grid.renewable_fraction"]
    ),
    entry!("fig14", Fig14WaferSweep, [Figure, Fab], deps: []),
    entry!("fig15", Fig15ResearchDirections, [Figure], deps: []),
    entry!("table1", Table1Scopes, [Table, Corporate], deps: []),
    entry!("table2", Table2EnergySources, [Table, Energy], deps: []),
    entry!("table3", Table3Grids, [Table, Energy], deps: []),
    entry!("table4", Table4MacPro, [Table, Device], deps: []),
    entry!(
        "ext-sched",
        ExtCarbonAwareScheduling,
        [Extension, Datacenter],
        deps: ["fleet.scale"]
    ),
    entry!(
        "ext-die",
        ExtDieCarbon,
        [Extension, Fab],
        deps: ["fab.node_nm", "fab.yield_factor"]
    ),
    entry!(
        "ext-dvfs",
        ExtDvfs,
        [Extension, Mobile],
        deps: ["device.soc_budget_share", "grid.intensity", "grid.renewable_fraction"]
    ),
    entry!(
        "ext-hetero",
        ExtHeterogeneity,
        [Extension, Datacenter],
        deps: ["fleet.scale", "grid.intensity", "grid.renewable_fraction"]
    ),
    entry!(
        "ext-fab",
        ExtFabDecarbonization,
        [Extension, Fab],
        deps: ["fab.renewable_share"]
    ),
    entry!(
        "ext-mc",
        ExtMonteCarlo,
        [Extension],
        deps: ["device.soc_budget_share", "grid.intensity", "grid.renewable_fraction", "mc.*"]
    ),
    entry!(
        "ext-facility",
        ExtFacility,
        [Extension, Datacenter],
        deps: ["fleet.*", "grid.intensity"]
    ),
    entry!(
        "ext-scheduler",
        ExtScheduler,
        [Extension, Datacenter, Energy],
        deps: ["fleet.*", "grid.regions"]
    ),
];

/// Every registry entry, in presentation order: figures 1–15, tables I–IV,
/// then extensions.
#[must_use]
pub fn entries() -> &'static [Entry] {
    &ENTRIES
}

/// Finds a registry entry by its command-line key.
#[must_use]
pub fn find_entry(key: &str) -> Option<&'static Entry> {
    ENTRIES.iter().find(|e| e.key == key)
}

/// Entries carrying every tag in `tags` (all entries when `tags` is empty).
#[must_use]
pub fn with_tags(tags: &[Tag]) -> Vec<&'static Entry> {
    ENTRIES
        .iter()
        .filter(|e| tags.iter().all(|&t| e.has_tag(t)))
        .collect()
}

/// Every experiment instantiated, in presentation order.
#[must_use]
pub fn all() -> Vec<Box<dyn Experiment>> {
    ENTRIES.iter().map(Entry::build).collect()
}

/// Finds and instantiates an experiment by its command-line key (`fig10`,
/// `table2`, `ext-sched`).
#[must_use]
pub fn find(key: &str) -> Option<Box<dyn Experiment>> {
    find_entry(key).map(Entry::build)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_report::{RunContext, Scenario};

    #[test]
    fn registry_is_complete() {
        let experiments = all();
        assert_eq!(experiments.len(), 27);
        // 15 figures, 4 tables, 8 extensions.
        let figs = experiments
            .iter()
            .filter(|e| matches!(e.id(), cc_report::ExperimentId::Figure(_)))
            .count();
        assert_eq!(figs, 15);
    }

    #[test]
    fn keys_are_unique_and_resolvable() {
        let mut keys: Vec<String> = all().iter().map(|e| e.id().key()).collect();
        keys.sort();
        let n = keys.len();
        keys.dedup();
        assert_eq!(n, keys.len());
        for key in keys {
            assert!(find(&key).is_some(), "key {key} not resolvable");
        }
        assert!(find("fig99").is_none());
    }

    #[test]
    fn entry_keys_match_experiment_ids() {
        for entry in entries() {
            let built = entry.build();
            assert_eq!(entry.key, built.id().key(), "stale key for {}", entry.key);
            // Keys registered here must also parse at the report layer.
            assert_eq!(
                cc_report::ExperimentId::parse(entry.key),
                Some(built.id()),
                "{} does not round-trip through ExperimentId::parse",
                entry.key
            );
            assert!(!entry.title().is_empty());
            assert!(!entry.description().is_empty());
        }
    }

    #[test]
    fn every_entry_has_a_kind_tag() {
        for entry in entries() {
            let kinds = [Tag::Figure, Tag::Table, Tag::Extension];
            assert_eq!(
                entry.tags.iter().filter(|t| kinds.contains(t)).count(),
                1,
                "{} must have exactly one kind tag",
                entry.key
            );
        }
    }

    #[test]
    fn tag_filtering_selects_subsets() {
        assert_eq!(with_tags(&[Tag::Figure]).len(), 15);
        assert_eq!(with_tags(&[Tag::Table]).len(), 4);
        assert_eq!(with_tags(&[Tag::Extension]).len(), 8);
        assert_eq!(with_tags(&[]).len(), 27);
        let mobile_figures = with_tags(&[Tag::Figure, Tag::Mobile]);
        assert!(mobile_figures.iter().any(|e| e.key == "fig10"));
        assert!(mobile_figures.iter().all(|e| e.has_tag(Tag::Figure)));
        assert!(with_tags(&[Tag::Mobile, Tag::Datacenter]).is_empty());
    }

    #[test]
    fn tag_names_round_trip() {
        for tag in Tag::ALL {
            assert_eq!(Tag::parse(tag.name()), Some(tag));
            assert_eq!(tag.to_string(), tag.name());
        }
        assert_eq!(Tag::parse("nope"), None);
    }

    #[test]
    fn every_experiment_produces_output() {
        let ctx = RunContext::paper();
        for e in all() {
            let out = e.run(&ctx);
            assert!(
                !out.tables.is_empty() || !out.notes.is_empty(),
                "{} produced nothing",
                e.id()
            );
            assert!(!e.description().is_empty());
        }
    }

    /// A scenario with every semantic field moved off its paper default, to
    /// provoke any non-paper code path an experiment keeps.
    fn perturbed_scenario() -> Scenario {
        let mut s = Scenario::paper_defaults();
        for (key, value) in [
            ("name", "perturbed"),
            ("grid.intensity", "52"),
            ("grid.renewable_fraction", "0.25"),
            ("grid.regions", "coastal:300,100"),
            ("device.lifetime", "4.5"),
            ("device.soc_budget_share", "0.6"),
            ("fab.node_nm", "7"),
            ("fab.yield_factor", "1.5"),
            ("fab.renewable_share", "0.5"),
            ("fleet.scale", "2"),
            ("fleet.sku", "storage"),
            ("fleet.mix", "web:0.6,ai-training:0.4"),
            ("fleet.sites", "main@default:0.6,green@solar:0.4"),
            ("fleet.deferrable", "0.35"),
            ("fleet.initial_servers", "30000"),
            ("fleet.growth", "1.1"),
            ("fleet.pue", "1.3"),
            ("fleet.renewable_ramp", "0,0.5,1"),
            ("fleet.construction_kt", "100"),
            ("fleet.building_amortization_years", "15"),
            ("fleet.start_year", "2021"),
            ("fleet.horizon_years", "5"),
            ("mc.seed", "7"),
            ("mc.samples", "500"),
        ] {
            s.set(key, value).unwrap();
        }
        s
    }

    #[test]
    fn declared_deps_match_actual_reads() {
        // The cache-soundness contract: each entry's declared dependency set
        // must equal the fields its experiment actually reads — a missing
        // declaration would let the sweep cache serve stale output, and an
        // excess one would spuriously re-run the experiment. Checked under
        // the paper defaults *and* a fully perturbed scenario so that
        // paper-vs-scenario branches cannot hide a read.
        for scenario in [Scenario::paper_defaults(), perturbed_scenario()] {
            for entry in entries() {
                let (ctx, tracker) = RunContext::tracking(scenario.clone()).unwrap();
                entry.build().run(&ctx);
                let mut declared: Vec<&str> = cc_report::scenario::deps::expand(entry.deps());
                declared.sort_unstable();
                assert_eq!(
                    tracker.reads(),
                    declared,
                    "`{}` (scenario `{}`): declared deps disagree with actual reads",
                    entry.key,
                    scenario.name
                );
            }
        }
    }

    #[test]
    fn every_declared_path_covers_a_semantic_field() {
        for entry in entries() {
            for dep in entry.deps() {
                assert!(
                    !cc_report::scenario::deps::expand(&[*dep]).is_empty(),
                    "`{}` declares `{dep}` which matches no semantic field",
                    entry.key
                );
            }
        }
    }

    #[test]
    fn scenario_sku_names_match_the_dcsim_catalog() {
        // The scenario layer validates fleet compositions against its own
        // KNOWN_SKUS list (cc_report cannot depend on the simulator crate);
        // this is the cross-crate check keeping that list and the
        // cc_dcsim::ServerConfig catalog in lockstep.
        let catalog: Vec<String> = cc_dcsim::ServerConfig::catalog()
            .into_iter()
            .map(|s| s.name)
            .collect();
        assert_eq!(cc_report::scenario::KNOWN_SKUS.to_vec(), catalog);
        for name in cc_report::scenario::KNOWN_SKUS {
            assert!(
                cc_dcsim::ServerConfig::by_name(name).is_some(),
                "scenario SKU `{name}` missing from the catalog"
            );
        }
    }

    #[test]
    fn fingerprints_dedupe_exactly_the_ignored_axes() {
        let base = Scenario::paper_defaults();
        let mut grown = base.clone();
        grown.set("fleet.growth", "1.9").unwrap();
        let facility = find_entry("ext-facility").unwrap();
        let fig05 = find_entry("fig05").unwrap();
        let fig10 = find_entry("fig10").unwrap();
        // The facility depends on fleet.growth: the fingerprint moves.
        assert_ne!(facility.fingerprint(&base), facility.fingerprint(&grown));
        // fig10 (device/grid deps) and fig05 (scenario-independent) ignore
        // the growth axis: their fingerprints are stable across it.
        assert_eq!(fig10.fingerprint(&base), fig10.fingerprint(&grown));
        assert_eq!(fig05.fingerprint(&base), fig05.fingerprint(&grown));
        assert!(fig05.is_scenario_independent());
        assert!(!facility.is_scenario_independent());
    }

    #[test]
    fn entries_share_one_cached_inputs_handle() {
        let a: *const SharedInputs = find_entry("fig10").unwrap().inputs();
        let b: *const SharedInputs = find_entry("fig09").unwrap().inputs();
        assert_eq!(a, b, "all entries must share the same cache");
    }

    #[test]
    fn every_experiment_exposes_a_summary_scalar() {
        // Full-suite sweeps are only diffable when every experiment carries
        // a headline scalar — comparison reports must never render a
        // `(no summary scalar)` row.
        let ctx = RunContext::paper();
        for entry in entries() {
            let out = entry.build().run(&ctx);
            let scalar = out
                .summary_scalar()
                .unwrap_or_else(|| panic!("{} must expose a summary scalar", entry.key));
            assert!(
                scalar.value.is_finite(),
                "{}: summary scalar `{}` is not finite",
                entry.key,
                scalar.name
            );
            assert!(!scalar.name.is_empty() && !scalar.unit.is_empty());
        }
    }
}
