//! One experiment per paper figure/table, plus extensions.
//!
//! Every module implements [`cc_report::Experiment`]; the [`all`] registry
//! drives the `repro` binary and the benchmark harness. Each experiment's
//! `run` executes the *models* (not hard-coded answers): e.g. Fig 10 runs the
//! SoC simulator and the amortization solver end to end.

pub mod ext_die;
pub mod ext_dvfs;
pub mod ext_fab;
pub mod ext_hetero;
pub mod ext_mc;
pub mod ext_sched;
pub mod fig01;
pub mod fig02;
pub mod fig03;
pub mod fig04;
pub mod fig05;
pub mod fig06;
pub mod fig07;
pub mod fig08;
pub mod fig09;
pub mod fig10;
pub mod fig11;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig15;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;

pub use ext_die::ExtDieCarbon;
pub use ext_dvfs::ExtDvfs;
pub use ext_fab::ExtFabDecarbonization;
pub use ext_hetero::ExtHeterogeneity;
pub use ext_mc::ExtMonteCarlo;
pub use ext_sched::ExtCarbonAwareScheduling;
pub use fig01::Fig01IctProjections;
pub use fig02::Fig02EnergyVsCarbon;
pub use fig03::Fig03GhgScopes;
pub use fig04::Fig04Lifecycle;
pub use fig05::Fig05AppleBreakdown;
pub use fig06::Fig06DeviceBreakdown;
pub use fig07::Fig07Generations;
pub use fig08::Fig08Pareto;
pub use fig09::Fig09InferencePerf;
pub use fig10::Fig10Breakeven;
pub use fig11::Fig11CorporateFootprints;
pub use fig12::Fig12Scope3Breakdown;
pub use fig13::Fig13EnergySourceSweep;
pub use fig14::Fig14WaferSweep;
pub use fig15::Fig15ResearchDirections;
pub use table1::Table1Scopes;
pub use table2::Table2EnergySources;
pub use table3::Table3Grids;
pub use table4::Table4MacPro;

use cc_report::Experiment;

/// Every experiment in presentation order: figures 1–15, tables I–IV, then
/// extensions.
#[must_use]
pub fn all() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(Fig01IctProjections),
        Box::new(Fig02EnergyVsCarbon),
        Box::new(Fig03GhgScopes),
        Box::new(Fig04Lifecycle),
        Box::new(Fig05AppleBreakdown),
        Box::new(Fig06DeviceBreakdown),
        Box::new(Fig07Generations),
        Box::new(Fig08Pareto),
        Box::new(Fig09InferencePerf),
        Box::new(Fig10Breakeven),
        Box::new(Fig11CorporateFootprints),
        Box::new(Fig12Scope3Breakdown),
        Box::new(Fig13EnergySourceSweep),
        Box::new(Fig14WaferSweep),
        Box::new(Fig15ResearchDirections),
        Box::new(Table1Scopes),
        Box::new(Table2EnergySources),
        Box::new(Table3Grids),
        Box::new(Table4MacPro),
        Box::new(ExtCarbonAwareScheduling),
        Box::new(ExtDieCarbon),
        Box::new(ExtDvfs),
        Box::new(ExtHeterogeneity),
        Box::new(ExtFabDecarbonization),
        Box::new(ExtMonteCarlo),
    ]
}

/// Finds an experiment by its command-line key (`fig10`, `table2`,
/// `ext-sched`).
#[must_use]
pub fn find(key: &str) -> Option<Box<dyn Experiment>> {
    all().into_iter().find(|e| e.id().key() == key)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete() {
        let experiments = all();
        assert_eq!(experiments.len(), 25);
        // 15 figures, 4 tables, 6 extensions.
        let figs = experiments
            .iter()
            .filter(|e| matches!(e.id(), cc_report::ExperimentId::Figure(_)))
            .count();
        assert_eq!(figs, 15);
    }

    #[test]
    fn keys_are_unique_and_resolvable() {
        let mut keys: Vec<String> = all().iter().map(|e| e.id().key()).collect();
        keys.sort();
        let n = keys.len();
        keys.dedup();
        assert_eq!(n, keys.len());
        for key in keys {
            assert!(find(&key).is_some(), "key {key} not resolvable");
        }
        assert!(find("fig99").is_none());
    }

    #[test]
    fn every_experiment_produces_output() {
        for e in all() {
            let out = e.run();
            assert!(
                !out.tables.is_empty() || !out.notes.is_empty(),
                "{} produced nothing",
                e.id()
            );
            assert!(!e.description().is_empty());
        }
    }
}
