//! Table II: carbon efficiency of energy sources.

use cc_data::energy_sources::EnergySource;
use cc_report::{table::num, Experiment, ExperimentId, ExperimentOutput, RunContext, Table};

/// Reproduces Table II.
#[derive(Debug, Clone, Copy, Default)]
pub struct Table2EnergySources;

impl Experiment for Table2EnergySources {
    fn id(&self) -> ExperimentId {
        ExperimentId::Table(2)
    }

    fn description(&self) -> &'static str {
        "Carbon intensity and energy-payback time per generation source"
    }

    fn run(&self, _ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        let mut t = Table::new([
            "Source",
            "Carbon intensity (g CO2e/kWh)",
            "Energy payback (months)",
        ]);
        for source in EnergySource::ALL {
            t.row([
                source.to_string(),
                num(source.carbon_intensity().as_g_per_kwh(), 0),
                num(source.energy_payback().as_months(), 0),
            ]);
        }
        out.table("Table II: carbon efficiency of energy sources", t);
        let spread = EnergySource::Coal.carbon_intensity() / EnergySource::Wind.carbon_intensity();
        out.scalar("coal-to-wind-spread", "x", spread);
        out.note(format!(
            "coal-to-wind intensity spread {spread:.0}x (the paper's 'up to 70x improvement' bound)"
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_sources_ordered() {
        let out = Table2EnergySources.run(&RunContext::paper());
        let t = &out.tables[0].1;
        assert_eq!(t.len(), 8);
        assert_eq!(t.rows()[0][0], "Coal");
        assert_eq!(t.rows()[7][0], "Wind");
    }
}
