//! Extension: carbon-aware fleet placement across multi-region grids.
//!
//! The Section VI research direction scaled up: instead of one facility on
//! one solar-shaped day ([`super::ext_sched`]), the scenario describes a
//! *fleet of sites* (`fleet.sites`), each drawing power from a grid region
//! with its own time-resolved intensity trace (`grid.region.<name>.trace`,
//! see `docs/GRID-TRACES.md`). A share of the fleet's IT energy
//! (`fleet.deferrable`) is batch work — AI training, analytics — the
//! scheduler may defer across hours and migrate across sites chasing clean
//! energy, subject to per-site hourly capacity and a migration-overhead tax.
//! The headline scalar, **avoided-carbon**, is the daily carbon the
//! carbon-aware placement saves over the static baseline that pins every
//! site's batch share at home, spread uniformly over the day.

use cc_dcsim::{FleetSchedule, MultiSiteScheduler, SitePlan};
use cc_report::{
    builtin_region_trace, table::num, Experiment, ExperimentId, ExperimentOutput, RunContext,
    Series, SiteParams, Table,
};
use cc_units::{Energy, IntensityTrace, TimeSpan};

use super::ext_facility::fleet_mix_from_context;

/// The avoided-carbon threshold sweep comparisons track (t CO₂e/day). The
/// default single-site fleet avoids nothing; a modest clean-region site
/// (`fleet.sites[hydro].weight` ≳ 0.1 at the paper's 20% deferrable share)
/// clears it, so both acceptance sweeps bracket the line.
pub const AVOIDED_CARBON_THRESHOLD_T: f64 = 5.0;

/// Burst headroom: a site can run deferrable work at up to this multiple of
/// its uniform share's hourly rate, modeling capacity provisioned for the
/// batch fleet's peaks. 3× lets a clean site concentrate a full day of its
/// own batch into a third of the day — or host two other sites' worth.
pub const BURST_FACTOR: f64 = 3.0;

/// The intensity trace of `region`: the scenario's `grid.region.<name>`
/// entry when configured, else the builtin catalog. Scenario validation
/// guarantees one of the two exists for every site region.
fn region_trace(ctx: &RunContext, region: &str) -> IntensityTrace {
    ctx.grid_regions()
        .iter()
        .find(|r| r.name == region)
        .and_then(|r| IntensityTrace::from_hourly(&r.hours))
        .or_else(|| builtin_region_trace(region))
        .unwrap_or_else(|| panic!("scenario validation admits region `{region}`"))
}

/// Builds the per-site placement problem from the scenario: the fleet's IT
/// power (SKU mix × servers × scale × PUE) split across sites by weight,
/// with `fleet.deferrable` of each site's daily energy deferrable and
/// [`BURST_FACTOR`] headroom provisioned above the uniform batch rate.
#[must_use]
pub fn site_plans_from_context(ctx: &RunContext) -> Vec<SitePlan> {
    let fleet = ctx.fleet();
    let mix = fleet_mix_from_context(ctx);
    let fleet_power =
        mix.average_power() * (fleet.initial_servers as f64 * fleet.scale) * fleet.pue;
    let hourly_total = fleet_power * TimeSpan::from_hours(1.0);
    let deferrable_share = fleet.deferrable;
    fleet
        .site_composition()
        .into_iter()
        .map(|site: SiteParams| {
            let hourly = hourly_total * site.weight;
            let base = hourly * (1.0 - deferrable_share);
            let deferrable = hourly * deferrable_share * 24.0;
            let capacity = base + deferrable * (BURST_FACTOR / 24.0);
            SitePlan {
                name: site.name,
                trace: region_trace(ctx, &site.region),
                base_load: [base; 24],
                hourly_capacity: capacity,
                deferrable,
            }
        })
        .collect()
}

/// Carbon-aware placement of deferrable load across hours and sites.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExtScheduler;

impl Experiment for ExtScheduler {
    fn id(&self) -> ExperimentId {
        ExperimentId::Extension("scheduler")
    }

    fn description(&self) -> &'static str {
        "Multi-site carbon-aware placement: defer and migrate batch load across regions vs static"
    }

    fn run(&self, ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        let sites = site_plans_from_context(ctx);
        let sched = MultiSiteScheduler::default();
        let baseline = sched.static_placement(&sites);
        let aware = sched.carbon_aware(&sites);
        let avoided = baseline.total_carbon - aware.total_carbon;

        let mut t = Table::new([
            "Site",
            "Mean intensity (g/kWh)",
            "Base (MWh/day)",
            "Deferrable (MWh/day)",
            "Static batch (MWh)",
            "Aware batch (MWh)",
            "Imported (MWh)",
        ]);
        for (s, site) in sites.iter().enumerate() {
            let base_day: Energy = site.base_load.iter().copied().sum();
            let imported: Energy = aware.imported[s].iter().copied().sum();
            t.row([
                site.name.clone(),
                num(site.trace.daily_mean(), 0),
                num(base_day.as_mwh(), 1),
                num(site.deferrable.as_mwh(), 1),
                num(baseline.placed_at(s).as_mwh(), 1),
                num(aware.placed_at(s).as_mwh(), 1),
                num(imported.as_mwh(), 1),
            ]);
        }
        out.table("Fleet placement: static vs carbon-aware", t);

        // Per-site hourly artifacts: where the aware plan actually put the
        // batch energy, against each region's intensity shape.
        for (s, site) in sites.iter().enumerate() {
            let mut placement =
                Series::new(format!("scheduler-placement-{}", site.name), "hour", "MWh");
            let mut intensity = Series::new(
                format!("scheduler-intensity-{}", site.name),
                "hour",
                "g CO2e/kWh",
            );
            for h in 0..24 {
                placement.push(h as f64, aware.placement[s][h].as_mwh());
                intensity.push(h as f64, site.trace.g_per_kwh(h));
            }
            out.series(placement).series(intensity);
        }

        out.scalar_with_threshold(
            "avoided-carbon",
            "t CO2e/day",
            avoided.as_tonnes(),
            AVOIDED_CARBON_THRESHOLD_T,
            "clean-region placement pays off",
        );
        let share = if baseline.total_carbon.as_kg() > 0.0 {
            100.0 * (avoided / baseline.total_carbon)
        } else {
            0.0
        };
        out.scalar("avoided-carbon-share", "%", share);
        out.scalar("migrated-energy", "MWh/day", aware.migrated_energy.as_mwh());

        out.note(format!(
            "carbon-aware placement emits {:.1} t CO2e/day vs {:.1} static — {:.1} t avoided \
             ({share:.1}% of the fleet's daily operational carbon)",
            aware.total_carbon.as_tonnes(),
            baseline.total_carbon.as_tonnes(),
            avoided.as_tonnes(),
        ));
        out.note(describe_migration(&sites, &aware));
        out
    }
}

/// One-line description of how much batch energy ran away from home.
fn describe_migration(sites: &[SitePlan], aware: &FleetSchedule) -> String {
    if aware.migrated_energy == Energy::ZERO {
        return "no batch energy migrated: every site's cheapest hours were local".to_string();
    }
    let busiest = (0..sites.len())
        .max_by(|&a, &b| {
            aware
                .placed_at(a)
                .as_mwh()
                .total_cmp(&aware.placed_at(b).as_mwh())
        })
        .expect("at least one site");
    format!(
        "{:.1} MWh/day of batch energy migrated across sites (2% energy overhead); \
         `{}` hosts the most batch work",
        aware.migrated_energy.as_mwh(),
        sites[busiest].name
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_report::Scenario;

    fn run_with(sets: &[(&str, &str)]) -> ExperimentOutput {
        let mut s = Scenario::paper_defaults();
        for (k, v) in sets {
            s.set(k, v).unwrap();
        }
        ExtScheduler.run(&RunContext::new(s))
    }

    #[test]
    fn default_single_site_fleet_avoids_nothing() {
        // One site on the flat default grid: deferral has nothing to chase.
        let out = ExtScheduler.run(&RunContext::paper());
        let avoided = out.summary_scalar().unwrap();
        assert_eq!(avoided.name, "avoided-carbon");
        assert_eq!(avoided.value, 0.0);
        assert_eq!(
            avoided.threshold.as_ref().unwrap().value,
            AVOIDED_CARBON_THRESHOLD_T
        );
        assert_eq!(out.find_scalar("migrated-energy").unwrap().value, 0.0);
        assert_eq!(out.tables[0].1.len(), 1);
    }

    #[test]
    fn hydro_site_sweep_brackets_the_avoided_carbon_threshold() {
        // The acceptance-criterion sweep: fleet.sites[hydro].weight=0..0.5
        // must cross the 5 t/day threshold so the comparison report prints a
        // crossover line.
        let avoided_at = |w: &str| {
            run_with(&[("fleet.sites[hydro].weight", w)])
                .summary_scalar()
                .unwrap()
                .value
        };
        let none = avoided_at("0");
        let half = avoided_at("0.5");
        assert_eq!(none, 0.0, "no clean site, nothing to avoid");
        assert!(
            half > AVOIDED_CARBON_THRESHOLD_T,
            "a half-hydro fleet must clear {AVOIDED_CARBON_THRESHOLD_T} t/day, got {half}"
        );
    }

    #[test]
    fn deferrable_share_scales_the_win() {
        let at = |d: &str| {
            run_with(&[
                ("fleet.sites[hydro].weight", "0.3"),
                ("fleet.deferrable", d),
            ])
            .summary_scalar()
            .unwrap()
            .value
        };
        assert_eq!(at("0"), 0.0, "nothing deferrable, nothing to move");
        let modest = at("0.2");
        let heavy = at("0.5");
        assert!(modest > 0.0);
        assert!(
            heavy > modest,
            "more deferrable energy, more avoided carbon"
        );
    }

    #[test]
    fn follow_the_sun_migrates_into_the_solar_window() {
        let out = run_with(&[("fleet.sites", "east@default:0.5,west@solar:0.5")]);
        let placement = out.find_series("scheduler-placement-west").unwrap();
        let noon: f64 = placement.points[10..16].iter().map(|p| p.y).sum();
        let night: f64 = placement.points[0..6].iter().map(|p| p.y).sum();
        assert!(
            noon > night,
            "solar-site batch should cluster at midday: noon {noon} vs night {night}"
        );
        assert!(out.summary_scalar().unwrap().value > 0.0);
        assert!(out.find_scalar("migrated-energy").unwrap().value > 0.0);
    }

    #[test]
    fn configured_regions_override_builtins() {
        // A scenario-configured `hydro` trace dirtier than the default grid
        // turns the hydro site into the *worst* host: nothing migrates there.
        let out = run_with(&[
            ("grid.region.hydro.trace", "flat(800)"),
            ("fleet.sites[hydro].weight", "0.3"),
        ]);
        let placement = out.find_series("scheduler-placement-hydro").unwrap();
        let hosted: f64 = placement.points.iter().map(|p| p.y).sum();
        let deferrable_total = 0.3 * 0.2 * 16.5 * 24.0; // weight x share x MW x h
        assert!(
            hosted < deferrable_total + 1e-6,
            "a dirty region must not attract extra batch work, hosted {hosted}"
        );
        let intensity = out.find_series("scheduler-intensity-hydro").unwrap();
        assert_eq!(intensity.points[0].y, 800.0);
    }

    #[test]
    fn artifacts_cover_every_site_and_hour() {
        let out = run_with(&[("fleet.sites", "a@default:0.4,b@hydro:0.3,c@solar:0.3")]);
        assert_eq!(out.tables[0].1.len(), 3);
        for site in ["a", "b", "c"] {
            let s = out
                .find_series(&format!("scheduler-placement-{site}"))
                .unwrap();
            assert_eq!(s.len(), 24);
        }
        // Placement conserves the fleet's deferrable budget.
        let placed: f64 = ["a", "b", "c"]
            .iter()
            .flat_map(|site| {
                out.find_series(&format!("scheduler-placement-{site}"))
                    .unwrap()
                    .points
                    .iter()
                    .map(|p| p.y)
            })
            .sum();
        let budget = 0.2 * 16.5 * 24.0; // share x fleet MW x hours
        assert!(
            (placed - budget).abs() < 1e-6,
            "placed {placed} vs budget {budget}"
        );
    }
}
