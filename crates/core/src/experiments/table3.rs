//! Table III: global carbon efficiency of energy production.

use cc_data::grids::Region;
use cc_report::{table::num, Experiment, ExperimentId, ExperimentOutput, RunContext, Table};

/// Reproduces Table III.
#[derive(Debug, Clone, Copy, Default)]
pub struct Table3Grids;

impl Experiment for Table3Grids {
    fn id(&self) -> ExperimentId {
        ExperimentId::Table(3)
    }

    fn description(&self) -> &'static str {
        "Average grid carbon intensity by geography with dominant source"
    }

    fn run(&self, _ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        let mut t = Table::new(["Geographic average", "g CO2e/kWh", "Dominant source"]);
        for region in Region::ALL {
            t.row([
                region.to_string(),
                num(region.carbon_intensity().as_g_per_kwh(), 0),
                region.dominant_source().unwrap_or("-").to_string(),
            ]);
        }
        out.table(
            "Table III: global carbon efficiency of energy production",
            t,
        );
        let spread = Region::ALL
            .iter()
            .map(|r| r.carbon_intensity().as_g_per_kwh())
            .fold(f64::NEG_INFINITY, f64::max)
            / Region::ALL
                .iter()
                .map(|r| r.carbon_intensity().as_g_per_kwh())
                .fold(f64::INFINITY, f64::min);
        out.scalar("dirtiest-to-cleanest-grid-spread", "x", spread);
        out.note("the US average (380 g/kWh) is the baseline for the Fig 10 break-even analysis");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_regions_with_us_at_380() {
        let out = Table3Grids.run(&RunContext::paper());
        let t = &out.tables[0].1;
        assert_eq!(t.len(), 9);
        let us = t.rows().iter().find(|r| r[0] == "United States").unwrap();
        assert_eq!(us[1], "380");
    }
}
