//! Figure 4: the hardware life cycle and its opex/capex classification.

use cc_lca::{ExpenditureClass, LifecyclePhase};
use cc_report::{Experiment, ExperimentId, ExperimentOutput, RunContext, Table};

/// Reproduces Fig 4's life-cycle/classification mapping.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig04Lifecycle;

impl Experiment for Fig04Lifecycle {
    fn id(&self) -> ExperimentId {
        ExperimentId::Figure(4)
    }

    fn description(&self) -> &'static str {
        "Hardware life cycle: production, transport, use, end-of-life -> capex/opex"
    }

    fn run(&self, _ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        let mut t = Table::new(["Phase", "Class", "Personal computing", "Datacenter"]);
        let personal = [
            "Procure materials, integrated circuits, packaging, assembly",
            "Transport final product to consumer",
            "Utilization, hardware lifetime, battery efficiency",
            "Some raw materials reused",
        ];
        let datacenter = [
            "Procure materials, ICs, datacenter construction, packaging, assembly",
            "Transport hardware and equipment to be assembled on site",
            "Utilization, hardware lifetime, PUE",
            "Some raw materials reused",
        ];
        for (i, phase) in LifecyclePhase::ALL.iter().enumerate() {
            t.row([
                phase.to_string(),
                phase.expenditure_class().to_string(),
                personal[i].to_string(),
                datacenter[i].to_string(),
            ]);
        }
        out.table("Hardware life cycle (Fig 4)", t);
        let opex_phases = LifecyclePhase::ALL
            .iter()
            .filter(|p| p.expenditure_class() == ExpenditureClass::Opex)
            .count();
        out.scalar(
            "capex-phase-share",
            "%",
            100.0 * (LifecyclePhase::ALL.len() - opex_phases) as f64
                / LifecyclePhase::ALL.len() as f64,
        );
        out.note("only the use phase is opex-related; all other phases aggregate into capex");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_phases_one_opex() {
        let out = Fig04Lifecycle.run(&RunContext::paper());
        let t = &out.tables[0].1;
        assert_eq!(t.len(), 4);
        let opex_rows = t.rows().iter().filter(|r| r[1] == "Opex").count();
        assert_eq!(opex_rows, 1);
    }
}
