//! Extension: carbon-aware batch scheduling (Section VI, runtime systems).

use cc_dcsim::{CarbonAwareScheduler, DayProfile};
use cc_report::{
    table::num, Experiment, ExperimentId, ExperimentOutput, RunContext, Series, Table,
};

/// Quantifies the Section VI claim that scheduling deferrable work into
/// renewable-rich hours reduces operational carbon.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExtCarbonAwareScheduling;

impl Experiment for ExtCarbonAwareScheduling {
    fn id(&self) -> ExperimentId {
        ExperimentId::Extension("sched")
    }

    fn description(&self) -> &'static str {
        "Carbon-aware batch scheduling vs a uniform baseline on a solar-shaped grid"
    }

    fn run(&self, ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        let mut t = Table::new([
            "Batch energy (MWh/day)",
            "Uniform total (t CO2e)",
            "Carbon-aware total (t CO2e)",
            "Batch carbon cut",
        ]);
        let mut cuts = Series::new("batch-carbon-cut", "batch MWh/day", "fraction saved");
        // The scenario's fleet scale grows the deferrable fleet and the
        // capacity provisioned for it; the non-deferrable base load stays
        // fixed, so the batch/base mix — and with it the achievable cut —
        // genuinely shifts with the knob.
        let k = ctx.fleet_scale();
        let mut best_cut = 0.0f64;
        for batch_mwh in [20.0 * k, 60.0 * k, 120.0 * k, 180.0 * k] {
            let profile = DayProfile::solar_grid(5.0, batch_mwh, 20.0 * k);
            let uniform = CarbonAwareScheduler::uniform(&profile);
            let aware = CarbonAwareScheduler::carbon_aware(&profile);
            let cut = 1.0 - aware.batch_carbon(&profile) / uniform.batch_carbon(&profile);
            best_cut = best_cut.max(cut);
            cuts.push(batch_mwh, cut);
            t.row([
                num(batch_mwh, 0),
                num(uniform.total_carbon.as_tonnes(), 2),
                num(aware.total_carbon.as_tonnes(), 2),
                format!("{:.0}%", cut * 100.0),
            ]);
        }
        out.table("Carbon-aware scheduling ablation", t);
        out.series(cuts);
        out.scalar("best-batch-carbon-cut", "%", best_cut * 100.0);
        out.note(
            "small deferrable loads fit entirely into the solar window (largest cut); \
             as batch energy approaches daily capacity the advantage shrinks",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn savings_shrink_as_batch_fills_capacity() {
        let out = ExtCarbonAwareScheduling.run(&RunContext::paper());
        let t = &out.tables[0].1;
        assert_eq!(t.len(), 4);
        let cuts: Vec<f64> = t
            .rows()
            .iter()
            .map(|r| r[3].trim_end_matches('%').parse().unwrap())
            .collect();
        assert!(cuts[0] >= cuts[3], "cuts {cuts:?}");
        assert!(cuts[0] > 40.0);
    }
}
