//! Extension: die-level embodied carbon across process nodes and die sizes
//! (the ACT-style forward model).

use cc_fab::{DieModel, ProcessNode};
use cc_report::{table::num, Experiment, ExperimentId, ExperimentOutput, Table};

/// Sweeps die area and node, showing how provisioning decisions translate to
/// embodied carbon ("judiciously provisioning resources, scaling down
/// hardware").
#[derive(Debug, Clone, Copy, Default)]
pub struct ExtDieCarbon;

impl Experiment for ExtDieCarbon {
    fn id(&self) -> ExperimentId {
        ExperimentId::Extension("die")
    }

    fn description(&self) -> &'static str {
        "Die-level embodied carbon by process node and die area (yield-aware)"
    }

    fn run(&self) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        let mut t = Table::new([
            "Node",
            "Die area (mm2)",
            "Yield",
            "Good dies/wafer",
            "Embodied (kg CO2e/die)",
        ]);
        for node in [ProcessNode::N14, ProcessNode::N10, ProcessNode::N7, ProcessNode::N5] {
            for area in [50.0, 100.0, 200.0, 400.0] {
                let m = DieModel::new(node, area).expect("valid area");
                t.row([
                    node.to_string(),
                    num(area, 0),
                    format!("{:.0}%", m.yield_fraction() * 100.0),
                    num(m.good_dies_per_wafer(), 0),
                    num(m.embodied_carbon().as_kg(), 2),
                ]);
            }
        }
        out.table("Embodied carbon per die (TSMC wafer baseline)", t);
        out.note(
            "embodied carbon grows superlinearly with die area because yield decays \
             exponentially — the quantitative case for the paper's 'scale down hardware'",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_rows_with_superlinear_area_cost() {
        let out = ExtDieCarbon.run();
        let t = &out.tables[0].1;
        assert_eq!(t.len(), 16);
        // Within one node, 8x area must cost more than 8x carbon.
        let small: f64 = t.rows()[0][4].parse().unwrap();
        let large: f64 = t.rows()[3][4].parse().unwrap();
        assert!(large / small > 8.0, "{large} / {small}");
    }
}
