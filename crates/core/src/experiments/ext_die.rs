//! Extension: die-level embodied carbon across process nodes and die sizes
//! (the ACT-style forward model).

use cc_fab::{DieModel, ProcessNode};

/// The process node closest (by nanometres) to the scenario's `fab.node_nm`.
fn nearest_node(node_nm: f64) -> ProcessNode {
    ProcessNode::ALL
        .into_iter()
        .min_by(|a, b| {
            (a.nanometres() - node_nm)
                .abs()
                .partial_cmp(&(b.nanometres() - node_nm).abs())
                .expect("node distances are finite")
        })
        .expect("ProcessNode::ALL is non-empty")
}
use cc_report::{table::num, Experiment, ExperimentId, ExperimentOutput, RunContext, Table};

/// Sweeps die area and node, showing how provisioning decisions translate to
/// embodied carbon ("judiciously provisioning resources, scaling down
/// hardware").
#[derive(Debug, Clone, Copy, Default)]
pub struct ExtDieCarbon;

impl Experiment for ExtDieCarbon {
    fn id(&self) -> ExperimentId {
        ExperimentId::Extension("die")
    }

    fn description(&self) -> &'static str {
        "Die-level embodied carbon by process node and die area (yield-aware)"
    }

    fn run(&self, ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        let mut t = Table::new([
            "Node",
            "Die area (mm2)",
            "Yield",
            "Good dies/wafer",
            "Embodied (kg CO2e/die)",
        ]);
        // The models' baseline defect density is 0.1 /cm²; the scenario's
        // yield factor scales it (a >1 factor models a worse-yielding fab).
        let d0 = 0.1 * ctx.fab_yield_factor();
        for node in [
            ProcessNode::N14,
            ProcessNode::N10,
            ProcessNode::N7,
            ProcessNode::N5,
        ] {
            for area in [50.0, 100.0, 200.0, 400.0] {
                let m = DieModel::new(node, area)
                    .expect("valid area")
                    .with_defect_density(d0)
                    .expect("non-negative defect density");
                t.row([
                    node.to_string(),
                    num(area, 0),
                    format!("{:.0}%", m.yield_fraction() * 100.0),
                    num(m.good_dies_per_wafer(), 0),
                    num(m.embodied_carbon().as_kg(), 2),
                ]);
            }
        }
        out.table(
            format!("Embodied carbon per die (node-scaled TSMC wafer baseline, D0 = {d0:.2} /cm2)"),
            t,
        );
        out.note(
            "embodied carbon grows superlinearly with die area because yield decays \
             exponentially — the quantitative case for the paper's 'scale down hardware'",
        );
        // The scenario's featured node, at a Pixel-3-class 100 mm2 SoC die.
        // The wafer baseline is node-specific (electricity scales with the
        // node's per-wafer energy), so sweeping `fab.node_nm` moves this
        // scalar — the load-bearing knob a sweep comparison diffs.
        let featured = nearest_node(ctx.fab_node_nm());
        let featured_die = DieModel::new(featured, 100.0)
            .expect("100 mm2 fits the wafer")
            .with_defect_density(d0)
            .expect("non-negative defect density");
        out.scalar(
            "featured-node-per-die-carbon",
            "kg CO2e",
            featured_die.embodied_carbon().as_kg(),
        );
        out.note(format!(
            "scenario fab.node = {} nm (nearest modeled node {featured}): a 100 mm2 die \
             embodies {:.2} kg CO2e at {:.0}% yield, from a {:.1} MWh/wafer process \
             (electricity carbon scales with the node's per-wafer energy; process \
             emissions are recipe-driven and constant)",
            ctx.fab_node_nm(),
            featured_die.embodied_carbon().as_kg(),
            featured_die.yield_fraction() * 100.0,
            featured.energy_per_wafer().as_kwh() / 1e3
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_rows_with_superlinear_area_cost() {
        let out = ExtDieCarbon.run(&RunContext::paper());
        let t = &out.tables[0].1;
        assert_eq!(t.len(), 16);
        // Within one node, 8x area must cost more than 8x carbon.
        let small: f64 = t.rows()[0][4].parse().unwrap();
        let large: f64 = t.rows()[3][4].parse().unwrap();
        assert!(large / small > 8.0, "{large} / {small}");
    }

    #[test]
    fn node_sweep_moves_the_per_die_scalar() {
        use cc_report::Scenario;
        let scalar_at = |node_nm: f64| {
            let ctx = RunContext::new(Scenario::builder().fab_node_nm(node_nm).build());
            ExtDieCarbon
                .run(&ctx)
                .find_scalar("featured-node-per-die-carbon")
                .expect("ext-die exposes a summary scalar")
                .value
        };
        // fab.node_nm is load-bearing: advancing the featured node raises
        // per-die carbon through the node's per-wafer electricity.
        assert!(scalar_at(3.0) > scalar_at(7.0));
        assert!(scalar_at(7.0) > scalar_at(28.0));
    }
}
