//! Figure 11: Facebook and Google carbon footprints by scope over time.

use cc_ghg::{CorporateInventory, Scope2Method};
use cc_report::{
    table::num, Experiment, ExperimentId, ExperimentOutput, RunContext, Series, Table,
};

/// Reproduces Fig 11.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig11CorporateFootprints;

fn series_table(name: &str, series: &[cc_data::corporate::ScopeYear]) -> Table {
    let mut t = Table::new([
        format!("{name} year"),
        "Scope 1 (Mt)".to_string(),
        "Scope 2 location (Mt)".to_string(),
        "Scope 2 market (Mt)".to_string(),
        "Scope 3 (Mt)".to_string(),
    ]);
    for y in series {
        t.row([
            y.year.to_string(),
            num(y.scope1_mt, 3),
            num(y.scope2_location_mt, 2),
            num(y.scope2_market_mt, 3),
            num(y.scope3_mt, 2),
        ]);
    }
    t
}

impl Experiment for Fig11CorporateFootprints {
    fn id(&self) -> ExperimentId {
        ExperimentId::Figure(11)
    }

    fn description(&self) -> &'static str {
        "Facebook (2014-2019) and Google (2013-2018) footprints by scope"
    }

    fn run(&self, _ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        out.table(
            "Facebook carbon footprint",
            series_table("Facebook", &cc_data::corporate::FACEBOOK),
        );
        out.table(
            "Google carbon footprint",
            series_table("Google", &cc_data::corporate::GOOGLE),
        );
        for (name, data) in [
            ("facebook", &cc_data::corporate::FACEBOOK[..]),
            ("google", &cc_data::corporate::GOOGLE[..]),
        ] {
            out.series(Series::from_pairs(
                format!("{name}-scope3"),
                "year",
                "Mt CO2e",
                data.iter().map(|y| (f64::from(y.year), y.scope3_mt)),
            ));
        }

        let fb2019 = CorporateInventory::from_scope_year(
            cc_data::corporate::year_of(&cc_data::corporate::FACEBOOK, 2019).unwrap(),
        );
        let gg2018 = CorporateInventory::from_scope_year(
            cc_data::corporate::year_of(&cc_data::corporate::GOOGLE, 2018).unwrap(),
        );
        out.note(format!(
            "paper: Facebook 2019 Scope 3 is 23x market Scope 2; measured {:.1}x",
            fb2019.scope3() / fb2019.scope2(Scope2Method::MarketBased)
        ));
        out.note(format!(
            "paper: Google 2018 Scope 3 is 21x market Scope 2 (14 Mt vs 684 kt); measured {:.1}x",
            gg2018.scope3() / gg2018.scope2(Scope2Method::MarketBased)
        ));
        let gg2017 = cc_data::corporate::year_of(&cc_data::corporate::GOOGLE, 2017).unwrap();
        out.note(format!(
            "paper: Google Scope 3 jumped ~5x in 2018 after the hardware-disclosure change; \
             measured {:.1}x",
            gg2018.scope3().as_mt() / gg2017.scope3_mt
        ));
        out.note(
            "paper: market-based Scope 2 falls after ~2013 renewable procurement even as \
             location-based (energy) rises",
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_series_tables() {
        let out = Fig11CorporateFootprints.run(&RunContext::paper());
        assert_eq!(out.tables.len(), 2);
        assert_eq!(out.tables[0].1.len(), 6);
        assert_eq!(out.tables[1].1.len(), 6);
    }

    #[test]
    fn ratio_notes_match_paper_band() {
        let out = Fig11CorporateFootprints.run(&RunContext::paper());
        assert!(out.notes[0].contains("23.0x") || out.notes[0].contains("23.1x"));
        assert!(out.notes[1].contains("20.") || out.notes[1].contains("21."));
    }
}
