//! Figure 11: Facebook and Google carbon footprints by scope over time.

use cc_ghg::{CorporateInventory, Scope2Method};
use cc_report::{
    table::num, Experiment, ExperimentId, ExperimentOutput, RunContext, Series, Table,
};

/// Reproduces Fig 11.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig11CorporateFootprints;

fn series_table(name: &str, series: &[cc_data::corporate::ScopeYear]) -> Table {
    let mut t = Table::new([
        format!("{name} year"),
        "Scope 1 (Mt)".to_string(),
        "Scope 2 location (Mt)".to_string(),
        "Scope 2 market (Mt)".to_string(),
        "Scope 3 (Mt)".to_string(),
    ]);
    for y in series {
        t.row([
            y.year.to_string(),
            num(y.scope1_mt, 3),
            num(y.scope2_location_mt, 2),
            num(y.scope2_market_mt, 3),
            num(y.scope3_mt, 2),
        ]);
    }
    t
}

impl Experiment for Fig11CorporateFootprints {
    fn id(&self) -> ExperimentId {
        ExperimentId::Figure(11)
    }

    fn description(&self) -> &'static str {
        "Facebook (2014-2019) and Google (2013-2018) footprints by scope"
    }

    fn run(&self, ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        out.table(
            "Facebook carbon footprint",
            series_table("Facebook", &cc_data::corporate::FACEBOOK),
        );
        out.table(
            "Google carbon footprint",
            series_table("Google", &cc_data::corporate::GOOGLE),
        );

        // The modeled counterpart: the scenario's facility, booked through
        // the same scope taxonomy the disclosures use. Under the paper
        // defaults this is the Prineville fleet, so the model's final-year
        // Scope 3 : market Scope 2 ratio lands in the disclosed regime.
        let years = super::ext_facility::simulate_from_context(ctx);
        let mut modeled = Table::new([
            "Model year".to_string(),
            "Scope 2 location (kt)".to_string(),
            "Scope 2 market (kt)".to_string(),
            "Scope 3 (kt)".to_string(),
        ]);
        for y in &years {
            let inv = y.inventory();
            modeled.row([
                y.year.to_string(),
                num(inv.scope2(Scope2Method::LocationBased).as_kt(), 1),
                num(inv.scope2(Scope2Method::MarketBased).as_kt(), 1),
                num(inv.scope3().as_kt(), 1),
            ]);
        }
        out.table("Modeled facility inventory (scenario fleet)", modeled);
        let last = years.last().expect("horizon >= 1").inventory();
        let modeled_ratio = last.scope3() / last.scope2(Scope2Method::MarketBased);
        out.scalar("modeled-scope3-vs-scope2-market", "x", modeled_ratio);
        for (name, data) in [
            ("facebook", &cc_data::corporate::FACEBOOK[..]),
            ("google", &cc_data::corporate::GOOGLE[..]),
        ] {
            out.series(Series::from_pairs(
                format!("{name}-scope3"),
                "year",
                "Mt CO2e",
                data.iter().map(|y| (f64::from(y.year), y.scope3_mt)),
            ));
        }

        let fb2019 = CorporateInventory::from_scope_year(
            cc_data::corporate::year_of(&cc_data::corporate::FACEBOOK, 2019).unwrap(),
        );
        let gg2018 = CorporateInventory::from_scope_year(
            cc_data::corporate::year_of(&cc_data::corporate::GOOGLE, 2018).unwrap(),
        );
        out.note(format!(
            "paper: Facebook 2019 Scope 3 is 23x market Scope 2; measured {:.1}x",
            fb2019.scope3() / fb2019.scope2(Scope2Method::MarketBased)
        ));
        out.note(format!(
            "paper: Google 2018 Scope 3 is 21x market Scope 2 (14 Mt vs 684 kt); measured {:.1}x",
            gg2018.scope3() / gg2018.scope2(Scope2Method::MarketBased)
        ));
        let gg2017 = cc_data::corporate::year_of(&cc_data::corporate::GOOGLE, 2017).unwrap();
        out.note(format!(
            "paper: Google Scope 3 jumped ~5x in 2018 after the hardware-disclosure change; \
             measured {:.1}x",
            gg2018.scope3().as_mt() / gg2017.scope3_mt
        ));
        out.note(
            "paper: market-based Scope 2 falls after ~2013 renewable procurement even as \
             location-based (energy) rises",
        );
        out.note(format!(
            "modeled facility: final-year Scope 3 is {modeled_ratio:.1}x market Scope 2 — the \
             same capex-dominated shape the disclosures show"
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disclosed_tables_plus_modeled_inventory() {
        let out = Fig11CorporateFootprints.run(&RunContext::paper());
        assert_eq!(out.tables.len(), 3);
        assert_eq!(out.tables[0].1.len(), 6);
        assert_eq!(out.tables[1].1.len(), 6);
        // The modeled panel spans the paper-default 7-year horizon.
        assert_eq!(out.tables[2].1.len(), 7);
    }

    #[test]
    fn modeled_ratio_is_capex_dominated_and_scenario_sensitive() {
        let paper = Fig11CorporateFootprints.run(&RunContext::paper());
        let ratio = paper.summary_scalar().unwrap();
        assert_eq!(ratio.name, "modeled-scope3-vs-scope2-market");
        assert!(ratio.value > 10.0, "modeled ratio {}", ratio.value);

        // Without the renewable ramp the modeled facility stays
        // opex-dominated, so the ratio collapses.
        let mut brown = cc_report::Scenario::paper_defaults();
        brown.set("fleet.renewable_ramp", "0").unwrap();
        let out = Fig11CorporateFootprints.run(&RunContext::new(brown));
        assert!(out.summary_scalar().unwrap().value < ratio.value / 5.0);
    }

    #[test]
    fn ratio_notes_match_paper_band() {
        let out = Fig11CorporateFootprints.run(&RunContext::paper());
        assert!(out.notes[0].contains("23.0x") || out.notes[0].contains("23.1x"));
        assert!(out.notes[1].contains("20.") || out.notes[1].contains("21."));
    }
}
