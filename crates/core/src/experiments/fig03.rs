//! Figure 3: the GHG Protocol scope taxonomy.

use cc_report::{Experiment, ExperimentId, ExperimentOutput, RunContext, Table};

/// Reproduces Fig 3's scope taxonomy as a structured table.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig03GhgScopes;

impl Experiment for Fig03GhgScopes {
    fn id(&self) -> ExperimentId {
        ExperimentId::Figure(3)
    }

    fn description(&self) -> &'static str {
        "GHG Protocol taxonomy: Scope 1 (direct), Scope 2 (purchased energy), Scope 3 (supply chain)"
    }

    fn run(&self, _ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        let mut t = Table::new(["Scope", "Direction", "Example activities"]);
        t.row([
            "Scope 1",
            "direct",
            "Offices and facilities; raw-material combustion",
        ]);
        t.row(["Scope 2", "indirect", "Purchased energy"]);
        for cat in cc_ghg::categories::Scope3Cat::ALL {
            t.row([
                "Scope 3".to_string(),
                if cat.is_upstream() {
                    "upstream".to_string()
                } else {
                    "downstream".to_string()
                },
                cat.name().to_string(),
            ]);
        }
        out.table("GHG Protocol emission scopes", t);
        out.scalar(
            "scope3-categories",
            "categories",
            cc_ghg::categories::Scope3Cat::ALL.len() as f64,
        );
        out.note("structural figure: taxonomy reproduced from cc-ghg's scope and category model");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_scope3_categories() {
        let out = Fig03GhgScopes.run(&RunContext::paper());
        let t = &out.tables[0].1;
        assert_eq!(t.len(), 2 + 15);
        let upstream = t.rows().iter().filter(|r| r[1] == "upstream").count();
        assert_eq!(upstream, 8);
    }
}
