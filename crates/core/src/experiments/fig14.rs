//! Figure 14: TSMC wafer-manufacturing carbon vs renewable-energy scaling.

use cc_fab::wafer::{WaferFootprint, FIG14_FACTORS};
use cc_report::{Experiment, ExperimentId, ExperimentOutput, RunContext, Series, Table};

/// Reproduces Fig 14 by sweeping the wafer model.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fig14WaferSweep;

impl Experiment for Fig14WaferSweep {
    fn id(&self) -> ExperimentId {
        ExperimentId::Figure(14)
    }

    fn description(&self) -> &'static str {
        "TSMC wafer footprint under 1x-64x greener electricity; ~2.7x overall reduction"
    }

    fn run(&self, _ctx: &RunContext) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        let wafer = WaferFootprint::tsmc_300mm();

        let mut header: Vec<String> = vec!["Renewable factor".into(), "Total (normalized)".into()];
        header.extend(wafer.components().map(|(l, _, _)| l.to_string()));
        let mut t = Table::new(header);
        let base_total = wafer.total();
        let mut normalized = Series::new(
            "wafer-total-normalized",
            "renewable factor",
            "fraction of baseline",
        );
        for &factor in &FIG14_FACTORS {
            let scaled = wafer.with_renewable_scaling(factor);
            normalized.push(factor, scaled.total() / base_total);
            let mut row = vec![
                format!("{factor:.0}x"),
                format!("{:.3}", scaled.total() / base_total),
            ];
            for (_, carbon, _) in scaled.components() {
                row.push(format!("{:.1}%", 100.0 * (carbon / base_total)));
            }
            t.row(row);
        }
        out.table(
            "Wafer footprint vs renewable scaling (shares of baseline)",
            t,
        );
        out.series(normalized);

        let reduction = base_total / wafer.with_renewable_scaling(64.0).total();
        out.scalar("reduction-at-64x", "x", reduction);
        out.note(format!(
            "paper: a 64x boost in renewable energy reduces overall wafer carbon ~2.7x; \
             measured {reduction:.2}x"
        ));
        out.note(format!(
            "baseline energy share {:.0}% (paper: over 63%)",
            100.0 * (wafer.energy_carbon() / wafer.total())
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_sweep_rows() {
        let out = Fig14WaferSweep.run(&RunContext::paper());
        assert_eq!(out.tables[0].1.len(), 7);
    }

    #[test]
    fn reduction_note_matches_paper() {
        let out = Fig14WaferSweep.run(&RunContext::paper());
        let measured: f64 = out.notes[0]
            .rsplit_once("measured ")
            .unwrap()
            .1
            .trim_end_matches('x')
            .parse()
            .unwrap();
        assert!((measured - 2.7).abs() < 0.1, "{measured}");
    }
}
