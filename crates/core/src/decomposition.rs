//! The paper's headline abstraction: any system's carbon footprint split
//! into opex- and capex-related emissions, with the comparisons the paper
//! makes (shares, ratios, what-if grids).

use cc_units::{CarbonMass, Ratio};

/// An opex/capex carbon decomposition.
///
/// This is deliberately the *lowest*-resolution view — two numbers — because
/// it is the paper's unit of argument: "In 2019 ... capex- and supply-chain-
/// related activities accounted for 23× more carbon emissions than
/// opex-related activities at Facebook."
///
/// ```
/// use cc_core::CarbonDecomposition;
/// use cc_units::CarbonMass;
///
/// let iphone11 = CarbonDecomposition::new(
///     CarbonMass::from_kg(10.5), // opex
///     CarbonMass::from_kg(64.5), // capex
/// );
/// assert!((iphone11.capex_share().as_percent() - 86.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CarbonDecomposition {
    opex: CarbonMass,
    capex: CarbonMass,
}

impl CarbonDecomposition {
    /// Creates a decomposition from opex and capex carbon.
    #[must_use]
    pub fn new(opex: CarbonMass, capex: CarbonMass) -> Self {
        Self { opex, capex }
    }

    /// From a life-cycle footprint.
    #[must_use]
    pub fn from_footprint(fp: &cc_lca::Footprint) -> Self {
        Self {
            opex: fp.opex(),
            capex: fp.capex(),
        }
    }

    /// From a corporate inventory (market-based Scope 2).
    #[must_use]
    pub fn from_inventory(inv: &cc_ghg::CorporateInventory, method: cc_ghg::Scope2Method) -> Self {
        Self {
            opex: inv.opex(method),
            capex: inv.capex(),
        }
    }

    /// Opex carbon.
    #[must_use]
    pub fn opex(&self) -> CarbonMass {
        self.opex
    }

    /// Capex carbon.
    #[must_use]
    pub fn capex(&self) -> CarbonMass {
        self.capex
    }

    /// Total carbon.
    #[must_use]
    pub fn total(&self) -> CarbonMass {
        self.opex + self.capex
    }

    /// Capex share of total.
    #[must_use]
    pub fn capex_share(&self) -> Ratio {
        Ratio::from_fraction(self.capex / self.total())
    }

    /// Opex share of total.
    #[must_use]
    pub fn opex_share(&self) -> Ratio {
        Ratio::from_fraction(self.opex / self.total())
    }

    /// Capex-to-opex ratio (the paper's "23×").
    #[must_use]
    pub fn capex_to_opex(&self) -> f64 {
        self.capex / self.opex
    }

    /// Whether capex dominates (> 50% of the total).
    #[must_use]
    pub fn is_capex_dominated(&self) -> bool {
        self.capex > self.opex
    }

    /// Sum of two decompositions (aggregate systems).
    #[must_use]
    pub fn combined(&self, other: &Self) -> Self {
        Self {
            opex: self.opex + other.opex,
            capex: self.capex + other.capex,
        }
    }
}

impl core::ops::Add for CarbonDecomposition {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        self.combined(&rhs)
    }
}

impl core::iter::Sum for CarbonDecomposition {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), |acc, d| acc + d)
    }
}

impl core::fmt::Display for CarbonDecomposition {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "opex {} ({}) / capex {} ({})",
            self.opex,
            self.opex_share(),
            self.capex,
            self.capex_share()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shares_and_ratio() {
        let d = CarbonDecomposition::new(CarbonMass::from_mt(0.25), CarbonMass::from_mt(5.75));
        assert!((d.capex_to_opex() - 23.0).abs() < 1e-9);
        assert!(d.is_capex_dominated());
        assert!((d.capex_share().as_fraction() + d.opex_share().as_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn from_footprint_and_inventory_agree_with_sources() {
        let lca = cc_data::devices::find("iPhone 3GS").unwrap();
        let d = CarbonDecomposition::from_footprint(&cc_lca::Footprint::from_product_lca(lca));
        assert!((d.capex_share().as_percent() - 49.0).abs() < 0.5);
        assert!(!d.is_capex_dominated());

        let fb = cc_ghg::CorporateInventory::from_scope_year(
            cc_data::corporate::year_of(&cc_data::corporate::FACEBOOK, 2019).unwrap(),
        );
        let d = CarbonDecomposition::from_inventory(&fb, cc_ghg::Scope2Method::MarketBased);
        assert!((d.capex_to_opex() - 19.46).abs() < 0.1);
    }

    #[test]
    fn aggregation() {
        let a = CarbonDecomposition::new(CarbonMass::from_kg(1.0), CarbonMass::from_kg(2.0));
        let total: CarbonDecomposition = [a, a, a].into_iter().sum();
        assert_eq!(total.total(), CarbonMass::from_kg(9.0));
        assert!(a.to_string().contains("capex"));
    }
}
