//! # cc-core
//!
//! The paper's contribution as a library: the opex/capex carbon-footprint
//! decomposition API ([`decomposition`]) and the full set of experiments
//! regenerating every figure and table of the paper ([`experiments`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decomposition;
pub mod experiments;

pub use decomposition::CarbonDecomposition;
