//! PFC abatement modeling.
//!
//! Beyond greening electricity, fabs cut the process side of the wafer
//! footprint by abating perfluorocarbons ("nearly 30% of emissions from
//! manufacturing 12-inch wafers are due to PFCs, chemicals, and gases").
//! Point-of-use combustion/plasma abatement destroys a large fraction of PFC
//! emissions; this module applies such a destruction efficiency to the PFC
//! component of a [`WaferFootprint`].

use crate::wafer::WaferFootprint;
use cc_units::CarbonMass;

/// Applies PFC abatement with the given destruction efficiency (fraction of
/// PFC-and-diffusive carbon removed) to a wafer footprint.
///
/// Components whose label contains `"PFC"` are scaled; everything else is
/// untouched.
///
/// # Panics
///
/// Panics if `destruction_efficiency` is outside `[0, 1]`.
#[must_use]
pub fn abate_pfc(wafer: &WaferFootprint, destruction_efficiency: f64) -> WaferFootprint {
    assert!(
        (0.0..=1.0).contains(&destruction_efficiency),
        "destruction efficiency must be within [0, 1]"
    );
    let mut out = WaferFootprint::new();
    for (label, carbon, is_energy) in wafer.components() {
        let scaled = if label.contains("PFC") {
            carbon * (1.0 - destruction_efficiency)
        } else {
            carbon
        };
        out.add_component(label, scaled, is_energy);
    }
    out
}

/// Combined decarbonization: renewable electricity scaling plus PFC
/// abatement. Returns the resulting wafer footprint.
#[must_use]
pub fn decarbonize(
    wafer: &WaferFootprint,
    renewable_factor: f64,
    pfc_destruction: f64,
) -> WaferFootprint {
    abate_pfc(
        &wafer.with_renewable_scaling(renewable_factor),
        pfc_destruction,
    )
}

/// Carbon removed by a decarbonization recipe relative to the baseline.
#[must_use]
pub fn savings(wafer: &WaferFootprint, renewable_factor: f64, pfc_destruction: f64) -> CarbonMass {
    wafer.total() - decarbonize(wafer, renewable_factor, pfc_destruction).total()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abatement_only_touches_pfc() {
        let wafer = WaferFootprint::tsmc_300mm();
        let abated = abate_pfc(&wafer, 0.9);
        assert_eq!(wafer.energy_carbon(), abated.energy_carbon());
        let removed = wafer.total() - abated.total();
        // PFC & diffusive is 17% of a 450 kg wafer; 90% destroyed.
        assert!((removed.as_kg() - 450.0 * 0.17 * 0.9).abs() < 1e-6);
    }

    #[test]
    fn zero_efficiency_is_identity() {
        let wafer = WaferFootprint::tsmc_300mm();
        assert_eq!(abate_pfc(&wafer, 0.0).total(), wafer.total());
    }

    #[test]
    fn combined_beats_either_alone() {
        let wafer = WaferFootprint::tsmc_300mm();
        let renewables_only = wafer.with_renewable_scaling(64.0).total();
        let abatement_only = abate_pfc(&wafer, 0.9).total();
        let both = decarbonize(&wafer, 64.0, 0.9).total();
        assert!(both < renewables_only);
        assert!(both < abatement_only);
        // Combined recipe exceeds the paper's 2.7x electricity-only bound.
        assert!(wafer.total() / both > 3.5);
    }

    #[test]
    fn savings_accounting() {
        let wafer = WaferFootprint::tsmc_300mm();
        let s = savings(&wafer, 64.0, 0.9);
        assert!(
            (s + decarbonize(&wafer, 64.0, 0.9).total() - wafer.total()).abs()
                < CarbonMass::from_grams(1e-6)
        );
    }

    #[test]
    #[should_panic(expected = "destruction efficiency")]
    fn rejects_bad_efficiency() {
        let _ = abate_pfc(&WaferFootprint::tsmc_300mm(), 1.5);
    }
}
