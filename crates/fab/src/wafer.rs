//! Per-wafer carbon footprint and the Fig 14 renewable-energy sweep.

use crate::node::ProcessNode;
use cc_units::CarbonMass;

/// The process node the digitized TSMC baseline corresponds to. TSMC's
/// sustainability disclosures the paper draws on describe the ~2019 fleet,
/// whose leading logic output was 10 nm-class; [`WaferFootprint::for_node`]
/// scales the electricity component relative to this node.
pub const BASELINE_NODE: ProcessNode = ProcessNode::N10;

/// A per-wafer carbon footprint decomposed into the Fig 14 components.
///
/// The electricity component scales with the carbon intensity of the energy
/// powering the fab; the process components (PFC and diffusive emissions,
/// chemicals and gases, raw wafers, bulk gases) do not.
///
/// ```
/// use cc_fab::WaferFootprint;
///
/// let wafer = WaferFootprint::tsmc_300mm();
/// let greened = wafer.with_renewable_scaling(64.0);
/// let reduction = wafer.total() / greened.total();
/// assert!((reduction - 2.7).abs() < 0.1); // the paper's headline number
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WaferFootprint {
    components: Vec<(String, CarbonMass, bool)>,
}

impl WaferFootprint {
    /// Creates an empty footprint.
    #[must_use]
    pub fn new() -> Self {
        Self {
            components: Vec::new(),
        }
    }

    /// The TSMC 300 mm wafer baseline digitized in
    /// [`cc_data::fab::TSMC_WAFER`], at the absolute anchor
    /// [`cc_data::fab::TSMC_WAFER_BASELINE_KG`].
    #[must_use]
    pub fn tsmc_300mm() -> Self {
        let total = cc_data::fab::TSMC_WAFER_BASELINE_KG;
        let mut fp = Self::new();
        for c in cc_data::fab::TSMC_WAFER {
            fp.add_component(c.label, CarbonMass::from_kg(total * c.share), c.is_energy);
        }
        fp
    }

    /// A node-specific wafer baseline: the TSMC composition with the
    /// electricity components scaled by the node's per-wafer energy relative
    /// to [`BASELINE_NODE`] (process emissions — PFCs, chemicals, raw wafers
    /// — are recipe-driven and kept constant). This is what makes a
    /// `fab.node_nm` sweep move per-die carbon: an EUV-class 3 nm wafer
    /// carries ~2.4× the electricity carbon of the 10 nm baseline.
    #[must_use]
    pub fn for_node(node: ProcessNode) -> Self {
        let scale = node.energy_per_wafer() / BASELINE_NODE.energy_per_wafer();
        let mut fp = Self::new();
        for (label, carbon, is_energy) in Self::tsmc_300mm().components() {
            fp.add_component(
                label,
                if is_energy { carbon * scale } else { carbon },
                is_energy,
            );
        }
        fp
    }

    /// Adds a component; `is_energy` marks electricity-driven emissions that
    /// scale with grid intensity.
    pub fn add_component(
        &mut self,
        label: impl Into<String>,
        carbon: CarbonMass,
        is_energy: bool,
    ) -> &mut Self {
        self.components.push((label.into(), carbon, is_energy));
        self
    }

    /// Iterates over `(label, carbon, is_energy)` components.
    pub fn components(&self) -> impl Iterator<Item = (&str, CarbonMass, bool)> + '_ {
        self.components.iter().map(|(l, c, e)| (l.as_str(), *c, *e))
    }

    /// Total per-wafer carbon.
    #[must_use]
    pub fn total(&self) -> CarbonMass {
        self.components.iter().map(|(_, c, _)| *c).sum()
    }

    /// Electricity-driven carbon.
    #[must_use]
    pub fn energy_carbon(&self) -> CarbonMass {
        self.components
            .iter()
            .filter(|(_, _, e)| *e)
            .map(|(_, c, _)| *c)
            .sum()
    }

    /// Process (non-electricity) carbon.
    #[must_use]
    pub fn process_carbon(&self) -> CarbonMass {
        self.total() - self.energy_carbon()
    }

    /// A copy with the electricity components' carbon divided by `factor`
    /// (the Fig 14 x-axis: 1×, 2×, …, 64× greener electricity).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not strictly positive.
    #[must_use]
    pub fn with_renewable_scaling(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "renewable scaling factor must be positive");
        Self {
            components: self
                .components
                .iter()
                .map(|(l, c, e)| (l.clone(), if *e { *c / factor } else { *c }, *e))
                .collect(),
        }
    }

    /// The Fig 14 sweep: total footprint (normalized to the baseline) at each
    /// scaling factor.
    #[must_use]
    pub fn renewable_sweep(&self, factors: &[f64]) -> Vec<(f64, f64)> {
        let base = self.total();
        factors
            .iter()
            .map(|&f| (f, self.with_renewable_scaling(f).total() / base))
            .collect()
    }
}

impl Default for WaferFootprint {
    fn default() -> Self {
        Self::new()
    }
}

impl core::fmt::Display for WaferFootprint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "wafer {} ({} energy)",
            self.total(),
            self.energy_carbon()
        )
    }
}

/// The scaling factors Fig 14 plots.
pub const FIG14_FACTORS: [f64; 7] = [1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_composition() {
        let wafer = WaferFootprint::tsmc_300mm();
        assert!((wafer.total().as_kg() - 450.0).abs() < 1e-9);
        let energy_share = wafer.energy_carbon() / wafer.total();
        assert!(energy_share > 0.63 && energy_share < 0.66);
        assert_eq!(wafer.components().count(), 6);
    }

    #[test]
    fn process_carbon_is_invariant_under_scaling() {
        let wafer = WaferFootprint::tsmc_300mm();
        let greened = wafer.with_renewable_scaling(32.0);
        assert_eq!(wafer.process_carbon(), greened.process_carbon());
        assert!((wafer.energy_carbon() / greened.energy_carbon() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn sweep_is_monotone_decreasing_with_floor() {
        let wafer = WaferFootprint::tsmc_300mm();
        let sweep = wafer.renewable_sweep(&FIG14_FACTORS);
        assert_eq!(sweep.len(), 7);
        assert_eq!(sweep[0].1, 1.0);
        for pair in sweep.windows(2) {
            assert!(pair[1].1 < pair[0].1);
        }
        // Floor: process emissions bound the reduction.
        let floor = wafer.process_carbon() / wafer.total();
        assert!(sweep.last().unwrap().1 > floor);
    }

    #[test]
    fn headline_2_7x_at_64x() {
        let wafer = WaferFootprint::tsmc_300mm();
        let reduction = 1.0 / wafer.renewable_sweep(&[64.0])[0].1;
        assert!((reduction - 2.7).abs() < 0.1, "got {reduction}");
    }

    #[test]
    fn node_baseline_scales_energy_only() {
        let base = WaferFootprint::for_node(BASELINE_NODE);
        assert_eq!(base, WaferFootprint::tsmc_300mm());
        let n3 = WaferFootprint::for_node(ProcessNode::N3);
        let n28 = WaferFootprint::for_node(ProcessNode::N28);
        // Process emissions are recipe-driven, not node-driven
        // (process_carbon is a subtraction, so compare within float noise).
        assert!((n3.process_carbon().as_kg() - base.process_carbon().as_kg()).abs() < 1e-9);
        assert!((n28.process_carbon().as_kg() - base.process_carbon().as_kg()).abs() < 1e-9);
        // Electricity carbon follows the per-wafer energy ladder.
        let expected = ProcessNode::N3.energy_per_wafer() / BASELINE_NODE.energy_per_wafer();
        assert!((n3.energy_carbon() / base.energy_carbon() - expected).abs() < 1e-12);
        assert!(n28.total() < base.total());
        assert!(n3.total() > base.total());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_nonpositive_factor() {
        let _ = WaferFootprint::tsmc_300mm().with_renewable_scaling(0.0);
    }

    #[test]
    fn custom_footprint() {
        let mut wafer = WaferFootprint::new();
        wafer
            .add_component("Energy", CarbonMass::from_kg(70.0), true)
            .add_component("PFC", CarbonMass::from_kg(30.0), false);
        assert_eq!(wafer.total(), CarbonMass::from_kg(100.0));
        let halved = wafer.with_renewable_scaling(2.0);
        assert_eq!(halved.total(), CarbonMass::from_kg(65.0));
        assert!(wafer.to_string().contains("wafer"));
    }
}
