//! Process-node energy ladder.
//!
//! The paper notes that fab energy demand rises with node advancement
//! ("next-generation manufacturing in a 3nm fab predicted to consume up to
//! 7.7 billion kilowatt-hours annually"). This module models per-wafer
//! electricity by node so the die model can scale embodied carbon with
//! technology generation.

use cc_units::Energy;

/// A logic process node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ProcessNode {
    /// 28 nm planar.
    N28,
    /// 14 nm FinFET.
    N14,
    /// 10 nm FinFET.
    N10,
    /// 7 nm FinFET (the Snapdragon-855 era; Pixel-3-class SoCs are 10 nm).
    N7,
    /// 5 nm FinFET.
    N5,
    /// 3 nm (the fab the paper's 7.7 TWh/yr projection refers to).
    N3,
}

impl ProcessNode {
    /// All nodes, oldest first.
    pub const ALL: [Self; 6] = [
        Self::N28,
        Self::N14,
        Self::N10,
        Self::N7,
        Self::N5,
        Self::N3,
    ];

    /// Nominal feature size in nanometres.
    #[must_use]
    pub fn nanometres(self) -> f64 {
        match self {
            Self::N28 => 28.0,
            Self::N14 => 14.0,
            Self::N10 => 10.0,
            Self::N7 => 7.0,
            Self::N5 => 5.0,
            Self::N3 => 3.0,
        }
    }

    /// Electricity per 300 mm wafer. Industry estimates run from below
    /// 1 MWh/wafer at mature planar nodes to several MWh at EUV nodes; the
    /// ladder below grows ~1.35× per step, consistent with the paper's
    /// "energy demand is expected to rise" trajectory.
    #[must_use]
    pub fn energy_per_wafer(self) -> Energy {
        let kwh = match self {
            Self::N28 => 800.0,
            Self::N14 => 1_100.0,
            Self::N10 => 1_450.0,
            Self::N7 => 1_950.0,
            Self::N5 => 2_600.0,
            Self::N3 => 3_500.0,
        };
        Energy::from_kwh(kwh)
    }

    /// Logic density improvement relative to 28 nm (approximate industry
    /// scaling; used to translate a transistor budget into die area).
    #[must_use]
    pub fn density_vs_28nm(self) -> f64 {
        match self {
            Self::N28 => 1.0,
            Self::N14 => 2.2,
            Self::N10 => 3.4,
            Self::N7 => 6.0,
            Self::N5 => 10.0,
            Self::N3 => 16.0,
        }
    }

    /// Wafer starts per year a 7.7 TWh/yr fab could sustain at this node.
    #[must_use]
    pub fn wafers_per_year_at(self, annual_energy: Energy) -> f64 {
        annual_energy / self.energy_per_wafer()
    }
}

impl core::fmt::Display for ProcessNode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} nm", self.nanometres())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_rises_monotonically_with_node_advance() {
        for pair in ProcessNode::ALL.windows(2) {
            assert!(pair[1].energy_per_wafer() > pair[0].energy_per_wafer());
            assert!(pair[1].density_vs_28nm() > pair[0].density_vs_28nm());
            assert!(pair[1].nanometres() < pair[0].nanometres());
        }
    }

    #[test]
    fn fab_3nm_capacity_is_about_2m_wafers() {
        let wafers = ProcessNode::N3.wafers_per_year_at(cc_data::fab::fab_3nm_annual_energy());
        assert!(wafers > 1.5e6 && wafers < 3.0e6, "wafers {wafers}");
    }

    #[test]
    fn display() {
        assert_eq!(ProcessNode::N3.to_string(), "3 nm");
    }
}
