//! # cc-fab
//!
//! Semiconductor-fab carbon modeling: the per-wafer footprint composition the
//! paper analyzes for TSMC (Fig 14), renewable-electricity scaling, a
//! process-node energy ladder, PFC abatement, and a die-level embodied-carbon
//! model (area/yield) — the forward extension that became the ACT line of
//! work.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod abatement;
pub mod die;
pub mod fabsim;
pub mod node;
pub mod wafer;

pub use die::DieModel;
pub use fabsim::FabModel;
pub use node::ProcessNode;
pub use wafer::WaferFootprint;
