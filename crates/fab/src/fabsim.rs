//! Annual fab model: a fab's yearly output, energy and carbon.
//!
//! Anchors from the paper: a 3 nm fab is "predicted to consume up to 7.7
//! billion kilowatt-hours annually"; TSMC's renewable target covers 20% of
//! fab electricity; Intel already sources all but 9.7% of fab energy from
//! renewables.

use crate::node::ProcessNode;
use crate::wafer::WaferFootprint;
use cc_units::{CarbonIntensity, CarbonMass, Energy};

/// A fab operating one process node for a year.
#[derive(Debug, Clone, PartialEq)]
pub struct FabModel {
    node: ProcessNode,
    annual_energy: Energy,
    grid: CarbonIntensity,
    renewable_share: f64,
    renewable_intensity: CarbonIntensity,
    wafer: WaferFootprint,
}

impl FabModel {
    /// Creates a fab at `node` consuming `annual_energy`, on `grid`, with a
    /// fraction of electricity from renewables (wind-class intensity).
    ///
    /// # Panics
    ///
    /// Panics when the renewable share is outside `[0, 1]`.
    #[must_use]
    pub fn new(
        node: ProcessNode,
        annual_energy: Energy,
        grid: CarbonIntensity,
        renewable_share: f64,
    ) -> Self {
        assert!(
            (0.0..=1.0).contains(&renewable_share),
            "renewable share must be within [0, 1]"
        );
        Self {
            node,
            annual_energy,
            grid,
            renewable_share,
            renewable_intensity: CarbonIntensity::from_g_per_kwh(11.0),
            wafer: WaferFootprint::tsmc_300mm(),
        }
    }

    /// The TSMC-2025-target 3 nm fab: 7.7 TWh/yr on the Taiwanese grid with
    /// 20% renewable coverage.
    #[must_use]
    pub fn tsmc_3nm_2025() -> Self {
        Self::new(
            ProcessNode::N3,
            cc_data::fab::fab_3nm_annual_energy(),
            cc_data::grids::Region::Taiwan.carbon_intensity(),
            cc_data::fab::TSMC_RENEWABLE_TARGET,
        )
    }

    /// Wafer starts per year this energy budget sustains at the node.
    #[must_use]
    pub fn wafers_per_year(&self) -> f64 {
        self.node.wafers_per_year_at(self.annual_energy)
    }

    /// Effective electricity intensity after the renewable blend.
    #[must_use]
    pub fn effective_intensity(&self) -> CarbonIntensity {
        self.renewable_intensity
            .blend(self.grid, self.renewable_share)
    }

    /// Scope 2: electricity carbon for the year.
    #[must_use]
    pub fn scope2(&self) -> CarbonMass {
        self.annual_energy * self.effective_intensity()
    }

    /// Scope 1: process (PFC, chemicals, gases) carbon for the year, scaled
    /// from the per-wafer process footprint.
    #[must_use]
    pub fn scope1(&self) -> CarbonMass {
        self.wafer.process_carbon() * self.wafers_per_year()
    }

    /// Total annual fab carbon.
    #[must_use]
    pub fn annual_carbon(&self) -> CarbonMass {
        self.scope1() + self.scope2()
    }

    /// Carbon per wafer start at this fab's energy mix.
    #[must_use]
    pub fn carbon_per_wafer(&self) -> CarbonMass {
        self.annual_carbon() / self.wafers_per_year()
    }

    /// A copy with a different renewable share (for target sweeps).
    ///
    /// # Panics
    ///
    /// Panics when the share is outside `[0, 1]`.
    #[must_use]
    pub fn with_renewable_share(mut self, share: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&share),
            "renewable share must be within [0, 1]"
        );
        self.renewable_share = share;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsmc_3nm_magnitudes() {
        let fab = FabModel::tsmc_3nm_2025();
        let wafers = fab.wafers_per_year();
        assert!(wafers > 1.5e6 && wafers < 3.0e6);
        // Annual carbon: millions of tonnes scale for a giga-fab on a coal
        // heavy grid.
        let mt = fab.annual_carbon().as_mt();
        assert!(mt > 1.0 && mt < 10.0, "annual {mt} Mt");
    }

    #[test]
    fn renewables_cut_scope2_not_scope1() {
        let dirty = FabModel::tsmc_3nm_2025().with_renewable_share(0.0);
        let clean = FabModel::tsmc_3nm_2025().with_renewable_share(1.0);
        assert_eq!(dirty.scope1(), clean.scope1());
        assert!(dirty.scope2() / clean.scope2() > 30.0);
        assert!(clean.annual_carbon() < dirty.annual_carbon());
    }

    #[test]
    fn twenty_percent_target_is_a_modest_cut() {
        let base = FabModel::tsmc_3nm_2025().with_renewable_share(0.0);
        let target = FabModel::tsmc_3nm_2025(); // 20%
        let cut = 1.0 - target.scope2() / base.scope2();
        // 20% coverage with wind vs the Taiwanese grid: ~19.6% scope-2 cut.
        assert!((cut - 0.196).abs() < 0.01, "cut {cut}");
    }

    #[test]
    fn per_wafer_carbon_is_consistent() {
        let fab = FabModel::tsmc_3nm_2025();
        let per_wafer = fab.carbon_per_wafer();
        let recomposed = per_wafer * fab.wafers_per_year();
        assert!((recomposed / fab.annual_carbon() - 1.0).abs() < 1e-9);
        // Hundreds of kg to ~1.5 t per advanced wafer.
        assert!(per_wafer.as_kg() > 100.0 && per_wafer.as_kg() < 3_000.0);
    }

    #[test]
    #[should_panic(expected = "renewable share")]
    fn rejects_bad_share() {
        let _ = FabModel::tsmc_3nm_2025().with_renewable_share(1.5);
    }
}
