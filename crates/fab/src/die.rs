//! Die-level embodied carbon: wafer footprint → per-chip footprint via die
//! area and yield.
//!
//! This is the forward extension the paper calls for ("architectural
//! optimizations can directly reduce CO₂ output by judiciously provisioning
//! resources"), and the modeling step the ACT follow-on work standardized.

use crate::node::ProcessNode;
use crate::wafer::WaferFootprint;
use cc_units::{CarbonIntensity, CarbonMass};

/// Usable area of a 300 mm wafer in mm² (πr² with edge exclusion).
const WAFER_AREA_MM2: f64 = 70_000.0;

/// Per-die embodied-carbon model.
///
/// ```
/// use cc_fab::{DieModel, ProcessNode};
///
/// // A ~100 mm2 mobile SoC on a 10 nm-class process:
/// let model = DieModel::new(ProcessNode::N10, 100.0).unwrap();
/// let per_die = model.embodied_carbon();
/// assert!(per_die.as_kg() > 0.3 && per_die.as_kg() < 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DieModel {
    node: ProcessNode,
    die_area_mm2: f64,
    defect_density_per_cm2: f64,
    wafer: WaferFootprint,
    fab_grid_scaling: f64,
}

impl DieModel {
    /// Creates a model for a die of `die_area_mm2` on `node`, using the
    /// node-specific wafer baseline ([`WaferFootprint::for_node`]: the TSMC
    /// composition with electricity scaled by the node's per-wafer energy)
    /// and a defect density of 0.1 /cm².
    ///
    /// # Errors
    ///
    /// Returns [`DieModelError`] when the area is non-positive or exceeds the
    /// usable wafer area.
    pub fn new(node: ProcessNode, die_area_mm2: f64) -> Result<Self, DieModelError> {
        if !(die_area_mm2 > 0.0 && die_area_mm2 <= WAFER_AREA_MM2) {
            return Err(DieModelError::InvalidArea { die_area_mm2 });
        }
        Ok(Self {
            node,
            die_area_mm2,
            defect_density_per_cm2: 0.1,
            wafer: WaferFootprint::for_node(node),
            fab_grid_scaling: 1.0,
        })
    }

    /// Overrides the defect density (defects per cm²).
    ///
    /// # Errors
    ///
    /// Returns [`DieModelError`] for negative densities.
    pub fn with_defect_density(mut self, d0: f64) -> Result<Self, DieModelError> {
        if d0 < 0.0 {
            return Err(DieModelError::InvalidDefectDensity { d0 });
        }
        self.defect_density_per_cm2 = d0;
        Ok(self)
    }

    /// Powers the fab with greener electricity: scales the wafer's
    /// electricity carbon down by `baseline / target` intensity.
    #[must_use]
    pub fn with_fab_grid(mut self, baseline: CarbonIntensity, target: CarbonIntensity) -> Self {
        self.fab_grid_scaling = if target.as_g_per_kwh() > 0.0 {
            baseline.as_g_per_kwh() / target.as_g_per_kwh()
        } else {
            f64::INFINITY
        };
        self
    }

    /// Poisson yield model: `Y = exp(−A·D0)`.
    #[must_use]
    pub fn yield_fraction(&self) -> f64 {
        let area_cm2 = self.die_area_mm2 / 100.0;
        (-area_cm2 * self.defect_density_per_cm2).exp()
    }

    /// Candidate dies per wafer (area ratio; scribe lines folded into the
    /// usable-area constant).
    #[must_use]
    pub fn dies_per_wafer(&self) -> f64 {
        WAFER_AREA_MM2 / self.die_area_mm2
    }

    /// Good dies per wafer after yield.
    #[must_use]
    pub fn good_dies_per_wafer(&self) -> f64 {
        self.dies_per_wafer() * self.yield_fraction()
    }

    /// The (possibly grid-scaled) wafer footprint used by this model.
    #[must_use]
    pub fn wafer_footprint(&self) -> WaferFootprint {
        if self.fab_grid_scaling.is_infinite() {
            // Zero-carbon electricity: keep process emissions only.
            let mut fp = WaferFootprint::new();
            for (label, carbon, is_energy) in self.wafer.components() {
                fp.add_component(
                    label,
                    if is_energy { CarbonMass::ZERO } else { carbon },
                    is_energy,
                );
            }
            fp
        } else {
            self.wafer.with_renewable_scaling(self.fab_grid_scaling)
        }
    }

    /// Embodied carbon per good die.
    #[must_use]
    pub fn embodied_carbon(&self) -> CarbonMass {
        self.wafer_footprint().total() / self.good_dies_per_wafer()
    }

    /// Die area in mm².
    #[must_use]
    pub fn die_area_mm2(&self) -> f64 {
        self.die_area_mm2
    }

    /// The process node.
    #[must_use]
    pub fn node(&self) -> ProcessNode {
        self.node
    }
}

/// Errors from [`DieModel`] construction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DieModelError {
    /// Die area was non-positive or larger than a wafer.
    InvalidArea {
        /// The offending area.
        die_area_mm2: f64,
    },
    /// Defect density was negative.
    InvalidDefectDensity {
        /// The offending density.
        d0: f64,
    },
}

impl core::fmt::Display for DieModelError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::InvalidArea { die_area_mm2 } => {
                write!(f, "invalid die area {die_area_mm2} mm^2")
            }
            Self::InvalidDefectDensity { d0 } => {
                write!(f, "invalid defect density {d0} /cm^2")
            }
        }
    }
}

impl std::error::Error for DieModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigger_dies_cost_more_carbon() {
        // Table IV's lesson at the die level: scale-up silicon carries a
        // superlinear embodied cost (yield decays with area).
        let small = DieModel::new(ProcessNode::N7, 80.0).unwrap();
        let large = DieModel::new(ProcessNode::N7, 320.0).unwrap();
        let ratio = large.embodied_carbon() / small.embodied_carbon();
        assert!(ratio > 4.0, "4x area should cost >4x carbon, got {ratio}");
    }

    #[test]
    fn yield_behaviour() {
        let m = DieModel::new(ProcessNode::N7, 100.0).unwrap();
        let y = m.yield_fraction();
        assert!((y - (-0.1f64).exp()).abs() < 1e-12);
        let perfect = m.clone().with_defect_density(0.0).unwrap();
        assert_eq!(perfect.yield_fraction(), 1.0);
        assert!(perfect.embodied_carbon() < m.embodied_carbon());
    }

    #[test]
    fn greener_fab_floors_at_process_emissions() {
        let base = DieModel::new(ProcessNode::N5, 100.0).unwrap();
        let taiwan = cc_data::grids::Region::Taiwan.carbon_intensity();
        let wind = cc_data::energy_sources::EnergySource::Wind.carbon_intensity();
        let green = base.clone().with_fab_grid(taiwan, wind);
        let reduction = base.embodied_carbon() / green.embodied_carbon();
        // 583/11 = 53x greener electricity. At 5 nm the electricity share is
        // larger than the 10 nm baseline's 64% (2600 vs 1450 kWh/wafer), so
        // the overall reduction lands near 4x rather than Fig 14's 2.7x.
        assert!(reduction > 3.5 && reduction < 4.4, "got {reduction}");
    }

    #[test]
    fn node_choice_moves_per_die_carbon() {
        // The same die area at an advanced node embodies more carbon per
        // yielded die: more electricity per wafer, identical yield math.
        let per_die = |node| {
            DieModel::new(node, 100.0)
                .unwrap()
                .embodied_carbon()
                .as_kg()
        };
        assert!(per_die(ProcessNode::N3) > per_die(ProcessNode::N10));
        assert!(per_die(ProcessNode::N10) > per_die(ProcessNode::N28));
        // Electricity roughly doubles from 10 nm to 3 nm, the total less so
        // (process emissions are constant).
        let ratio = per_die(ProcessNode::N3) / per_die(ProcessNode::N10);
        assert!(ratio > 1.5 && ratio < 2.1, "got {ratio}");
    }

    #[test]
    fn invalid_inputs_error() {
        assert!(DieModel::new(ProcessNode::N7, 0.0).is_err());
        assert!(DieModel::new(ProcessNode::N7, 1e9).is_err());
        let err = DieModel::new(ProcessNode::N7, -5.0).unwrap_err();
        assert!(err.to_string().contains("die area"));
        assert!(DieModel::new(ProcessNode::N7, 100.0)
            .unwrap()
            .with_defect_density(-1.0)
            .is_err());
    }

    #[test]
    fn zero_carbon_electricity_keeps_process_floor() {
        let m = DieModel::new(ProcessNode::N5, 100.0)
            .unwrap()
            .with_fab_grid(
                CarbonIntensity::from_g_per_kwh(583.0),
                CarbonIntensity::from_g_per_kwh(0.0),
            );
        let fp = m.wafer_footprint();
        assert_eq!(fp.energy_carbon(), CarbonMass::ZERO);
        assert!(fp.process_carbon() > CarbonMass::ZERO);
    }

    #[test]
    fn accessors() {
        let m = DieModel::new(ProcessNode::N10, 94.0).unwrap();
        assert_eq!(m.node(), ProcessNode::N10);
        assert_eq!(m.die_area_mm2(), 94.0);
        assert!(m.dies_per_wafer() > 700.0);
        assert!(m.good_dies_per_wafer() < m.dies_per_wafer());
    }
}
