//! The sharded, content-addressed fingerprint→artifact cache.
//!
//! Every experiment's output is a pure function of its declared scenario
//! fields (`Entry::deps()`, verified by the read-tracking CI test), so a
//! `(experiment key, dependency_fingerprint)` pair addresses the output
//! *content* — not the request that produced it. The cache exploits that
//! purity in three ways:
//!
//! * **sharding** — keys hash onto [`SHARDS`] independent mutex-protected
//!   maps, so concurrent requests only contend when they land on the same
//!   shard, not on one global lock;
//! * **inflight dedup** — two requests racing on the same fingerprint
//!   compute it exactly once: the second finds a pending slot and
//!   blocks on its condvar until the first finishes (or abandons);
//! * **bounded memory** — each shard evicts its oldest resident entries
//!   beyond a per-shard capacity, counting evictions so the stats surface
//!   makes cache pressure visible.
//!
//! A computation that panics never poisons the cache: a completion guard
//! removes the pending slot on unwind and wakes every waiter, which then
//! retries from scratch.

use cc_report::ExperimentOutput;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Number of independent cache shards. A power of two so the shard index is
/// a cheap mask of the key hash.
pub const SHARDS: usize = 16;

/// Cache key: the experiment's stable registry key plus the dependency
/// fingerprint of the scenario restricted to the experiment's declared
/// fields. The fingerprint alone is not enough — two experiments declaring
/// the same dependency set fingerprint identically but produce different
/// output.
pub type CacheKey = (&'static str, u64);

/// How a [`ShardedCache::get_or_compute`] call was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Served from a resident entry.
    Hit,
    /// Computed by this call and inserted.
    Miss,
    /// Another in-flight computation of the same key was awaited.
    InflightDedup,
}

/// State of one cached computation: finished, or in flight with waiters
/// parked on the condvar.
enum Slot {
    Ready(Arc<ExperimentOutput>),
    Pending(Arc<Inflight>),
}

/// Rendezvous between the computing thread and any deduplicated waiters.
#[derive(Default)]
struct Inflight {
    state: Mutex<PendingState>,
    done: Condvar,
}

#[derive(Default)]
enum PendingState {
    #[default]
    Waiting,
    Done(Arc<ExperimentOutput>),
    /// The computing thread unwound; waiters must retry.
    Abandoned,
}

#[derive(Default)]
struct Shard {
    map: HashMap<CacheKey, Slot>,
    /// Resident keys in insertion order — the eviction queue. Only `Ready`
    /// entries are listed; pending slots are never evicted.
    resident: VecDeque<CacheKey>,
}

/// The sharded cache plus its monotonic counters.
pub struct ShardedCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    inflight_dedups: AtomicU64,
    evictions: AtomicU64,
}

/// Removes the pending slot and wakes waiters if the computing thread
/// unwinds before completing (panic safety: waiters retry instead of
/// blocking forever on a slot nobody will fill).
struct PendingGuard<'a> {
    cache: &'a ShardedCache,
    key: CacheKey,
    inflight: Arc<Inflight>,
    completed: bool,
}

impl Drop for PendingGuard<'_> {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        let mut shard = self.cache.shard(self.key);
        if matches!(shard.map.get(&self.key), Some(Slot::Pending(_))) {
            shard.map.remove(&self.key);
        }
        drop(shard);
        *self.inflight.state.lock().expect("no panics under lock") = PendingState::Abandoned;
        self.inflight.done.notify_all();
    }
}

impl ShardedCache {
    /// A cache holding at most `capacity` entries in total, spread evenly
    /// over [`SHARDS`] shards (minimum one entry per shard).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::default())).collect(),
            capacity_per_shard: capacity.div_ceil(SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            inflight_dedups: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// Locks the shard owning `key`. The experiment key pointer is stable
    /// (`&'static`), so hashing the name bytes plus the fingerprint gives a
    /// stable shard index.
    fn shard(&self, key: CacheKey) -> std::sync::MutexGuard<'_, Shard> {
        let mut hash = key.1 ^ 0x9e37_79b9_7f4a_7c15;
        for &b in key.0.as_bytes() {
            hash = (hash ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3);
        }
        let index = (hash as usize) & (SHARDS - 1);
        self.shards[index].lock().expect("no panics under lock")
    }

    /// Returns the output for `key`, computing it with `compute` on a miss.
    /// Concurrent callers with the same key run `compute` exactly once; the
    /// rest block until the result lands and report
    /// [`Outcome::InflightDedup`].
    pub fn get_or_compute(
        &self,
        key: CacheKey,
        compute: impl FnOnce() -> ExperimentOutput,
    ) -> (Arc<ExperimentOutput>, Outcome) {
        loop {
            let inflight = {
                let mut shard = self.shard(key);
                match shard.map.get(&key) {
                    Some(Slot::Ready(output)) => {
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        return (Arc::clone(output), Outcome::Hit);
                    }
                    Some(Slot::Pending(inflight)) => Some(Arc::clone(inflight)),
                    None => {
                        let inflight = Arc::new(Inflight::default());
                        shard.map.insert(key, Slot::Pending(Arc::clone(&inflight)));
                        drop(shard);
                        return self.compute_pending(key, inflight, compute);
                    }
                }
            };
            if let Some(inflight) = inflight {
                let mut state = inflight.state.lock().expect("no panics under lock");
                loop {
                    match &*state {
                        PendingState::Done(output) => {
                            self.inflight_dedups.fetch_add(1, Ordering::Relaxed);
                            return (Arc::clone(output), Outcome::InflightDedup);
                        }
                        // The computing thread unwound — retry from the top.
                        PendingState::Abandoned => break,
                        PendingState::Waiting => {
                            state = inflight.done.wait(state).expect("no panics under lock");
                        }
                    }
                }
            }
        }
    }

    /// Runs `compute` for a freshly inserted pending slot, publishes the
    /// result and wakes waiters.
    fn compute_pending(
        &self,
        key: CacheKey,
        inflight: Arc<Inflight>,
        compute: impl FnOnce() -> ExperimentOutput,
    ) -> (Arc<ExperimentOutput>, Outcome) {
        let mut guard = PendingGuard {
            cache: self,
            key,
            inflight,
            completed: false,
        };
        let output = Arc::new(compute());
        {
            let mut shard = self.shard(key);
            shard.map.insert(key, Slot::Ready(Arc::clone(&output)));
            shard.resident.push_back(key);
            while shard.resident.len() > self.capacity_per_shard {
                // The oldest resident entry goes; skip keys whose slot was
                // re-evicted and recomputed (stale queue entries).
                let Some(oldest) = shard.resident.pop_front() else {
                    break;
                };
                if oldest == key {
                    // Never evict the entry being published; re-queue it.
                    shard.resident.push_back(oldest);
                    continue;
                }
                if matches!(shard.map.get(&oldest), Some(Slot::Ready(_))) {
                    shard.map.remove(&oldest);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        guard.completed = true;
        *guard.inflight.state.lock().expect("no panics under lock") =
            PendingState::Done(Arc::clone(&output));
        guard.inflight.done.notify_all();
        self.misses.fetch_add(1, Ordering::Relaxed);
        (output, Outcome::Miss)
    }

    /// Effective total capacity: the per-shard bound times [`SHARDS`].
    /// At least the capacity requested at construction (rounded up so
    /// every shard holds at least one entry).
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity_per_shard * SHARDS
    }

    /// Number of resident (ready) entries across every shard.
    #[must_use]
    pub fn entries(&self) -> u64 {
        self.shards
            .iter()
            .map(|shard| {
                let shard = shard.lock().expect("no panics under lock");
                shard
                    .map
                    .values()
                    .filter(|slot| matches!(slot, Slot::Ready(_)))
                    .count() as u64
            })
            .sum()
    }

    /// Monotonic counters: `(hits, misses, inflight_dedups, evictions)`.
    #[must_use]
    pub fn counters(&self) -> (u64, u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.inflight_dedups.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Barrier;

    fn output(value: f64) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        out.scalar("probe", "unit", value);
        out
    }

    #[test]
    fn hit_after_miss_returns_the_same_allocation() {
        let cache = ShardedCache::new(64);
        let (first, outcome) = cache.get_or_compute(("fig01", 7), || output(1.0));
        assert_eq!(outcome, Outcome::Miss);
        let (second, outcome) = cache.get_or_compute(("fig01", 7), || output(2.0));
        assert_eq!(outcome, Outcome::Hit);
        assert!(
            Arc::ptr_eq(&first, &second),
            "hits share the computed value"
        );
        assert_eq!(second.scalars[0].value, 1.0, "hit must not recompute");
        assert_eq!(cache.counters(), (1, 1, 0, 0));
        assert_eq!(cache.entries(), 1);
    }

    #[test]
    fn same_fingerprint_different_experiment_does_not_collide() {
        let cache = ShardedCache::new(64);
        cache.get_or_compute(("fig01", 7), || output(1.0));
        let (other, outcome) = cache.get_or_compute(("fig02", 7), || output(2.0));
        assert_eq!(outcome, Outcome::Miss);
        assert_eq!(other.scalars[0].value, 2.0);
    }

    #[test]
    fn racing_threads_compute_exactly_once() {
        const THREADS: usize = 8;
        let cache = ShardedCache::new(64);
        let computes = AtomicUsize::new(0);
        let barrier = Barrier::new(THREADS);
        let outcomes: Vec<Outcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..THREADS)
                .map(|_| {
                    scope.spawn(|| {
                        barrier.wait();
                        let (out, outcome) = cache.get_or_compute(("ext-mc", 42), || {
                            computes.fetch_add(1, Ordering::SeqCst);
                            // Hold the computation open long enough that the
                            // other racers reliably observe the pending slot.
                            std::thread::sleep(std::time::Duration::from_millis(30));
                            output(9.0)
                        });
                        assert_eq!(out.scalars[0].value, 9.0);
                        outcome
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(computes.load(Ordering::SeqCst), 1, "exactly one compute");
        let misses = outcomes.iter().filter(|o| **o == Outcome::Miss).count();
        assert_eq!(misses, 1);
        // Every other racer either waited on the in-flight slot or arrived
        // after publication (a plain hit) — none recomputed.
        let (hits, m, dedups, _) = cache.counters();
        assert_eq!(m, 1);
        assert_eq!(hits + dedups, (THREADS - 1) as u64);
    }

    #[test]
    fn capacity_bounds_residency_and_counts_evictions() {
        // Capacity 16 over 16 shards: one resident entry per shard, so
        // filling any one shard with two keys evicts the older one.
        let cache = ShardedCache::new(16);
        for fp in 0..64 {
            cache.get_or_compute(("fig05", fp), || output(fp as f64));
        }
        let (_, misses, _, evictions) = cache.counters();
        assert_eq!(misses, 64);
        assert!(evictions > 0, "64 keys over 16 slots must evict");
        assert_eq!(cache.entries() + evictions, 64);
        // An evicted key recomputes (miss), a resident one hits.
        let before = cache.counters().1;
        cache.get_or_compute(("fig05", 0), || output(0.0));
        cache.get_or_compute(("fig05", 63), || output(63.0));
        let after = cache.counters();
        assert!(after.1 >= before, "counters stay monotonic");
    }

    #[test]
    fn panicking_computation_abandons_the_slot_without_poisoning() {
        let cache = ShardedCache::new(64);
        let result = std::thread::scope(|scope| {
            scope
                .spawn(|| cache.get_or_compute(("fig09", 1), || panic!("model exploded")))
                .join()
        });
        assert!(
            result.is_err(),
            "the panic propagates to the computing thread"
        );
        // The slot was abandoned, not left pending: a fresh call computes.
        let (out, outcome) = cache.get_or_compute(("fig09", 1), || output(5.0));
        assert_eq!(outcome, Outcome::Miss);
        assert_eq!(out.scalars[0].value, 5.0);
    }
}
