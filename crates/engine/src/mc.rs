//! The streaming Monte-Carlo runner.
//!
//! Where the grid runner ([`crate::grid`]) walks an enumerated scenario
//! matrix and keeps every point's artifact, the Monte-Carlo runner pumps
//! `samples` *drawn* scenario points ([`MonteCarloMatrix::point`]) through
//! the same fingerprint → cache → model pipeline and keeps only streaming
//! digests: one [`StreamingStats`] accumulator per (experiment, metric),
//! so memory stays flat whether a run draws 10³ or 10⁶ samples.
//!
//! Determinism is the load-bearing property. `point(i)` is pure in
//! `(seed, i)`, so the sampled scenarios are identical however the worker
//! threads interleave — but the accumulators (Welford + P² quantiles) are
//! *order-sensitive*, so workers hand their finished sample values to a
//! reorder buffer that feeds the accumulators strictly in sample order.
//! The result: byte-identical statistics for the same seed across any
//! `--jobs` value, and across one-shot versus served runs.
//!
//! The cache earns its keep here: samples only perturb the fields named by
//! the distribution bindings, so experiments whose declared dependencies
//! don't include a sampled field collapse to a handful of distinct
//! fingerprints — often one — and the runner answers thousands of samples
//! from a single model run.

use crate::cache::Outcome;
use crate::{Engine, EngineError};
use cc_analysis::stats::StreamingStats;
use cc_core::experiments::Entry;
use cc_report::{ExperimentOutput, McComparison, MonteCarloMatrix, RunContext, ScalarThreshold};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Knobs for one Monte-Carlo run.
#[derive(Clone, Copy, Debug)]
pub struct McConfig {
    /// Worker threads pulling sample indices (clamped to the sample count).
    pub jobs: usize,
    /// Run the models for every sample instead of deduplicating through
    /// the engine's fingerprint cache.
    pub no_cache: bool,
}

/// Errors surfaced by a Monte-Carlo run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum McError {
    /// An experiment's scalar coverage broke (no summary scalar, or a
    /// metric missing at one sampled point).
    Engine(EngineError),
    /// A sampled point failed to apply or validate — typically an
    /// unbounded `normal` tail drawing outside the field's physical range.
    Sample(String),
}

impl std::fmt::Display for McError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Engine(e) => e.fmt(f),
            Self::Sample(message) => f.write_str(message),
        }
    }
}

impl std::error::Error for McError {}

/// What one Monte-Carlo run produced.
#[derive(Debug)]
pub struct McResult {
    /// One banded digest per (experiment, tracked metric): the experiment's
    /// summary scalar plus every scalar carrying a decision threshold, in
    /// entry order.
    pub comparisons: Vec<McComparison>,
    /// Per-entry model computations (in-memory cache misses; with
    /// `no_cache`, one per sample). Deterministic for a given engine state:
    /// each distinct fingerprint is computed exactly once.
    pub run_counts: Vec<usize>,
    /// Per-entry fingerprints this process computed fresh (misses the disk
    /// cache could not answer).
    pub disk_runs: Vec<usize>,
    /// Per-entry fingerprints answered by the persistent on-disk cache.
    pub disk_hits: Vec<usize>,
    /// Cache lookups answered from resident artifacts.
    pub hits: u64,
    /// Cache lookups that computed (or disk-loaded) a fresh artifact.
    pub misses: u64,
    /// Cache lookups deduplicated against another in-flight computation.
    pub inflight_dedups: u64,
}

/// One tracked metric: the summary scalar or a thresholded secondary.
struct MetricSpec {
    name: String,
    unit: String,
    threshold: Option<ScalarThreshold>,
}

/// Reorder buffer between out-of-order sample completion and the
/// order-sensitive accumulators: workers hand in `(sample index, values)`,
/// and every value whose predecessors have all arrived is pushed into its
/// accumulator, buffering only the gap.
struct Collector {
    next: usize,
    pending: BTreeMap<usize, Vec<f64>>,
    stats: Vec<StreamingStats>,
}

impl Collector {
    fn complete(&mut self, index: usize, values: Vec<f64>) {
        self.pending.insert(index, values);
        while let Some(values) = self.pending.remove(&self.next) {
            for (slot, value) in self.stats.iter_mut().zip(values) {
                slot.push(value);
            }
            self.next += 1;
        }
    }
}

impl Engine {
    /// Pumps every sampled point of `matrix` through the selected
    /// experiments on up to `config.jobs` worker threads, digesting each
    /// tracked metric into a [`McComparison`].
    ///
    /// Sample 0 doubles as the probe that fixes each experiment's tracked
    /// metrics (its summary scalar plus any thresholded scalars — the same
    /// rule as [`crate::grid::build_comparisons`]); the remaining samples
    /// stream through the fingerprint cache and the reorder buffer.
    ///
    /// # Errors
    ///
    /// [`McError::Sample`] when a drawn value fails scenario validation,
    /// [`McError::Engine`] when an experiment's scalar coverage breaks.
    pub fn run_mc(
        &self,
        entries: &[&'static Entry],
        matrix: &MonteCarloMatrix,
        config: &McConfig,
    ) -> Result<McResult, McError> {
        let samples = matrix.len();
        let run_counts: Vec<AtomicUsize> =
            (0..entries.len()).map(|_| AtomicUsize::new(0)).collect();
        let disk_runs: Vec<AtomicUsize> = (0..entries.len()).map(|_| AtomicUsize::new(0)).collect();
        let disk_hits: Vec<AtomicUsize> = (0..entries.len()).map(|_| AtomicUsize::new(0)).collect();
        let (hits, misses, dedups) = (AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0));

        // One sample × one experiment: the output, from the cache when
        // possible — the exact read-through pipeline the grid runner uses,
        // so disk caches and resident daemons warm Monte-Carlo runs too.
        let obtain = |entry_idx: usize,
                      entry: &'static Entry,
                      overlay: &cc_report::ScenarioOverlay,
                      context: &RunContext|
         -> Arc<ExperimentOutput> {
            if config.no_cache {
                run_counts[entry_idx].fetch_add(1, Ordering::Relaxed);
                return Arc::new(entry.build().run(context));
            }
            let fingerprint = entry.fingerprint(overlay);
            let (output, outcome) = self.cache().get_or_compute((entry.key, fingerprint), || {
                run_counts[entry_idx].fetch_add(1, Ordering::Relaxed);
                if let Some(disk) = self.disk() {
                    if let Some(stored) = disk.load(entry.key, fingerprint) {
                        disk_hits[entry_idx].fetch_add(1, Ordering::Relaxed);
                        return stored;
                    }
                }
                let fresh = entry.build().run(context);
                if let Some(disk) = self.disk() {
                    disk.store(entry.key, fingerprint, &fresh);
                }
                disk_runs[entry_idx].fetch_add(1, Ordering::Relaxed);
                fresh
            });
            match outcome {
                Outcome::Hit => hits.fetch_add(1, Ordering::Relaxed),
                Outcome::Miss => misses.fetch_add(1, Ordering::Relaxed),
                Outcome::InflightDedup => dedups.fetch_add(1, Ordering::Relaxed),
            };
            output
        };

        // Probe with sample 0: fix each experiment's tracked metrics and
        // collect the first sample's values while we're at it.
        let sample_error = |index: usize, e: &dyn std::fmt::Display| {
            McError::Sample(format!("sample {index}: {e}"))
        };
        let probe = matrix
            .point(0)
            .map_err(|e| McError::Sample(e.to_string()))?;
        let probe_context =
            RunContext::try_from_overlay(probe.overlay.clone()).map_err(|e| sample_error(0, &e))?;
        let mut metric_specs: Vec<Vec<MetricSpec>> = Vec::with_capacity(entries.len());
        let mut first_values = Vec::new();
        for (entry_idx, entry) in entries.iter().enumerate() {
            let output = obtain(entry_idx, entry, &probe.overlay, &probe_context);
            if output.scalars.is_empty() {
                return Err(McError::Engine(EngineError::MissingSummaryScalar {
                    key: entry.key,
                }));
            }
            let specs: Vec<MetricSpec> = output
                .scalars
                .iter()
                .enumerate()
                .filter(|(i, scalar)| *i == 0 || scalar.threshold.is_some())
                .map(|(_, scalar)| MetricSpec {
                    name: scalar.name.clone(),
                    unit: scalar.unit.clone(),
                    threshold: scalar.threshold.clone(),
                })
                .collect();
            first_values.extend(
                specs
                    .iter()
                    .map(|spec| output.scalars.iter().find(|s| s.name == spec.name))
                    .map(|scalar| scalar.expect("spec names come from these scalars").value),
            );
            metric_specs.push(specs);
        }

        let collector = Mutex::new(Collector {
            next: 0,
            pending: BTreeMap::new(),
            stats: vec![StreamingStats::new(); first_values.len()],
        });
        collector
            .lock()
            .expect("no panics under lock")
            .complete(0, first_values);

        // One sample end to end: draw the point, run (or fetch) every
        // experiment, pull out the tracked metric values in flat
        // (entry-major, metric-minor) order.
        let process = |index: usize| -> Result<Vec<f64>, McError> {
            let point = matrix
                .point(index)
                .map_err(|e| McError::Sample(e.to_string()))?;
            let context = RunContext::try_from_overlay(point.overlay.clone())
                .map_err(|e| sample_error(index, &e))?;
            let mut values = Vec::new();
            for (entry_idx, entry) in entries.iter().enumerate() {
                let output = obtain(entry_idx, entry, &point.overlay, &context);
                for spec in &metric_specs[entry_idx] {
                    let scalar = output
                        .scalars
                        .iter()
                        .find(|s| s.name == spec.name)
                        .ok_or_else(|| {
                            McError::Engine(EngineError::MissingScalarAtPoint {
                                key: entry.key,
                                metric: spec.name.clone(),
                                point: point.display_label().to_string(),
                            })
                        })?;
                    values.push(scalar.value);
                }
            }
            Ok(values)
        };

        // Workers pull sample indices off a shared cursor; the first error
        // (lowest sample index wins, for a stable diagnostic) raises the
        // stop flag and the run drains.
        let next_sample = AtomicUsize::new(1);
        let stop = AtomicBool::new(false);
        let error: Mutex<Option<(usize, McError)>> = Mutex::new(None);
        let work = || loop {
            if stop.load(Ordering::Relaxed) {
                break;
            }
            let index = next_sample.fetch_add(1, Ordering::Relaxed);
            if index >= samples {
                break;
            }
            match process(index) {
                Ok(values) => collector
                    .lock()
                    .expect("no panics under lock")
                    .complete(index, values),
                Err(e) => {
                    let mut slot = error.lock().expect("no panics under lock");
                    if slot.as_ref().is_none_or(|(prior, _)| index < *prior) {
                        *slot = Some((index, e));
                    }
                    stop.store(true, Ordering::Relaxed);
                    break;
                }
            }
        };
        let workers = config.jobs.clamp(1, samples);
        if workers <= 1 {
            work();
        } else {
            let work = &work;
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(work);
                }
            });
        }
        if let Some((_, e)) = error.into_inner().expect("no panics under lock") {
            return Err(e);
        }

        let collector = collector.into_inner().expect("no panics under lock");
        debug_assert_eq!(collector.next, samples, "every sample accumulated");
        let mut stats = collector.stats.into_iter();
        let mut comparisons = Vec::new();
        for (entry_idx, entry) in entries.iter().enumerate() {
            for spec in &metric_specs[entry_idx] {
                let digest = stats.next().expect("one accumulator per metric");
                let summary = digest.summary().expect("at least one sample");
                comparisons.push(McComparison {
                    experiment: entry.key.to_string(),
                    metric: spec.name.clone(),
                    unit: spec.unit.clone(),
                    threshold: spec.threshold.clone(),
                    stats: summary,
                });
            }
        }
        Ok(McResult {
            comparisons,
            run_counts: run_counts
                .into_iter()
                .map(AtomicUsize::into_inner)
                .collect(),
            disk_runs: disk_runs.into_iter().map(AtomicUsize::into_inner).collect(),
            disk_hits: disk_hits.into_iter().map(AtomicUsize::into_inner).collect(),
            hits: hits.into_inner(),
            misses: misses.into_inner(),
            inflight_dedups: dedups.into_inner(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_core::experiments;
    use cc_report::{DistBinding, Scenario};

    fn matrix(bindings: &[&str], samples: usize, seed: u64) -> MonteCarloMatrix {
        let bindings = bindings
            .iter()
            .map(|b| DistBinding::parse(b).expect("valid binding"))
            .collect();
        MonteCarloMatrix::new(Scenario::paper_defaults(), bindings, samples, seed)
            .expect("valid matrix")
    }

    fn entry(key: &str) -> Vec<&'static Entry> {
        vec![experiments::find_entry(key).expect("known key")]
    }

    #[test]
    fn statistics_are_identical_across_job_counts() {
        let entries = entry("ext-facility");
        let mc = matrix(&["fleet.growth ~ uniform(1.2,1.4)"], 200, 7);
        let serial = Engine::new()
            .run_mc(
                &entries,
                &mc,
                &McConfig {
                    jobs: 1,
                    no_cache: false,
                },
            )
            .expect("serial run");
        let parallel = Engine::new()
            .run_mc(
                &entries,
                &mc,
                &McConfig {
                    jobs: 4,
                    no_cache: false,
                },
            )
            .expect("parallel run");
        assert_eq!(serial.comparisons, parallel.comparisons);
        assert_eq!(serial.run_counts, parallel.run_counts);
        assert_eq!(serial.misses, parallel.misses);
        // The sampled axis moves the model: the band has real width.
        let stats = &serial.comparisons[0].stats;
        assert_eq!(stats.n, 200);
        assert!(stats.ci90_half_width() > 0.0, "{stats:?}");
    }

    #[test]
    fn samples_outside_declared_dependencies_share_one_run() {
        // ext-facility never reads fab.node_nm, so every sampled point
        // fingerprints identically: one model run, the rest cache hits.
        let entries = entry("ext-facility");
        let mc = matrix(&["fab.node_nm ~ triangular(5,7,10)"], 50, 7);
        let engine = Engine::new();
        let result = engine
            .run_mc(
                &entries,
                &mc,
                &McConfig {
                    jobs: 2,
                    no_cache: false,
                },
            )
            .expect("mc run");
        assert_eq!(result.run_counts, vec![1]);
        assert_eq!(result.misses, 1);
        assert_eq!(result.hits + result.inflight_dedups, 49);
        // Constant metric: a zero-width band is the honest answer.
        assert_eq!(result.comparisons[0].stats.ci90_half_width(), 0.0);
    }

    #[test]
    fn out_of_range_draws_surface_as_sample_errors() {
        let entries = entry("ext-facility");
        let mc = matrix(&["fab.node_nm ~ normal(3,40)"], 200, 1);
        let err = Engine::new()
            .run_mc(
                &entries,
                &mc,
                &McConfig {
                    jobs: 2,
                    no_cache: false,
                },
            )
            .expect_err("most normal(3,40) mass is out of range");
        assert!(matches!(err, McError::Sample(_)), "{err:?}");
        assert!(err.to_string().contains("sample"), "{err}");
    }

    #[test]
    fn no_cache_runs_the_model_per_sample() {
        let entries = entry("ext-facility");
        let mc = matrix(&["fab.node_nm ~ triangular(5,7,10)"], 8, 3);
        let engine = Engine::new();
        let result = engine
            .run_mc(
                &entries,
                &mc,
                &McConfig {
                    jobs: 1,
                    no_cache: true,
                },
            )
            .expect("mc run");
        assert_eq!(result.run_counts, vec![8]);
        assert_eq!(result.hits + result.misses + result.inflight_dedups, 0);
        assert_eq!(engine.stats().entries, 0);
    }
}
