//! Interning of validated request scenarios.
//!
//! Every `run` request rebuilds the same pipeline: paper defaults, apply
//! the `set` overrides in order, validate the whole scenario, parse the
//! `dists` bindings. A daemon replaying sweeps sees the *same* payload
//! thousands of times, and validation — registry lookups, per-field range
//! checks, cross-field invariants — is pure: identical payloads always
//! produce an identical validated scenario. The [`ScenarioInterner`]
//! exploits that purity by keying the validated result on the verbatim
//! `(sets, dists)` payload, so a repeated payload skips validation
//! entirely and every in-flight request sharing it holds the same
//! allocation.
//!
//! Only *successful* validations are interned. A failing payload is
//! re-validated (and re-rejected) every time it is seen — error paths are
//! cold by construction, and caching rejections would let a client fill
//! the table with garbage.
//!
//! The table is bounded ([`DEFAULT_INTERN_CAPACITY`] via
//! [`crate::Engine`]) with FIFO eviction, mirroring the artifact cache's
//! policy: a long-lived daemon sweeping many distinct payloads cannot
//! grow it without limit.

use crate::protocol::{scenario_error, ProtocolError};
use cc_report::{DistBinding, Scenario};
use std::collections::{HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Default bound on interned payloads. Each entry is one validated
/// `Scenario` plus its parsed bindings — small, but client-controlled, so
/// the table must not grow without limit.
pub const DEFAULT_INTERN_CAPACITY: usize = 256;

/// A validated base scenario plus its parsed distribution bindings — the
/// payload-derived half of a resolved `run` request, shareable across
/// requests that carry the identical `set`/`dists` payload.
#[derive(Debug)]
pub struct InternedScenario {
    /// The base scenario: paper defaults, overrides applied, validated.
    pub scenario: Scenario,
    /// The parsed `dists` bindings, in request order.
    pub bindings: Vec<DistBinding>,
    /// Rendered non-sweep artifact lines, keyed by experiment registry
    /// key. A non-sweep artifact is a pure function of the validated
    /// payload and the experiment, so its (large) rendered JSON is
    /// interned right next to the validation it already shares. Bounded
    /// by the registry size, and evicted with the payload itself.
    rendered: Mutex<HashMap<&'static str, Arc<str>>>,
}

impl Clone for InternedScenario {
    fn clone(&self) -> Self {
        // The rendered cache stays behind: a clone is a new identity, and
        // sharing rendered text across identities is the Arc's job.
        Self {
            scenario: self.scenario.clone(),
            bindings: self.bindings.clone(),
            rendered: Mutex::new(HashMap::new()),
        }
    }
}

impl InternedScenario {
    /// Builds (and fully validates) the scenario for one payload: applies
    /// every `set` override in order, validates the result, then parses
    /// every `dists` binding.
    pub fn build(sets: &[(String, String)], dists: &[String]) -> Result<Self, ProtocolError> {
        let mut scenario = Scenario::paper_defaults();
        for (key, value) in sets {
            scenario.set(key, value).map_err(|e| scenario_error(&e))?;
        }
        scenario.validate().map_err(|e| scenario_error(&e))?;
        let bindings = dists
            .iter()
            .map(|text| {
                DistBinding::parse(text)
                    .map_err(|e| ProtocolError::new("invalid-sweep", e.to_string()))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            scenario,
            bindings,
            rendered: Mutex::new(HashMap::new()),
        })
    }

    /// The rendered response line for experiment `key` against this
    /// payload, built (and cached) on first sight. Concurrent first
    /// sightings may both run `build`; the bytes are identical by purity,
    /// so whichever publishes first wins and the racer's copy is used
    /// once and dropped.
    pub fn rendered_artifact(&self, key: &'static str, build: impl FnOnce() -> String) -> Arc<str> {
        if let Some(hit) = self.rendered.lock().expect("no panics under lock").get(key) {
            return Arc::clone(hit);
        }
        // Render outside the lock: a large artifact must not stall other
        // workers' lookups.
        let built: Arc<str> = build().into();
        self.rendered
            .lock()
            .expect("no panics under lock")
            .entry(key)
            .or_insert_with(|| Arc::clone(&built));
        built
    }
}

/// Length-prefixed encoding of the verbatim payload: unambiguous for any
/// key/value content (a separator character appearing *in* a value cannot
/// collide with the separator between values).
fn intern_key(sets: &[(String, String)], dists: &[String]) -> String {
    let mut key = String::new();
    for (k, v) in sets {
        let _ = write!(key, "s{}:{k}{}:{v}", k.len(), v.len());
    }
    for d in dists {
        let _ = write!(key, "d{}:{d}", d.len());
    }
    key
}

#[derive(Default)]
struct InternerState {
    map: HashMap<String, Arc<InternedScenario>>,
    /// Interned keys in insertion order — the FIFO eviction queue.
    order: VecDeque<String>,
}

/// The bounded payload→validated-scenario table plus its counters.
pub struct ScenarioInterner {
    state: Mutex<InternerState>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ScenarioInterner {
    /// An interner holding at most `capacity` validated payloads
    /// (minimum one).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(InternerState::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Returns the validated scenario for this `(sets, dists)` payload,
    /// building it on first sight. Identical payloads share one
    /// allocation; a validation failure is returned (and re-validated on
    /// the next sighting), never interned.
    pub fn resolve(
        &self,
        sets: &[(String, String)],
        dists: &[String],
    ) -> Result<Arc<InternedScenario>, ProtocolError> {
        let key = intern_key(sets, dists);
        if let Some(interned) = self
            .state
            .lock()
            .expect("no panics under lock")
            .map
            .get(&key)
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(Arc::clone(interned));
        }
        // Validate outside the lock: concurrent distinct payloads must not
        // serialize on each other's validation.
        let built = Arc::new(InternedScenario::build(sets, dists)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut state = self.state.lock().expect("no panics under lock");
        if let Some(existing) = state.map.get(&key) {
            // A racer on the same payload published first; share its copy.
            return Ok(Arc::clone(existing));
        }
        state.map.insert(key.clone(), Arc::clone(&built));
        state.order.push_back(key);
        while state.order.len() > self.capacity {
            let Some(oldest) = state.order.pop_front() else {
                break;
            };
            state.map.remove(&oldest);
        }
        Ok(built)
    }

    /// Monotonic counters: `(hits, misses)`. A miss is one full payload
    /// validation that was then interned; rejected payloads count as
    /// neither.
    #[must_use]
    pub fn counters(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// Payloads currently interned.
    #[must_use]
    pub fn entries(&self) -> u64 {
        self.state.lock().expect("no panics under lock").map.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sets(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn identical_payloads_validate_once_and_share_the_allocation() {
        let interner = ScenarioInterner::new(16);
        let payload = sets(&[("grid.intensity", "300")]);
        let dists = vec!["fab.node_nm ~ triangular(5,7,10)".to_string()];
        let first = interner.resolve(&payload, &dists).expect("valid payload");
        let second = interner.resolve(&payload, &dists).expect("valid payload");
        assert!(Arc::ptr_eq(&first, &second), "hit shares the allocation");
        assert_eq!(interner.counters(), (1, 1));
        assert_eq!(interner.entries(), 1);
    }

    #[test]
    fn distinct_payloads_never_share() {
        let interner = ScenarioInterner::new(16);
        let a = interner
            .resolve(&sets(&[("grid.intensity", "300")]), &[])
            .expect("valid");
        let b = interner
            .resolve(&sets(&[("grid.intensity", "301")]), &[])
            .expect("valid");
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(interner.counters(), (0, 2));
    }

    #[test]
    fn payload_keys_cannot_alias_across_boundaries() {
        // ("a","bc") vs ("ab","c") and a set/dist split must key apart.
        let interner = ScenarioInterner::new(16);
        assert_ne!(
            intern_key(&sets(&[("a", "bc")]), &[]),
            intern_key(&sets(&[("ab", "c")]), &[])
        );
        assert_ne!(
            intern_key(&[], &["ab".to_string()]),
            intern_key(&sets(&[("a", "b")]), &[])
        );
        drop(interner);
    }

    #[test]
    fn rejections_are_not_interned() {
        let interner = ScenarioInterner::new(16);
        let bad = sets(&[("grid.wattage", "5")]);
        assert_eq!(
            interner.resolve(&bad, &[]).expect_err("rejected").category,
            "unknown-field"
        );
        assert_eq!(interner.entries(), 0);
        assert_eq!(interner.counters(), (0, 0));
    }

    #[test]
    fn capacity_bounds_the_table() {
        let interner = ScenarioInterner::new(2);
        for value in ["100", "200", "300", "400"] {
            interner
                .resolve(&sets(&[("grid.intensity", value)]), &[])
                .expect("valid");
        }
        assert_eq!(interner.entries(), 2);
        // The newest payload is still interned.
        interner
            .resolve(&sets(&[("grid.intensity", "400")]), &[])
            .expect("valid");
        assert_eq!(interner.counters().0, 1, "recent payload hits");
    }
}
