//! The persistent on-disk artifact cache.
//!
//! The in-memory [`crate::cache::ShardedCache`] only lives as long as its
//! process; this module gives fingerprints a life across restarts. Every
//! artifact is written to `<cache-dir>/<code fingerprint>/` as one small
//! text file keyed the same way as the resident cache — `(experiment key,
//! dependency fingerprint)` — so a re-run of a full-suite sweep after a
//! one-field scenario change recomputes only the dedup groups whose
//! declared dependencies actually moved, even in a fresh process.
//!
//! Layout and safety properties:
//!
//! * **code fingerprinting** — entries live under a directory named by a
//!   hash of the on-disk format version and the crate version, so artifacts
//!   produced by older model code are never replayed into newer binaries
//!   (they simply sit in a sibling directory nobody reads);
//! * **versioned headers** — each entry opens with a header line repeating
//!   the format version, code fingerprint, experiment key and dependency
//!   fingerprint; a header that does not match what the reader expects is
//!   treated as absent;
//! * **corruption is a miss** — truncated files, invalid JSON and
//!   shape-mismatched payloads all make [`DiskCache::load`] return `None`;
//!   the grid runner then recomputes and overwrites the bad entry;
//! * **atomic publication** — writes go to a process-unique temp file and
//!   are `rename`d into place, so concurrent processes sharing one cache
//!   directory never observe partial entries.

use cc_report::{ExperimentOutput, JsonValue};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// On-disk entry format version. Bump on any layout or header change: old
/// entries become unreadable (treated as misses) instead of misparsed.
pub const CACHE_FORMAT_VERSION: u32 = 1;

/// FNV-1a over `bytes`, continuing from `hash`.
fn fnv(hash: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(hash, |h, &b| {
        (h ^ u64::from(b)).wrapping_mul(0x0100_0000_01b3)
    })
}

/// The fingerprint of the *code* that produced an artifact: the cache
/// format version plus the workspace crate version. Entries are stored
/// under a directory named by this hash, so changing the models (a version
/// bump) or the entry format orphans stale artifacts instead of serving
/// them.
#[must_use]
pub fn code_fingerprint() -> u64 {
    let hash = fnv(0xcbf2_9ce4_8422_2325, &CACHE_FORMAT_VERSION.to_le_bytes());
    fnv(fnv(hash, &[0]), env!("CARGO_PKG_VERSION").as_bytes())
}

/// A persistent artifact cache rooted at one directory. Cheap to open (one
/// `create_dir_all`), safe to share between threads and between processes
/// pointing at the same directory.
pub struct DiskCache {
    /// `<cache-dir>/<code fingerprint>` — where this binary's entries live.
    dir: PathBuf,
    hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
}

impl DiskCache {
    /// Opens (creating if needed) the cache rooted at `dir`. Entries land in
    /// a per-code-fingerprint subdirectory, so one root can serve many
    /// binary versions without cross-talk.
    ///
    /// # Errors
    ///
    /// The underlying `create_dir_all` error when the directory cannot be
    /// created (permissions, a file in the way, …).
    pub fn open(dir: impl AsRef<Path>) -> std::io::Result<Self> {
        let dir = dir.as_ref().join(format!("{:016x}", code_fingerprint()));
        fs::create_dir_all(&dir)?;
        Ok(Self {
            dir,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            stores: AtomicU64::new(0),
        })
    }

    /// The directory holding this binary's entries.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry file for one `(experiment key, dependency fingerprint)`.
    fn entry_path(&self, key: &str, fingerprint: u64) -> PathBuf {
        self.dir.join(format!("{key}-{fingerprint:016x}.json"))
    }

    /// The header line every entry opens with. Load compares it verbatim:
    /// any drift — version, code fingerprint, key, dependency fingerprint —
    /// makes the entry invisible rather than half-trusted.
    fn header(key: &str, fingerprint: u64) -> String {
        format!(
            "cc-cache v{CACHE_FORMAT_VERSION} code={:016x} key={key} fp={fingerprint:016x}",
            code_fingerprint()
        )
    }

    /// Loads the artifact stored for `(key, fingerprint)`, or `None` when
    /// the entry is absent, truncated, corrupt, or carries a mismatched
    /// header — every failure mode is a plain miss, never an error.
    #[must_use]
    pub fn load(&self, key: &str, fingerprint: u64) -> Option<ExperimentOutput> {
        let loaded = fs::read_to_string(self.entry_path(key, fingerprint))
            .ok()
            .and_then(|text| {
                let (header, body) = text.split_once('\n')?;
                if header != Self::header(key, fingerprint) {
                    return None;
                }
                ExperimentOutput::from_json(&JsonValue::parse(body.trim_end()).ok()?)
            });
        match &loaded {
            Some(_) => self.hits.fetch_add(1, Ordering::Relaxed),
            None => self.misses.fetch_add(1, Ordering::Relaxed),
        };
        loaded
    }

    /// Writes the artifact for `(key, fingerprint)`, replacing any previous
    /// entry. Publication is atomic (temp file + rename), and failures are
    /// deliberately swallowed: a read-only or full disk degrades the cache
    /// to a no-op instead of failing the run that computed the artifact.
    pub fn store(&self, key: &str, fingerprint: u64, output: &ExperimentOutput) {
        let tmp = self.dir.join(format!(
            ".{key}-{fingerprint:016x}.tmp-{}",
            std::process::id()
        ));
        let write = |path: &Path| -> std::io::Result<()> {
            let mut file = fs::File::create(path)?;
            writeln!(file, "{}", Self::header(key, fingerprint))?;
            writeln!(file, "{}", output.to_json().render())?;
            file.sync_all()
        };
        if write(&tmp).is_ok() && fs::rename(&tmp, self.entry_path(key, fingerprint)).is_ok() {
            self.stores.fetch_add(1, Ordering::Relaxed);
        } else {
            let _ = fs::remove_file(&tmp);
        }
    }

    /// Monotonic counters: `(hits, misses, stores)`.
    #[must_use]
    pub fn counters(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.stores.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("cc-persist-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn output(value: f64) -> ExperimentOutput {
        let mut out = ExperimentOutput::new();
        out.scalar("probe", "unit", value).note("anchor");
        out
    }

    #[test]
    fn store_then_load_round_trips() {
        let dir = temp_dir("round-trip");
        let cache = DiskCache::open(&dir).unwrap();
        assert_eq!(cache.load("fig10", 7), None, "cold cache misses");
        cache.store("fig10", 7, &output(1.5));
        assert_eq!(cache.load("fig10", 7), Some(output(1.5)));
        // A different fingerprint or key is a separate entry.
        assert_eq!(cache.load("fig10", 8), None);
        assert_eq!(cache.load("fig11", 7), None);
        assert_eq!(cache.counters(), (1, 3, 1));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopened_cache_sees_prior_entries() {
        let dir = temp_dir("reopen");
        DiskCache::open(&dir)
            .unwrap()
            .store("fig05", 42, &output(2.0));
        let reopened = DiskCache::open(&dir).unwrap();
        assert_eq!(reopened.load("fig05", 42), Some(output(2.0)));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_and_corrupt_entries_are_misses() {
        let dir = temp_dir("corrupt");
        let cache = DiskCache::open(&dir).unwrap();
        cache.store("fig13", 3, &output(9.0));
        let path = cache.dir().join(format!("fig13-{:016x}.json", 3));
        // Truncate mid-JSON: header intact, body cut short.
        let text = fs::read_to_string(&path).unwrap();
        fs::write(&path, &text[..text.len() - text.len() / 2]).unwrap();
        assert_eq!(cache.load("fig13", 3), None, "truncated entry is a miss");
        // Valid JSON, wrong shape.
        let header = text.split_once('\n').unwrap().0;
        fs::write(&path, format!("{header}\n{{\"tables\":0}}\n")).unwrap();
        assert_eq!(cache.load("fig13", 3), None, "shape mismatch is a miss");
        // Empty file (no header line at all).
        fs::write(&path, "").unwrap();
        assert_eq!(cache.load("fig13", 3), None, "empty entry is a miss");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn mismatched_header_is_ignored() {
        let dir = temp_dir("header");
        let cache = DiskCache::open(&dir).unwrap();
        cache.store("fig02", 11, &output(4.0));
        let path = cache.dir().join(format!("fig02-{:016x}.json", 11));
        let body = fs::read_to_string(&path)
            .unwrap()
            .split_once('\n')
            .unwrap()
            .1
            .to_string();
        // An entry written by a hypothetical older format version: the
        // payload is perfectly valid JSON, but the header disagrees.
        fs::write(
            &path,
            format!(
                "cc-cache v0 code={:016x} key=fig02 fp={:016x}\n{body}",
                code_fingerprint(),
                11
            ),
        )
        .unwrap();
        assert_eq!(cache.load("fig02", 11), None, "old version is invisible");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn store_overwrites_bad_entries() {
        let dir = temp_dir("overwrite");
        let cache = DiskCache::open(&dir).unwrap();
        let path = cache.dir().join(format!("ext-mc-{:016x}.json", 5));
        fs::write(&path, "garbage").unwrap();
        assert_eq!(cache.load("ext-mc", 5), None);
        cache.store("ext-mc", 5, &output(7.0));
        assert_eq!(cache.load("ext-mc", 5), Some(output(7.0)));
        let _ = fs::remove_dir_all(&dir);
    }
}
