//! Artifact rendering shared by the CLI and the server.
//!
//! Both front-ends must emit byte-identical artifacts for the same
//! (experiment × scenario-point) job — the serve-smoke CI job diffs daemon
//! output against a one-shot `repro --sweep` run file-for-file — so the
//! rendering lives here, once. The JSON form is built as a [`JsonValue`]
//! first ([`artifact_json`]) so the server can embed the same value inside
//! its response envelope: `JsonValue::render` is deterministic and
//! round-trip stable, which is what makes the client's re-rendered files
//! match the CLI's bytes exactly.

use cc_core::experiments::Entry;
use cc_report::{
    Comparison, Experiment, ExperimentOutput, JsonValue, McComparison, MonteCarloMatrix,
    RunContext, ScenarioMatrix, ScenarioPoint,
};

/// Output format for artifacts and comparison reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Format {
    /// ASCII tables and charts (default).
    Text,
    /// Markdown sections.
    Markdown,
    /// CSV with `#` comment headers.
    Csv,
    /// One JSON document per artifact.
    Json,
}

impl Format {
    /// File extension for `--out` artifact files.
    #[must_use]
    pub fn extension(self) -> &'static str {
        match self {
            Self::Text => "txt",
            Self::Markdown => "md",
            Self::Csv => "csv",
            Self::Json => "json",
        }
    }
}

/// The JSON artifact for one (experiment × scenario-point) job, as a value:
/// experiment identity and tags, the sweep-point metadata when sweeping,
/// the full scenario, and the experiment output.
#[must_use]
pub fn artifact_json(
    entry: &Entry,
    experiment: &dyn Experiment,
    output: &ExperimentOutput,
    ctx: &RunContext,
    point: Option<&ScenarioPoint>,
) -> JsonValue {
    let mut fields = vec![
        ("key", JsonValue::from(entry.key)),
        ("title", JsonValue::from(experiment.id().to_string())),
        ("description", JsonValue::from(experiment.description())),
        (
            "tags",
            JsonValue::array(entry.tags.iter().map(|t| JsonValue::from(t.name()))),
        ),
    ];
    if let Some(point) = point {
        fields.push(("point", point.to_json()));
    }
    fields.push(("scenario", ctx.scenario().to_json()));
    fields.push(("output", output.to_json()));
    JsonValue::object(fields)
}

/// Renders one (experiment × scenario-point) artifact from an
/// already-computed output. Kept separate from the model run so the cache
/// can render a shared [`ExperimentOutput`] once per point, with each
/// point's own scenario/point metadata.
#[must_use]
pub fn render_artifact(
    entry: &Entry,
    experiment: &dyn Experiment,
    output: &ExperimentOutput,
    ctx: &RunContext,
    point: Option<&ScenarioPoint>,
    format: Format,
) -> String {
    match format {
        Format::Text => format!(
            "==============================================================\n\
             {} — {}\n\
             ==============================================================\n\
             {}",
            experiment.id(),
            experiment.description(),
            output.render()
        ),
        Format::Markdown => format!(
            "## {} — {}\n\n{}",
            experiment.id(),
            experiment.description(),
            output.render_markdown()
        ),
        Format::Csv => format!(
            "# {} — {}\n{}",
            experiment.id(),
            experiment.description(),
            output.render_csv()
        ),
        Format::Json => artifact_json(entry, experiment, output, ctx, point).render(),
    }
}

/// The cross-scenario comparison report, as a JSON value: the sweep specs,
/// point count, and every comparison.
#[must_use]
pub fn comparison_json(comparisons: &[Comparison], matrix: &ScenarioMatrix) -> JsonValue {
    JsonValue::object([
        (
            "sweep",
            JsonValue::array(matrix.specs().iter().map(|spec| {
                JsonValue::object([
                    ("path", JsonValue::from(spec.path.as_str())),
                    (
                        "values",
                        JsonValue::array(spec.values.iter().map(|v| JsonValue::from(v.as_str()))),
                    ),
                ])
            })),
        ),
        ("points", JsonValue::Integer(matrix.len() as u64)),
        (
            "comparisons",
            JsonValue::array(comparisons.iter().map(Comparison::to_json)),
        ),
    ])
}

/// Renders the cross-scenario comparison report in the selected format.
#[must_use]
pub fn render_comparisons(
    comparisons: &[Comparison],
    matrix: &ScenarioMatrix,
    format: Format,
) -> String {
    match format {
        Format::Json => comparison_json(comparisons, matrix).render(),
        Format::Markdown => {
            let mut out = String::from("# Cross-scenario comparison\n");
            for c in comparisons {
                out.push_str(&format!(
                    "\n## {} — {} ({})\n\n{}",
                    c.experiment,
                    c.metric,
                    c.unit,
                    c.to_table().to_markdown()
                ));
                if let Some(s) = c.summary() {
                    out.push_str(&format!(
                        "\nspread: min {:.4}, max {:.4}, mean {:.4}{}\n",
                        s.min,
                        s.max,
                        s.mean,
                        s.spread_ratio()
                            .map_or(String::new(), |r| format!(", {r:.2}x min..max")),
                    ));
                }
                for crossing in c.crossings() {
                    out.push_str(&format!("\ncrossing: {}\n", crossing.line));
                }
            }
            out
        }
        Format::Csv => {
            let mut out = String::new();
            for c in comparisons {
                out.push_str(&format!(
                    "# comparison: {} — {} ({})\n{}",
                    c.experiment,
                    c.metric,
                    c.unit,
                    c.to_table().to_csv()
                ));
                for crossing in c.crossings() {
                    out.push_str(&format!("# crossing: {}\n", crossing.line));
                }
            }
            out
        }
        Format::Text => {
            let mut out = format!(
                "==============================================================\n\
                 Cross-scenario comparison — {} sweep point(s)\n\
                 ==============================================================\n",
                matrix.len()
            );
            for c in comparisons {
                out.push_str(&format!(
                    "\n{} — {} ({})\n{}",
                    c.experiment,
                    c.metric,
                    c.unit,
                    c.to_table().render()
                ));
                if let Some(s) = c.summary() {
                    out.push_str(&format!(
                        "spread: min {:.4}, max {:.4}, mean {:.4}{}\n",
                        s.min,
                        s.max,
                        s.mean,
                        s.spread_ratio()
                            .map_or(String::new(), |r| format!(" ({r:.2}x min..max)")),
                    ));
                }
                for crossing in c.crossings() {
                    out.push_str(&format!("crossing: {}\n", crossing.line));
                }
            }
            out
        }
    }
}

/// The Monte-Carlo comparison report, as a JSON value: the sampling
/// parameters (`samples`, `seed`, `dists`) and one banded digest per
/// (experiment, tracked metric).
#[must_use]
pub fn mc_comparison_json(comparisons: &[McComparison], matrix: &MonteCarloMatrix) -> JsonValue {
    JsonValue::object([
        ("mc", matrix.to_json()),
        (
            "comparisons",
            JsonValue::array(comparisons.iter().map(McComparison::to_json)),
        ),
    ])
}

/// Renders the Monte-Carlo comparison report in the selected format: the
/// sampling parameters, then each metric's confidence-banded headline and
/// digest table.
#[must_use]
pub fn render_mc_comparisons(
    comparisons: &[McComparison],
    matrix: &MonteCarloMatrix,
    format: Format,
) -> String {
    let sampled = |prefix: &str| {
        matrix
            .bindings()
            .iter()
            .map(|b| format!("{prefix}sampled: {}\n", b.display()))
            .collect::<String>()
    };
    match format {
        Format::Json => mc_comparison_json(comparisons, matrix).render(),
        Format::Markdown => {
            let mut out = format!(
                "# Monte-Carlo comparison\n\n- samples: {}\n- seed: {}\n",
                matrix.len(),
                matrix.seed()
            );
            for binding in matrix.bindings() {
                out.push_str(&format!("- sampled: `{}`\n", binding.display()));
            }
            for c in comparisons {
                out.push_str(&format!(
                    "\n## {} — {} ({})\n\n{}\n\n{}",
                    c.experiment,
                    c.metric,
                    c.unit,
                    c.banded_line(),
                    c.to_table().to_markdown()
                ));
            }
            out
        }
        Format::Csv => {
            let mut out = format!(
                "# mc: samples={}, seed={}\n{}",
                matrix.len(),
                matrix.seed(),
                sampled("# ")
            );
            for c in comparisons {
                out.push_str(&format!(
                    "# comparison: {} — {} ({})\n# {}\n{}",
                    c.experiment,
                    c.metric,
                    c.unit,
                    c.banded_line(),
                    c.to_table().to_csv()
                ));
            }
            out
        }
        Format::Text => {
            let mut out = format!(
                "==============================================================\n\
                 Monte-Carlo comparison — {} samples, seed {}\n\
                 ==============================================================\n\
                 {}",
                matrix.len(),
                matrix.seed(),
                sampled("")
            );
            for c in comparisons {
                out.push_str(&format!("\n{}\n{}", c.banded_line(), c.to_table().render()));
            }
            out
        }
    }
}

/// Replaces filename-hostile characters in a sweep-point label.
#[must_use]
pub fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '_') {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// The artifact filename for one job: `fig10@label.json` when sweeping,
/// `fig10.json` otherwise.
#[must_use]
pub fn artifact_file_name(key: &str, point: Option<&ScenarioPoint>, format: Format) -> String {
    match point {
        Some(point) => format!("{key}@{}.{}", sanitize(&point.label), format.extension()),
        None => format!("{key}.{}", format.extension()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_names_follow_the_cli_convention() {
        assert_eq!(
            artifact_file_name("fig10", None, Format::Json),
            "fig10.json"
        );
        assert_eq!(artifact_file_name("fig10", None, Format::Csv), "fig10.csv");
    }

    #[test]
    fn sanitize_keeps_filename_safe_characters() {
        assert_eq!(sanitize("grid.intensity=50"), "grid.intensity-50");
        assert_eq!(sanitize("a b/c"), "a-b-c");
    }

    #[test]
    fn mc_report_renders_in_every_format() {
        let matrix = MonteCarloMatrix::new(
            cc_report::Scenario::paper_defaults(),
            vec![cc_report::DistBinding::parse("fab.node_nm ~ triangular(5,7,10)").unwrap()],
            10_000,
            7,
        )
        .unwrap();
        let comparisons = vec![McComparison {
            experiment: "ext-facility".to_string(),
            metric: "cumulative-breakeven-year".to_string(),
            unit: "year".to_string(),
            threshold: None,
            stats: cc_analysis::stats::BandedSummary {
                n: 10_000,
                mean: 2014.6,
                stddev: 0.49,
                min: 2013.2,
                max: 2016.1,
                p05: 2013.8,
                p50: 2014.6,
                p95: 2015.4,
            },
        }];
        let text = render_mc_comparisons(&comparisons, &matrix, Format::Text);
        assert!(text.contains("Monte-Carlo comparison — 10000 samples, seed 7"));
        assert!(text.contains("sampled: fab.node_nm ~ triangular(5,7,10)"));
        assert!(text.contains("90% CI ±0.8 year"));
        let md = render_mc_comparisons(&comparisons, &matrix, Format::Markdown);
        assert!(md.contains("# Monte-Carlo comparison"));
        assert!(md.contains("- seed: 7"));
        let csv = render_mc_comparisons(&comparisons, &matrix, Format::Csv);
        assert!(csv.starts_with("# mc: samples=10000, seed=7\n"));
        let json = render_mc_comparisons(&comparisons, &matrix, Format::Json);
        let parsed = JsonValue::parse(&json).expect("valid JSON");
        assert_eq!(
            parsed
                .get("mc")
                .and_then(|m| m.get("seed"))
                .and_then(JsonValue::as_u64),
            Some(7)
        );
        assert!(json.contains(r#""p95":2015.4"#));
    }
}
