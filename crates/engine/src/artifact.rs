//! Artifact rendering shared by the CLI and the server.
//!
//! Both front-ends must emit byte-identical artifacts for the same
//! (experiment × scenario-point) job — the serve-smoke CI job diffs daemon
//! output against a one-shot `repro --sweep` run file-for-file — so the
//! rendering lives here, once. The JSON form is built as a [`JsonValue`]
//! first ([`artifact_json`]) so the server can embed the same value inside
//! its response envelope: `JsonValue::render` is deterministic and
//! round-trip stable, which is what makes the client's re-rendered files
//! match the CLI's bytes exactly.

use cc_core::experiments::Entry;
use cc_report::{
    Comparison, Experiment, ExperimentOutput, JsonValue, RunContext, ScenarioMatrix, ScenarioPoint,
};

/// Output format for artifacts and comparison reports.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Format {
    /// ASCII tables and charts (default).
    Text,
    /// Markdown sections.
    Markdown,
    /// CSV with `#` comment headers.
    Csv,
    /// One JSON document per artifact.
    Json,
}

impl Format {
    /// File extension for `--out` artifact files.
    #[must_use]
    pub fn extension(self) -> &'static str {
        match self {
            Self::Text => "txt",
            Self::Markdown => "md",
            Self::Csv => "csv",
            Self::Json => "json",
        }
    }
}

/// The JSON artifact for one (experiment × scenario-point) job, as a value:
/// experiment identity and tags, the sweep-point metadata when sweeping,
/// the full scenario, and the experiment output.
#[must_use]
pub fn artifact_json(
    entry: &Entry,
    experiment: &dyn Experiment,
    output: &ExperimentOutput,
    ctx: &RunContext,
    point: Option<&ScenarioPoint>,
) -> JsonValue {
    let mut fields = vec![
        ("key", JsonValue::from(entry.key)),
        ("title", JsonValue::from(experiment.id().to_string())),
        ("description", JsonValue::from(experiment.description())),
        (
            "tags",
            JsonValue::array(entry.tags.iter().map(|t| JsonValue::from(t.name()))),
        ),
    ];
    if let Some(point) = point {
        fields.push(("point", point.to_json()));
    }
    fields.push(("scenario", ctx.scenario().to_json()));
    fields.push(("output", output.to_json()));
    JsonValue::object(fields)
}

/// Renders one (experiment × scenario-point) artifact from an
/// already-computed output. Kept separate from the model run so the cache
/// can render a shared [`ExperimentOutput`] once per point, with each
/// point's own scenario/point metadata.
#[must_use]
pub fn render_artifact(
    entry: &Entry,
    experiment: &dyn Experiment,
    output: &ExperimentOutput,
    ctx: &RunContext,
    point: Option<&ScenarioPoint>,
    format: Format,
) -> String {
    match format {
        Format::Text => format!(
            "==============================================================\n\
             {} — {}\n\
             ==============================================================\n\
             {}",
            experiment.id(),
            experiment.description(),
            output.render()
        ),
        Format::Markdown => format!(
            "## {} — {}\n\n{}",
            experiment.id(),
            experiment.description(),
            output.render_markdown()
        ),
        Format::Csv => format!(
            "# {} — {}\n{}",
            experiment.id(),
            experiment.description(),
            output.render_csv()
        ),
        Format::Json => artifact_json(entry, experiment, output, ctx, point).render(),
    }
}

/// The cross-scenario comparison report, as a JSON value: the sweep specs,
/// point count, and every comparison.
#[must_use]
pub fn comparison_json(comparisons: &[Comparison], matrix: &ScenarioMatrix) -> JsonValue {
    JsonValue::object([
        (
            "sweep",
            JsonValue::array(matrix.specs().iter().map(|spec| {
                JsonValue::object([
                    ("path", JsonValue::from(spec.path.as_str())),
                    (
                        "values",
                        JsonValue::array(spec.values.iter().map(|v| JsonValue::from(v.as_str()))),
                    ),
                ])
            })),
        ),
        ("points", JsonValue::Integer(matrix.len() as u64)),
        (
            "comparisons",
            JsonValue::array(comparisons.iter().map(Comparison::to_json)),
        ),
    ])
}

/// Renders the cross-scenario comparison report in the selected format.
#[must_use]
pub fn render_comparisons(
    comparisons: &[Comparison],
    matrix: &ScenarioMatrix,
    format: Format,
) -> String {
    match format {
        Format::Json => comparison_json(comparisons, matrix).render(),
        Format::Markdown => {
            let mut out = String::from("# Cross-scenario comparison\n");
            for c in comparisons {
                out.push_str(&format!(
                    "\n## {} — {} ({})\n\n{}",
                    c.experiment,
                    c.metric,
                    c.unit,
                    c.to_table().to_markdown()
                ));
                if let Some(s) = c.summary() {
                    out.push_str(&format!(
                        "\nspread: min {:.4}, max {:.4}, mean {:.4}{}\n",
                        s.min,
                        s.max,
                        s.mean,
                        s.spread_ratio()
                            .map_or(String::new(), |r| format!(", {r:.2}x min..max")),
                    ));
                }
                for crossing in c.crossings() {
                    out.push_str(&format!("\ncrossing: {}\n", crossing.line));
                }
            }
            out
        }
        Format::Csv => {
            let mut out = String::new();
            for c in comparisons {
                out.push_str(&format!(
                    "# comparison: {} — {} ({})\n{}",
                    c.experiment,
                    c.metric,
                    c.unit,
                    c.to_table().to_csv()
                ));
                for crossing in c.crossings() {
                    out.push_str(&format!("# crossing: {}\n", crossing.line));
                }
            }
            out
        }
        Format::Text => {
            let mut out = format!(
                "==============================================================\n\
                 Cross-scenario comparison — {} sweep point(s)\n\
                 ==============================================================\n",
                matrix.len()
            );
            for c in comparisons {
                out.push_str(&format!(
                    "\n{} — {} ({})\n{}",
                    c.experiment,
                    c.metric,
                    c.unit,
                    c.to_table().render()
                ));
                if let Some(s) = c.summary() {
                    out.push_str(&format!(
                        "spread: min {:.4}, max {:.4}, mean {:.4}{}\n",
                        s.min,
                        s.max,
                        s.mean,
                        s.spread_ratio()
                            .map_or(String::new(), |r| format!(" ({r:.2}x min..max)")),
                    ));
                }
                for crossing in c.crossings() {
                    out.push_str(&format!("crossing: {}\n", crossing.line));
                }
            }
            out
        }
    }
}

/// Replaces filename-hostile characters in a sweep-point label.
#[must_use]
pub fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '_') {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// The artifact filename for one job: `fig10@label.json` when sweeping,
/// `fig10.json` otherwise.
#[must_use]
pub fn artifact_file_name(key: &str, point: Option<&ScenarioPoint>, format: Format) -> String {
    match point {
        Some(point) => format!("{key}@{}.{}", sanitize(&point.label), format.extension()),
        None => format!("{key}.{}", format.extension()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_names_follow_the_cli_convention() {
        assert_eq!(
            artifact_file_name("fig10", None, Format::Json),
            "fig10.json"
        );
        assert_eq!(artifact_file_name("fig10", None, Format::Csv), "fig10.csv");
    }

    #[test]
    fn sanitize_keeps_filename_safe_characters() {
        assert_eq!(sanitize("grid.intensity=50"), "grid.intensity-50");
        assert_eq!(sanitize("a b/c"), "a-b-c");
    }
}
