//! The newline-delimited-JSON protocol spoken by `repro serve`.
//!
//! One request per line, one or more response lines per request, every
//! line a single JSON document. Five operations (protocol version
//! [`PROTOCOL_VERSION`]):
//!
//! ```text
//! {"op":"hello"}
//! {"op":"run","id":1,"experiments":["fig10"],"sweep":["grid.intensity=10..800/100"],"jobs":4}
//! {"op":"batch","id":"sweep-a","runs":[{"experiments":["fig05"]},{"experiments":["fig10"]}]}
//! {"op":"stats"}
//! {"op":"shutdown"}
//! ```
//!
//! **Request ids (v2).** Any request may carry a client-chosen `id` — a
//! string or a non-negative integer — which the server echoes verbatim on
//! every response line the request produces. Id-tagged `run`/`batch`
//! requests are *multiplexed*: the server may interleave response lines of
//! different in-flight requests on one connection, and complete them out
//! of submission order. Requests without an `id` keep the v1 contract:
//! they are processed serially in submission order and their responses
//! carry no `id` field, so v1 clients work against a v2 server unchanged.
//!
//! A `run` request selects experiments by key and/or tag (both optional —
//! neither selects the full registry, as the CLI does), applies `--set`
//! style overrides from `"set"`, expands `"sweep"` specs into a scenario
//! matrix, and streams back one `artifact` line per (experiment × point)
//! job in grid order, a `comparison` line when sweeping, and a terminal
//! `done` line carrying the request's cache outcome. A `run` carrying
//! `"dists"` bindings (with `"samples"` and optionally `"seed"`) is a
//! Monte-Carlo sampling run instead: no per-sample artifact lines, one
//! `comparison` line holding the banded digests, then `done`. A `batch`
//! submits a whole sweep of runs in one frame: every element of `"runs"`
//! is validated up front (all-or-nothing), response lines carry a `run`
//! index alongside the batch's `id`, and one aggregate `done` terminates
//! the batch. Every field override and sweep path is validated against
//! the canonical `FIELDS` registry before anything runs; a request that
//! fails validation produces a single structured `error` line and leaves
//! the daemon (and its cache) untouched.
//!
//! The full wire contract — operations, response kinds, error categories
//! and the sampling fields — is specified normatively in
//! `docs/PROTOCOL.md`. The [`OPS`], [`RESPONSE_KINDS`] and
//! [`ERROR_CATEGORIES`] constants are the canonical in-code enumeration;
//! the conformance suite cross-checks them against the document so the
//! two cannot drift.
//!
//! Request parsing is deliberately strict about shape — unknown `op`
//! values, non-string experiment keys, or a non-object `set` are
//! [`ProtocolError`]s, not silent defaults — so client bugs surface as
//! structured errors instead of empty responses.

use crate::intern::{InternedScenario, ScenarioInterner};
use cc_core::experiments::{self, Entry, Tag};
use cc_report::{
    JsonValue, MonteCarloMatrix, RunContext, ScenarioError, ScenarioMatrix, ScenarioPoint,
    SweepSpec,
};
use std::sync::Arc;

/// The protocol version this build speaks, reported by the `hello` op.
/// Version 2 added request ids (multiplexing), `hello`, `batch` and the
/// `overloaded` backpressure error; every v1 request remains valid.
pub const PROTOCOL_VERSION: u64 = 2;

/// Every operation, exactly as `docs/PROTOCOL.md` enumerates them.
pub const OPS: [&str; 5] = ["hello", "run", "batch", "stats", "shutdown"];

/// Every response kind (`"type"` value), exactly as `docs/PROTOCOL.md`
/// enumerates them.
pub const RESPONSE_KINDS: [&str; 7] = [
    "hello",
    "artifact",
    "comparison",
    "done",
    "error",
    "stats",
    "bye",
];

/// Every error category, exactly as `docs/PROTOCOL.md` enumerates them.
pub const ERROR_CATEGORIES: [&str; 8] = [
    "malformed-request",
    "unknown-experiment",
    "unknown-tag",
    "unknown-field",
    "invalid-value",
    "invalid-scenario",
    "invalid-sweep",
    "overloaded",
];

/// A structured protocol error: a stable machine-readable category plus a
/// human-readable message. Rendered as
/// `{"type":"error","error":CATEGORY,"message":MESSAGE}`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError {
    /// Stable category, one of [`ERROR_CATEGORIES`]: `malformed-request`,
    /// `unknown-experiment`, `unknown-tag`, `unknown-field`,
    /// `invalid-value`, `invalid-scenario`, `invalid-sweep` or
    /// `overloaded`.
    pub category: &'static str,
    /// What went wrong, for humans.
    pub message: String,
}

impl ProtocolError {
    pub(crate) fn new(category: &'static str, message: impl Into<String>) -> Self {
        Self {
            category,
            message: message.into(),
        }
    }

    /// The error as a response line (without trailing newline).
    #[must_use]
    pub fn to_response(&self) -> String {
        JsonValue::object([
            ("type", JsonValue::from("error")),
            ("error", JsonValue::from(self.category)),
            ("message", JsonValue::from(self.message.as_str())),
        ])
        .render()
    }
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.category, self.message)
    }
}

impl std::error::Error for ProtocolError {}

/// Maps a scenario-application failure onto a protocol error category:
/// the category distinguishes "no such field" from "value didn't parse"
/// from "value out of physical range" so clients can react precisely.
pub(crate) fn scenario_error(e: &ScenarioError) -> ProtocolError {
    let category = match e {
        ScenarioError::UnknownKey(_) => "unknown-field",
        ScenarioError::InvalidValue { .. } | ScenarioError::UnknownSource(_) => "invalid-value",
        ScenarioError::Parse { .. } | ScenarioError::Invalid(_) => "invalid-scenario",
    };
    ProtocolError::new(category, e.to_string())
}

/// A client-chosen request id: a JSON string or non-negative integer,
/// echoed verbatim on every response line the request produces.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RequestId {
    /// A string id (`"id":"sweep-7"`).
    Text(String),
    /// A non-negative integer id (`"id":42`).
    Number(u64),
}

impl RequestId {
    /// The id as the JSON value the server echoes back.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        match self {
            Self::Text(s) => JsonValue::from(s.as_str()),
            Self::Number(n) => JsonValue::Integer(*n),
        }
    }
}

impl std::fmt::Display for RequestId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Text(s) => write!(f, "{s}"),
            Self::Number(n) => write!(f, "{n}"),
        }
    }
}

/// A parsed protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Report the protocol version and the server's operational limits.
    Hello,
    /// Run experiments over a (possibly one-point) scenario matrix.
    Run(RunRequest),
    /// Run several `run` payloads submitted in one frame.
    Batch(Vec<RunRequest>),
    /// Return the engine's [`crate::EngineStats`] snapshot.
    Stats,
    /// Stop the daemon after acknowledging.
    Shutdown,
}

/// One request line, parsed: the optional client id plus the request.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// The client-chosen id, echoed on every response to this request.
    /// `None` means a v1-style request: serial processing, no id echo.
    pub id: Option<RequestId>,
    /// The request itself.
    pub request: Request,
}

/// A rejected request line: the error plus the id it should be billed to,
/// when one could still be recovered from the malformed frame.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameError {
    /// The request's id, when the frame parsed far enough to carry one.
    pub id: Option<RequestId>,
    /// What was wrong with the line.
    pub error: ProtocolError,
}

impl FrameError {
    fn anonymous(error: ProtocolError) -> Self {
        Self { id: None, error }
    }
}

/// The payload of a `run` request, mirroring the CLI's selection flags.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct RunRequest {
    /// Experiment keys (like repeated `--experiment`).
    pub keys: Vec<String>,
    /// Tag names (like repeated `--tag`, AND-ed).
    pub tags: Vec<String>,
    /// Scenario overrides (like repeated `--set`), in request order.
    pub sets: Vec<(String, String)>,
    /// Sweep specs (like repeated `--sweep`), in request order.
    pub sweeps: Vec<String>,
    /// Distribution bindings (`path ~ dist(args)`, like `--set` with a
    /// `~`), in request order. Non-empty turns the run into a Monte-Carlo
    /// sampling run.
    pub dists: Vec<String>,
    /// Monte-Carlo sample count (like `--samples`; required with `dists`).
    pub samples: Option<usize>,
    /// Monte-Carlo RNG seed (like `--seed`; defaults to 0).
    pub seed: Option<u64>,
    /// Worker threads for this request's grid (server-clamped).
    pub jobs: Option<usize>,
    /// Bypass the resident cache, one model run per grid cell.
    pub no_cache: bool,
}

/// A fully validated `run` request, ready for the grid runner.
pub struct ResolvedRun {
    /// Selected experiments, in registry order for tag selections and
    /// request order for explicit keys.
    pub entries: Vec<&'static Entry>,
    /// The expanded scenario matrix.
    pub matrix: ScenarioMatrix,
    /// The matrix's points, materialized.
    pub points: Vec<ScenarioPoint>,
    /// One validated run context per point.
    pub contexts: Vec<RunContext>,
    /// When set, the request is a Monte-Carlo sampling run: the server
    /// routes it through [`crate::Engine::run_mc`] instead of the grid
    /// runner, and `matrix`/`points`/`contexts` hold only the base
    /// scenario's single point.
    pub mc: Option<MonteCarloMatrix>,
    /// The validated payload this run resolved from — shared with every
    /// other in-flight request carrying the identical `set`/`dists`
    /// payload when an interner resolved it. The server hangs rendered
    /// non-sweep artifact text off it via
    /// [`InternedScenario::rendered_artifact`].
    pub base: Arc<InternedScenario>,
}

/// Coerces a JSON scalar into the text form `Scenario::set` parses. JSON
/// numbers arrive as `f64`/`u64`; scenario fields expect the token the user
/// would have typed, so integral values render without a fraction.
fn value_text(value: &JsonValue) -> Result<String, ProtocolError> {
    match value {
        JsonValue::String(s) => Ok(s.clone()),
        JsonValue::Integer(n) => Ok(n.to_string()),
        JsonValue::Number(n) if n.fract() == 0.0 && n.abs() < 1e15 => Ok(format!("{}", *n as i64)),
        JsonValue::Number(n) => Ok(format!("{n:?}")),
        JsonValue::Bool(b) => Ok(b.to_string()),
        other => Err(ProtocolError::new(
            "malformed-request",
            format!("scenario values must be scalars, got {}", kind(other)),
        )),
    }
}

fn kind(value: &JsonValue) -> &'static str {
    match value {
        JsonValue::Null => "null",
        JsonValue::Bool(_) => "a boolean",
        JsonValue::Integer(_) | JsonValue::Number(_) => "a number",
        JsonValue::String(_) => "a string",
        JsonValue::Array(_) => "an array",
        JsonValue::Object(_) => "an object",
    }
}

/// Extracts a `["a","b"]` field as strings; `None` if absent.
fn string_list(request: &JsonValue, field: &str) -> Result<Vec<String>, ProtocolError> {
    let Some(value) = request.get(field) else {
        return Ok(Vec::new());
    };
    let items = value.as_array().ok_or_else(|| {
        ProtocolError::new(
            "malformed-request",
            format!("`{field}` must be an array of strings"),
        )
    })?;
    items
        .iter()
        .map(|item| {
            item.as_str().map(str::to_string).ok_or_else(|| {
                ProtocolError::new(
                    "malformed-request",
                    format!("`{field}` must contain only strings"),
                )
            })
        })
        .collect()
}

/// Parses one request line into a [`Request`], discarding any id — the
/// v1 entry point, kept for callers that handle requests serially.
pub fn parse_request(line: &str) -> Result<Request, ProtocolError> {
    parse_frame(line).map(|f| f.request).map_err(|e| e.error)
}

/// Parses one request line into a [`Frame`]. A rejected line still
/// reports the id it carried whenever the JSON parsed far enough to
/// recover one, so multiplexing clients can bill the error to the right
/// in-flight request.
pub fn parse_frame(line: &str) -> Result<Frame, FrameError> {
    let value = JsonValue::parse(line).map_err(|e| {
        FrameError::anonymous(ProtocolError::new("malformed-request", e.to_string()))
    })?;
    if value.as_object().is_none() {
        return Err(FrameError::anonymous(ProtocolError::new(
            "malformed-request",
            "a request must be a JSON object",
        )));
    }
    let id = parse_id(&value).map_err(FrameError::anonymous)?;
    let fail = |error| FrameError {
        id: id.clone(),
        error,
    };
    let op = value.get("op").and_then(JsonValue::as_str).ok_or_else(|| {
        fail(ProtocolError::new(
            "malformed-request",
            "missing string field `op`",
        ))
    })?;
    let request = match op {
        "hello" => Request::Hello,
        "stats" => Request::Stats,
        "shutdown" => Request::Shutdown,
        "run" => Request::Run(parse_run_body(&value).map_err(&fail)?),
        "batch" => {
            let runs = value.get("runs").ok_or_else(|| {
                fail(ProtocolError::new(
                    "malformed-request",
                    "`batch` requires a `runs` array",
                ))
            })?;
            let items = runs.as_array().ok_or_else(|| {
                fail(ProtocolError::new(
                    "malformed-request",
                    "`runs` must be an array of run objects",
                ))
            })?;
            if items.is_empty() {
                return Err(fail(ProtocolError::new(
                    "malformed-request",
                    "`runs` must not be empty",
                )));
            }
            let runs = items
                .iter()
                .enumerate()
                .map(|(i, item)| {
                    if item.as_object().is_none() {
                        return Err(ProtocolError::new(
                            "malformed-request",
                            format!("`runs[{i}]` must be a run object"),
                        ));
                    }
                    parse_run_body(item).map_err(|e| {
                        ProtocolError::new(e.category, format!("runs[{i}]: {}", e.message))
                    })
                })
                .collect::<Result<Vec<_>, _>>()
                .map_err(&fail)?;
            Request::Batch(runs)
        }
        other => {
            return Err(fail(ProtocolError::new(
                "malformed-request",
                format!("unknown op `{other}`"),
            )))
        }
    };
    Ok(Frame { id, request })
}

/// Extracts the optional `id` field: a string or a non-negative integer.
fn parse_id(value: &JsonValue) -> Result<Option<RequestId>, ProtocolError> {
    match value.get("id") {
        None => Ok(None),
        Some(JsonValue::String(s)) => Ok(Some(RequestId::Text(s.clone()))),
        Some(JsonValue::Integer(n)) => Ok(Some(RequestId::Number(*n))),
        Some(other) => Err(ProtocolError::new(
            "malformed-request",
            format!(
                "`id` must be a string or a non-negative integer, got {}",
                kind(other)
            ),
        )),
    }
}

/// Parses the body of one `run` payload — either a whole `run` request
/// or one element of a `batch`'s `runs` array.
fn parse_run_body(value: &JsonValue) -> Result<RunRequest, ProtocolError> {
    let keys = string_list(value, "experiments")?;
    let tags = string_list(value, "tags")?;
    let sweeps = string_list(value, "sweep")?;
    let dists = string_list(value, "dists")?;
    let samples = match value.get("samples") {
        None => None,
        Some(samples) => Some(
            samples
                .as_u64()
                .map(|n| n as usize)
                .filter(|&n| n >= 1)
                .ok_or_else(|| {
                    ProtocolError::new("malformed-request", "`samples` must be a positive integer")
                })?,
        ),
    };
    let seed = match value.get("seed") {
        None => None,
        Some(seed) => Some(seed.as_u64().ok_or_else(|| {
            ProtocolError::new("malformed-request", "`seed` must be a non-negative integer")
        })?),
    };
    let sets = match value.get("set") {
        None => Vec::new(),
        Some(set) => {
            let pairs = set.as_object().ok_or_else(|| {
                ProtocolError::new("malformed-request", "`set` must be an object")
            })?;
            pairs
                .iter()
                .map(|(key, v)| Ok((key.clone(), value_text(v)?)))
                .collect::<Result<Vec<_>, ProtocolError>>()?
        }
    };
    let jobs = match value.get("jobs") {
        None => None,
        Some(jobs) => Some(
            jobs.as_u64()
                .map(|n| n as usize)
                .filter(|&n| n >= 1)
                .ok_or_else(|| {
                    ProtocolError::new("malformed-request", "`jobs` must be a positive integer")
                })?,
        ),
    };
    let no_cache = match value.get("no_cache") {
        None => false,
        Some(flag) => flag.as_bool().ok_or_else(|| {
            ProtocolError::new("malformed-request", "`no_cache` must be a boolean")
        })?,
    };
    Ok(RunRequest {
        keys,
        tags,
        sets,
        sweeps,
        dists,
        samples,
        seed,
        jobs,
        no_cache,
    })
}

impl RunRequest {
    /// Validates the request against the experiment registry and the
    /// canonical scenario `FIELDS`, expanding it into entries, a matrix,
    /// points and run contexts. Nothing runs here — a failing request is
    /// rejected before it can touch the engine or its cache.
    pub fn resolve(&self) -> Result<ResolvedRun, ProtocolError> {
        self.resolve_with(None)
    }

    /// [`Self::resolve`] with an optional [`ScenarioInterner`]: when one
    /// is supplied, a repeated `set`/`dists` payload reuses the interned
    /// validated base scenario instead of re-validating it, so a daemon
    /// replaying identical scenarios skips the per-request validation
    /// cost entirely.
    pub fn resolve_with(
        &self,
        interner: Option<&ScenarioInterner>,
    ) -> Result<ResolvedRun, ProtocolError> {
        let tags: Vec<Tag> = self
            .tags
            .iter()
            .map(|name| {
                Tag::parse(name).ok_or_else(|| {
                    ProtocolError::new("unknown-tag", format!("unknown tag `{name}`"))
                })
            })
            .collect::<Result<_, _>>()?;

        let entries: Vec<&'static Entry> = if self.keys.is_empty() {
            experiments::with_tags(&tags)
        } else {
            self.keys
                .iter()
                .map(|key| {
                    let entry = experiments::find_entry(key).ok_or_else(|| {
                        ProtocolError::new(
                            "unknown-experiment",
                            format!("unknown experiment `{key}`"),
                        )
                    })?;
                    if let Some(&missing) = tags.iter().find(|&&t| !entry.has_tag(t)) {
                        return Err(ProtocolError::new(
                            "unknown-experiment",
                            format!("experiment `{key}` does not carry tag `{missing}`"),
                        ));
                    }
                    Ok(entry)
                })
                .collect::<Result<_, _>>()?
        };
        if entries.is_empty() {
            return Err(ProtocolError::new(
                "unknown-experiment",
                "no experiments match the given keys/tags",
            ));
        }

        // The validated base scenario plus parsed dist bindings — interned
        // when an interner is supplied, so identical payloads validate once.
        let base: Arc<InternedScenario> = match interner {
            Some(interner) => interner.resolve(&self.sets, &self.dists)?,
            None => Arc::new(InternedScenario::build(&self.sets, &self.dists)?),
        };

        // Monte-Carlo sampling and enumerated sweeps are mutually
        // exclusive: a sampled axis has no fixed point labels for a grid.
        let mc = if self.dists.is_empty() {
            if self.samples.is_some() || self.seed.is_some() {
                return Err(ProtocolError::new(
                    "invalid-sweep",
                    "`samples`/`seed` require at least one `dists` binding",
                ));
            }
            None
        } else {
            if !self.sweeps.is_empty() {
                return Err(ProtocolError::new(
                    "invalid-sweep",
                    "`dists` cannot be combined with `sweep`",
                ));
            }
            let samples = self.samples.ok_or_else(|| {
                ProtocolError::new("invalid-sweep", "`dists` requires a `samples` count")
            })?;
            Some(
                MonteCarloMatrix::new(
                    base.scenario.clone(),
                    base.bindings.clone(),
                    samples,
                    self.seed.unwrap_or(0),
                )
                .map_err(|e| ProtocolError::new("invalid-sweep", e.to_string()))?,
            )
        };

        let sweeps: Vec<SweepSpec> = self
            .sweeps
            .iter()
            .map(|spec| {
                SweepSpec::parse(spec)
                    .map_err(|e| ProtocolError::new("invalid-sweep", e.to_string()))
            })
            .collect::<Result<_, _>>()?;
        let matrix = ScenarioMatrix::new(base.scenario.clone(), sweeps)
            .map_err(|e| ProtocolError::new("invalid-sweep", e.to_string()))?;
        let points: Vec<ScenarioPoint> = matrix.points().collect();
        let contexts: Vec<RunContext> = points
            .iter()
            .map(|p| {
                RunContext::try_from_overlay(p.overlay.clone()).map_err(|e| scenario_error(&e))
            })
            .collect::<Result<_, _>>()?;

        Ok(ResolvedRun {
            entries,
            matrix,
            points,
            contexts,
            mc,
            base,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_three_operations() {
        assert_eq!(parse_request(r#"{"op":"stats"}"#), Ok(Request::Stats));
        assert_eq!(parse_request(r#"{"op":"shutdown"}"#), Ok(Request::Shutdown));
        let run = parse_request(
            r#"{"op":"run","experiments":["fig10"],"tags":["mobile"],
                "set":{"grid.intensity":50,"device.lifetime":"3"},
                "sweep":["grid.intensity=100,300"],"jobs":4,"no_cache":true}"#,
        )
        .expect("valid run request");
        let Request::Run(run) = run else {
            panic!("expected a run request");
        };
        assert_eq!(run.keys, ["fig10"]);
        assert_eq!(run.tags, ["mobile"]);
        assert_eq!(
            run.sets,
            [
                ("grid.intensity".to_string(), "50".to_string()),
                ("device.lifetime".to_string(), "3".to_string()),
            ]
        );
        assert_eq!(run.sweeps, ["grid.intensity=100,300"]);
        assert_eq!(run.jobs, Some(4));
        assert!(run.no_cache);
    }

    #[test]
    fn malformed_lines_are_structured_errors() {
        for line in [
            "{oops",
            "[]",
            "{}",
            r#"{"op":"dance"}"#,
            r#"{"op":"run","jobs":0}"#,
        ] {
            let err = parse_request(line).expect_err("must be rejected");
            assert_eq!(err.category, "malformed-request", "line: {line}");
        }
        let rendered = parse_request("{oops").unwrap_err().to_response();
        let parsed = JsonValue::parse(&rendered).expect("error responses are valid JSON");
        assert_eq!(
            parsed.get("type").and_then(JsonValue::as_str),
            Some("error")
        );
    }

    fn rejection(request: &RunRequest) -> ProtocolError {
        request.resolve().err().expect("request must be rejected")
    }

    #[test]
    fn resolve_validates_against_the_registries() {
        let unknown = RunRequest {
            keys: vec!["fig99".into()],
            ..RunRequest::default()
        };
        assert_eq!(rejection(&unknown).category, "unknown-experiment");

        let bad_tag = RunRequest {
            tags: vec!["quantum".into()],
            ..RunRequest::default()
        };
        assert_eq!(rejection(&bad_tag).category, "unknown-tag");

        let bad_field = RunRequest {
            keys: vec!["fig10".into()],
            sets: vec![("grid.wattage".into(), "5".into())],
            ..RunRequest::default()
        };
        assert_eq!(rejection(&bad_field).category, "unknown-field");

        let bad_value = RunRequest {
            keys: vec!["fig10".into()],
            sets: vec![("grid.intensity".into(), "emerald".into())],
            ..RunRequest::default()
        };
        assert_eq!(rejection(&bad_value).category, "invalid-value");

        let bad_range = RunRequest {
            keys: vec!["fig10".into()],
            sets: vec![("grid.intensity".into(), "-5".into())],
            ..RunRequest::default()
        };
        let err = rejection(&bad_range);
        assert!(
            err.category == "invalid-scenario" || err.category == "invalid-value",
            "out-of-range value maps to a validation category, got {}",
            err.category
        );

        let bad_sweep = RunRequest {
            keys: vec!["fig10".into()],
            sweeps: vec!["grid.intensity=10..".into()],
            ..RunRequest::default()
        };
        assert_eq!(rejection(&bad_sweep).category, "invalid-sweep");
    }

    #[test]
    fn resolve_expands_a_valid_sweep() {
        let request = RunRequest {
            keys: vec!["fig10".into()],
            sweeps: vec!["grid.intensity=100,300,500".into()],
            ..RunRequest::default()
        };
        let resolved = request.resolve().expect("valid request");
        assert_eq!(resolved.entries.len(), 1);
        assert_eq!(resolved.points.len(), 3);
        assert_eq!(resolved.contexts.len(), 3);
        assert!(resolved.matrix.is_sweep());
    }

    #[test]
    fn monte_carlo_requests_parse_and_resolve() {
        let run = parse_request(
            r#"{"op":"run","experiments":["ext-facility"],
                "dists":["fab.node_nm ~ triangular(5,7,10)"],"samples":100,"seed":7}"#,
        )
        .expect("valid mc request");
        let Request::Run(run) = run else {
            panic!("expected a run request");
        };
        assert_eq!(run.dists, ["fab.node_nm ~ triangular(5,7,10)"]);
        assert_eq!(run.samples, Some(100));
        assert_eq!(run.seed, Some(7));
        let resolved = run.resolve().expect("valid mc request resolves");
        let mc = resolved.mc.expect("mc matrix present");
        assert_eq!(mc.len(), 100);
        assert_eq!(mc.seed(), 7);
        assert_eq!(resolved.points.len(), 1, "base scenario point only");

        // Seed defaults to 0 when absent.
        let request = RunRequest {
            keys: vec!["ext-facility".into()],
            dists: vec!["fab.node_nm ~ triangular(5,7,10)".into()],
            samples: Some(10),
            ..RunRequest::default()
        };
        let resolved = request.resolve().expect("seedless mc request resolves");
        assert_eq!(resolved.mc.expect("mc matrix").seed(), 0);
    }

    #[test]
    fn monte_carlo_requests_validate_their_shape() {
        for line in [
            r#"{"op":"run","samples":0}"#,
            r#"{"op":"run","samples":"many"}"#,
            r#"{"op":"run","seed":"lucky"}"#,
            r#"{"op":"run","dists":"not-a-list"}"#,
        ] {
            let err = parse_request(line).expect_err("must be rejected");
            assert_eq!(err.category, "malformed-request", "line: {line}");
        }
        let base = RunRequest {
            keys: vec!["ext-facility".into()],
            ..RunRequest::default()
        };
        // samples/seed without dists.
        let orphan = RunRequest {
            samples: Some(100),
            ..base.clone()
        };
        assert_eq!(rejection(&orphan).category, "invalid-sweep");
        // dists without samples.
        let uncounted = RunRequest {
            dists: vec!["fab.node_nm ~ triangular(5,7,10)".into()],
            ..base.clone()
        };
        assert_eq!(rejection(&uncounted).category, "invalid-sweep");
        // dists combined with a sweep.
        let mixed = RunRequest {
            dists: vec!["fab.node_nm ~ triangular(5,7,10)".into()],
            samples: Some(10),
            sweeps: vec!["grid.intensity=100,300".into()],
            ..base.clone()
        };
        assert_eq!(rejection(&mixed).category, "invalid-sweep");
        // A malformed binding.
        let garbled = RunRequest {
            dists: vec!["fab.node_nm ~ parabola(1,2)".into()],
            samples: Some(10),
            ..base
        };
        assert_eq!(rejection(&garbled).category, "invalid-sweep");
    }

    #[test]
    fn frames_carry_optional_ids() {
        let frame = parse_frame(r#"{"op":"stats","id":"abc"}"#).expect("valid frame");
        assert_eq!(frame.id, Some(RequestId::Text("abc".into())));
        assert_eq!(frame.request, Request::Stats);
        let frame = parse_frame(r#"{"op":"hello","id":42}"#).expect("valid frame");
        assert_eq!(frame.id, Some(RequestId::Number(42)));
        assert_eq!(frame.request, Request::Hello);
        let frame = parse_frame(r#"{"op":"shutdown"}"#).expect("valid frame");
        assert_eq!(frame.id, None);

        // A malformed op still reports the id it was billed to.
        let err = parse_frame(r#"{"op":"dance","id":7}"#).expect_err("rejected");
        assert_eq!(err.id, Some(RequestId::Number(7)));
        assert_eq!(err.error.category, "malformed-request");
        // A bad id is itself malformed, and anonymous.
        let err = parse_frame(r#"{"op":"stats","id":[1]}"#).expect_err("rejected");
        assert_eq!(err.id, None);
        assert_eq!(err.error.category, "malformed-request");
        let err = parse_frame(r#"{"op":"stats","id":-4}"#).expect_err("rejected");
        assert_eq!(err.error.category, "malformed-request");
    }

    #[test]
    fn batch_frames_parse_and_validate_shape() {
        let frame = parse_frame(
            r#"{"op":"batch","id":"b","runs":[{"experiments":["fig05"]},{"experiments":["fig10"],"jobs":2}]}"#,
        )
        .expect("valid batch");
        let Request::Batch(runs) = frame.request else {
            panic!("expected a batch request");
        };
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].keys, ["fig05"]);
        assert_eq!(runs[1].jobs, Some(2));

        for line in [
            r#"{"op":"batch"}"#,
            r#"{"op":"batch","runs":"all"}"#,
            r#"{"op":"batch","runs":[]}"#,
            r#"{"op":"batch","runs":[7]}"#,
        ] {
            let err = parse_frame(line).expect_err("rejected");
            assert_eq!(err.error.category, "malformed-request", "line: {line}");
        }
        // A bad element names its index.
        let err = parse_frame(r#"{"op":"batch","runs":[{"jobs":0}]}"#).expect_err("rejected");
        assert!(err.error.message.starts_with("runs[0]:"), "{}", err.error);
    }

    #[test]
    fn canonical_enumerations_are_distinct() {
        for list in [&OPS[..], &RESPONSE_KINDS[..], &ERROR_CATEGORIES[..]] {
            let unique: std::collections::BTreeSet<_> = list.iter().collect();
            assert_eq!(unique.len(), list.len());
        }
    }

    #[test]
    fn json_scalars_coerce_to_cli_value_tokens() {
        assert_eq!(value_text(&JsonValue::from("coal")).unwrap(), "coal");
        assert_eq!(value_text(&JsonValue::Integer(60000)).unwrap(), "60000");
        assert_eq!(value_text(&JsonValue::Number(3.0)).unwrap(), "3");
        assert_eq!(value_text(&JsonValue::Number(0.35)).unwrap(), "0.35");
        assert_eq!(value_text(&JsonValue::Bool(true)).unwrap(), "true");
        assert!(value_text(&JsonValue::Array(Vec::new())).is_err());
    }
}
