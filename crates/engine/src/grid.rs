//! The streaming (scenario-point × experiment) grid runner.
//!
//! The grid is first compressed into [`WorkGroup`]s — one per distinct
//! `(experiment, dependency fingerprint)` — then scheduled on up to
//! `jobs` worker threads pulling off a shared atomic cursor. Each group
//! runs its models at most once (and, through the engine's shared cache,
//! possibly zero times); every member point's artifact is rendered from
//! the shared output with that point's own metadata and streamed to the
//! caller's sink in grid order via a small reorder buffer.
//!
//! The renderer runs *on the worker threads* (rendering large tables is
//! real work worth parallelizing); the sink runs under the sequencer lock,
//! strictly in job order — exactly the contract the historical CLI had, so
//! its stdout stays byte-identical.

use crate::artifact::Format;
use crate::cache::Outcome;
use crate::{Engine, EngineError};
use cc_core::experiments::Entry;
use cc_report::{
    dedup_groups, Comparison, Experiment, ExperimentOutput, RunContext, Scalar, ScenarioMatrix,
    ScenarioOverlay, ScenarioPoint,
};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Knobs for one grid run.
#[derive(Clone, Copy, Debug)]
pub struct GridConfig {
    /// Worker threads (clamped to the number of work groups).
    pub jobs: usize,
    /// Run every (experiment × point) job even when the experiment's
    /// declared scenario dependencies say the output is identical across
    /// points. Also bypasses the engine's resident cache — `--no-cache`
    /// promises a model run per grid cell.
    pub no_cache: bool,
    /// Output format handed to the renderer.
    pub format: Format,
}

/// One unit of scheduled work: an experiment plus every grid point sharing
/// one dependency fingerprint. The first point is the representative whose
/// context actually runs the models; the remaining points reuse the output
/// (their declared-dependency fields are identical, so so is the output).
pub struct WorkGroup {
    /// Index into the selected-entries slice.
    pub entry_idx: usize,
    /// Grid points sharing the representative's fingerprint.
    pub point_idxs: Vec<usize>,
}

/// Groups the (experiment × point) grid by dependency fingerprint. With
/// `no_cache` every job is its own group, restoring one model run per grid
/// cell.
#[must_use]
pub fn build_groups(
    entries: &[&'static Entry],
    points: &[ScenarioPoint],
    no_cache: bool,
) -> Vec<WorkGroup> {
    let overlays: Vec<&ScenarioOverlay> = points.iter().map(|p| &p.overlay).collect();
    let mut groups = Vec::new();
    for (entry_idx, entry) in entries.iter().enumerate() {
        if no_cache {
            groups.extend((0..points.len()).map(|point_idx| WorkGroup {
                entry_idx,
                point_idxs: vec![point_idx],
            }));
        } else {
            groups.extend(
                dedup_groups(&overlays, entry.deps())
                    .into_iter()
                    .map(|point_idxs| WorkGroup {
                        entry_idx,
                        point_idxs,
                    }),
            );
        }
    }
    groups
}

/// Everything a renderer needs for one (experiment × point) artifact.
pub struct GridJob<'a> {
    /// The experiment's registry entry.
    pub entry: &'static Entry,
    /// Index of `entry` in the selected slice.
    pub entry_idx: usize,
    /// Index of `point` in the grid.
    pub point_idx: usize,
    /// The sweep point this artifact belongs to.
    pub point: &'a ScenarioPoint,
    /// The point's run context (scenario included).
    pub context: &'a RunContext,
    /// The built experiment (identity/description only — already run).
    pub experiment: &'a dyn Experiment,
    /// The computed (possibly cache-shared) output.
    pub output: &'a ExperimentOutput,
    /// Whether the grid has more than one point (artifacts carry point
    /// metadata only when sweeping).
    pub sweeping: bool,
    /// Output format from the [`GridConfig`].
    pub format: Format,
}

/// What one grid run produced, beyond the streamed artifacts.
pub struct GridResult {
    /// Per-job scalar lists, indexed `entry_idx * npoints + point_idx`; the
    /// first scalar is the experiment's summary.
    pub scalars: Vec<Vec<Scalar>>,
    /// Per-entry model-run *plan* counts (one per work group — the cache
    /// footer's "N runs"). Deliberately independent of cache outcomes so a
    /// warm and a cold cache print identical footers.
    pub run_counts: Vec<usize>,
    /// Per-entry groups whose artifact this process computed fresh (an
    /// in-memory miss the disk cache could not answer). The disk footer's
    /// "N recomputes".
    pub disk_runs: Vec<usize>,
    /// Per-entry groups answered by the persistent on-disk cache. Always
    /// zero when the engine has no disk cache attached.
    pub disk_hits: Vec<usize>,
    /// Cache lookups this grid answered from resident artifacts.
    pub hits: u64,
    /// Cache lookups this grid computed fresh.
    pub misses: u64,
    /// Cache lookups this grid deduplicated against another in-flight
    /// computation.
    pub inflight_dedups: u64,
}

/// Reorder buffer between out-of-order job completion and in-order output:
/// workers hand in `(job index, lines)`, the sequencer forwards every line
/// whose predecessors have all arrived, buffering only the gap.
struct Sequencer {
    next: usize,
    pending: BTreeMap<usize, Vec<String>>,
}

impl Sequencer {
    fn new() -> Self {
        Self {
            next: 0,
            pending: BTreeMap::new(),
        }
    }

    fn complete(&mut self, index: usize, lines: Vec<String>, sink: &(dyn Fn(String) + Sync)) {
        self.pending.insert(index, lines);
        while let Some(lines) = self.pending.remove(&self.next) {
            for line in lines {
                sink(line);
            }
            self.next += 1;
        }
    }
}

impl Engine {
    /// Runs the (experiment × point) grid on up to `config.jobs` worker
    /// threads, one model run per [`WorkGroup`] at most — repeats are
    /// answered from the engine's resident cache (unless `no_cache`), and
    /// concurrent grids racing on a fingerprint compute it exactly once.
    ///
    /// `render` turns each job into output lines *on the worker thread*;
    /// `sink` receives those lines strictly in grid order
    /// (`entry_idx * npoints + point_idx`).
    pub fn run_grid<R, S>(
        &self,
        entries: &[&'static Entry],
        points: &[ScenarioPoint],
        contexts: &[RunContext],
        config: &GridConfig,
        render: R,
        sink: S,
    ) -> GridResult
    where
        R: Fn(&GridJob<'_>) -> Vec<String> + Sync,
        S: Fn(String) + Sync,
    {
        let npoints = points.len();
        let total = entries.len() * npoints;
        let sweeping = npoints > 1;
        let groups = build_groups(entries, points, config.no_cache);
        let mut run_counts = vec![0usize; entries.len()];
        for group in &groups {
            run_counts[group.entry_idx] += 1;
        }
        let scalars: Vec<Mutex<Vec<Scalar>>> = (0..total).map(|_| Mutex::new(Vec::new())).collect();
        let sequencer = Mutex::new(Sequencer::new());
        let next_group = AtomicUsize::new(0);
        let (hits, misses, dedups) = (AtomicU64::new(0), AtomicU64::new(0), AtomicU64::new(0));
        let disk_runs: Vec<AtomicUsize> = (0..entries.len()).map(|_| AtomicUsize::new(0)).collect();
        let disk_hits: Vec<AtomicUsize> = (0..entries.len()).map(|_| AtomicUsize::new(0)).collect();

        // Shared by the sequential path and every worker: obtain one group's
        // output (cache or fresh run), then render every member point's
        // artifact (each with its own point/scenario metadata) and queue its
        // lines for in-order delivery.
        let process = |group: &WorkGroup| {
            let entry = entries[group.entry_idx];
            let experiment = entry.build();
            let representative = &contexts[group.point_idxs[0]];
            let output: Arc<ExperimentOutput> = if config.no_cache {
                Arc::new(experiment.run(representative))
            } else {
                let fingerprint = entry.fingerprint(&points[group.point_idxs[0]].overlay);
                let (output, outcome) =
                    self.cache().get_or_compute((entry.key, fingerprint), || {
                        // In-memory miss: consult the persistent cache before
                        // running models, and write back anything computed.
                        if let Some(disk) = self.disk() {
                            if let Some(stored) = disk.load(entry.key, fingerprint) {
                                disk_hits[group.entry_idx].fetch_add(1, Ordering::Relaxed);
                                return stored;
                            }
                        }
                        let fresh = experiment.run(representative);
                        if let Some(disk) = self.disk() {
                            disk.store(entry.key, fingerprint, &fresh);
                        }
                        disk_runs[group.entry_idx].fetch_add(1, Ordering::Relaxed);
                        fresh
                    });
                match outcome {
                    Outcome::Hit => hits.fetch_add(1, Ordering::Relaxed),
                    Outcome::Miss => misses.fetch_add(1, Ordering::Relaxed),
                    Outcome::InflightDedup => dedups.fetch_add(1, Ordering::Relaxed),
                };
                output
            };
            for &point_idx in &group.point_idxs {
                let job_index = group.entry_idx * npoints + point_idx;
                let job = GridJob {
                    entry,
                    entry_idx: group.entry_idx,
                    point_idx,
                    point: &points[point_idx],
                    context: &contexts[point_idx],
                    experiment: experiment.as_ref(),
                    output: &output,
                    sweeping,
                    format: config.format,
                };
                let lines = render(&job);
                *scalars[job_index].lock().expect("no panics under lock") = output.scalars.clone();
                sequencer
                    .lock()
                    .expect("no panics under lock")
                    .complete(job_index, lines, &sink);
            }
        };

        let workers = config.jobs.min(groups.len().max(1));
        if workers <= 1 {
            for group in &groups {
                process(group);
            }
        } else {
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        let group_index = next_group.fetch_add(1, Ordering::Relaxed);
                        let Some(group) = groups.get(group_index) else {
                            break;
                        };
                        process(group);
                    });
                }
            });
        }

        GridResult {
            scalars: scalars
                .into_iter()
                .map(|slot| slot.into_inner().expect("no panics under lock"))
                .collect(),
            run_counts,
            disk_runs: disk_runs.into_iter().map(AtomicUsize::into_inner).collect(),
            disk_hits: disk_hits.into_iter().map(AtomicUsize::into_inner).collect(),
            hits: hits.into_inner(),
            misses: misses.into_inner(),
            inflight_dedups: dedups.into_inner(),
        }
    }
}

/// `1 run`, `7 reuses`: exact counts with naive pluralization.
#[must_use]
pub fn count(n: usize, noun: &str) -> String {
    if n == 1 {
        format!("{n} {noun}")
    } else {
        format!("{n} {noun}s")
    }
}

/// The dependency plan for the selected experiments over the grid points:
/// declared dependency paths plus how many model runs (and cache reuses)
/// the grid needs — without running anything. One string per output line,
/// byte-identical to the historical `repro --explain` stdout.
#[must_use]
pub fn explain_lines(
    entries: &[&'static Entry],
    points: &[ScenarioPoint],
    no_cache: bool,
) -> Vec<String> {
    let npoints = points.len();
    let overlays: Vec<&ScenarioOverlay> = points.iter().map(|p| &p.overlay).collect();
    let mut lines = vec![format!(
        "dependency plan — {} x {} = {}",
        count(entries.len(), "experiment"),
        count(npoints, "point"),
        count(entries.len() * npoints, "job"),
    )];
    let mut total_runs = 0usize;
    for entry in entries {
        let runs = if no_cache {
            npoints
        } else {
            dedup_groups(&overlays, entry.deps()).len()
        };
        total_runs += runs;
        let deps = if entry.is_scenario_independent() {
            "(scenario-independent)".to_string()
        } else {
            format!(
                "deps: {}",
                entry
                    .deps()
                    .iter()
                    .map(|d| d.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        lines.push(format!(
            "  {:13} {:>9}, {:>9}   {}",
            entry.key,
            count(runs, "run"),
            count(npoints - runs, "reuse"),
            deps
        ));
    }
    lines.push(format!(
        "total: {}, {}",
        count(total_runs, "run"),
        count(entries.len() * npoints - total_runs, "reuse"),
    ));
    lines
}

/// The cache footer for a sweep: per-experiment and total run/reuse counts,
/// byte-identical to the historical CLI footer.
#[must_use]
pub fn footer_lines(
    entries: &[&'static Entry],
    npoints: usize,
    run_counts: &[usize],
) -> Vec<String> {
    let mut footer: Vec<String> = entries
        .iter()
        .zip(run_counts)
        .map(|(entry, &runs)| {
            format!(
                "cache: {}: {}, {}",
                entry.key,
                count(runs, "run"),
                count(npoints - runs, "reuse")
            )
        })
        .collect();
    let total_runs: usize = run_counts.iter().sum();
    footer.push(format!(
        "cache: total: {}, {}",
        count(total_runs, "run"),
        count(entries.len() * npoints - total_runs, "reuse")
    ));
    footer
}

/// The persistent-cache footer: how many work groups each experiment had to
/// recompute this process versus how many were answered straight from the
/// on-disk cache. Printed only when a `--cache-dir` is active, after the
/// in-memory cache footer.
#[must_use]
pub fn disk_footer_lines(
    entries: &[&'static Entry],
    disk_runs: &[usize],
    disk_hits: &[usize],
) -> Vec<String> {
    let mut footer: Vec<String> = entries
        .iter()
        .enumerate()
        .map(|(entry_idx, entry)| {
            format!(
                "disk: {}: {}, {}",
                entry.key,
                count(disk_runs[entry_idx], "recompute"),
                count(disk_hits[entry_idx], "disk hit")
            )
        })
        .collect();
    footer.push(format!(
        "disk: total: {}, {}",
        count(disk_runs.iter().sum(), "recompute"),
        count(disk_hits.iter().sum(), "disk hit")
    ));
    footer
}

/// Builds the comparisons for each experiment from the scalar grid: the
/// experiment's summary scalar diffed across every sweep point, plus one
/// comparison per *additional* scalar carrying a decision threshold (a
/// secondary crossover metric, e.g. ext-facility's cumulative break-even
/// riding alongside its annual one). With a single numeric sweep dimension
/// each comparison also carries the axis (and the scalar's threshold, when
/// declared), enabling crossover analysis.
///
/// A missing scalar is a hard error: every experiment in the registry
/// declares a summary scalar, so a gap would silently hollow out the
/// comparison's spread statistics.
pub fn build_comparisons(
    entries: &[&'static Entry],
    points: &[ScenarioPoint],
    scalars: &[Vec<Scalar>],
    matrix: &ScenarioMatrix,
) -> Result<Vec<Comparison>, EngineError> {
    let npoints = points.len();
    // The crossover x-axis: the swept path, when exactly one dimension is
    // swept and every value on it is numeric.
    let axis: Option<&str> = match matrix.specs() {
        [spec] if spec.values.iter().all(|v| v.parse::<f64>().is_ok()) => Some(spec.path.as_str()),
        _ => None,
    };
    let mut comparisons = Vec::new();
    for (entry_idx, entry) in entries.iter().enumerate() {
        let per_point = &scalars[entry_idx * npoints..(entry_idx + 1) * npoints];
        let reference = per_point
            .iter()
            .find(|s| !s.is_empty())
            .ok_or(EngineError::MissingSummaryScalar { key: entry.key })?;
        let metrics = reference
            .iter()
            .enumerate()
            .filter(|(i, scalar)| *i == 0 || scalar.threshold.is_some())
            .map(|(_, scalar)| scalar);
        for metric in metrics {
            let mut comparison = Comparison::new(entry.key, &metric.name, &metric.unit);
            if let Some(axis) = axis {
                comparison = comparison.with_axis(axis);
            }
            if let Some(threshold) = &metric.threshold {
                comparison = comparison.with_threshold(threshold.clone());
            }
            for (point, point_scalars) in points.iter().zip(per_point) {
                let scalar = point_scalars
                    .iter()
                    .find(|s| s.name == metric.name)
                    .ok_or_else(|| EngineError::MissingScalarAtPoint {
                        key: entry.key,
                        metric: metric.name.clone(),
                        point: point.display_label().to_string(),
                    })?;
                let x = axis.and_then(|_| {
                    point
                        .assignments
                        .first()
                        .and_then(|(_, v)| v.parse::<f64>().ok())
                });
                match x {
                    Some(x) => comparison.push_at(point.display_label(), x, Some(scalar.value)),
                    None => comparison.push(point.display_label(), Some(scalar.value)),
                };
            }
            comparisons.push(comparison);
        }
    }
    Ok(comparisons)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_core::experiments;
    use cc_report::ScenarioMatrix;

    fn grid(
        keys: &[&str],
        sweeps: &[&str],
    ) -> (
        Vec<&'static Entry>,
        ScenarioMatrix,
        Vec<ScenarioPoint>,
        Vec<RunContext>,
    ) {
        let entries: Vec<&'static Entry> = keys
            .iter()
            .map(|k| experiments::find_entry(k).expect("known key"))
            .collect();
        let sweeps = sweeps
            .iter()
            .map(|s| cc_report::SweepSpec::parse(s).expect("valid sweep"))
            .collect();
        let matrix =
            ScenarioMatrix::new(cc_report::Scenario::paper_defaults(), sweeps).expect("matrix");
        let points: Vec<ScenarioPoint> = matrix.points().collect();
        let contexts: Vec<RunContext> = points
            .iter()
            .map(|p| RunContext::try_from_overlay(p.overlay.clone()).expect("valid scenario"))
            .collect();
        (entries, matrix, points, contexts)
    }

    #[test]
    fn repeated_grid_is_served_from_cache() {
        let engine = Engine::new();
        let (entries, _matrix, points, contexts) =
            grid(&["fig10"], &["grid.intensity=100,300,500"]);
        let config = GridConfig {
            jobs: 1,
            no_cache: false,
            format: Format::Json,
        };
        let render = |job: &GridJob<'_>| vec![format!("{}#{}", job.entry.key, job.point_idx)];
        let sink = |_line: String| {};
        let first = engine.run_grid(&entries, &points, &contexts, &config, render, sink);
        assert_eq!(first.misses, 3);
        assert_eq!(first.hits, 0);
        assert_eq!(first.run_counts, vec![3]);
        let second = engine.run_grid(&entries, &points, &contexts, &config, render, |_l| {});
        assert_eq!(second.hits, 3, "second identical grid is all cache hits");
        assert_eq!(second.misses, 0);
        // The footer's plan counts are cache-independent by design.
        assert_eq!(second.run_counts, vec![3]);
        assert_eq!(first.scalars, second.scalars);
    }

    #[test]
    fn no_cache_bypasses_the_resident_cache() {
        let engine = Engine::new();
        let (entries, _matrix, points, contexts) = grid(&["fig05"], &["grid.intensity=100,300"]);
        let config = GridConfig {
            jobs: 2,
            no_cache: true,
            format: Format::Text,
        };
        let result = engine.run_grid(
            &entries,
            &points,
            &contexts,
            &config,
            |_j| Vec::new(),
            |_l| {},
        );
        // fig05 is scenario-independent: dedup would run it once, no-cache
        // runs it per point, and neither touches the resident cache.
        assert_eq!(result.run_counts, vec![2]);
        assert_eq!(result.hits + result.misses + result.inflight_dedups, 0);
        assert_eq!(engine.stats().entries, 0);
    }

    #[test]
    fn sink_receives_lines_in_grid_order_under_parallelism() {
        let engine = Engine::new();
        let (entries, _matrix, points, contexts) =
            grid(&["fig05", "fig10"], &["grid.intensity=100,200,300,400"]);
        let config = GridConfig {
            jobs: 4,
            no_cache: false,
            format: Format::Text,
        };
        let order = Mutex::new(Vec::new());
        engine.run_grid(
            &entries,
            &points,
            &contexts,
            &config,
            |job| vec![format!("{}:{}", job.entry_idx, job.point_idx)],
            |line| order.lock().unwrap().push(line),
        );
        let order = order.into_inner().unwrap();
        let expected: Vec<String> = (0..2)
            .flat_map(|e| (0..4).map(move |p| format!("{e}:{p}")))
            .collect();
        assert_eq!(order, expected, "reorder buffer preserves grid order");
    }

    #[test]
    fn comparisons_carry_axis_and_error_on_missing_scalars() {
        let (entries, matrix, points, _contexts) = grid(&["fig10"], &["grid.intensity=100,300"]);
        // Hollow scalar grid: every point empty → summary-scalar error.
        let empty: Vec<Vec<Scalar>> = vec![Vec::new(); 2];
        let err = build_comparisons(&entries, &points, &empty, &matrix).unwrap_err();
        assert_eq!(err, EngineError::MissingSummaryScalar { key: "fig10" });
        assert!(err.to_string().contains("produced no summary scalar"));
    }
}
