//! # cc-engine
//!
//! The resident experiment-execution engine behind both the one-shot
//! `repro` CLI and the long-running `repro serve` daemon.
//!
//! [`Engine`] owns the shared state a sweep service needs:
//!
//! * a **sharded, content-addressed fingerprint→artifact cache**
//!   ([`cache::ShardedCache`]) keyed on `(experiment key,
//!   dependency_fingerprint)` — repeated and overlapping requests are
//!   answered from resident [`ExperimentOutput`]s, and concurrent requests
//!   racing on the same fingerprint compute it exactly once;
//! * the streaming **(scenario-point × experiment) grid runner**
//!   ([`Engine::run_grid`]): workers pull fingerprint-deduplicated work
//!   groups off a shared queue, artifacts stream out the moment they
//!   complete, and a reorder buffer keeps the output in grid order;
//! * monotonic counters surfaced as an [`EngineStats`] snapshot.
//!
//! Two execution drivers sit on top of that state:
//!
//! * [`Engine::run_grid`] walks an *enumerated* scenario matrix, streaming
//!   one artifact per (experiment × point) job in grid order;
//! * [`Engine::run_mc`] pumps a *sampled* [`cc_report::MonteCarloMatrix`]
//!   through the same fingerprint/cache pipeline, digesting each tracked
//!   metric into streaming statistics (Welford mean/variance, P² quantile
//!   markers) so a million-sample uncertainty run holds no per-sample
//!   state. A reorder buffer feeds the order-sensitive accumulators
//!   strictly in sample order, making the digests byte-reproducible for a
//!   given seed across any `--jobs` value and across one-shot versus
//!   served runs.
//!
//! The surrounding modules carry everything else the two front-ends share:
//! [`artifact`] renders per-point artifacts, cross-scenario comparison
//! reports and Monte-Carlo digests byte-identically to the historical CLI,
//! [`protocol`] defines the newline-delimited-JSON request/response
//! vocabulary (specified normatively in `docs/PROTOCOL.md`), and
//! [`server`] is the `std::net::TcpListener` daemon loop.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod artifact;
pub mod cache;
pub mod grid;
pub mod intern;
pub mod mc;
pub mod persist;
pub mod protocol;
pub mod server;

pub use artifact::Format;
pub use cache::{Outcome, ShardedCache};
pub use grid::{GridConfig, GridJob, GridResult};
pub use intern::{InternedScenario, ScenarioInterner};
pub use mc::{McConfig, McError, McResult};
pub use persist::DiskCache;
pub use server::{ServeLog, Server};

use cc_report::{ExperimentOutput, JsonValue, Scalar};
use std::sync::atomic::{AtomicU64, Ordering};

/// Default total cache capacity (entries across all shards). Each entry is
/// one `ExperimentOutput` — tables and series for one experiment at one
/// fingerprint — so even a few thousand stay cheap; the bound exists so a
/// long-lived daemon sweeping many axes cannot grow without limit.
pub const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// The resident execution engine: the sharded artifact cache plus
/// engine-level counters. One `Engine` is shared (via `Arc`) by every
/// connection of a `repro serve` daemon; the CLI builds a throwaway one per
/// invocation.
pub struct Engine {
    cache: ShardedCache,
    disk: Option<DiskCache>,
    intern: ScenarioInterner,
    requests: AtomicU64,
}

impl Engine {
    /// An engine with the [`DEFAULT_CACHE_CAPACITY`].
    #[must_use]
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_CACHE_CAPACITY)
    }

    /// An engine whose cache holds at most `capacity` artifacts.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            cache: ShardedCache::new(capacity),
            disk: None,
            intern: ScenarioInterner::new(intern::DEFAULT_INTERN_CAPACITY),
            requests: AtomicU64::new(0),
        }
    }

    /// Attaches a persistent on-disk artifact cache. The grid runner reads
    /// through it on in-memory misses and writes freshly computed artifacts
    /// back, so fingerprints survive process restarts.
    #[must_use]
    pub fn with_disk(mut self, disk: DiskCache) -> Self {
        self.disk = Some(disk);
        self
    }

    /// The attached persistent cache, when one was configured.
    #[must_use]
    pub fn disk(&self) -> Option<&DiskCache> {
        self.disk.as_ref()
    }

    /// The shared fingerprint→artifact cache.
    #[must_use]
    pub fn cache(&self) -> &ShardedCache {
        &self.cache
    }

    /// The shared payload→validated-scenario interner. The daemon resolves
    /// protocol requests through it so repeated `set`/`dists` payloads
    /// skip re-validation.
    #[must_use]
    pub fn interner(&self) -> &ScenarioInterner {
        &self.intern
    }

    /// Counts one served request (a CLI invocation or one protocol `run`).
    pub fn count_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time snapshot of the engine's counters.
    #[must_use]
    pub fn stats(&self) -> EngineStats {
        let (hits, misses, inflight_dedups, evictions) = self.cache.counters();
        let (intern_hits, intern_misses) = self.intern.counters();
        EngineStats {
            requests: self.requests.load(Ordering::Relaxed),
            hits,
            misses,
            inflight_dedups,
            evictions,
            entries: self.cache.entries(),
            intern_hits,
            intern_misses,
        }
    }
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

/// Snapshot of the engine's monotonic counters, exposed to the `stats`
/// protocol request and the bench harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests served (CLI invocations or protocol `run` requests).
    pub requests: u64,
    /// Cache lookups answered from a resident artifact.
    pub hits: u64,
    /// Cache lookups that computed (and inserted) a fresh artifact.
    pub misses: u64,
    /// Lookups that waited on another request's in-flight computation
    /// instead of recomputing.
    pub inflight_dedups: u64,
    /// Resident artifacts dropped to keep the cache within capacity.
    pub evictions: u64,
    /// Artifacts currently resident.
    pub entries: u64,
    /// Request payloads whose validated scenario was reused from the
    /// interner instead of being re-validated.
    pub intern_hits: u64,
    /// Request payloads validated (and interned) for the first time.
    pub intern_misses: u64,
}

impl EngineStats {
    /// The snapshot as a JSON object (protocol `stats` response payload).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("requests", JsonValue::Integer(self.requests)),
            ("hits", JsonValue::Integer(self.hits)),
            ("misses", JsonValue::Integer(self.misses)),
            ("inflight_dedups", JsonValue::Integer(self.inflight_dedups)),
            ("evictions", JsonValue::Integer(self.evictions)),
            ("entries", JsonValue::Integer(self.entries)),
            ("intern_hits", JsonValue::Integer(self.intern_hits)),
            ("intern_misses", JsonValue::Integer(self.intern_misses)),
        ])
    }
}

/// Errors surfaced by engine orchestration (as opposed to request-shape
/// errors, which live in [`protocol::ProtocolError`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// An experiment produced no summary scalar, so the sweep comparison
    /// cannot cover it.
    MissingSummaryScalar {
        /// The experiment's registry key.
        key: &'static str,
    },
    /// An experiment lacked a named scalar at one sweep point.
    MissingScalarAtPoint {
        /// The experiment's registry key.
        key: &'static str,
        /// The missing scalar's name.
        metric: String,
        /// The sweep point's display label.
        point: String,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingSummaryScalar { key } => write!(
                f,
                "experiment `{key}` produced no summary scalar; sweep comparisons \
                 require full scalar coverage"
            ),
            Self::MissingScalarAtPoint { key, metric, point } => write!(
                f,
                "experiment `{key}` produced no `{metric}` scalar at point `{point}`"
            ),
        }
    }
}

impl std::error::Error for EngineError {}

/// Re-exported so front-ends can hold grid scalars without importing
/// `cc_report` themselves.
pub type ScalarGrid = Vec<Vec<Scalar>>;

/// Convenience alias used across the grid runner and cache.
pub type Output = ExperimentOutput;
