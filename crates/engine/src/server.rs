//! The `repro serve` daemon: a `std::net::TcpListener` loop speaking the
//! newline-delimited-JSON [`crate::protocol`].
//!
//! One thread per connection; every connection shares one [`Engine`], so
//! artifacts computed for one client are cache hits for every other, and
//! two clients racing on the same fingerprint compute it exactly once
//! (the cache's inflight dedup). A request that fails validation produces
//! one structured `error` line and leaves the connection open — client
//! bugs must not kill the daemon or poison the cache.
//!
//! Shutdown is cooperative: a `shutdown` request is acknowledged with
//! `{"type":"bye"}`, the accept loop's stop flag is raised, and a loopback
//! self-connect unblocks `accept` so the listener thread can observe the
//! flag and drain.

use crate::artifact::{
    artifact_file_name, artifact_json, comparison_json, mc_comparison_json, Format,
};
use crate::grid::{build_comparisons, GridConfig, GridJob};
use crate::mc::McConfig;
use crate::protocol::{parse_request, ProtocolError, Request, RunRequest};
use crate::Engine;
use cc_report::JsonValue;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// The resident sweep service: a bound listener plus the shared engine.
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
    max_jobs: usize,
    shutdown: Arc<AtomicBool>,
}

/// Serialized, flushed-per-line writer half of one connection. Write
/// failures latch: once the client is gone, the rest of the response
/// stream is dropped silently (the computation still completes and warms
/// the shared cache).
struct LineWriter {
    writer: Mutex<(BufWriter<TcpStream>, bool)>,
}

impl LineWriter {
    fn new(stream: TcpStream) -> Self {
        Self {
            writer: Mutex::new((BufWriter::new(stream), false)),
        }
    }

    fn send(&self, line: &str) {
        let mut guard = self.writer.lock().expect("no panics under lock");
        let (writer, failed) = &mut *guard;
        if *failed {
            return;
        }
        if writeln!(writer, "{line}").is_err() || writer.flush().is_err() {
            *failed = true;
        }
    }
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7878`, or port `0` to let the OS
    /// pick) and wires the shared engine behind it. `max_jobs` caps the
    /// per-request `jobs` field so one client cannot oversubscribe the
    /// host.
    pub fn bind(addr: &str, engine: Arc<Engine>, max_jobs: usize) -> std::io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            engine,
            max_jobs: max_jobs.max(1),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address — callers binding port `0` read the real port
    /// here.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until a client sends `{"op":"shutdown"}`. Blocks
    /// the calling thread; every accepted connection gets its own handler
    /// thread, all joined before this returns.
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.local_addr()?;
        std::thread::scope(|scope| {
            for stream in self.listener.incoming() {
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let engine = Arc::clone(&self.engine);
                let shutdown = Arc::clone(&self.shutdown);
                let max_jobs = self.max_jobs;
                scope.spawn(move || handle_connection(&engine, stream, max_jobs, &shutdown, addr));
            }
        });
        Ok(())
    }
}

/// Reads requests off one connection line by line until EOF or shutdown.
///
/// The socket reads on a short timeout so an idle connection notices the
/// daemon-wide shutdown flag and drains: `Server::run` joins every handler
/// thread, and a client that holds its connection open across a shutdown
/// must not pin the daemon alive. Partial lines survive a timeout tick —
/// `read_line` appends to the same buffer on the next attempt.
fn handle_connection(
    engine: &Engine,
    stream: TcpStream,
    max_jobs: usize,
    shutdown: &AtomicBool,
    addr: SocketAddr,
) {
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    // Responses flush line by line; without TCP_NODELAY, Nagle holds every
    // line after the first until the client ACKs, adding ~40 ms per line.
    let _ = stream.set_nodelay(true);
    let _ = reader.set_read_timeout(Some(std::time::Duration::from_millis(200)));
    let writer = LineWriter::new(stream);
    let mut reader = BufReader::new(reader);
    let mut buffer = String::new();
    loop {
        match reader.read_line(&mut buffer) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        }
        // Parse in place and clear — the buffer's allocation is reused for
        // every request line on this connection instead of being handed off
        // (and reallocated) per line.
        if buffer.trim().is_empty() {
            buffer.clear();
            continue;
        }
        let request = parse_request(&buffer);
        buffer.clear();
        match request {
            Err(error) => writer.send(&error.to_response()),
            Ok(Request::Stats) => {
                let response = JsonValue::object([
                    ("type", JsonValue::from("stats")),
                    ("stats", engine.stats().to_json()),
                ]);
                writer.send(&response.render());
            }
            Ok(Request::Shutdown) => {
                writer.send(&JsonValue::object([("type", JsonValue::from("bye"))]).render());
                shutdown.store(true, Ordering::SeqCst);
                // Unblock the accept loop so it can observe the flag.
                let _ = TcpStream::connect(addr);
                return;
            }
            Ok(Request::Run(request)) => handle_run(engine, &writer, &request, max_jobs),
        }
    }
}

/// Validates and executes one `run` request, streaming artifact lines in
/// grid order, then the comparison (when sweeping) and the terminal `done`
/// line.
fn handle_run(engine: &Engine, writer: &LineWriter, request: &RunRequest, max_jobs: usize) {
    let resolved = match request.resolve() {
        Ok(resolved) => resolved,
        Err(error) => {
            writer.send(&error.to_response());
            return;
        }
    };
    engine.count_request();
    if let Some(mc) = &resolved.mc {
        // Monte-Carlo: no per-sample artifact lines (a million-sample run
        // must not stream a million envelopes) — one comparison line with
        // the banded digests, then done.
        let config = McConfig {
            jobs: request.jobs.unwrap_or(1).min(max_jobs),
            no_cache: request.no_cache,
        };
        match engine.run_mc(&resolved.entries, mc, &config) {
            Ok(result) => {
                let envelope = JsonValue::object([
                    ("type", JsonValue::from("comparison")),
                    (
                        "name",
                        JsonValue::from(format!("mc-comparison.{}", Format::Json.extension())),
                    ),
                    ("comparison", mc_comparison_json(&result.comparisons, mc)),
                ]);
                writer.send(&envelope.render());
                let done = JsonValue::object([
                    ("type", JsonValue::from("done")),
                    (
                        "experiments",
                        JsonValue::Integer(resolved.entries.len() as u64),
                    ),
                    ("samples", JsonValue::Integer(mc.len() as u64)),
                    ("seed", JsonValue::Integer(mc.seed())),
                    (
                        "runs",
                        JsonValue::Integer(result.run_counts.iter().sum::<usize>() as u64),
                    ),
                    (
                        "cache",
                        JsonValue::object([
                            ("hits", JsonValue::Integer(result.hits)),
                            ("misses", JsonValue::Integer(result.misses)),
                            (
                                "inflight_dedups",
                                JsonValue::Integer(result.inflight_dedups),
                            ),
                        ]),
                    ),
                ]);
                writer.send(&done.render());
            }
            Err(error) => {
                writer.send(
                    &ProtocolError {
                        category: "invalid-scenario",
                        message: error.to_string(),
                    }
                    .to_response(),
                );
            }
        }
        return;
    }
    let config = GridConfig {
        jobs: request.jobs.unwrap_or(1).min(max_jobs),
        no_cache: request.no_cache,
        format: Format::Json,
    };
    let render = |job: &GridJob<'_>| {
        let artifact = artifact_json(
            job.entry,
            job.experiment,
            job.output,
            job.context,
            job.sweeping.then_some(job.point),
        );
        let envelope = JsonValue::object([
            ("type", JsonValue::from("artifact")),
            ("key", JsonValue::from(job.entry.key)),
            (
                "name",
                JsonValue::from(artifact_file_name(
                    job.entry.key,
                    job.sweeping.then_some(job.point),
                    Format::Json,
                )),
            ),
            ("artifact", artifact),
        ]);
        vec![envelope.render()]
    };
    let result = engine.run_grid(
        &resolved.entries,
        &resolved.points,
        &resolved.contexts,
        &config,
        render,
        |line| writer.send(&line),
    );
    if resolved.matrix.is_sweep() {
        match build_comparisons(
            &resolved.entries,
            &resolved.points,
            &result.scalars,
            &resolved.matrix,
        ) {
            Ok(comparisons) => {
                let envelope = JsonValue::object([
                    ("type", JsonValue::from("comparison")),
                    (
                        "name",
                        JsonValue::from(format!("comparison.{}", Format::Json.extension())),
                    ),
                    (
                        "comparison",
                        comparison_json(&comparisons, &resolved.matrix),
                    ),
                ]);
                writer.send(&envelope.render());
            }
            Err(error) => {
                writer.send(
                    &ProtocolError {
                        category: "invalid-scenario",
                        message: error.to_string(),
                    }
                    .to_response(),
                );
                return;
            }
        }
    }
    let done = JsonValue::object([
        ("type", JsonValue::from("done")),
        (
            "experiments",
            JsonValue::Integer(resolved.entries.len() as u64),
        ),
        ("points", JsonValue::Integer(resolved.points.len() as u64)),
        (
            "runs",
            JsonValue::Integer(result.run_counts.iter().sum::<usize>() as u64),
        ),
        (
            "cache",
            JsonValue::object([
                ("hits", JsonValue::Integer(result.hits)),
                ("misses", JsonValue::Integer(result.misses)),
                (
                    "inflight_dedups",
                    JsonValue::Integer(result.inflight_dedups),
                ),
            ]),
        ),
    ]);
    writer.send(&done.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn connect(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        (reader, stream)
    }

    fn request(
        reader: &mut BufReader<TcpStream>,
        stream: &mut TcpStream,
        line: &str,
    ) -> Vec<JsonValue> {
        writeln!(stream, "{line}").expect("send request");
        let mut responses = Vec::new();
        loop {
            let mut response = String::new();
            reader.read_line(&mut response).expect("read response");
            let value = JsonValue::parse(response.trim_end()).expect("responses are valid JSON");
            let kind = value
                .get("type")
                .and_then(JsonValue::as_str)
                .expect("responses carry a type")
                .to_string();
            responses.push(value);
            if matches!(kind.as_str(), "done" | "error" | "stats" | "bye") {
                return responses;
            }
        }
    }

    #[test]
    fn serves_runs_stats_and_errors_on_one_connection() {
        let engine = Arc::new(Engine::new());
        let server = Server::bind("127.0.0.1:0", Arc::clone(&engine), 4).expect("bind");
        let addr = server.local_addr().expect("local addr");
        let daemon = std::thread::spawn(move || server.run());
        let (mut reader, mut stream) = connect(addr);

        // Protocol errors are structured responses, not dropped connections.
        let bad = request(&mut reader, &mut stream, "{not json");
        assert_eq!(
            bad[0].get("error").and_then(JsonValue::as_str),
            Some("malformed-request")
        );
        let bad = request(
            &mut reader,
            &mut stream,
            r#"{"op":"run","experiments":["fig99"]}"#,
        );
        assert_eq!(
            bad[0].get("error").and_then(JsonValue::as_str),
            Some("unknown-experiment")
        );
        assert_eq!(engine.stats().misses, 0, "rejected requests never compute");

        // A sweep run streams artifacts, a comparison, then done.
        let run =
            r#"{"op":"run","experiments":["fig05"],"sweep":["grid.intensity=100,300"],"jobs":2}"#;
        let responses = request(&mut reader, &mut stream, run);
        let kinds: Vec<&str> = responses
            .iter()
            .filter_map(|r| r.get("type").and_then(JsonValue::as_str))
            .collect();
        assert_eq!(kinds, ["artifact", "artifact", "comparison", "done"]);
        assert_eq!(
            responses[0].get("name").and_then(JsonValue::as_str),
            Some("fig05@grid.intensity-100.json")
        );
        let done = responses.last().expect("done line");
        // fig05 is scenario-independent: two points, one model run.
        assert_eq!(done.get("runs").and_then(JsonValue::as_u64), Some(1));

        // The identical request is answered from the shared cache.
        let responses = request(&mut reader, &mut stream, run);
        let done = responses.last().expect("done line");
        let cache = done.get("cache").expect("cache summary");
        assert_eq!(cache.get("misses").and_then(JsonValue::as_u64), Some(0));
        assert_eq!(cache.get("hits").and_then(JsonValue::as_u64), Some(1));

        // Stats reflects both served runs.
        let stats = request(&mut reader, &mut stream, r#"{"op":"stats"}"#);
        let stats = stats[0].get("stats").expect("stats payload");
        assert_eq!(stats.get("requests").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(stats.get("entries").and_then(JsonValue::as_u64), Some(1));

        // Cooperative shutdown: bye, then the daemon thread drains.
        let bye = request(&mut reader, &mut stream, r#"{"op":"shutdown"}"#);
        assert_eq!(bye[0].get("type").and_then(JsonValue::as_str), Some("bye"));
        daemon
            .join()
            .expect("daemon thread joins")
            .expect("daemon exits cleanly");
    }

    #[test]
    fn serves_monte_carlo_runs_with_banded_digests() {
        let engine = Arc::new(Engine::new());
        let server = Server::bind("127.0.0.1:0", Arc::clone(&engine), 4).expect("bind");
        let addr = server.local_addr().expect("local addr");
        let daemon = std::thread::spawn(move || server.run());
        let (mut reader, mut stream) = connect(addr);

        let run = r#"{"op":"run","experiments":["ext-facility"],
            "dists":["fleet.growth ~ uniform(1.2,1.4)"],"samples":50,"seed":7,"jobs":2}"#
            .replace('\n', " ");
        let responses = request(&mut reader, &mut stream, &run);
        let kinds: Vec<&str> = responses
            .iter()
            .filter_map(|r| r.get("type").and_then(JsonValue::as_str))
            .collect();
        // No per-sample artifact lines: one comparison, then done.
        assert_eq!(kinds, ["comparison", "done"]);
        let comparison = responses[0].get("comparison").expect("payload");
        assert_eq!(
            responses[0].get("name").and_then(JsonValue::as_str),
            Some("mc-comparison.json")
        );
        let digests = comparison
            .get("comparisons")
            .and_then(JsonValue::as_array)
            .expect("digest list");
        assert!(!digests.is_empty());
        let n = digests[0]
            .get("stats")
            .and_then(|s| s.get("n"))
            .and_then(JsonValue::as_u64);
        assert_eq!(n, Some(50));
        let done = responses.last().expect("done line");
        assert_eq!(done.get("samples").and_then(JsonValue::as_u64), Some(50));
        assert_eq!(done.get("seed").and_then(JsonValue::as_u64), Some(7));

        // A sampling error is a structured response, not a dead daemon.
        let bad = request(
            &mut reader,
            &mut stream,
            r#"{"op":"run","experiments":["ext-facility"],"dists":["fab.node_nm ~ normal(3,40)"],"samples":200}"#,
        );
        assert_eq!(
            bad[0].get("error").and_then(JsonValue::as_str),
            Some("invalid-scenario")
        );

        request(&mut reader, &mut stream, r#"{"op":"shutdown"}"#);
        daemon.join().expect("join").expect("clean exit");
    }

    #[test]
    fn concurrent_identical_sweeps_compute_each_fingerprint_once() {
        let engine = Arc::new(Engine::new());
        let server = Server::bind("127.0.0.1:0", Arc::clone(&engine), 4).expect("bind");
        let addr = server.local_addr().expect("local addr");
        let daemon = std::thread::spawn(move || server.run());

        let run =
            r#"{"op":"run","experiments":["fig10"],"sweep":["grid.intensity=100,300"],"jobs":2}"#;
        let clients: Vec<_> = (0..2)
            .map(|_| {
                std::thread::spawn(move || {
                    let (mut reader, mut stream) = connect(addr);
                    let responses = request(&mut reader, &mut stream, run);
                    let done = responses.last().expect("done line").clone();
                    let cache = done.get("cache").expect("cache summary");
                    (
                        cache.get("hits").and_then(JsonValue::as_u64).unwrap(),
                        cache.get("misses").and_then(JsonValue::as_u64).unwrap(),
                        cache
                            .get("inflight_dedups")
                            .and_then(JsonValue::as_u64)
                            .unwrap(),
                    )
                })
            })
            .collect();
        let outcomes: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();

        // Two clients × two points raced on two fingerprints: exactly two
        // model runs total, however the hits/dedups split fell.
        let stats = engine.stats();
        assert_eq!(stats.misses, 2, "each fingerprint computed exactly once");
        assert_eq!(stats.hits + stats.inflight_dedups, 2);
        let total: u64 = outcomes.iter().map(|(h, m, d)| h + m + d).sum();
        assert_eq!(total, 4, "every lookup accounted for");

        let (mut reader, mut stream) = connect(addr);
        request(&mut reader, &mut stream, r#"{"op":"shutdown"}"#);
        daemon.join().expect("join").expect("clean exit");
    }
}
