//! The `repro serve` daemon: a `std::net::TcpListener` loop speaking the
//! newline-delimited-JSON [`crate::protocol`], version 2.
//!
//! One reader thread per connection, plus a small per-connection worker
//! pool for multiplexed requests; every connection shares one [`Engine`],
//! so artifacts computed for one client are cache hits for every other,
//! and two clients racing on the same fingerprint compute it exactly once
//! (the cache's inflight dedup). A request that fails validation produces
//! one structured `error` line and leaves the connection open — client
//! bugs must not kill the daemon or poison the cache.
//!
//! **Multiplexing.** An id-tagged `run`/`batch` request is admitted to a
//! bounded per-connection work queue and executed by the pool, so many
//! requests can be in flight at once and complete out of submission
//! order. Every response line echoes the request's id, and all lines
//! funnel through one serialized line writer — lines of different
//! requests interleave, but each line is intact and each request's own
//! lines keep their order. A request without an id keeps the v1
//! contract: the reader executes it inline, serially, with no id echo.
//!
//! **Backpressure.** The work queue bounds queued-plus-executing
//! multiplexed requests. When it is full the request is rejected
//! immediately with a structured `overloaded` error carrying an advisory
//! `retry_after_ms` — the daemon never buffers unbounded work, and the
//! client learns in one round trip instead of stalling.
//!
//! Shutdown is cooperative: a `shutdown` request is acknowledged with
//! `{"type":"bye"}`, the accept loop's stop flag is raised, and a loopback
//! self-connect unblocks `accept` so the listener thread can observe the
//! flag and drain. Work already admitted to a queue still completes and
//! its responses are still delivered.

use crate::artifact::{
    artifact_file_name, artifact_json, comparison_json, mc_comparison_json, Format,
};
use crate::grid::{build_comparisons, GridConfig, GridJob};
use crate::mc::McConfig;
use crate::protocol::{
    parse_frame, ProtocolError, Request, RequestId, RunRequest, OPS, PROTOCOL_VERSION,
};
use crate::Engine;
use cc_report::JsonValue;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Default bound on queued-plus-executing multiplexed requests per
/// connection. Beyond it the daemon answers `overloaded` instead of
/// buffering more work.
pub const DEFAULT_QUEUE_DEPTH: usize = 64;

/// Worker threads per connection are capped independently of `max_jobs`
/// (which bounds *within*-request parallelism): the pool exists for
/// out-of-order completion, not throughput, so a handful is plenty.
const MAX_POOL_THREADS: usize = 8;

/// The resident sweep service: a bound listener plus the shared engine.
pub struct Server {
    listener: TcpListener,
    engine: Arc<Engine>,
    max_jobs: usize,
    queue_depth: usize,
    log: Option<Arc<ServeLog>>,
    shutdown: Arc<AtomicBool>,
}

/// A line-oriented operational log for the daemon: connection lifecycle,
/// overload rejections and shutdown. Defaults to stderr so a daemon never
/// drops files into its working directory; `repro serve --log PATH`
/// redirects it.
pub struct ServeLog {
    sink: Mutex<Box<dyn Write + Send>>,
}

impl ServeLog {
    /// A log writing to the process's stderr.
    #[must_use]
    pub fn to_stderr() -> Self {
        Self {
            sink: Mutex::new(Box::new(std::io::stderr())),
        }
    }

    /// A log appending to `path`.
    pub fn to_file(path: &std::path::Path) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        Ok(Self {
            sink: Mutex::new(Box::new(file)),
        })
    }

    /// Writes one `serve: `-prefixed event line. Logging failures are
    /// swallowed — an unwritable log must not take the daemon down.
    pub fn event(&self, message: &str) {
        let mut sink = self.sink.lock().expect("no panics under lock");
        let _ = writeln!(sink, "serve: {message}");
        let _ = sink.flush();
    }
}

/// Serialized, flushed-per-line writer half of one connection. Write
/// failures latch: once the client is gone, the rest of the response
/// stream is dropped silently (the computation still completes and warms
/// the shared cache).
struct LineWriter {
    writer: Mutex<(BufWriter<TcpStream>, bool)>,
}

impl LineWriter {
    fn new(stream: TcpStream) -> Self {
        Self {
            writer: Mutex::new((BufWriter::new(stream), false)),
        }
    }

    fn send(&self, line: &str) {
        let mut guard = self.writer.lock().expect("no panics under lock");
        let (writer, failed) = &mut *guard;
        if *failed {
            return;
        }
        if writeln!(writer, "{line}").is_err() {
            *failed = true;
        }
    }

    /// Pushes buffered response lines to the socket. Called when the
    /// connection goes idle (reader out of pipelined input, work queue
    /// drained) rather than after every line: a depth-N burst wakes the
    /// client once, not once per response line — on a loaded host the
    /// per-line wakeups, not the request processing, dominate serve
    /// latency.
    fn flush(&self) {
        let mut guard = self.writer.lock().expect("no panics under lock");
        let (writer, failed) = &mut *guard;
        if *failed {
            return;
        }
        if writer.flush().is_err() {
            *failed = true;
        }
    }
}

/// Routing tag for response lines: the request's echoed id, plus the
/// sub-run index inside a `batch`. Rendered immediately after `"type"` so
/// v1-style (untagged) responses stay byte-identical to protocol v1.
#[derive(Clone, Copy, Default)]
struct Route<'a> {
    id: Option<&'a RequestId>,
    run: Option<u64>,
}

impl Route<'_> {
    /// Builds a response line: `type`, the routing fields, then `rest`.
    fn line(&self, kind: &str, rest: Vec<(&str, JsonValue)>) -> String {
        let mut fields: Vec<(&str, JsonValue)> = vec![("type", JsonValue::from(kind))];
        if let Some(id) = self.id {
            fields.push(("id", id.to_json()));
        }
        if let Some(run) = self.run {
            fields.push(("run", JsonValue::Integer(run)));
        }
        fields.extend(rest);
        JsonValue::object(fields).render()
    }

    /// Splices this route into a cached *untagged* `artifact` line,
    /// producing exactly the bytes [`Self::line`] would have rendered:
    /// `type`, `id`, `run`, then the cached remainder. Lets the server
    /// reuse one rendered artifact across requests that differ only in
    /// their routing tag.
    fn artifact_line(&self, untagged: &str) -> String {
        const PREFIX: &str = "{\"type\":\"artifact\"";
        debug_assert!(untagged.starts_with(PREFIX));
        if self.id.is_none() && self.run.is_none() {
            return untagged.to_string();
        }
        let mut line = String::with_capacity(untagged.len() + 32);
        line.push_str(&untagged[..PREFIX.len()]);
        if let Some(id) = self.id {
            line.push_str(",\"id\":");
            line.push_str(&id.to_json().render());
        }
        if let Some(run) = self.run {
            line.push_str(",\"run\":");
            line.push_str(&JsonValue::Integer(run).render());
        }
        line.push_str(&untagged[PREFIX.len()..]);
        line
    }

    fn error(&self, error: &ProtocolError) -> String {
        self.line(
            "error",
            vec![
                ("error", JsonValue::from(error.category)),
                ("message", JsonValue::from(error.message.as_str())),
            ],
        )
    }
}

/// One admitted multiplexed request.
struct Job {
    id: RequestId,
    work: Work,
}

enum Work {
    Run(RunRequest),
    Batch(Vec<RunRequest>),
}

/// The bounded per-connection work queue: `queued + executing` never
/// exceeds `capacity`, and submissions beyond that fail fast so the
/// reader can answer `overloaded` without blocking.
struct WorkQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

#[derive(Default)]
struct QueueState {
    jobs: VecDeque<Job>,
    executing: usize,
    closed: bool,
}

impl WorkQueue {
    fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState::default()),
            ready: Condvar::new(),
            capacity,
        }
    }

    /// Admits `job`, or reports how many requests were already in flight
    /// when the queue was full.
    fn try_submit(&self, job: Job) -> Result<(), usize> {
        let mut state = self.state.lock().expect("no panics under lock");
        let in_flight = state.jobs.len() + state.executing;
        if in_flight >= self.capacity {
            return Err(in_flight);
        }
        state.jobs.push_back(job);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocks for the next job; `None` once the queue is closed *and*
    /// drained, so admitted work always completes.
    fn next(&self) -> Option<Job> {
        let mut state = self.state.lock().expect("no panics under lock");
        loop {
            if let Some(job) = state.jobs.pop_front() {
                state.executing += 1;
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.ready.wait(state).expect("no panics under lock");
        }
    }

    /// Marks one job done. `true` when the queue went idle (nothing
    /// queued, nothing executing) — the last finisher's signal to flush
    /// buffered response lines to the client.
    fn finish(&self) -> bool {
        let mut state = self.state.lock().expect("no panics under lock");
        state.executing -= 1;
        state.executing == 0 && state.jobs.is_empty()
    }

    fn close(&self) {
        self.state.lock().expect("no panics under lock").closed = true;
        self.ready.notify_all();
    }
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7878`, or port `0` to let the OS
    /// pick) and wires the shared engine behind it. `max_jobs` caps the
    /// per-request `jobs` field so one client cannot oversubscribe the
    /// host.
    pub fn bind(addr: &str, engine: Arc<Engine>, max_jobs: usize) -> std::io::Result<Self> {
        Ok(Self {
            listener: TcpListener::bind(addr)?,
            engine,
            max_jobs: max_jobs.max(1),
            queue_depth: DEFAULT_QUEUE_DEPTH,
            log: None,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Caps queued-plus-executing multiplexed requests per connection.
    /// Zero admits nothing: every id-tagged `run`/`batch` is answered
    /// `overloaded` (useful for overload drills and benchmarks).
    #[must_use]
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth;
        self
    }

    /// Attaches an operational log.
    #[must_use]
    pub fn log_to(mut self, log: ServeLog) -> Self {
        self.log = Some(Arc::new(log));
        self
    }

    /// The bound address — callers binding port `0` read the real port
    /// here.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until a client sends `{"op":"shutdown"}`. Blocks
    /// the calling thread; every accepted connection gets its own handler
    /// thread, all joined before this returns.
    pub fn run(self) -> std::io::Result<()> {
        let addr = self.local_addr()?;
        std::thread::scope(|scope| {
            for stream in self.listener.incoming() {
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else { continue };
                let engine = Arc::clone(&self.engine);
                let shutdown = Arc::clone(&self.shutdown);
                let log = self.log.clone();
                let max_jobs = self.max_jobs;
                let queue_depth = self.queue_depth;
                scope.spawn(move || {
                    let peer = stream.peer_addr().ok();
                    if let (Some(log), Some(peer)) = (log.as_deref(), peer) {
                        log.event(&format!("connection from {peer}"));
                    }
                    handle_connection(
                        &engine,
                        stream,
                        max_jobs,
                        queue_depth,
                        &shutdown,
                        addr,
                        log.as_deref(),
                    );
                    if let (Some(log), Some(peer)) = (log.as_deref(), peer) {
                        log.event(&format!("connection closed ({peer})"));
                    }
                });
            }
        });
        if let Some(log) = self.log.as_deref() {
            log.event("shutdown complete");
        }
        Ok(())
    }
}

/// Everything one connection's reader and workers share.
struct Connection<'a> {
    engine: &'a Engine,
    writer: &'a LineWriter,
    max_jobs: usize,
    queue_depth: usize,
    log: Option<&'a ServeLog>,
}

/// Reads requests off one connection line by line until EOF or shutdown,
/// dispatching id-tagged work to the pool and handling everything else
/// inline.
///
/// The socket reads on a short timeout so an idle connection notices the
/// daemon-wide shutdown flag and drains: `Server::run` joins every handler
/// thread, and a client that holds its connection open across a shutdown
/// must not pin the daemon alive. Partial lines survive a timeout tick —
/// `read_line` appends to the same buffer on the next attempt.
fn handle_connection(
    engine: &Engine,
    stream: TcpStream,
    max_jobs: usize,
    queue_depth: usize,
    shutdown: &AtomicBool,
    addr: SocketAddr,
    log: Option<&ServeLog>,
) {
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    // Responses flush line by line; without TCP_NODELAY, Nagle holds every
    // line after the first until the client ACKs, adding ~40 ms per line.
    let _ = stream.set_nodelay(true);
    let _ = reader.set_read_timeout(Some(std::time::Duration::from_millis(200)));
    let writer = LineWriter::new(stream);
    let connection = Connection {
        engine,
        writer: &writer,
        max_jobs,
        queue_depth,
        log,
    };
    let queue = WorkQueue::new(queue_depth);
    // No queue, no pool: a zero-depth connection rejects all multiplexed
    // work in the reader, so workers would never see a job. Workers
    // beyond the hardware parallelism only add wakeups and context
    // switches, so clamp by it too — with a floor of two, so a
    // long-running job can never head-of-line-block a short one even on
    // a single-core host.
    let hardware =
        std::thread::available_parallelism().map_or(usize::MAX, std::num::NonZeroUsize::get);
    let pool = if queue_depth == 0 {
        0
    } else {
        max_jobs.min(MAX_POOL_THREADS).min(hardware.max(2)).max(1)
    };
    std::thread::scope(|scope| {
        for _ in 0..pool {
            scope.spawn(|| {
                while let Some(job) = queue.next() {
                    execute_job(&connection, &job);
                    if queue.finish() {
                        connection.writer.flush();
                    }
                }
            });
        }
        read_loop(&connection, reader, &queue, shutdown, addr);
        // EOF or shutdown: release anything the reader buffered (the
        // terminal `bye` in particular), stop admitting, let the pool
        // drain what was already accepted, then the scope joins the
        // workers.
        connection.writer.flush();
        queue.close();
    });
    // Late worker output (jobs that finished after the reader left but
    // before the queue reported idle) must still reach the client.
    writer.flush();
}

fn read_loop(
    connection: &Connection<'_>,
    reader: TcpStream,
    queue: &WorkQueue,
    shutdown: &AtomicBool,
    addr: SocketAddr,
) {
    let writer = connection.writer;
    let mut reader = BufReader::new(reader);
    let mut buffer = String::new();
    loop {
        // Out of pipelined input: push buffered responses before blocking
        // so a serial client sees its reply immediately, while a burst of
        // buffered requests keeps the cork in and batches its output.
        if !reader.buffer().contains(&b'\n') {
            writer.flush();
        }
        match reader.read_line(&mut buffer) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock
                        | std::io::ErrorKind::TimedOut
                        | std::io::ErrorKind::Interrupted
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        }
        // Parse in place and clear — the buffer's allocation is reused for
        // every request line on this connection instead of being handed off
        // (and reallocated) per line.
        if buffer.trim().is_empty() {
            buffer.clear();
            continue;
        }
        let frame = parse_frame(&buffer);
        buffer.clear();
        let frame = match frame {
            Err(rejected) => {
                let route = Route {
                    id: rejected.id.as_ref(),
                    run: None,
                };
                writer.send(&route.error(&rejected.error));
                continue;
            }
            Ok(frame) => frame,
        };
        let route = Route {
            id: frame.id.as_ref(),
            run: None,
        };
        match frame.request {
            Request::Hello => writer.send(&hello_line(connection, &route)),
            Request::Stats => {
                let line = route.line(
                    "stats",
                    vec![("stats", connection.engine.stats().to_json())],
                );
                writer.send(&line);
            }
            Request::Shutdown => {
                writer.send(&route.line("bye", Vec::new()));
                if let Some(log) = connection.log {
                    log.event("shutdown requested");
                }
                shutdown.store(true, Ordering::SeqCst);
                // Unblock the accept loop so it can observe the flag.
                let _ = TcpStream::connect(addr);
                return;
            }
            Request::Run(request) => match frame.id {
                // v1 contract: no id means serial, inline execution.
                None => handle_run(connection, &request, Route::default()),
                Some(id) => submit(
                    connection,
                    queue,
                    Job {
                        id,
                        work: Work::Run(request),
                    },
                ),
            },
            Request::Batch(runs) => match frame.id {
                None => handle_batch(connection, &runs, None),
                Some(id) => submit(
                    connection,
                    queue,
                    Job {
                        id,
                        work: Work::Batch(runs),
                    },
                ),
            },
        }
    }
}

/// Admits one multiplexed job or answers `overloaded` without blocking.
fn submit(connection: &Connection<'_>, queue: &WorkQueue, job: Job) {
    let id = job.id.clone();
    if let Err(in_flight) = queue.try_submit(job) {
        let retry_after_ms = retry_after_ms(in_flight);
        if let Some(log) = connection.log {
            log.event(&format!(
                "overloaded: rejected request {id} ({in_flight} in flight, retry in {retry_after_ms} ms)"
            ));
        }
        let route = Route {
            id: Some(&id),
            run: None,
        };
        let line = route.line(
            "error",
            vec![
                ("error", JsonValue::from("overloaded")),
                (
                    "message",
                    JsonValue::from(format!(
                        "work queue full ({in_flight} requests in flight); retry after the advisory delay"
                    )),
                ),
                ("retry_after_ms", JsonValue::Integer(retry_after_ms)),
            ],
        );
        connection.writer.send(&line);
    }
}

/// Advisory client back-off, scaled by how much work was in flight at
/// rejection time: deliberately simple and deterministic (the conformance
/// transcripts pin it for an empty queue).
fn retry_after_ms(in_flight: usize) -> u64 {
    (10 * (in_flight as u64 + 1)).min(1000)
}

fn execute_job(connection: &Connection<'_>, job: &Job) {
    let route = Route {
        id: Some(&job.id),
        run: None,
    };
    match &job.work {
        Work::Run(request) => handle_run(connection, request, route),
        Work::Batch(runs) => handle_batch(connection, runs, Some(&job.id)),
    }
}

/// The `hello` negotiation response: protocol version plus the server's
/// operational limits, so clients can size their pipelines.
fn hello_line(connection: &Connection<'_>, route: &Route<'_>) -> String {
    route.line(
        "hello",
        vec![
            ("version", JsonValue::Integer(PROTOCOL_VERSION)),
            ("max_jobs", JsonValue::Integer(connection.max_jobs as u64)),
            (
                "queue_depth",
                JsonValue::Integer(connection.queue_depth as u64),
            ),
            (
                "cache_capacity",
                JsonValue::Integer(connection.engine.cache().capacity() as u64),
            ),
            (
                "ops",
                JsonValue::Array(OPS.iter().map(|&op| JsonValue::from(op)).collect()),
            ),
        ],
    )
}

/// What one executed run contributed to its terminal `done` line.
struct RunOutcome {
    experiments: u64,
    points: u64,
    samples: Option<(u64, u64)>,
    runs: u64,
    hits: u64,
    misses: u64,
    inflight_dedups: u64,
}

fn cache_summary(hits: u64, misses: u64, inflight_dedups: u64) -> JsonValue {
    JsonValue::object([
        ("hits", JsonValue::Integer(hits)),
        ("misses", JsonValue::Integer(misses)),
        ("inflight_dedups", JsonValue::Integer(inflight_dedups)),
    ])
}

/// Validates and executes one `run` request, streaming artifact lines in
/// grid order, then the comparison (when sweeping) and the terminal `done`
/// line — all tagged with the request's route.
fn handle_run(connection: &Connection<'_>, request: &RunRequest, route: Route<'_>) {
    let resolved = match request.resolve_with(Some(connection.engine.interner())) {
        Ok(resolved) => resolved,
        Err(error) => {
            connection.writer.send(&route.error(&error));
            return;
        }
    };
    connection.engine.count_request();
    match execute_resolved(connection, request, &resolved, route) {
        Err(error) => connection.writer.send(&route.error(&error)),
        Ok(outcome) => {
            let mut rest: Vec<(&str, JsonValue)> =
                vec![("experiments", JsonValue::Integer(outcome.experiments))];
            if let Some((samples, seed)) = outcome.samples {
                rest.push(("samples", JsonValue::Integer(samples)));
                rest.push(("seed", JsonValue::Integer(seed)));
            } else {
                rest.push(("points", JsonValue::Integer(outcome.points)));
            }
            rest.push(("runs", JsonValue::Integer(outcome.runs)));
            rest.push((
                "cache",
                cache_summary(outcome.hits, outcome.misses, outcome.inflight_dedups),
            ));
            connection.writer.send(&route.line("done", rest));
        }
    }
}

/// Validates every sub-run up front (all-or-nothing), then executes them
/// in order, tagging each sub-run's lines with its `run` index and
/// terminating the whole batch with one aggregate `done`.
fn handle_batch(connection: &Connection<'_>, runs: &[RunRequest], id: Option<&RequestId>) {
    let base = Route { id, run: None };
    let mut resolved = Vec::with_capacity(runs.len());
    for (index, run) in runs.iter().enumerate() {
        match run.resolve_with(Some(connection.engine.interner())) {
            Ok(r) => resolved.push(r),
            Err(error) => {
                let route = Route {
                    id,
                    run: Some(index as u64),
                };
                connection.writer.send(&route.error(&error));
                return;
            }
        }
    }
    let (mut experiments, mut runs_total) = (0, 0);
    let (mut hits, mut misses, mut inflight_dedups) = (0, 0, 0);
    for (index, (run, res)) in runs.iter().zip(&resolved).enumerate() {
        let route = Route {
            id,
            run: Some(index as u64),
        };
        connection.engine.count_request();
        match execute_resolved(connection, run, res, route) {
            Ok(outcome) => {
                experiments += outcome.experiments;
                runs_total += outcome.runs;
                hits += outcome.hits;
                misses += outcome.misses;
                inflight_dedups += outcome.inflight_dedups;
            }
            Err(error) => {
                connection.writer.send(&route.error(&error));
                return;
            }
        }
    }
    let done = base.line(
        "done",
        vec![
            ("batch", JsonValue::Integer(runs.len() as u64)),
            ("experiments", JsonValue::Integer(experiments)),
            ("runs", JsonValue::Integer(runs_total)),
            ("cache", cache_summary(hits, misses, inflight_dedups)),
        ],
    );
    connection.writer.send(&done);
}

/// The payload fields of one `artifact` response line: the experiment
/// key, the file name the CLI would have written, and the full artifact
/// envelope.
fn artifact_fields(job: &GridJob<'_>) -> Vec<(&'static str, JsonValue)> {
    let artifact = artifact_json(
        job.entry,
        job.experiment,
        job.output,
        job.context,
        job.sweeping.then_some(job.point),
    );
    vec![
        ("key", JsonValue::from(job.entry.key)),
        (
            "name",
            JsonValue::from(artifact_file_name(
                job.entry.key,
                job.sweeping.then_some(job.point),
                Format::Json,
            )),
        ),
        ("artifact", artifact),
    ]
}

/// Executes one already-resolved run, streaming its artifact and
/// comparison lines. Returns the outcome for the caller's `done` line, or
/// the error for the caller's terminal `error` line.
fn execute_resolved(
    connection: &Connection<'_>,
    request: &RunRequest,
    resolved: &crate::protocol::ResolvedRun,
    route: Route<'_>,
) -> Result<RunOutcome, ProtocolError> {
    let engine = connection.engine;
    let writer = connection.writer;
    if let Some(mc) = &resolved.mc {
        // Monte-Carlo: no per-sample artifact lines (a million-sample run
        // must not stream a million envelopes) — one comparison line with
        // the banded digests, then done.
        let config = McConfig {
            jobs: request.jobs.unwrap_or(1).min(connection.max_jobs),
            no_cache: request.no_cache,
        };
        let result = engine
            .run_mc(&resolved.entries, mc, &config)
            .map_err(|error| ProtocolError {
                category: "invalid-scenario",
                message: error.to_string(),
            })?;
        let envelope = route.line(
            "comparison",
            vec![
                (
                    "name",
                    JsonValue::from(format!("mc-comparison.{}", Format::Json.extension())),
                ),
                ("comparison", mc_comparison_json(&result.comparisons, mc)),
            ],
        );
        writer.send(&envelope);
        return Ok(RunOutcome {
            experiments: resolved.entries.len() as u64,
            points: resolved.points.len() as u64,
            samples: Some((mc.len() as u64, mc.seed())),
            runs: result.run_counts.iter().sum::<usize>() as u64,
            hits: result.hits,
            misses: result.misses,
            inflight_dedups: result.inflight_dedups,
        });
    }
    let config = GridConfig {
        jobs: request.jobs.unwrap_or(1).min(connection.max_jobs),
        no_cache: request.no_cache,
        format: Format::Json,
    };
    let render = |job: &GridJob<'_>| {
        // A non-sweep artifact is a pure function of the interned payload
        // and the entry, so its rendered text is cached on the interned
        // scenario and only the per-request routing tag is spliced in —
        // replayed payloads skip the dominant JSON build + render cost.
        // Sweep artifacts embed per-point data and `no_cache` promises a
        // fresh pipeline, so both render from scratch.
        if !job.sweeping && !request.no_cache {
            let untagged = resolved.base.rendered_artifact(job.entry.key, || {
                Route::default().line("artifact", artifact_fields(job))
            });
            return vec![route.artifact_line(&untagged)];
        }
        vec![route.line("artifact", artifact_fields(job))]
    };
    let result = engine.run_grid(
        &resolved.entries,
        &resolved.points,
        &resolved.contexts,
        &config,
        render,
        |line| writer.send(&line),
    );
    if resolved.matrix.is_sweep() {
        let comparisons = build_comparisons(
            &resolved.entries,
            &resolved.points,
            &result.scalars,
            &resolved.matrix,
        )
        .map_err(|error| ProtocolError {
            category: "invalid-scenario",
            message: error.to_string(),
        })?;
        let envelope = route.line(
            "comparison",
            vec![
                (
                    "name",
                    JsonValue::from(format!("comparison.{}", Format::Json.extension())),
                ),
                (
                    "comparison",
                    comparison_json(&comparisons, &resolved.matrix),
                ),
            ],
        );
        writer.send(&envelope);
    }
    Ok(RunOutcome {
        experiments: resolved.entries.len() as u64,
        points: resolved.points.len() as u64,
        samples: None,
        runs: result.run_counts.iter().sum::<usize>() as u64,
        hits: result.hits,
        misses: result.misses,
        inflight_dedups: result.inflight_dedups,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn connect(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).expect("connect to test server");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        (reader, stream)
    }

    fn request(
        reader: &mut BufReader<TcpStream>,
        stream: &mut TcpStream,
        line: &str,
    ) -> Vec<JsonValue> {
        writeln!(stream, "{line}").expect("send request");
        let mut responses = Vec::new();
        loop {
            let mut response = String::new();
            reader.read_line(&mut response).expect("read response");
            let value = JsonValue::parse(response.trim_end()).expect("responses are valid JSON");
            let kind = value
                .get("type")
                .and_then(JsonValue::as_str)
                .expect("responses carry a type")
                .to_string();
            responses.push(value);
            if matches!(kind.as_str(), "done" | "error" | "stats" | "bye" | "hello") {
                return responses;
            }
        }
    }

    #[test]
    fn serves_runs_stats_and_errors_on_one_connection() {
        let engine = Arc::new(Engine::new());
        let server = Server::bind("127.0.0.1:0", Arc::clone(&engine), 4).expect("bind");
        let addr = server.local_addr().expect("local addr");
        let daemon = std::thread::spawn(move || server.run());
        let (mut reader, mut stream) = connect(addr);

        // Protocol errors are structured responses, not dropped connections.
        let bad = request(&mut reader, &mut stream, "{not json");
        assert_eq!(
            bad[0].get("error").and_then(JsonValue::as_str),
            Some("malformed-request")
        );
        let bad = request(
            &mut reader,
            &mut stream,
            r#"{"op":"run","experiments":["fig99"]}"#,
        );
        assert_eq!(
            bad[0].get("error").and_then(JsonValue::as_str),
            Some("unknown-experiment")
        );
        assert_eq!(engine.stats().misses, 0, "rejected requests never compute");

        // A sweep run streams artifacts, a comparison, then done.
        let run =
            r#"{"op":"run","experiments":["fig05"],"sweep":["grid.intensity=100,300"],"jobs":2}"#;
        let responses = request(&mut reader, &mut stream, run);
        let kinds: Vec<&str> = responses
            .iter()
            .filter_map(|r| r.get("type").and_then(JsonValue::as_str))
            .collect();
        assert_eq!(kinds, ["artifact", "artifact", "comparison", "done"]);
        assert_eq!(
            responses[0].get("name").and_then(JsonValue::as_str),
            Some("fig05@grid.intensity-100.json")
        );
        // v1-style responses never grow an `id` field.
        assert_eq!(responses[0].get("id"), None);
        let done = responses.last().expect("done line");
        // fig05 is scenario-independent: two points, one model run.
        assert_eq!(done.get("runs").and_then(JsonValue::as_u64), Some(1));

        // The identical request is answered from the shared cache, and its
        // payload from the interner.
        let responses = request(&mut reader, &mut stream, run);
        let done = responses.last().expect("done line");
        let cache = done.get("cache").expect("cache summary");
        assert_eq!(cache.get("misses").and_then(JsonValue::as_u64), Some(0));
        assert_eq!(cache.get("hits").and_then(JsonValue::as_u64), Some(1));

        // Stats reflects both served runs, and the interner's reuse.
        let stats = request(&mut reader, &mut stream, r#"{"op":"stats"}"#);
        let stats = stats[0].get("stats").expect("stats payload");
        assert_eq!(stats.get("requests").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(stats.get("entries").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(
            stats.get("intern_hits").and_then(JsonValue::as_u64),
            Some(1),
            "the repeated payload skipped re-validation"
        );

        // Cooperative shutdown: bye, then the daemon thread drains.
        let bye = request(&mut reader, &mut stream, r#"{"op":"shutdown"}"#);
        assert_eq!(bye[0].get("type").and_then(JsonValue::as_str), Some("bye"));
        daemon
            .join()
            .expect("daemon thread joins")
            .expect("daemon exits cleanly");
    }

    #[test]
    fn serves_monte_carlo_runs_with_banded_digests() {
        let engine = Arc::new(Engine::new());
        let server = Server::bind("127.0.0.1:0", Arc::clone(&engine), 4).expect("bind");
        let addr = server.local_addr().expect("local addr");
        let daemon = std::thread::spawn(move || server.run());
        let (mut reader, mut stream) = connect(addr);

        let run = r#"{"op":"run","experiments":["ext-facility"],
            "dists":["fleet.growth ~ uniform(1.2,1.4)"],"samples":50,"seed":7,"jobs":2}"#
            .replace('\n', " ");
        let responses = request(&mut reader, &mut stream, &run);
        let kinds: Vec<&str> = responses
            .iter()
            .filter_map(|r| r.get("type").and_then(JsonValue::as_str))
            .collect();
        // No per-sample artifact lines: one comparison, then done.
        assert_eq!(kinds, ["comparison", "done"]);
        let comparison = responses[0].get("comparison").expect("payload");
        assert_eq!(
            responses[0].get("name").and_then(JsonValue::as_str),
            Some("mc-comparison.json")
        );
        let digests = comparison
            .get("comparisons")
            .and_then(JsonValue::as_array)
            .expect("digest list");
        assert!(!digests.is_empty());
        let n = digests[0]
            .get("stats")
            .and_then(|s| s.get("n"))
            .and_then(JsonValue::as_u64);
        assert_eq!(n, Some(50));
        let done = responses.last().expect("done line");
        assert_eq!(done.get("samples").and_then(JsonValue::as_u64), Some(50));
        assert_eq!(done.get("seed").and_then(JsonValue::as_u64), Some(7));

        // A sampling error is a structured response, not a dead daemon.
        let bad = request(
            &mut reader,
            &mut stream,
            r#"{"op":"run","experiments":["ext-facility"],"dists":["fab.node_nm ~ normal(3,40)"],"samples":200}"#,
        );
        assert_eq!(
            bad[0].get("error").and_then(JsonValue::as_str),
            Some("invalid-scenario")
        );

        request(&mut reader, &mut stream, r#"{"op":"shutdown"}"#);
        daemon.join().expect("join").expect("clean exit");
    }

    #[test]
    fn concurrent_identical_sweeps_compute_each_fingerprint_once() {
        let engine = Arc::new(Engine::new());
        let server = Server::bind("127.0.0.1:0", Arc::clone(&engine), 4).expect("bind");
        let addr = server.local_addr().expect("local addr");
        let daemon = std::thread::spawn(move || server.run());

        let run =
            r#"{"op":"run","experiments":["fig10"],"sweep":["grid.intensity=100,300"],"jobs":2}"#;
        let clients: Vec<_> = (0..2)
            .map(|_| {
                std::thread::spawn(move || {
                    let (mut reader, mut stream) = connect(addr);
                    let responses = request(&mut reader, &mut stream, run);
                    let done = responses.last().expect("done line").clone();
                    let cache = done.get("cache").expect("cache summary");
                    (
                        cache.get("hits").and_then(JsonValue::as_u64).unwrap(),
                        cache.get("misses").and_then(JsonValue::as_u64).unwrap(),
                        cache
                            .get("inflight_dedups")
                            .and_then(JsonValue::as_u64)
                            .unwrap(),
                    )
                })
            })
            .collect();
        let outcomes: Vec<_> = clients.into_iter().map(|c| c.join().unwrap()).collect();

        // Two clients × two points raced on two fingerprints: exactly two
        // model runs total, however the hits/dedups split fell.
        let stats = engine.stats();
        assert_eq!(stats.misses, 2, "each fingerprint computed exactly once");
        assert_eq!(stats.hits + stats.inflight_dedups, 2);
        let total: u64 = outcomes.iter().map(|(h, m, d)| h + m + d).sum();
        assert_eq!(total, 4, "every lookup accounted for");

        let (mut reader, mut stream) = connect(addr);
        request(&mut reader, &mut stream, r#"{"op":"shutdown"}"#);
        daemon.join().expect("join").expect("clean exit");
    }

    #[test]
    fn hello_reports_version_and_limits() {
        let engine = Arc::new(Engine::with_capacity(32));
        let server = Server::bind("127.0.0.1:0", engine, 4)
            .expect("bind")
            .queue_depth(5);
        let addr = server.local_addr().expect("local addr");
        let daemon = std::thread::spawn(move || server.run());
        let (mut reader, mut stream) = connect(addr);

        let hello = request(&mut reader, &mut stream, r#"{"op":"hello","id":"h"}"#);
        assert_eq!(
            hello[0].get("version").and_then(JsonValue::as_u64),
            Some(PROTOCOL_VERSION)
        );
        assert_eq!(hello[0].get("id").and_then(JsonValue::as_str), Some("h"));
        assert_eq!(
            hello[0].get("max_jobs").and_then(JsonValue::as_u64),
            Some(4)
        );
        assert_eq!(
            hello[0].get("queue_depth").and_then(JsonValue::as_u64),
            Some(5)
        );
        let ops: Vec<&str> = hello[0]
            .get("ops")
            .and_then(JsonValue::as_array)
            .expect("ops list")
            .iter()
            .filter_map(JsonValue::as_str)
            .collect();
        assert_eq!(ops, OPS);

        request(&mut reader, &mut stream, r#"{"op":"shutdown"}"#);
        daemon.join().expect("join").expect("clean exit");
    }

    #[test]
    fn pipelined_ids_multiplex_and_pair_responses() {
        let engine = Arc::new(Engine::new());
        let server = Server::bind("127.0.0.1:0", engine, 4).expect("bind");
        let addr = server.local_addr().expect("local addr");
        let daemon = std::thread::spawn(move || server.run());
        let (mut reader, mut stream) = connect(addr);

        // Write a burst of id-tagged requests without reading, then drain:
        // every response line must carry one of our ids, and every id must
        // terminate exactly once.
        const DEPTH: usize = 12;
        for i in 0..DEPTH {
            writeln!(
                stream,
                r#"{{"op":"run","id":{i},"experiments":["fig05"],"jobs":2}}"#
            )
            .expect("send");
        }
        let mut terminated = [0usize; DEPTH];
        let mut lines = 0usize;
        while terminated.iter().sum::<usize>() < DEPTH {
            let mut response = String::new();
            reader.read_line(&mut response).expect("read response");
            let value = JsonValue::parse(response.trim_end()).expect("valid JSON");
            let id = value
                .get("id")
                .and_then(JsonValue::as_u64)
                .expect("every line carries an id") as usize;
            assert!(id < DEPTH);
            lines += 1;
            match value.get("type").and_then(JsonValue::as_str) {
                Some("artifact") => {}
                Some("done") => terminated[id] += 1,
                other => panic!("unexpected response kind {other:?}"),
            }
        }
        assert!(terminated.iter().all(|&t| t == 1), "each id done once");
        assert_eq!(lines, DEPTH * 2, "one artifact + one done per request");

        request(&mut reader, &mut stream, r#"{"op":"shutdown"}"#);
        daemon.join().expect("join").expect("clean exit");
    }

    #[test]
    fn batches_validate_atomically_and_aggregate_done() {
        let engine = Arc::new(Engine::new());
        let server = Server::bind("127.0.0.1:0", Arc::clone(&engine), 4).expect("bind");
        let addr = server.local_addr().expect("local addr");
        let daemon = std::thread::spawn(move || server.run());
        let (mut reader, mut stream) = connect(addr);

        // One bad element rejects the whole batch before anything runs.
        let bad = request(
            &mut reader,
            &mut stream,
            r#"{"op":"batch","id":"b0","runs":[{"experiments":["fig05"]},{"experiments":["fig99"]}]}"#,
        );
        assert_eq!(bad.len(), 1);
        assert_eq!(
            bad[0].get("error").and_then(JsonValue::as_str),
            Some("unknown-experiment")
        );
        assert_eq!(bad[0].get("run").and_then(JsonValue::as_u64), Some(1));
        assert_eq!(engine.stats().misses, 0, "nothing ran");

        // A good batch tags artifacts with run indices and aggregates done.
        let responses = request(
            &mut reader,
            &mut stream,
            r#"{"op":"batch","id":"b1","runs":[{"experiments":["fig05"]},{"experiments":["fig10"]}]}"#,
        );
        let kinds: Vec<&str> = responses
            .iter()
            .filter_map(|r| r.get("type").and_then(JsonValue::as_str))
            .collect();
        assert_eq!(kinds, ["artifact", "artifact", "done"]);
        assert_eq!(responses[0].get("run").and_then(JsonValue::as_u64), Some(0));
        assert_eq!(responses[1].get("run").and_then(JsonValue::as_u64), Some(1));
        let done = responses.last().expect("done");
        assert_eq!(done.get("id").and_then(JsonValue::as_str), Some("b1"));
        assert_eq!(done.get("batch").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(done.get("experiments").and_then(JsonValue::as_u64), Some(2));
        assert_eq!(done.get("runs").and_then(JsonValue::as_u64), Some(2));

        request(&mut reader, &mut stream, r#"{"op":"shutdown"}"#);
        daemon.join().expect("join").expect("clean exit");
    }

    #[test]
    fn zero_depth_queue_rejects_with_retry_after() {
        let engine = Arc::new(Engine::new());
        let server = Server::bind("127.0.0.1:0", engine, 4)
            .expect("bind")
            .queue_depth(0);
        let addr = server.local_addr().expect("local addr");
        let daemon = std::thread::spawn(move || server.run());
        let (mut reader, mut stream) = connect(addr);

        let rejected = request(
            &mut reader,
            &mut stream,
            r#"{"op":"run","id":"r","experiments":["fig05"]}"#,
        );
        assert_eq!(
            rejected[0].get("error").and_then(JsonValue::as_str),
            Some("overloaded")
        );
        assert_eq!(rejected[0].get("id").and_then(JsonValue::as_str), Some("r"));
        assert_eq!(
            rejected[0]
                .get("retry_after_ms")
                .and_then(JsonValue::as_u64),
            Some(10)
        );

        // v1 (un-tagged) requests bypass the queue entirely and still run.
        let ok = request(
            &mut reader,
            &mut stream,
            r#"{"op":"run","experiments":["fig05"]}"#,
        );
        assert_eq!(
            ok.last().unwrap().get("type").and_then(JsonValue::as_str),
            Some("done")
        );

        request(&mut reader, &mut stream, r#"{"op":"shutdown"}"#);
        daemon.join().expect("join").expect("clean exit");
    }
}
