//! Property-based tests for the scenario interner: the v2 protocol's
//! claim that repeated `set`/`dists` payloads skip re-validation is only
//! sound if *equal* payloads always share one validated allocation and
//! *unequal* payloads never do, for any payload — not just the literals
//! the unit tests pin.

use cc_engine::ScenarioInterner;
use proptest::prelude::*;
use std::sync::Arc;

/// Paths whose validation rule accepts any positive integer literal, so
/// every generated payload validates.
const PATHS: [&str; 5] = [
    "grid.intensity",
    "device.lifetime",
    "fab.node_nm",
    "fleet.scale",
    "fleet.growth",
];

/// One generated `set` payload: distinct in-order paths with positive
/// integer values.
fn payload() -> impl Strategy<Value = Vec<(String, String)>> {
    (
        proptest::collection::vec(any::<bool>(), PATHS.len()..PATHS.len() + 1),
        proptest::collection::vec(1u32..10_000, PATHS.len()..PATHS.len() + 1),
    )
        .prop_map(|(picks, values)| {
            PATHS
                .iter()
                .zip(picks)
                .zip(values)
                .filter(|((_, pick), _)| *pick)
                .map(|((path, _), value)| (path.to_string(), value.to_string()))
                .collect()
        })
}

/// Optional distribution bindings riding along with the sets.
fn dists() -> impl Strategy<Value = Vec<String>> {
    any::<bool>().prop_map(|with| {
        if with {
            vec!["fab.node_nm ~ triangular(5,7,10)".to_string()]
        } else {
            Vec::new()
        }
    })
}

proptest! {
    #[test]
    fn equal_payloads_validate_once_and_share(sets in payload(), dists in dists()) {
        let interner = ScenarioInterner::new(64);
        let first = interner.resolve(&sets, &dists).unwrap();
        let second = interner.resolve(&sets, &dists).unwrap();
        prop_assert!(
            Arc::ptr_eq(&first, &second),
            "identical payloads must share one allocation"
        );
        // Exactly one validation (the miss), however many re-sightings.
        prop_assert_eq!(interner.counters(), (1, 1));
        prop_assert_eq!(interner.entries(), 1);
    }

    #[test]
    fn unequal_payloads_never_share(a in payload(), b in payload(), dists in dists()) {
        prop_assume!(a != b);
        let interner = ScenarioInterner::new(64);
        let left = interner.resolve(&a, &dists).unwrap();
        let right = interner.resolve(&b, &dists).unwrap();
        prop_assert!(
            !Arc::ptr_eq(&left, &right),
            "distinct payloads must not alias"
        );
        // Two validations, no hits: nothing was reused.
        prop_assert_eq!(interner.counters(), (0, 2));
        prop_assert_eq!(interner.entries(), 2);
    }

    #[test]
    fn dists_are_part_of_the_payload_identity(sets in payload()) {
        let interner = ScenarioInterner::new(64);
        let bare = interner.resolve(&sets, &[]).unwrap();
        let bound = interner
            .resolve(&sets, &["fleet.growth ~ uniform(1.1,1.5)".to_string()])
            .unwrap();
        prop_assert!(!Arc::ptr_eq(&bare, &bound));
        prop_assert_eq!(bound.bindings.len(), 1);
        prop_assert_eq!(bare.bindings.len(), 0);
    }
}
