//! Protocol-v2 conformance suite: golden NDJSON transcripts pinned
//! against `docs/PROTOCOL.md`.
//!
//! Each file under `tests/transcripts/` is one scripted conversation with
//! a fresh in-process daemon:
//!
//! ```text
//! # comment            — ignored
//! !queue-depth 0       — server knob, must precede the first exchange
//! > {"op":"hello"}     — raw line sent to the server (not necessarily JSON)
//! < {"type":"hello",…} — expected response, matched strictly
//! ```
//!
//! Expected lines are matched with **ordered, exact key sets**: the
//! response must carry exactly the pattern's keys in the pattern's order,
//! so an accidental extra field (or a stray `id` on a v1-style response)
//! fails the pin. The string `"*"` is a wildcard value (used for bulky
//! artifact payloads and human-readable messages).
//!
//! A second test parses the normative enumerations out of
//! `docs/PROTOCOL.md` (operation headers, response-kind and
//! error-category tables) and asserts three-way agreement between the
//! document, the code's canonical constants, and the transcripts'
//! coverage — so the spec, the implementation and the golden files cannot
//! drift apart silently.

use cc_engine::protocol::{ERROR_CATEGORIES, OPS, PROTOCOL_VERSION, RESPONSE_KINDS};
use cc_engine::{Engine, Server};
use cc_report::JsonValue;
use std::collections::BTreeSet;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn transcripts_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/transcripts")
}

fn protocol_doc() -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../docs/PROTOCOL.md");
    std::fs::read_to_string(&path).expect("docs/PROTOCOL.md is readable")
}

fn transcript_files() -> Vec<(String, String)> {
    let dir = transcripts_dir();
    let mut files: Vec<(String, String)> = std::fs::read_dir(&dir)
        .expect("tests/transcripts/ exists")
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|path| path.extension().is_some_and(|e| e == "txt"))
        .map(|path| {
            let name = path
                .file_name()
                .expect("file name")
                .to_string_lossy()
                .into_owned();
            let text = std::fs::read_to_string(&path).expect("readable transcript");
            (name, text)
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "no transcripts in {}", dir.display());
    files
}

/// Strict pattern match: objects must carry exactly the pattern's keys in
/// the pattern's order, arrays the pattern's length; `"*"` matches any
/// value.
fn matches(pattern: &JsonValue, actual: &JsonValue) -> bool {
    match (pattern, actual) {
        (JsonValue::String(s), _) if s == "*" => true,
        (JsonValue::Object(p), JsonValue::Object(a)) => {
            p.len() == a.len()
                && p.iter()
                    .zip(a.iter())
                    .all(|((pk, pv), (ak, av))| pk == ak && matches(pv, av))
        }
        (JsonValue::Array(p), JsonValue::Array(a)) => {
            p.len() == a.len() && p.iter().zip(a.iter()).all(|(pv, av)| matches(pv, av))
        }
        _ => pattern == actual,
    }
}

/// Plays one transcript against a fresh daemon configured by its
/// directives.
fn run_transcript(name: &str, text: &str) {
    let mut max_jobs = 4usize;
    let mut queue_depth = cc_engine::server::DEFAULT_QUEUE_DEPTH;
    let mut cache_capacity = None;
    let mut exchanges_started = false;
    // First pass for directives only, so the server is fully configured
    // before it binds.
    for (number, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if let Some(directive) = line.strip_prefix('!') {
            assert!(
                !exchanges_started,
                "{name}:{}: directive after first exchange",
                number + 1
            );
            let (key, value) = directive
                .split_once(' ')
                .unwrap_or_else(|| panic!("{name}:{}: malformed directive", number + 1));
            let value: usize = value
                .trim()
                .parse()
                .unwrap_or_else(|_| panic!("{name}:{}: non-numeric directive", number + 1));
            match key {
                "max-jobs" => max_jobs = value,
                "queue-depth" => queue_depth = value,
                "cache-capacity" => cache_capacity = Some(value),
                other => panic!("{name}:{}: unknown directive `{other}`", number + 1),
            }
        } else if line.starts_with('>') || line.starts_with('<') {
            exchanges_started = true;
        }
    }

    let engine = match cache_capacity {
        Some(capacity) => Arc::new(Engine::with_capacity(capacity)),
        None => Arc::new(Engine::new()),
    };
    let server = Server::bind("127.0.0.1:0", engine, max_jobs)
        .expect("bind conformance server")
        .queue_depth(queue_depth);
    let addr = server.local_addr().expect("local addr");
    let daemon = std::thread::spawn(move || server.run());

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(std::time::Duration::from_secs(30)))
        .expect("set timeout");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut shut_down = false;

    for (number, line) in text.lines().enumerate() {
        let line = line.trim_end();
        if line.is_empty() || line.starts_with('#') || line.starts_with('!') {
            continue;
        }
        if let Some(request) = line.strip_prefix('>') {
            let request = request.strip_prefix(' ').unwrap_or(request);
            writeln!(stream, "{request}").expect("send request");
            if let Ok(value) = JsonValue::parse(request) {
                if value.get("op").and_then(JsonValue::as_str) == Some("shutdown") {
                    shut_down = true;
                }
            }
        } else if let Some(expected) = line.strip_prefix('<') {
            let expected = expected.strip_prefix(' ').unwrap_or(expected);
            let pattern = JsonValue::parse(expected)
                .unwrap_or_else(|e| panic!("{name}:{}: bad pattern: {e:?}", number + 1));
            let mut response = String::new();
            reader
                .read_line(&mut response)
                .unwrap_or_else(|e| panic!("{name}:{}: read failed: {e}", number + 1));
            assert!(
                !response.is_empty(),
                "{name}:{}: server closed the connection",
                number + 1
            );
            let actual = JsonValue::parse(response.trim_end())
                .unwrap_or_else(|e| panic!("{name}:{}: unparsable response: {e:?}", number + 1));
            assert!(
                matches(&pattern, &actual),
                "{name}:{}: response mismatch\n  expected {expected}\n  got      {}",
                number + 1,
                response.trim_end()
            );
        } else {
            panic!(
                "{name}:{}: unrecognized transcript line `{line}`",
                number + 1
            );
        }
    }

    if !shut_down {
        writeln!(stream, r#"{{"op":"shutdown"}}"#).expect("send shutdown");
        let mut bye = String::new();
        reader.read_line(&mut bye).expect("read bye");
    }
    daemon
        .join()
        .expect("daemon thread joins")
        .expect("daemon exits cleanly");
}

#[test]
fn golden_transcripts_replay_byte_for_byte() {
    for (name, text) in transcript_files() {
        run_transcript(&name, &text);
    }
}

/// Everything the transcripts exercise, collected statically.
struct Coverage {
    ops: BTreeSet<String>,
    kinds: BTreeSet<String>,
    categories: BTreeSet<String>,
}

fn transcript_coverage() -> Coverage {
    let mut coverage = Coverage {
        ops: BTreeSet::new(),
        kinds: BTreeSet::new(),
        categories: BTreeSet::new(),
    };
    for (_, text) in transcript_files() {
        for line in text.lines() {
            let line = line.trim_end();
            if let Some(request) = line.strip_prefix("> ") {
                if let Ok(value) = JsonValue::parse(request) {
                    // Unknown ops are deliberately present (they pin the
                    // malformed-request category) but are not coverage.
                    if let Some(op) = value.get("op").and_then(JsonValue::as_str) {
                        if OPS.contains(&op) {
                            coverage.ops.insert(op.to_string());
                        }
                    }
                }
            } else if let Some(expected) = line.strip_prefix("< ") {
                let pattern = JsonValue::parse(expected).expect("patterns are valid JSON");
                if let Some(kind) = pattern.get("type").and_then(JsonValue::as_str) {
                    coverage.kinds.insert(kind.to_string());
                }
                if let Some(category) = pattern.get("error").and_then(JsonValue::as_str) {
                    if category != "*" {
                        coverage.categories.insert(category.to_string());
                    }
                }
            }
        }
    }
    coverage
}

/// The enumerations `docs/PROTOCOL.md` declares normative.
struct DocEnums {
    ops: BTreeSet<String>,
    kinds: BTreeSet<String>,
    categories: BTreeSet<String>,
}

/// First backticked token of a markdown table row (`| \`x\` | … |`).
fn table_cell(line: &str) -> Option<&str> {
    let rest = line.strip_prefix("| `")?;
    rest.split('`').next()
}

/// Backticked names from the first column of the markdown table inside
/// one `## section` (rows after the `|---` separator).
fn section_table(doc: &str, section: &str) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    let mut in_section = false;
    let mut past_separator = false;
    for line in doc.lines() {
        if let Some(header) = line.strip_prefix("## ") {
            in_section = header.trim() == section;
            past_separator = false;
            continue;
        }
        if !in_section {
            continue;
        }
        if line.starts_with("|---") {
            past_separator = true;
            continue;
        }
        if past_separator {
            match table_cell(line) {
                Some(name) => {
                    names.insert(name.to_string());
                }
                None => past_separator = false,
            }
        }
    }
    assert!(!names.is_empty(), "no table found under `## {section}`");
    names
}

fn doc_enums(doc: &str) -> DocEnums {
    let ops = doc
        .lines()
        .filter_map(|line| line.strip_prefix("### `"))
        .filter_map(|rest| rest.split('`').next())
        .map(str::to_string)
        .collect::<BTreeSet<_>>();
    DocEnums {
        ops,
        kinds: section_table(doc, "Response kinds"),
        categories: section_table(doc, "Error categories"),
    }
}

fn as_set(items: &[&str]) -> BTreeSet<String> {
    items.iter().map(|s| s.to_string()).collect()
}

#[test]
fn protocol_doc_matches_code_and_transcripts_cover_it() {
    let doc = protocol_doc();
    assert!(
        doc.lines()
            .next()
            .is_some_and(|title| title.contains(&format!("version {PROTOCOL_VERSION}"))),
        "PROTOCOL.md title must state the protocol version"
    );
    let enums = doc_enums(&doc);
    assert_eq!(enums.ops, as_set(&OPS), "doc operations drifted from code");
    assert_eq!(
        enums.kinds,
        as_set(&RESPONSE_KINDS),
        "doc response kinds drifted from code"
    );
    assert_eq!(
        enums.categories,
        as_set(&ERROR_CATEGORIES),
        "doc error categories drifted from code"
    );

    let coverage = transcript_coverage();
    assert_eq!(
        coverage.ops, enums.ops,
        "transcripts must exercise every documented operation"
    );
    assert_eq!(
        coverage.kinds, enums.kinds,
        "transcripts must pin every documented response kind"
    );
    assert_eq!(
        coverage.categories, enums.categories,
        "transcripts must pin every documented error category"
    );
}
