//! Generational trend analysis (Fig 7).
//!
//! Tracks how the manufacturing share and the absolute totals evolve across
//! product generations of one family (iPhones, Apple Watches, iPads).

use cc_analysis::series::YearSeries;
use cc_data::devices::{self, ProductLca};

/// A named device family with its generations in release order.
#[derive(Debug, Clone, PartialEq)]
pub struct Family {
    /// Family label (Fig 7 panel title).
    pub name: &'static str,
    /// Device names, oldest first. Each must exist in [`cc_data::devices`].
    pub members: Vec<&'static str>,
}

impl Family {
    /// The iPhone generations tracked by Fig 7 (2008's 3GS to 2018's XR,
    /// plus the 2019 iPhone 11 used by Fig 2).
    #[must_use]
    pub fn iphone() -> Self {
        Self {
            name: "iPhone",
            members: vec![
                "iPhone 3GS",
                "iPhone 4",
                "iPhone 4S",
                "iPhone 5S",
                "iPhone 6s",
                "iPhone 7",
                "iPhone X",
                "iPhone XR",
                "iPhone 11",
            ],
        }
    }

    /// The Apple Watch generations tracked by Fig 7 (Series 1 to Series 5).
    #[must_use]
    pub fn apple_watch() -> Self {
        Self {
            name: "Apple Watch",
            members: vec![
                "Apple Watch Series 1",
                "Apple Watch Series 2",
                "Apple Watch Series 3",
                "Apple Watch Series 4",
                "Apple Watch Series 5",
            ],
        }
    }

    /// The iPad generations tracked by Fig 7 (Gen 2 to Gen 7).
    #[must_use]
    pub fn ipad() -> Self {
        Self {
            name: "iPad",
            members: vec![
                "iPad (2nd gen)",
                "iPad (3rd gen)",
                "iPad (5th gen)",
                "iPad (6th gen)",
                "iPad (7th gen)",
            ],
        }
    }

    /// The three families of Fig 7.
    #[must_use]
    pub fn fig7_families() -> Vec<Self> {
        vec![Self::iphone(), Self::apple_watch(), Self::ipad()]
    }

    /// Resolves members to LCA records, skipping unknown names.
    #[must_use]
    pub fn records(&self) -> Vec<&'static ProductLca> {
        self.members
            .iter()
            .filter_map(|n| devices::find(n))
            .collect()
    }

    /// Manufacturing share per generation year (Fig 7 top panel).
    #[must_use]
    pub fn manufacturing_share_series(&self) -> YearSeries {
        self.records()
            .iter()
            .map(|d| (d.year, d.production_share))
            .collect()
    }

    /// Absolute totals per generation year (Fig 7 bottom panel, ● marker).
    #[must_use]
    pub fn total_series(&self) -> YearSeries {
        self.records()
            .iter()
            .map(|d| (d.year, d.total_kg))
            .collect()
    }

    /// Absolute manufacturing carbon per generation year (● manufacturing
    /// marker).
    #[must_use]
    pub fn manufacturing_series(&self) -> YearSeries {
        self.records()
            .iter()
            .map(|d| (d.year, d.production().as_kg()))
            .collect()
    }

    /// Absolute use-phase carbon per generation year (✕ marker).
    #[must_use]
    pub fn use_series(&self) -> YearSeries {
        self.records()
            .iter()
            .map(|d| (d.year, d.use_phase().as_kg()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_families_resolve_fully() {
        for family in Family::fig7_families() {
            assert_eq!(
                family.records().len(),
                family.members.len(),
                "{} has unresolved members",
                family.name
            );
        }
    }

    #[test]
    fn manufacturing_share_rises_across_generations() {
        // Takeaway 4, for all three families. The trend is upward overall;
        // individual generations may dip slightly (the LCD iPhone XR sits
        // below the OLED iPhone X), so only small reversals are tolerated.
        for family in Family::fig7_families() {
            let series = family.manufacturing_share_series();
            let growth = series.total_growth().unwrap();
            assert!(growth > 1.2, "{}: growth {growth}", family.name);
            let values: Vec<f64> = series.values().collect();
            for pair in values.windows(2) {
                assert!(
                    pair[1] >= pair[0] - 0.06,
                    "{}: share dips too far ({} -> {})",
                    family.name,
                    pair[0],
                    pair[1]
                );
            }
        }
    }

    #[test]
    fn iphone_share_spans_40_to_79_percent() {
        let series = Family::iphone().manufacturing_share_series();
        let first = series.values().next().unwrap();
        let last = series.values().last().unwrap();
        assert!((first - 0.40).abs() < 0.01);
        assert!(last > 0.74);
    }

    #[test]
    fn ipad_totals_fall_while_iphone_totals_rise() {
        // Fig 7 bottom: "The absolute carbon output for iPads decreased over
        // time, while for iPhones and Watches it increased."
        let ipad = Family::ipad().total_series();
        assert!(ipad.total_growth().unwrap() < 1.0);
        let iphone = Family::iphone().total_series();
        assert!(iphone.total_growth().unwrap() > 1.0);
        let watch = Family::apple_watch().total_series();
        assert!(watch.total_growth().unwrap() > 1.0);
    }

    #[test]
    fn iphone_use_carbon_falls_as_manufacturing_rises() {
        // "as carbon from operational use decreased, the manufacturing
        // contribution increased".
        let family = Family::iphone();
        let use_growth = family.use_series().total_growth().unwrap();
        let mfg_growth = family.manufacturing_series().total_growth().unwrap();
        assert!(use_growth < 1.0, "use growth {use_growth}");
        assert!(mfg_growth > 2.0, "mfg growth {mfg_growth}");
    }
}
