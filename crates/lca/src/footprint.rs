//! The [`Footprint`] type: a life-cycle carbon footprint split across the
//! four phases, with opex/capex accessors, plus a builder.

use crate::phase::{ExpenditureClass, LifecyclePhase};
use cc_units::{CarbonMass, Ratio};

/// A complete life-cycle footprint: carbon per phase.
///
/// Construct with [`Footprint::builder`], from explicit per-phase masses with
/// [`Footprint::from_phases`], or from a published LCA record with
/// [`Footprint::from_product_lca`].
///
/// ```
/// use cc_lca::Footprint;
/// use cc_units::CarbonMass;
///
/// let fp = Footprint::builder()
///     .production(CarbonMass::from_kg(59.0))
///     .transport(CarbonMass::from_kg(4.0))
///     .use_phase(CarbonMass::from_kg(10.5))
///     .end_of_life(CarbonMass::from_kg(1.5))
///     .build();
/// assert_eq!(fp.total(), CarbonMass::from_kg(75.0));
/// assert!(fp.capex_share().as_percent() > 85.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Footprint {
    production: CarbonMass,
    transport: CarbonMass,
    use_phase: CarbonMass,
    end_of_life: CarbonMass,
}

impl Footprint {
    /// Starts building a footprint; phases default to zero.
    #[must_use]
    pub fn builder() -> FootprintBuilder {
        FootprintBuilder::default()
    }

    /// Creates a footprint from explicit per-phase masses.
    #[must_use]
    pub fn from_phases(
        production: CarbonMass,
        transport: CarbonMass,
        use_phase: CarbonMass,
        end_of_life: CarbonMass,
    ) -> Self {
        Self {
            production,
            transport,
            use_phase,
            end_of_life,
        }
    }

    /// Creates a footprint from a published product LCA record.
    #[must_use]
    pub fn from_product_lca(lca: &cc_data::devices::ProductLca) -> Self {
        Self {
            production: lca.production(),
            transport: lca.transport(),
            use_phase: lca.use_phase(),
            end_of_life: lca.end_of_life(),
        }
    }

    /// Carbon for one phase.
    #[must_use]
    pub fn phase(&self, phase: LifecyclePhase) -> CarbonMass {
        match phase {
            LifecyclePhase::Production => self.production,
            LifecyclePhase::Transport => self.transport,
            LifecyclePhase::Use => self.use_phase,
            LifecyclePhase::EndOfLife => self.end_of_life,
        }
    }

    /// Production (manufacturing) carbon.
    #[must_use]
    pub fn production(&self) -> CarbonMass {
        self.production
    }

    /// Transport carbon.
    #[must_use]
    pub fn transport(&self) -> CarbonMass {
        self.transport
    }

    /// Use-phase (operational) carbon.
    #[must_use]
    pub fn use_phase(&self) -> CarbonMass {
        self.use_phase
    }

    /// End-of-life carbon (may be negative for recycling credits).
    #[must_use]
    pub fn end_of_life(&self) -> CarbonMass {
        self.end_of_life
    }

    /// Total life-cycle carbon.
    #[must_use]
    pub fn total(&self) -> CarbonMass {
        self.production + self.transport + self.use_phase + self.end_of_life
    }

    /// Carbon for one expenditure class (opex = use; capex = the rest).
    #[must_use]
    pub fn by_class(&self, class: ExpenditureClass) -> CarbonMass {
        LifecyclePhase::ALL
            .iter()
            .filter(|p| p.expenditure_class() == class)
            .map(|&p| self.phase(p))
            .sum()
    }

    /// Opex (use-phase) carbon.
    #[must_use]
    pub fn opex(&self) -> CarbonMass {
        self.by_class(ExpenditureClass::Opex)
    }

    /// Capex (production + transport + end-of-life) carbon.
    #[must_use]
    pub fn capex(&self) -> CarbonMass {
        self.by_class(ExpenditureClass::Capex)
    }

    /// Capex share of the total.
    #[must_use]
    pub fn capex_share(&self) -> Ratio {
        Ratio::from_fraction(self.capex() / self.total())
    }

    /// Opex share of the total.
    #[must_use]
    pub fn opex_share(&self) -> Ratio {
        Ratio::from_fraction(self.opex() / self.total())
    }

    /// Production share of the total (the Fig 7 "manufacturing" fraction,
    /// which excludes transport and end-of-life).
    #[must_use]
    pub fn production_share(&self) -> Ratio {
        Ratio::from_fraction(self.production / self.total())
    }

    /// Returns a footprint with the use phase replaced (e.g. after re-running
    /// the use model on a different grid).
    #[must_use]
    pub fn with_use_phase(mut self, use_phase: CarbonMass) -> Self {
        self.use_phase = use_phase;
        self
    }

    /// Element-wise sum of two footprints (fleet aggregation).
    #[must_use]
    pub fn combined(&self, other: &Self) -> Self {
        Self {
            production: self.production + other.production,
            transport: self.transport + other.transport,
            use_phase: self.use_phase + other.use_phase,
            end_of_life: self.end_of_life + other.end_of_life,
        }
    }
}

impl core::ops::Add for Footprint {
    type Output = Self;

    fn add(self, rhs: Self) -> Self {
        self.combined(&rhs)
    }
}

impl core::iter::Sum for Footprint {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(Self::default(), |acc, f| acc + f)
    }
}

impl core::fmt::Display for Footprint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "total {} (capex {}, opex {})",
            self.total(),
            self.capex_share(),
            self.opex_share()
        )
    }
}

/// Builder for [`Footprint`] (non-consuming, per C-BUILDER).
#[derive(Debug, Clone, Default)]
pub struct FootprintBuilder {
    footprint: Footprint,
}

impl FootprintBuilder {
    /// Sets production carbon.
    pub fn production(&mut self, carbon: CarbonMass) -> &mut Self {
        self.footprint.production = carbon;
        self
    }

    /// Sets transport carbon.
    pub fn transport(&mut self, carbon: CarbonMass) -> &mut Self {
        self.footprint.transport = carbon;
        self
    }

    /// Sets use-phase carbon.
    pub fn use_phase(&mut self, carbon: CarbonMass) -> &mut Self {
        self.footprint.use_phase = carbon;
        self
    }

    /// Sets end-of-life carbon.
    pub fn end_of_life(&mut self, carbon: CarbonMass) -> &mut Self {
        self.footprint.end_of_life = carbon;
        self
    }

    /// Adds carbon to a phase (accumulating component contributions).
    pub fn add(&mut self, phase: LifecyclePhase, carbon: CarbonMass) -> &mut Self {
        match phase {
            LifecyclePhase::Production => self.footprint.production += carbon,
            LifecyclePhase::Transport => self.footprint.transport += carbon,
            LifecyclePhase::Use => self.footprint.use_phase += carbon,
            LifecyclePhase::EndOfLife => self.footprint.end_of_life += carbon,
        }
        self
    }

    /// Finishes the build.
    #[must_use]
    pub fn build(&self) -> Footprint {
        self.footprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iphone11ish() -> Footprint {
        Footprint::from_phases(
            CarbonMass::from_kg(59.25),
            CarbonMass::from_kg(3.75),
            CarbonMass::from_kg(10.5),
            CarbonMass::from_kg(1.5),
        )
    }

    #[test]
    fn totals_and_classes() {
        let fp = iphone11ish();
        assert_eq!(fp.total(), CarbonMass::from_kg(75.0));
        assert_eq!(fp.opex(), CarbonMass::from_kg(10.5));
        assert_eq!(fp.capex(), CarbonMass::from_kg(64.5));
        assert!((fp.capex_share().as_percent() - 86.0).abs() < 1e-9);
        assert!((fp.opex_share().as_percent() - 14.0).abs() < 1e-9);
        assert!((fp.production_share().as_percent() - 79.0).abs() < 1e-9);
    }

    #[test]
    fn builder_accumulates() {
        let mut b = Footprint::builder();
        b.add(LifecyclePhase::Production, CarbonMass::from_kg(30.0));
        b.add(LifecyclePhase::Production, CarbonMass::from_kg(29.25));
        b.transport(CarbonMass::from_kg(3.75));
        b.use_phase(CarbonMass::from_kg(10.5));
        b.end_of_life(CarbonMass::from_kg(1.5));
        assert_eq!(b.build(), iphone11ish());
    }

    #[test]
    fn from_product_lca_matches_record() {
        let lca = cc_data::devices::find("iPhone 11").unwrap();
        let fp = Footprint::from_product_lca(lca);
        assert!((fp.total() / lca.total() - 1.0).abs() < 1e-12);
        assert!((fp.capex_share().as_fraction() - lca.capex_share().as_fraction()).abs() < 1e-12);
    }

    #[test]
    fn sum_aggregates_fleets() {
        let fleet: Footprint = (0..3).map(|_| iphone11ish()).sum();
        assert_eq!(fleet.total(), CarbonMass::from_kg(225.0));
        // Shares are scale-invariant.
        assert!((fleet.capex_share().as_percent() - 86.0).abs() < 1e-9);
    }

    #[test]
    fn with_use_phase_swaps_grid() {
        let greened = iphone11ish().with_use_phase(CarbonMass::from_kg(0.5));
        assert!(greened.capex_share().as_percent() > 98.0);
        assert_eq!(greened.production(), iphone11ish().production());
    }

    #[test]
    fn negative_eol_credit() {
        let fp = Footprint::from_phases(
            CarbonMass::from_kg(50.0),
            CarbonMass::from_kg(5.0),
            CarbonMass::from_kg(10.0),
            CarbonMass::from_kg(-2.0),
        );
        assert_eq!(fp.total(), CarbonMass::from_kg(63.0));
        assert_eq!(fp.capex(), CarbonMass::from_kg(53.0));
    }

    #[test]
    fn display() {
        let s = iphone11ish().to_string();
        assert!(s.contains("capex"), "{s}");
    }
}
