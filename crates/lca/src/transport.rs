//! Transport-phase model: mode- and distance-based shipping emissions.
//!
//! Vendor LCAs report transport as a lump share (see
//! [`cc_data::devices`]); this module provides the forward model for
//! *designing* a logistics chain: emissions = Σ (mass × distance ×
//! mode intensity). Mode intensities are standard logistics factors in
//! g CO₂e per tonne-kilometre.

use cc_units::CarbonMass;

/// A freight mode with its carbon intensity per tonne-kilometre.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FreightMode {
    /// Air freight (~500 g CO₂e/t-km) — how launch-window consumer
    /// electronics actually ship.
    Air,
    /// Container ship (~15 g CO₂e/t-km).
    Sea,
    /// Rail (~30 g CO₂e/t-km).
    Rail,
    /// Heavy truck (~100 g CO₂e/t-km).
    Road,
}

impl FreightMode {
    /// All modes.
    pub const ALL: [Self; 4] = [Self::Air, Self::Sea, Self::Rail, Self::Road];

    /// Mode intensity in g CO₂e per tonne-kilometre.
    #[must_use]
    pub fn g_per_tonne_km(self) -> f64 {
        match self {
            Self::Air => 500.0,
            Self::Sea => 15.0,
            Self::Rail => 30.0,
            Self::Road => 100.0,
        }
    }

    /// Human-readable label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Air => "air",
            Self::Sea => "sea",
            Self::Rail => "rail",
            Self::Road => "road",
        }
    }
}

impl core::fmt::Display for FreightMode {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// One leg of a shipping route.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouteLeg {
    /// Freight mode for this leg.
    pub mode: FreightMode,
    /// Distance in kilometres.
    pub distance_km: f64,
}

/// A multi-leg shipping route for a product of a given shipped mass.
///
/// ```
/// use cc_lca::transport::{FreightMode, ShippingRoute};
///
/// // A phone (with packaging, 0.4 kg) flown from Shenzhen to the US,
/// // then trucked to the customer:
/// let route = ShippingRoute::new(0.4)
///     .leg(FreightMode::Air, 11_000.0)
///     .leg(FreightMode::Road, 800.0);
/// let carbon = route.carbon();
/// assert!(carbon.as_kg() > 2.0 && carbon.as_kg() < 3.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ShippingRoute {
    shipped_mass_kg: f64,
    legs: Vec<RouteLeg>,
}

impl ShippingRoute {
    /// Starts a route for a product shipping at `shipped_mass_kg`
    /// (product + packaging).
    ///
    /// # Panics
    ///
    /// Panics if the mass is not strictly positive.
    #[must_use]
    pub fn new(shipped_mass_kg: f64) -> Self {
        assert!(shipped_mass_kg > 0.0, "shipped mass must be positive");
        Self {
            shipped_mass_kg,
            legs: Vec::new(),
        }
    }

    /// Adds a leg (consuming builder: routes are usually literals).
    #[must_use]
    pub fn leg(mut self, mode: FreightMode, distance_km: f64) -> Self {
        self.legs.push(RouteLeg { mode, distance_km });
        self
    }

    /// The legs.
    #[must_use]
    pub fn legs(&self) -> &[RouteLeg] {
        &self.legs
    }

    /// Total distance across legs, km.
    #[must_use]
    pub fn total_distance_km(&self) -> f64 {
        self.legs.iter().map(|l| l.distance_km).sum()
    }

    /// Transport carbon for one unit.
    #[must_use]
    pub fn carbon(&self) -> CarbonMass {
        let tonnes = self.shipped_mass_kg / 1_000.0;
        let grams: f64 = self
            .legs
            .iter()
            .map(|l| tonnes * l.distance_km * l.mode.g_per_tonne_km())
            .sum();
        CarbonMass::from_grams(grams)
    }

    /// Transport carbon for a production run of `units`.
    #[must_use]
    pub fn carbon_for_units(&self, units: f64) -> CarbonMass {
        self.carbon() * units
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn air_dominates_mixed_routes() {
        let route = ShippingRoute::new(0.4)
            .leg(FreightMode::Air, 11_000.0)
            .leg(FreightMode::Road, 800.0);
        let air_only = ShippingRoute::new(0.4).leg(FreightMode::Air, 11_000.0);
        assert!(air_only.carbon() / route.carbon() > 0.95);
        assert_eq!(route.legs().len(), 2);
        assert_eq!(route.total_distance_km(), 11_800.0);
    }

    #[test]
    fn sea_is_an_order_of_magnitude_cleaner_than_air() {
        let air = ShippingRoute::new(0.4).leg(FreightMode::Air, 11_000.0);
        let sea = ShippingRoute::new(0.4).leg(FreightMode::Sea, 18_000.0);
        assert!(air.carbon() / sea.carbon() > 10.0);
    }

    #[test]
    fn consistent_with_vendor_lca_magnitudes() {
        // iPhone transport per vendor LCA: ~5% of 75 kg ~= 3.75 kg. An
        // air-freighted phone should land in the same ballpark.
        let route = ShippingRoute::new(0.6)
            .leg(FreightMode::Air, 11_000.0)
            .leg(FreightMode::Road, 1_000.0);
        let kg = route.carbon().as_kg();
        assert!(kg > 1.0 && kg < 6.0, "{kg}");
    }

    #[test]
    fn scales_linearly_with_units_and_mass() {
        let route = ShippingRoute::new(1.0).leg(FreightMode::Rail, 1_000.0);
        assert!((route.carbon_for_units(1_000.0) / route.carbon() - 1_000.0).abs() < 1e-9);
        let heavy = ShippingRoute::new(2.0).leg(FreightMode::Rail, 1_000.0);
        assert!((heavy.carbon() / route.carbon() - 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "shipped mass")]
    fn rejects_zero_mass() {
        let _ = ShippingRoute::new(0.0);
    }

    #[test]
    fn empty_route_is_zero_carbon() {
        assert!(ShippingRoute::new(1.0).carbon().is_zero());
    }
}
