//! End-of-life processing: recycling credits and material recovery.
//!
//! "Some materials, such as cobalt in mobile devices, are recyclable for use
//! in future systems" (§II-B). This module models end-of-life carbon as
//! processing overhead minus recovery credits for materials that displace
//! virgin production.

use cc_units::CarbonMass;

/// A recoverable material with its recovery credit: the virgin-production
/// carbon displaced per kilogram recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Material {
    /// Aluminium enclosures — virgin smelting is extremely carbon-intensive
    /// (~12 kg CO₂e/kg displaced, netting smelter-vs-recycler energy).
    Aluminium,
    /// Cobalt from batteries (~8 kg CO₂e/kg).
    Cobalt,
    /// Copper from boards and coils (~3.5 kg CO₂e/kg).
    Copper,
    /// Gold from connectors and bond wires (~17,000 kg CO₂e/kg — tiny masses,
    /// huge intensity).
    Gold,
    /// Steel (~1.8 kg CO₂e/kg).
    Steel,
    /// Mixed plastics, typically downcycled (~1.2 kg CO₂e/kg).
    Plastic,
}

impl Material {
    /// All modelled materials.
    pub const ALL: [Self; 6] = [
        Self::Aluminium,
        Self::Cobalt,
        Self::Copper,
        Self::Gold,
        Self::Steel,
        Self::Plastic,
    ];

    /// Displaced virgin-production carbon per kg recovered.
    #[must_use]
    pub fn credit_per_kg(self) -> CarbonMass {
        let kg = match self {
            Self::Aluminium => 12.0,
            Self::Cobalt => 8.0,
            Self::Copper => 3.5,
            Self::Gold => 17_000.0,
            Self::Steel => 1.8,
            Self::Plastic => 1.2,
        };
        CarbonMass::from_kg(kg)
    }

    /// Typical recovery yield of the material from consumer e-waste.
    #[must_use]
    pub fn recovery_yield(self) -> f64 {
        match self {
            Self::Aluminium => 0.90,
            Self::Cobalt => 0.60,
            Self::Copper => 0.85,
            Self::Gold => 0.95,
            Self::Steel => 0.90,
            Self::Plastic => 0.30,
        }
    }
}

/// An end-of-life plan for one device: processing overhead plus a bill of
/// recoverable materials.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EolPlan {
    processing: CarbonMass,
    materials: Vec<(Material, f64)>,
}

impl EolPlan {
    /// Starts a plan with the given processing (collection, shredding,
    /// smelting) carbon.
    #[must_use]
    pub fn new(processing: CarbonMass) -> Self {
        Self {
            processing,
            materials: Vec::new(),
        }
    }

    /// Adds `mass_kg` of a recoverable material contained in the device.
    ///
    /// # Panics
    ///
    /// Panics when the mass is negative.
    pub fn material(&mut self, material: Material, mass_kg: f64) -> &mut Self {
        assert!(mass_kg >= 0.0, "material mass must be non-negative");
        self.materials.push((material, mass_kg));
        self
    }

    /// Total recovery credit (a non-negative mass; it is *subtracted*).
    #[must_use]
    pub fn recovery_credit(&self) -> CarbonMass {
        self.materials
            .iter()
            .map(|&(m, kg)| m.credit_per_kg() * (kg * m.recovery_yield()))
            .sum()
    }

    /// Net end-of-life carbon: processing minus credits (may be negative —
    /// a device can be carbon-positive to recycle).
    #[must_use]
    pub fn net_carbon(&self) -> CarbonMass {
        self.processing - self.recovery_credit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A phone-like bill of materials.
    fn phone_plan() -> EolPlan {
        let mut plan = EolPlan::new(CarbonMass::from_kg(1.0));
        plan.material(Material::Aluminium, 0.025)
            .material(Material::Cobalt, 0.007)
            .material(Material::Copper, 0.015)
            .material(Material::Gold, 0.000_034)
            .material(Material::Plastic, 0.04);
        plan
    }

    #[test]
    fn phone_eol_is_small_and_roughly_neutral() {
        let plan = phone_plan();
        let net = plan.net_carbon().as_kg();
        // Vendor LCAs report ~1% of a ~70 kg footprint: sub-kilogram net.
        assert!(net.abs() < 1.5, "net {net}");
    }

    #[test]
    fn gold_dominates_phone_credits_despite_tiny_mass() {
        let plan = phone_plan();
        let gold_credit =
            Material::Gold.credit_per_kg() * (0.000_034 * Material::Gold.recovery_yield());
        assert!(gold_credit / plan.recovery_credit() > 0.4);
    }

    #[test]
    fn aluminium_laptop_can_be_net_negative() {
        // A 1.2 kg aluminium chassis: recovery credit exceeds processing.
        let mut plan = EolPlan::new(CarbonMass::from_kg(3.0));
        plan.material(Material::Aluminium, 1.2);
        assert!(plan.net_carbon() < CarbonMass::ZERO);
    }

    #[test]
    fn empty_plan_is_pure_processing() {
        let plan = EolPlan::new(CarbonMass::from_kg(2.0));
        assert_eq!(plan.net_carbon(), CarbonMass::from_kg(2.0));
        assert!(plan.recovery_credit().is_zero());
    }

    #[test]
    fn yields_discount_credits() {
        let mut full = EolPlan::new(CarbonMass::ZERO);
        full.material(Material::Plastic, 1.0);
        let ideal = Material::Plastic.credit_per_kg();
        assert!(full.recovery_credit() < ideal);
        assert!(
            (full.recovery_credit() / ideal - Material::Plastic.recovery_yield()).abs() < 1e-12
        );
    }

    #[test]
    #[should_panic(expected = "material mass")]
    fn rejects_negative_mass() {
        EolPlan::new(CarbonMass::ZERO).material(Material::Steel, -1.0);
    }
}
