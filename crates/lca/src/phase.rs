//! Life-cycle phases and their opex/capex classification (Fig 4).

/// The four phases of a hardware life cycle (Fig 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum LifecyclePhase {
    /// Procuring raw materials, integrated circuits, packaging, assembly and
    /// (for data centers) facility construction.
    Production,
    /// Moving hardware to its point of use.
    Transport,
    /// Operating the hardware: static and dynamic power, PUE overhead,
    /// battery-efficiency overhead.
    Use,
    /// End-of-life processing and recycling.
    EndOfLife,
}

impl LifecyclePhase {
    /// All phases in life-cycle order.
    pub const ALL: [Self; 4] = [
        Self::Production,
        Self::Transport,
        Self::Use,
        Self::EndOfLife,
    ];

    /// The paper's opex/capex classification of the phase (Fig 4's bottom
    /// row): everything except use is capex-related.
    #[must_use]
    pub fn expenditure_class(self) -> ExpenditureClass {
        match self {
            Self::Use => ExpenditureClass::Opex,
            _ => ExpenditureClass::Capex,
        }
    }

    /// Human-readable label matching Fig 4.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Production => "Production",
            Self::Transport => "Product Transport",
            Self::Use => "Product Use",
            Self::EndOfLife => "End-of-life",
        }
    }
}

impl core::fmt::Display for LifecyclePhase {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// The paper's two emission classes.
///
/// "We define opex-related emissions as emissions from hardware use and
/// operational energy consumption; we define capex-related emissions as
/// emissions from facility-infrastructure construction and chip
/// manufacturing" (§I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ExpenditureClass {
    /// Recurring, operational emissions (hardware use, purchased energy).
    Opex,
    /// One-time emissions (manufacturing, infrastructure, transport,
    /// end-of-life).
    Capex,
}

impl ExpenditureClass {
    /// Human-readable label.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Opex => "Opex",
            Self::Capex => "Capex",
        }
    }
}

impl core::fmt::Display for ExpenditureClass {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_use_is_opex() {
        for phase in LifecyclePhase::ALL {
            let expected = if phase == LifecyclePhase::Use {
                ExpenditureClass::Opex
            } else {
                ExpenditureClass::Capex
            };
            assert_eq!(phase.expenditure_class(), expected, "{phase}");
        }
    }

    #[test]
    fn labels() {
        assert_eq!(LifecyclePhase::Production.to_string(), "Production");
        assert_eq!(ExpenditureClass::Capex.to_string(), "Capex");
    }
}
