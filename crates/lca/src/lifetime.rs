//! Hardware-lifetime extension analysis.
//!
//! Fig 15 lists "Reliability (longer lifetime)" as a cross-stack lever:
//! embodied carbon is a one-time cost, so keeping hardware in service longer
//! amortizes it over more useful years. This module annualizes footprints
//! and compares replacement cadences.

use crate::footprint::Footprint;
use cc_units::{CarbonMass, TimeSpan};

/// Annualized view of a footprint at a given service lifetime: embodied
/// (capex) carbon is spread across the lifetime while operational carbon is
/// charged at its yearly rate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnnualizedFootprint {
    /// Capex carbon per year of service.
    pub capex_per_year: CarbonMass,
    /// Opex carbon per year of service.
    pub opex_per_year: CarbonMass,
}

impl AnnualizedFootprint {
    /// Total carbon per year of service.
    #[must_use]
    pub fn total_per_year(&self) -> CarbonMass {
        self.capex_per_year + self.opex_per_year
    }
}

/// Annualizes `footprint` (whose use phase was assessed over
/// `assessed_lifetime`) for an actual service life of `actual_lifetime`.
///
/// The capex phases amortize over the actual lifetime; the opex rate is the
/// assessed use-phase carbon divided by the assessed lifetime (operation per
/// year does not change when you keep the device longer).
///
/// # Panics
///
/// Panics when either lifetime is non-positive.
#[must_use]
pub fn annualize(
    footprint: &Footprint,
    assessed_lifetime: TimeSpan,
    actual_lifetime: TimeSpan,
) -> AnnualizedFootprint {
    assert!(
        assessed_lifetime.as_years() > 0.0,
        "assessed lifetime must be positive"
    );
    assert!(
        actual_lifetime.as_years() > 0.0,
        "actual lifetime must be positive"
    );
    AnnualizedFootprint {
        capex_per_year: footprint.capex() / actual_lifetime.as_years(),
        opex_per_year: footprint.use_phase() / assessed_lifetime.as_years(),
    }
}

/// Carbon saved per year of service by extending a device's life from
/// `from` to `to` years instead of replacing it on the shorter cadence.
///
/// Positive values mean the extension wins (it always does when opex is
/// unchanged, but the magnitude is the decision-relevant number).
#[must_use]
pub fn extension_savings_per_year(
    footprint: &Footprint,
    assessed_lifetime: TimeSpan,
    from: TimeSpan,
    to: TimeSpan,
) -> CarbonMass {
    let short = annualize(footprint, assessed_lifetime, from);
    let long = annualize(footprint, assessed_lifetime, to);
    short.total_per_year() - long.total_per_year()
}

/// The break-even efficiency improvement a *replacement* device must deliver
/// to beat keeping the old one for `extension` more years: the fraction by
/// which the new device's yearly opex must undercut the old one so that the
/// avoided opex pays for the new device's embodied carbon over its lifetime.
///
/// Returns `None` when the old device has no use-phase carbon (nothing for a
/// more efficient replacement to save — e.g. already on zero-carbon energy).
#[must_use]
pub fn required_replacement_efficiency(
    old: &Footprint,
    old_assessed_lifetime: TimeSpan,
    new_capex: CarbonMass,
    new_lifetime: TimeSpan,
) -> Option<f64> {
    let old_opex_rate = old.use_phase() / old_assessed_lifetime.as_years();
    if old_opex_rate.as_grams() <= 0.0 {
        return None;
    }
    let new_capex_rate = new_capex / new_lifetime.as_years();
    // Required yearly opex saving fraction s: s * old_opex_rate >= new_capex_rate.
    Some(new_capex_rate / old_opex_rate)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iphone11() -> Footprint {
        Footprint::from_product_lca(cc_data::devices::find("iPhone 11").unwrap())
    }

    #[test]
    fn longer_life_cuts_annualized_total() {
        let fp = iphone11();
        let assessed = TimeSpan::from_years(3.0);
        let three = annualize(&fp, assessed, TimeSpan::from_years(3.0));
        let five = annualize(&fp, assessed, TimeSpan::from_years(5.0));
        assert!(five.total_per_year() < three.total_per_year());
        // Opex per year is unchanged; only capex amortization improves.
        assert_eq!(three.opex_per_year, five.opex_per_year);
        assert!((three.capex_per_year / five.capex_per_year - 5.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn iphone_extension_saves_about_a_third() {
        // 86% capex device: going 3 -> 5 years cuts annualized carbon by
        // capex*(1/3 - 1/5)/total_rate ~= 33%.
        let fp = iphone11();
        let assessed = TimeSpan::from_years(3.0);
        let saved = extension_savings_per_year(
            &fp,
            assessed,
            TimeSpan::from_years(3.0),
            TimeSpan::from_years(5.0),
        );
        let base = annualize(&fp, assessed, assessed).total_per_year();
        let frac = saved / base;
        assert!(frac > 0.30 && frac < 0.40, "saved fraction {frac}");
    }

    #[test]
    fn replacement_bar_is_high_for_capex_dominated_devices() {
        // A new phone with ~60 kg embodied over 3 years must cut the old
        // phone's ~3.5 kg/yr opex by far more than 100% — i.e. a replacement
        // can never pay for itself on carbon alone.
        let old = iphone11();
        let required = required_replacement_efficiency(
            &old,
            TimeSpan::from_years(3.0),
            CarbonMass::from_kg(60.0),
            TimeSpan::from_years(3.0),
        )
        .unwrap();
        assert!(required > 1.0, "required saving fraction {required}");
    }

    #[test]
    fn replacement_can_pay_off_for_opex_dominated_devices() {
        // An always-connected console (64% opex): an efficient replacement
        // with modest embodied carbon can clear the bar.
        let console = Footprint::from_product_lca(cc_data::devices::find("Xbox One X").unwrap());
        let required = required_replacement_efficiency(
            &console,
            TimeSpan::from_years(5.0),
            CarbonMass::from_kg(100.0),
            TimeSpan::from_years(5.0),
        )
        .unwrap();
        assert!(required < 0.25, "required saving fraction {required}");
    }

    #[test]
    fn zero_opex_device_returns_none() {
        let fp = Footprint::builder()
            .production(CarbonMass::from_kg(10.0))
            .build();
        assert!(required_replacement_efficiency(
            &fp,
            TimeSpan::from_years(3.0),
            CarbonMass::from_kg(1.0),
            TimeSpan::from_years(3.0)
        )
        .is_none());
    }

    #[test]
    #[should_panic(expected = "actual lifetime")]
    fn rejects_zero_lifetime() {
        let _ = annualize(&iphone11(), TimeSpan::from_years(3.0), TimeSpan::ZERO);
    }
}
