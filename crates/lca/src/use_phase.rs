//! Use-phase model: operational energy → operational carbon.
//!
//! Covers the knobs Fig 4 lists for the use phase: utilization, hardware
//! lifetime, PUE overhead (data centers) and battery/charger efficiency
//! (mobile).

use cc_units::{CarbonIntensity, CarbonMass, Energy, Power, Ratio, TimeSpan};

/// A use-phase model for one device.
///
/// Energy over the lifetime is
/// `(active_power · utilization + idle_power · (1 − utilization)) · lifetime`,
/// inflated by the overhead factor (PUE for data-center equipment, charger
/// and battery losses for mobile), then converted to carbon with the grid
/// intensity.
///
/// ```
/// use cc_lca::UsePhase;
/// use cc_units::{Power, TimeSpan, CarbonIntensity, Ratio};
///
/// let server = UsePhase::builder(Power::from_watts(300.0))
///     .idle_power(Power::from_watts(120.0))
///     .utilization(Ratio::from_percent(40.0))
///     .overhead(1.11) // PUE of an efficient warehouse-scale facility
///     .lifetime(TimeSpan::from_years(4.0))
///     .grid(CarbonIntensity::from_g_per_kwh(380.0))
///     .build();
/// let carbon = server.lifetime_carbon();
/// assert!(carbon.as_tonnes() > 2.0 && carbon.as_tonnes() < 4.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UsePhase {
    active_power: Power,
    idle_power: Power,
    utilization: Ratio,
    overhead: f64,
    lifetime: TimeSpan,
    grid: CarbonIntensity,
}

impl UsePhase {
    /// Starts a builder with the given active power; other knobs default to
    /// fully utilized, no idle draw, no overhead, 3-year lifetime, US grid.
    #[must_use]
    pub fn builder(active_power: Power) -> UsePhaseBuilder {
        UsePhaseBuilder {
            model: UsePhase {
                active_power,
                idle_power: Power::ZERO,
                utilization: Ratio::ONE,
                overhead: 1.0,
                lifetime: TimeSpan::from_years(3.0),
                grid: cc_data::us_grid_intensity(),
            },
        }
    }

    /// Average wall power including idle blending and overhead.
    #[must_use]
    pub fn average_power(&self) -> Power {
        let blended = self.active_power * self.utilization.as_fraction()
            + self.idle_power * self.utilization.complement().as_fraction();
        blended * self.overhead
    }

    /// Energy consumed over `span`.
    #[must_use]
    pub fn energy_over(&self, span: TimeSpan) -> Energy {
        self.average_power() * span
    }

    /// Energy consumed over the configured lifetime.
    #[must_use]
    pub fn lifetime_energy(&self) -> Energy {
        self.energy_over(self.lifetime)
    }

    /// Carbon emitted over `span` on the configured grid.
    #[must_use]
    pub fn carbon_over(&self, span: TimeSpan) -> CarbonMass {
        self.energy_over(span) * self.grid
    }

    /// Carbon emitted over the configured lifetime.
    #[must_use]
    pub fn lifetime_carbon(&self) -> CarbonMass {
        self.carbon_over(self.lifetime)
    }

    /// Carbon emission rate (per unit time) — the slope the Fig 10 break-even
    /// analysis divides into the manufacturing budget.
    #[must_use]
    pub fn carbon_rate_per_day(&self) -> CarbonMass {
        self.carbon_over(TimeSpan::from_days(1.0))
    }

    /// The configured lifetime.
    #[must_use]
    pub fn lifetime(&self) -> TimeSpan {
        self.lifetime
    }

    /// The configured grid intensity.
    #[must_use]
    pub fn grid(&self) -> CarbonIntensity {
        self.grid
    }

    /// A copy of this model on a different grid (the Fig 13 sweep).
    #[must_use]
    pub fn on_grid(mut self, grid: CarbonIntensity) -> Self {
        self.grid = grid;
        self
    }
}

/// Builder for [`UsePhase`].
#[derive(Debug, Clone)]
pub struct UsePhaseBuilder {
    model: UsePhase,
}

impl UsePhaseBuilder {
    /// Sets idle power (default 0).
    pub fn idle_power(&mut self, power: Power) -> &mut Self {
        self.model.idle_power = power;
        self
    }

    /// Sets utilization, the fraction of time at active power (default 100%).
    ///
    /// # Panics
    ///
    /// Panics if `utilization` is outside `[0, 1]`.
    pub fn utilization(&mut self, utilization: Ratio) -> &mut Self {
        assert!(utilization.is_share(), "utilization must be within [0, 1]");
        self.model.utilization = utilization;
        self
    }

    /// Sets the multiplicative overhead factor: PUE for data-center
    /// equipment, charger/battery losses for mobile (default 1.0).
    ///
    /// # Panics
    ///
    /// Panics if `overhead < 1.0`.
    pub fn overhead(&mut self, overhead: f64) -> &mut Self {
        assert!(overhead >= 1.0, "overhead is a multiplier >= 1");
        self.model.overhead = overhead;
        self
    }

    /// Sets the hardware lifetime (default 3 years).
    pub fn lifetime(&mut self, lifetime: TimeSpan) -> &mut Self {
        self.model.lifetime = lifetime;
        self
    }

    /// Sets the grid carbon intensity (default: US average, 380 g/kWh).
    pub fn grid(&mut self, grid: CarbonIntensity) -> &mut Self {
        self.model.grid = grid;
        self
    }

    /// Finishes the build.
    #[must_use]
    pub fn build(&self) -> UsePhase {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_always_on_us_grid() {
        let m = UsePhase::builder(Power::from_watts(100.0)).build();
        assert_eq!(m.average_power(), Power::from_watts(100.0));
        assert_eq!(m.grid().as_g_per_kwh(), 380.0);
        assert!((m.lifetime().as_years() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn idle_blending() {
        let m = UsePhase::builder(Power::from_watts(300.0))
            .idle_power(Power::from_watts(100.0))
            .utilization(Ratio::from_percent(25.0))
            .build();
        // 0.25*300 + 0.75*100 = 150 W.
        assert!((m.average_power().as_watts() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn pue_scales_energy_not_shares() {
        let base = UsePhase::builder(Power::from_watts(200.0)).build();
        let mut b = UsePhase::builder(Power::from_watts(200.0));
        b.overhead(1.5);
        let with_pue = b.build();
        let ratio = with_pue.lifetime_energy() / base.lifetime_energy();
        assert!((ratio - 1.5).abs() < 1e-12);
    }

    #[test]
    fn greener_grid_cuts_carbon_not_energy() {
        let us = UsePhase::builder(Power::from_watts(100.0)).build();
        let wind = us.on_grid(CarbonIntensity::from_g_per_kwh(11.0));
        assert_eq!(us.lifetime_energy(), wind.lifetime_energy());
        let cut = us.lifetime_carbon() / wind.lifetime_carbon();
        assert!((cut - 380.0 / 11.0).abs() < 1e-9);
    }

    #[test]
    fn carbon_rate_integrates_to_total() {
        let m = UsePhase::builder(Power::from_watts(50.0))
            .lifetime(TimeSpan::from_days(100.0))
            .build();
        let from_rate = m.carbon_rate_per_day() * 100.0;
        assert!((from_rate / m.lifetime_carbon() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn rejects_bad_utilization() {
        UsePhase::builder(Power::from_watts(1.0)).utilization(Ratio::from_fraction(1.5));
    }

    #[test]
    #[should_panic(expected = "overhead")]
    fn rejects_sub_unity_overhead() {
        UsePhase::builder(Power::from_watts(1.0)).overhead(0.9);
    }
}
