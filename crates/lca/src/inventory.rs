//! Category-level aggregation across device fleets (Fig 6).

use crate::footprint::Footprint;
use cc_analysis::stats;
use cc_data::devices::{self, Category, ProductLca};
use cc_units::CarbonMass;

/// Summary of one device category: mean breakdown shares (with spread) and
/// mean absolute footprints — the two panels of Fig 6.
#[derive(Debug, Clone, PartialEq)]
pub struct CategorySummary {
    /// The category.
    pub category: Category,
    /// Number of devices aggregated.
    pub count: usize,
    /// Mean manufacturing (production) share of total, as a fraction.
    pub manufacturing_share_mean: f64,
    /// Sample standard deviation of the manufacturing share.
    pub manufacturing_share_std: f64,
    /// Mean use-phase share of total, as a fraction.
    pub use_share_mean: f64,
    /// Sample standard deviation of the use share.
    pub use_share_std: f64,
    /// Mean total footprint.
    pub total_mean: CarbonMass,
    /// Mean manufacturing footprint.
    pub manufacturing_mean: CarbonMass,
    /// Mean use-phase footprint.
    pub use_mean: CarbonMass,
}

/// Summarizes one category over the embedded dataset.
///
/// Returns `None` for a category with no devices.
#[must_use]
pub fn summarize(category: Category) -> Option<CategorySummary> {
    summarize_devices(category, devices::in_category(category))
}

/// Summarizes an explicit device list (exposed for tests and what-if fleets).
#[must_use]
pub fn summarize_devices<'a>(
    category: Category,
    items: impl Iterator<Item = &'a ProductLca>,
) -> Option<CategorySummary> {
    let list: Vec<&ProductLca> = items.collect();
    if list.is_empty() {
        return None;
    }
    let mfg_shares: Vec<f64> = list.iter().map(|d| d.production_share).collect();
    let use_shares: Vec<f64> = list.iter().map(|d| d.use_share).collect();
    let totals: Vec<f64> = list.iter().map(|d| d.total_kg).collect();
    let mfgs: Vec<f64> = list.iter().map(|d| d.production().as_kg()).collect();
    let uses: Vec<f64> = list.iter().map(|d| d.use_phase().as_kg()).collect();

    let (mfg_mean, mfg_std) = stats::mean_std(&mfg_shares)?;
    let (use_mean, use_std) = stats::mean_std(&use_shares)?;
    Some(CategorySummary {
        category,
        count: list.len(),
        manufacturing_share_mean: mfg_mean,
        manufacturing_share_std: mfg_std,
        use_share_mean: use_mean,
        use_share_std: use_std,
        total_mean: CarbonMass::from_kg(stats::mean(&totals)?),
        manufacturing_mean: CarbonMass::from_kg(stats::mean(&mfgs)?),
        use_mean: CarbonMass::from_kg(stats::mean(&uses)?),
    })
}

/// Summaries for every category with at least one device, in Fig 6 order.
#[must_use]
pub fn all_categories() -> Vec<CategorySummary> {
    Category::ALL.iter().filter_map(|&c| summarize(c)).collect()
}

/// Total footprint of an entire fleet of devices (LCAs summed).
#[must_use]
pub fn fleet_footprint<'a>(items: impl Iterator<Item = &'a ProductLca>) -> Footprint {
    items.map(Footprint::from_product_lca).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_category_is_populated() {
        assert_eq!(all_categories().len(), Category::ALL.len());
    }

    #[test]
    fn battery_categories_are_manufacturing_dominated() {
        for summary in all_categories() {
            if summary.category.is_battery_operated() {
                assert!(
                    summary.manufacturing_share_mean > 0.55,
                    "{}: {}",
                    summary.category,
                    summary.manufacturing_share_mean
                );
            } else {
                assert!(
                    summary.use_share_mean > 0.40,
                    "{}: {}",
                    summary.category,
                    summary.use_share_mean
                );
            }
        }
    }

    #[test]
    fn laptops_exceed_phones_in_absolute_terms() {
        // Fig 6 bottom: footprint scales with platform capability.
        let phones = summarize(Category::Phone).unwrap();
        let laptops = summarize(Category::Laptop).unwrap();
        assert!(laptops.total_mean > phones.total_mean * 2.0);
        assert!(laptops.manufacturing_mean > phones.manufacturing_mean * 2.0);
    }

    #[test]
    fn consoles_have_largest_totals() {
        let consoles = summarize(Category::GameConsole).unwrap();
        for summary in all_categories() {
            assert!(consoles.total_mean >= summary.total_mean);
        }
    }

    #[test]
    fn empty_category_summarizes_to_none() {
        assert!(summarize_devices(Category::Phone, core::iter::empty()).is_none());
    }

    #[test]
    fn fleet_footprint_sums() {
        let fleet = fleet_footprint(devices::in_category(Category::Wearable));
        let manual: f64 = devices::in_category(Category::Wearable)
            .map(|d| d.total_kg)
            .sum();
        assert!((fleet.total().as_kg() - manual).abs() < 1e-9);
    }

    #[test]
    fn spread_is_reported() {
        let phones = summarize(Category::Phone).unwrap();
        assert!(phones.count >= 10);
        assert!(phones.manufacturing_share_std > 0.0);
        assert!(phones.use_share_std > 0.0);
    }
}
