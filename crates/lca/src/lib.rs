//! # cc-lca
//!
//! Life-cycle assessment (LCA) for computer systems with the paper's
//! opex/capex decomposition: production, transport, use and end-of-life
//! phases (Fig 4), a device-footprint builder, a use-phase energy→carbon
//! model, manufacturing amortization (Fig 10) and generational trend
//! analysis (Fig 7).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod amortization;
pub mod eol;
pub mod footprint;
pub mod generational;
pub mod inventory;
pub mod lifetime;
pub mod phase;
pub mod transport;
pub mod use_phase;

pub use amortization::{AmortizationAnalysis, Breakeven};
pub use footprint::{Footprint, FootprintBuilder};
pub use phase::{ExpenditureClass, LifecyclePhase};
pub use use_phase::UsePhase;
