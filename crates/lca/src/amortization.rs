//! Manufacturing-carbon amortization: the Fig 10 break-even analysis.
//!
//! "we define the starting point of this amortization when the carbon output
//! from operational use equals that from hardware manufacturing (i.e., the
//! ratio of opex emissions to capex emissions is 1)" (§III-C).

use cc_units::{CarbonIntensity, CarbonMass, Energy, TimeSpan};

/// Break-even result for one workload/unit configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Breakeven {
    /// Operations (e.g. inference images) until opex == capex.
    pub operations: f64,
    /// Days of continuous operation until opex == capex.
    pub days: f64,
}

impl Breakeven {
    /// Whether the break-even point lies beyond a device lifetime.
    #[must_use]
    pub fn exceeds(&self, lifetime: TimeSpan) -> bool {
        self.days > lifetime.as_days()
    }
}

/// Amortization analysis of a manufacturing-carbon budget against a
/// per-operation energy cost.
///
/// ```
/// use cc_lca::AmortizationAnalysis;
/// use cc_units::{CarbonMass, CarbonIntensity, Energy, TimeSpan};
///
/// // Pixel 3 SoC: ~25 kg CO2e; MobileNet v3 on CPU: ~47 mJ / 6 ms per image.
/// let analysis = AmortizationAnalysis::new(
///     CarbonMass::from_kg(25.0),
///     CarbonIntensity::from_g_per_kwh(380.0),
/// );
/// let be = analysis
///     .breakeven(Energy::from_joules(0.047), TimeSpan::from_millis(6.0))
///     .unwrap();
/// assert!(be.operations > 4e9 && be.operations < 6e9); // paper: ~5 billion
/// assert!(be.days > 300.0 && be.days < 400.0);         // paper: ~350 days
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AmortizationAnalysis {
    manufacturing: CarbonMass,
    grid: CarbonIntensity,
}

impl AmortizationAnalysis {
    /// Creates an analysis for a manufacturing budget amortized on a grid.
    #[must_use]
    pub fn new(manufacturing: CarbonMass, grid: CarbonIntensity) -> Self {
        Self {
            manufacturing,
            grid,
        }
    }

    /// The manufacturing budget.
    #[must_use]
    pub fn manufacturing(&self) -> CarbonMass {
        self.manufacturing
    }

    /// Operational energy at which opex equals the manufacturing budget.
    #[must_use]
    pub fn breakeven_energy(&self) -> Energy {
        self.manufacturing / self.grid
    }

    /// Carbon emitted per operation.
    #[must_use]
    pub fn carbon_per_operation(&self, energy_per_op: Energy) -> CarbonMass {
        energy_per_op * self.grid
    }

    /// Break-even operations and continuous-operation days for a workload
    /// consuming `energy_per_op` and taking `latency_per_op` per operation.
    ///
    /// Returns `None` when the per-operation energy is non-positive (e.g.
    /// zero-carbon operation never amortizes the budget).
    #[must_use]
    pub fn breakeven(&self, energy_per_op: Energy, latency_per_op: TimeSpan) -> Option<Breakeven> {
        let per_op = self.carbon_per_operation(energy_per_op);
        let ops = cc_analysis::crossover::linear_breakeven(
            self.manufacturing.as_grams(),
            per_op.as_grams(),
        )?;
        let days = ops * latency_per_op.as_days();
        Some(Breakeven {
            operations: ops,
            days,
        })
    }

    /// Opex-to-capex ratio after `ops` operations at `energy_per_op`.
    #[must_use]
    pub fn opex_capex_ratio(&self, energy_per_op: Energy, ops: f64) -> f64 {
        (self.carbon_per_operation(energy_per_op) * ops) / self.manufacturing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pixel3_soc() -> AmortizationAnalysis {
        AmortizationAnalysis::new(
            CarbonMass::from_kg(25.0),
            CarbonIntensity::from_g_per_kwh(380.0),
        )
    }

    #[test]
    fn breakeven_energy_is_budget_over_intensity() {
        let e = pixel3_soc().breakeven_energy();
        assert!((e.as_kwh() - 65.789).abs() < 0.01);
    }

    #[test]
    fn breakeven_counts_scale_inversely_with_energy() {
        let a = pixel3_soc();
        let small = a
            .breakeven(Energy::from_joules(0.05), TimeSpan::from_millis(5.0))
            .unwrap();
        let large = a
            .breakeven(Energy::from_joules(0.5), TimeSpan::from_millis(5.0))
            .unwrap();
        assert!((small.operations / large.operations - 10.0).abs() < 1e-6);
    }

    #[test]
    fn more_efficient_hardware_takes_longer_to_amortize() {
        // Takeaway 6's inversion: better energy efficiency *lengthens*
        // amortization time.
        let a = pixel3_soc();
        let cpu = a
            .breakeven(Energy::from_joules(0.047), TimeSpan::from_millis(6.0))
            .unwrap();
        let dsp = a
            .breakeven(Energy::from_joules(0.0142), TimeSpan::from_millis(4.0))
            .unwrap();
        assert!(dsp.operations > cpu.operations);
        assert!(dsp.days > cpu.days);
    }

    #[test]
    fn exceeds_lifetime() {
        let be = Breakeven {
            operations: 1e10,
            days: 1_150.0,
        };
        assert!(be.exceeds(TimeSpan::from_years(3.0)));
        assert!(!be.exceeds(TimeSpan::from_years(4.0)));
    }

    #[test]
    fn zero_carbon_operation_never_amortizes() {
        let a = AmortizationAnalysis::new(
            CarbonMass::from_kg(25.0),
            CarbonIntensity::from_g_per_kwh(0.0),
        );
        assert!(a
            .breakeven(Energy::from_joules(0.05), TimeSpan::from_millis(5.0))
            .is_none());
    }

    #[test]
    fn opex_capex_ratio_is_one_at_breakeven() {
        let a = pixel3_soc();
        let e = Energy::from_joules(0.047);
        let be = a.breakeven(e, TimeSpan::from_millis(6.0)).unwrap();
        let ratio = a.opex_capex_ratio(e, be.operations);
        assert!((ratio - 1.0).abs() < 1e-9);
    }
}
