//! A tiny, dependency-free stand-in for the `proptest` crate.
//!
//! The workspace's property tests were written against real proptest, but
//! this repository must build in fully offline environments where crates.io
//! is unreachable. This shim re-implements the narrow slice of the API those
//! tests use — range/tuple/vec strategies, `any::<bool>()`, `prop_map`, and
//! the `proptest!`/`prop_assert*`/`prop_assume!` macros — on top of a
//! deterministic splitmix64 generator. Failures report the failing case's
//! sampled inputs via the ordinary `assert!` panic message.
//!
//! Unsupported proptest features (shrinking, persisted regressions, custom
//! config) are intentionally absent; tests run a fixed number of cases.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Number of cases each `proptest!` test executes.
pub const CASES: usize = 96;

/// Deterministic splitmix64 PRNG driving every strategy.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a fixed seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[lo, hi)` (requires `lo < hi`).
    pub fn next_in(&mut self, lo: u64, hi: u64) -> u64 {
        lo + self.next_u64() % (hi - lo)
    }
}

/// A source of random values of one type — the proptest trait, minus
/// shrinking.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the produced value through `f`, like proptest's `prop_map`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start() + rng.next_f64() * (self.end() - self.start())
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.next_in(self.start as u64, self.end as u64) as $ty
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample(&self, rng: &mut TestRng) -> $ty {
                rng.next_in(*self.start() as u64, *self.end() as u64 + 1) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// `any::<T>()` for the types the workspace samples uniformly.
pub trait Arbitrary {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any [`Arbitrary`] type, mirroring `proptest::arbitrary::any`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Returns a strategy producing arbitrary values of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for a `Vec` with a length drawn from `len` and elements from
    /// `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.next_in(self.len.start as u64, self.len.end as u64) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Defines deterministic multi-case tests over sampled inputs.
///
/// Supports the `#[test] fn name(arg in strategy, ...) { body }` form used
/// throughout the workspace. Each test runs [`CASES`] cases from a fixed
/// seed.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng = $crate::TestRng::new(0xcc_5eed);
                for _case in 0..$crate::CASES {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    // prop_assume! skips a case by breaking out of this
                    // single-iteration loop.
                    #[allow(clippy::never_loop)]
                    loop {
                        $body
                        break;
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Skips the current case when its sampled inputs are uninteresting.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        // Written as a match (not `if !cond`) so partially-ordered
        // comparisons in `$cond` don't trip clippy::neg_cmp_op_on_partial_ord
        // at every call site.
        match $cond {
            true => {}
            false => break,
        }
    };
}

/// One-stop imports mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, Strategy, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn f64_range_stays_in_bounds() {
        let mut rng = TestRng::new(7);
        for _ in 0..1000 {
            let v = Strategy::sample(&(1.0..2.0f64), &mut rng);
            assert!((1.0..2.0).contains(&v));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = TestRng::new(9);
        for _ in 0..1000 {
            let v = Strategy::sample(&(2u32..64), &mut rng);
            assert!((2..64).contains(&v));
            let w = Strategy::sample(&(0.0..=1.0f64), &mut rng);
            assert!((0.0..=1.0).contains(&w));
        }
    }

    proptest! {
        #[test]
        fn macro_with_assume(a in 0.0..10.0f64, flip in any::<bool>()) {
            prop_assume!(a > 1.0);
            prop_assert!(a > 1.0);
            let _ = flip;
            prop_assert_eq!(a, a);
        }

        #[test]
        fn vec_strategy_lengths(v in crate::collection::vec(0.0..1.0f64, 1..5)) {
            prop_assert!(!v.is_empty() && v.len() < 5);
        }
    }
}
