//! Property-based tests for the SoC simulator: invariants that must hold for
//! arbitrary (well-formed) hardware and workloads, not just the calibrated
//! Snapdragon 845.

use cc_socsim::{dvfs, ExecutionModel, Layer, LayerKind, Network, Soc, UnitKind};
use proptest::prelude::*;

/// A random but physically sensible compute unit.
fn unit_strategy() -> impl Strategy<Value = cc_socsim::ComputeUnit> {
    (
        10.0..500.0f64, // peak GMAC/s
        2.0..50.0f64,   // mem BW GB/s
        0.2..0.9f64,    // dense utilization
        0.05..0.19f64,  // depthwise utilization
        10.0..500.0f64, // pJ/MAC
        5.0..200.0f64,  // pJ/byte
        0.2..3.0f64,    // static W
    )
        .prop_map(
            |(peak, bw, dense, dw, pj_mac, pj_byte, static_w)| cc_socsim::ComputeUnit {
                kind: UnitKind::Cpu,
                peak_gmacs_per_s: peak,
                mem_bw_gbps: bw,
                dense_utilization: dense,
                depthwise_utilization: dw.min(dense),
                pj_per_mac: pj_mac,
                pj_per_byte: pj_byte,
                static_power_w: static_w,
                element_bytes: 4.0,
            },
        )
}

/// A random small network.
fn network_strategy() -> impl Strategy<Value = Vec<(f64, f64, f64, bool)>> {
    proptest::collection::vec(
        (0.001..2.0f64, 0.001..30.0f64, 0.001..30.0f64, any::<bool>()),
        1..12,
    )
}

fn build_network(layers: &[(f64, f64, f64, bool)]) -> Network {
    let built: Vec<Layer> = layers
        .iter()
        .map(|&(gmacs, w, a, dw)| Layer {
            name: "synthetic",
            kind: if dw {
                LayerKind::Depthwise
            } else {
                LayerKind::Standard
            },
            gmacs,
            weight_melems: w,
            act_melems: a,
        })
        .collect();
    Network::from_layers(cc_data::ai_models::CnnModel::MobileNetV1, built)
}

proptest! {
    /// Latency and energy are strictly positive and finite for any workload.
    #[test]
    fn outputs_are_positive_and_finite(
        unit in unit_strategy(),
        layers in network_strategy(),
    ) {
        let net = build_network(&layers);
        let model = ExecutionModel::new(Soc::new("prop", vec![unit]));
        let r = model.run(&net, UnitKind::Cpu).unwrap();
        prop_assert!(r.latency.as_seconds() > 0.0);
        prop_assert!(r.latency.as_seconds().is_finite());
        prop_assert!(r.energy.as_joules() > 0.0);
        prop_assert!(r.energy.as_joules().is_finite());
        prop_assert!(r.average_power().as_watts() >= unit.static_power_w - 1e-9);
    }

    /// Doubling every layer's work at least doubles nothing-downward:
    /// latency and dynamic energy are monotone in the workload.
    #[test]
    fn monotone_in_workload(
        unit in unit_strategy(),
        layers in network_strategy(),
    ) {
        let small = build_network(&layers);
        let doubled: Vec<(f64, f64, f64, bool)> = layers
            .iter()
            .map(|&(g, w, a, d)| (g * 2.0, w * 2.0, a * 2.0, d))
            .collect();
        let large = build_network(&doubled);
        let model = ExecutionModel::new(Soc::new("prop", vec![unit]));
        let rs = model.run(&small, UnitKind::Cpu).unwrap();
        let rl = model.run(&large, UnitKind::Cpu).unwrap();
        prop_assert!(rl.latency >= rs.latency);
        prop_assert!(rl.energy >= rs.energy);
        // Exactly 2x latency (both roofline terms scale linearly).
        let ratio = rl.latency / rs.latency;
        prop_assert!((ratio - 2.0).abs() < 1e-9, "latency ratio {ratio}");
    }

    /// A faster unit (same energy coefficients) is never slower.
    #[test]
    fn faster_unit_is_not_slower(
        unit in unit_strategy(),
        layers in network_strategy(),
        speedup in 1.0..4.0f64,
    ) {
        let net = build_network(&layers);
        let mut fast = unit;
        fast.peak_gmacs_per_s *= speedup;
        fast.mem_bw_gbps *= speedup;
        let slow_model = ExecutionModel::new(Soc::new("slow", vec![unit]));
        let fast_model = ExecutionModel::new(Soc::new("fast", vec![fast]));
        let rs = slow_model.run(&net, UnitKind::Cpu).unwrap();
        let rf = fast_model.run(&net, UnitKind::Cpu).unwrap();
        prop_assert!(rf.latency <= rs.latency);
    }

    /// DVFS: latency is non-increasing in frequency; dynamic-dominated
    /// workloads get cheaper when downclocked.
    #[test]
    fn dvfs_latency_monotone(
        unit in unit_strategy(),
        layers in network_strategy(),
        s1 in 0.3..1.5f64,
        s2 in 0.3..1.5f64,
    ) {
        let (lo, hi) = if s1 <= s2 { (s1, s2) } else { (s2, s1) };
        let net = build_network(&layers);
        let pts = dvfs::sweep(&unit, &net, &[lo, hi]);
        prop_assert!(pts[0].1 >= pts[1].1 - 1e-12, "lower frequency must not be faster");
    }

    /// Batch throughput is monotone in batch size.
    #[test]
    fn batch_throughput_monotone(
        unit in unit_strategy(),
        layers in network_strategy(),
        b in 2u32..64,
    ) {
        let net = build_network(&layers);
        let model = ExecutionModel::new(Soc::new("prop", vec![unit]));
        let b1 = cc_socsim::batch::run_batch(&model, &net, UnitKind::Cpu, 1).unwrap();
        let bn = cc_socsim::batch::run_batch(&model, &net, UnitKind::Cpu, b).unwrap();
        prop_assert!(bn.throughput_ips() >= b1.throughput_ips() - 1e-9);
        prop_assert!(bn.energy_per_image() <= b1.energy_per_image() * (1.0 + 1e-9));
    }
}
