//! # cc-socsim
//!
//! An analytical mobile-SoC inference simulator standing in for the paper's
//! physical testbed (a Google Pixel 3 with a Qualcomm Snapdragon 845,
//! measured by a Monsoon high-voltage power monitor).
//!
//! The simulator has three layers:
//!
//! 1. [`soc`] — a hardware description: compute units (CPU cluster, GPU,
//!    DSP) with peak throughput, memory bandwidth, dynamic energy per
//!    operation/byte and static power.
//! 2. [`network`] — CNN workloads as layer graphs (ResNet-50, Inception v3,
//!    MobileNet v1/v2/v3) with per-layer MACs, weight and activation traffic.
//! 3. [`exec`] — a roofline execution model producing per-layer and
//!    end-to-end latency and energy, and [`monitor`] — a simulated power
//!    monitor that *samples* the power trace at high frequency with noise and
//!    integrates it back to energy, exercising the same
//!    measure-integrate-convert pipeline the authors used.
//!
//! Calibration (unit utilizations and power levels) is chosen so the headline
//! ratios of Figs 9 and 10 hold; `EXPERIMENTS.md` records paper-vs-measured
//! for each.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod dvfs;
pub mod exec;
pub mod monitor;
pub mod network;
pub mod soc;

pub use exec::{ExecutionModel, InferenceReport, LayerReport};
pub use monitor::PowerMonitor;
pub use network::{Layer, LayerKind, Network};
pub use soc::{ComputeUnit, Soc, UnitKind};
