//! Batched inference.
//!
//! The paper measures batch-1 latency (the mobile-interactive case), but its
//! data-center discussion (DeepRecSys, Takeaway 7's AI fleets) is about
//! batched serving. Batching amortizes weight traffic: weights are fetched
//! once per batch while per-image compute and activation traffic scale with
//! batch size — so throughput rises and energy per image falls, with
//! diminishing returns once layers turn compute-bound.

use crate::exec::{ExecError, ExecutionModel};
use crate::network::Network;
use crate::soc::UnitKind;
use cc_units::{Energy, TimeSpan};

/// Result of a batched run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchReport {
    /// The unit used.
    pub unit: UnitKind,
    /// Batch size.
    pub batch: u32,
    /// Latency for the whole batch.
    pub batch_latency: TimeSpan,
    /// Energy for the whole batch.
    pub batch_energy: Energy,
}

impl BatchReport {
    /// Throughput in images per second.
    #[must_use]
    pub fn throughput_ips(&self) -> f64 {
        f64::from(self.batch) / self.batch_latency.as_seconds()
    }

    /// Energy per image.
    #[must_use]
    pub fn energy_per_image(&self) -> Energy {
        self.batch_energy / f64::from(self.batch)
    }

    /// Per-image latency (batch latency divided by batch; *not* the
    /// interactive latency, which is the whole batch).
    #[must_use]
    pub fn amortized_latency(&self) -> TimeSpan {
        self.batch_latency / f64::from(self.batch)
    }
}

/// Runs a batched inference on `unit`.
///
/// # Errors
///
/// Returns [`ExecError`] when the SoC lacks the unit; panics on a zero batch.
///
/// # Panics
///
/// Panics when `batch == 0`.
pub fn run_batch(
    model: &ExecutionModel,
    network: &Network,
    unit: UnitKind,
    batch: u32,
) -> Result<BatchReport, ExecError> {
    assert!(batch > 0, "batch size must be at least 1");
    let hw = *model
        .soc()
        .unit(unit)
        .ok_or(ExecError::UnknownUnit { unit })?;

    // Build a batch-equivalent network: MACs and activations scale by the
    // batch; weights are loaded once.
    let mut batched = network.clone();
    let b = f64::from(batch);
    for layer in batched.layers_mut() {
        layer.gmacs *= b;
        layer.act_melems *= b;
        // weight_melems unchanged: fetched once per batch.
    }
    let soc = crate::soc::Soc::new("batch", vec![hw]);
    let report = ExecutionModel::new(soc).run(&batched, unit)?;
    Ok(BatchReport {
        unit,
        batch,
        batch_latency: report.latency,
        batch_energy: report.energy,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_data::ai_models::CnnModel;

    fn model() -> ExecutionModel {
        ExecutionModel::pixel3()
    }

    #[test]
    fn batch_one_matches_single_inference() {
        let net = Network::build(CnnModel::MobileNetV2);
        let single = model().run(&net, UnitKind::Gpu).unwrap();
        let batch = run_batch(&model(), &net, UnitKind::Gpu, 1).unwrap();
        assert!((batch.batch_latency / single.latency - 1.0).abs() < 1e-12);
        assert!((batch.batch_energy / single.energy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn batching_improves_throughput_and_energy_per_image() {
        let net = Network::build(CnnModel::MobileNetV3);
        let b1 = run_batch(&model(), &net, UnitKind::Dsp, 1).unwrap();
        let b16 = run_batch(&model(), &net, UnitKind::Dsp, 16).unwrap();
        assert!(b16.throughput_ips() > b1.throughput_ips());
        assert!(b16.energy_per_image() < b1.energy_per_image());
    }

    #[test]
    fn returns_diminish_at_large_batches() {
        let net = Network::build(CnnModel::MobileNetV3);
        let b16 = run_batch(&model(), &net, UnitKind::Dsp, 16).unwrap();
        let b256 = run_batch(&model(), &net, UnitKind::Dsp, 256).unwrap();
        let gain_16_to_256 = b256.throughput_ips() / b16.throughput_ips();
        let b1 = run_batch(&model(), &net, UnitKind::Dsp, 1).unwrap();
        let gain_1_to_16 = b16.throughput_ips() / b1.throughput_ips();
        assert!(
            gain_1_to_16 > gain_16_to_256,
            "{gain_1_to_16} vs {gain_16_to_256}"
        );
    }

    #[test]
    fn interactive_latency_grows_with_batch() {
        let net = Network::build(CnnModel::ResNet50);
        let b1 = run_batch(&model(), &net, UnitKind::Cpu, 1).unwrap();
        let b8 = run_batch(&model(), &net, UnitKind::Cpu, 8).unwrap();
        assert!(b8.batch_latency > b1.batch_latency * 6.0);
        assert!(b8.amortized_latency() <= b1.batch_latency);
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn rejects_zero_batch() {
        let net = Network::build(CnnModel::MobileNetV1);
        let _ = run_batch(&model(), &net, UnitKind::Cpu, 0);
    }
}
