//! A simulated Monsoon-style power monitor.
//!
//! The paper measured device energy "on a Monsoon power monitor": the
//! instrument samples instantaneous power at high frequency and the energy is
//! the integral of the trace. This module reproduces that measurement
//! pipeline over a simulated inference: the execution model's per-layer
//! power profile is sampled at the monitor's rate with Gaussian measurement
//! noise, then integrated back to energy. Tests verify the sampled estimate
//! converges to the analytical energy — the same sanity check one performs
//! on the physical instrument.

use crate::exec::InferenceReport;
use cc_analysis::rng::{Rng, SplitMix64};
use cc_units::{Energy, Power, TimeSpan};

/// A sampled power trace.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerTrace {
    sample_period: TimeSpan,
    samples_w: Vec<f64>,
}

impl PowerTrace {
    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples_w.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples_w.is_empty()
    }

    /// The sampling period.
    #[must_use]
    pub fn sample_period(&self) -> TimeSpan {
        self.sample_period
    }

    /// Raw samples in watts.
    #[must_use]
    pub fn samples_w(&self) -> &[f64] {
        &self.samples_w
    }

    /// Integrates the trace to energy (rectangle rule, like the instrument).
    #[must_use]
    pub fn energy(&self) -> Energy {
        let joules: f64 = self
            .samples_w
            .iter()
            .map(|w| w * self.sample_period.as_seconds())
            .sum();
        Energy::from_joules(joules)
    }

    /// Mean sampled power.
    #[must_use]
    pub fn mean_power(&self) -> Power {
        if self.samples_w.is_empty() {
            return Power::ZERO;
        }
        Power::from_watts(self.samples_w.iter().sum::<f64>() / self.samples_w.len() as f64)
    }

    /// Peak sampled power.
    #[must_use]
    pub fn peak_power(&self) -> Power {
        Power::from_watts(self.samples_w.iter().copied().fold(0.0, f64::max))
    }
}

/// The simulated instrument.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerMonitor {
    sample_rate_hz: f64,
    noise_sigma_w: f64,
    seed: u64,
}

impl PowerMonitor {
    /// A Monsoon HV power monitor: 5 kHz sampling, ±50 mW noise.
    #[must_use]
    pub fn monsoon() -> Self {
        Self {
            sample_rate_hz: 5_000.0,
            noise_sigma_w: 0.05,
            seed: 0x6d6f6e736f6f6e,
        }
    }

    /// Custom instrument.
    ///
    /// # Panics
    ///
    /// Panics when the sample rate is not strictly positive or the noise is
    /// negative.
    #[must_use]
    pub fn new(sample_rate_hz: f64, noise_sigma_w: f64, seed: u64) -> Self {
        assert!(sample_rate_hz > 0.0, "sample rate must be positive");
        assert!(noise_sigma_w >= 0.0, "noise must be non-negative");
        Self {
            sample_rate_hz,
            noise_sigma_w,
            seed,
        }
    }

    /// Samples the power profile of `runs` back-to-back inferences.
    ///
    /// The profile is piecewise constant per layer: static power plus the
    /// layer's dynamic energy spread over its latency — exactly what the
    /// execution model asserts the device does.
    #[must_use]
    pub fn sample(&self, report: &InferenceReport, static_power: Power, runs: u32) -> PowerTrace {
        let period_s = 1.0 / self.sample_rate_hz;
        // Build the per-layer (duration, power) profile once.
        let profile: Vec<(f64, f64)> = report
            .layers
            .iter()
            .filter(|l| l.latency > TimeSpan::ZERO)
            .map(|l| {
                let s = l.latency.as_seconds();
                (
                    s,
                    static_power.as_watts() + l.dynamic_energy.as_joules() / s,
                )
            })
            .collect();
        let run_s: f64 = profile.iter().map(|&(d, _)| d).sum();
        let total_s = run_s * f64::from(runs);
        let n = (total_s / period_s).ceil() as usize;

        let mut rng = SplitMix64::seed_from_u64(self.seed);
        let mut samples = Vec::with_capacity(n);
        for i in 0..n {
            let t = (i as f64 + 0.5) * period_s;
            let t_in_run = t % run_s;
            let mut acc = 0.0;
            let mut power = profile.last().map_or(0.0, |&(_, p)| p);
            for &(d, p) in &profile {
                acc += d;
                if t_in_run < acc {
                    power = p;
                    break;
                }
            }
            // Box-Muller Gaussian noise.
            let u1: f64 = rng.next_f64().max(1e-12);
            let u2: f64 = rng.next_f64();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * core::f64::consts::PI * u2).cos();
            samples.push((power + z * self.noise_sigma_w).max(0.0));
        }
        PowerTrace {
            sample_period: TimeSpan::from_seconds(period_s),
            samples_w: samples,
        }
    }

    /// Measures per-inference energy: samples `runs` inferences and divides
    /// the integrated energy by the run count — the authors' procedure for
    /// amortizing trigger jitter.
    #[must_use]
    pub fn measure_energy(
        &self,
        report: &InferenceReport,
        static_power: Power,
        runs: u32,
    ) -> Energy {
        self.sample(report, static_power, runs).energy() / f64::from(runs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::ExecutionModel;
    use crate::network::Network;
    use crate::soc::UnitKind;
    use cc_data::ai_models::CnnModel;

    fn cpu_report() -> (InferenceReport, Power) {
        let model = ExecutionModel::pixel3();
        let report = model
            .run(&Network::build(CnnModel::MobileNetV3), UnitKind::Cpu)
            .unwrap();
        let static_power = model.soc().unit(UnitKind::Cpu).unwrap().static_power();
        (report, static_power)
    }

    #[test]
    fn sampled_energy_converges_to_analytical() {
        let (report, static_power) = cpu_report();
        let monitor = PowerMonitor::monsoon();
        let measured = monitor.measure_energy(&report, static_power, 500);
        let rel = (measured / report.energy - 1.0).abs();
        assert!(rel < 0.03, "sampled vs analytical differ by {rel:.3}");
    }

    #[test]
    fn noiseless_monitor_is_nearly_exact() {
        let (report, static_power) = cpu_report();
        let monitor = PowerMonitor::new(1_000_000.0, 0.0, 7);
        let measured = monitor.measure_energy(&report, static_power, 10);
        let rel = (measured / report.energy - 1.0).abs();
        assert!(rel < 0.005, "rel err {rel}");
    }

    #[test]
    fn trace_statistics_are_sane() {
        let (report, static_power) = cpu_report();
        let trace = PowerMonitor::monsoon().sample(&report, static_power, 100);
        assert!(!trace.is_empty());
        assert!(trace.peak_power() >= trace.mean_power());
        assert!(trace.mean_power().as_watts() > static_power.as_watts());
        assert!((trace.sample_period().as_seconds() - 0.0002).abs() < 1e-12);
        assert_eq!(trace.samples_w().len(), trace.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let (report, static_power) = cpu_report();
        let a = PowerMonitor::new(5_000.0, 0.05, 42).sample(&report, static_power, 50);
        let b = PowerMonitor::new(5_000.0, 0.05, 42).sample(&report, static_power, 50);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "sample rate")]
    fn rejects_zero_rate() {
        let _ = PowerMonitor::new(0.0, 0.0, 0);
    }
}
