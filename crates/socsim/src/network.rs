//! CNN workloads as layer graphs.
//!
//! Each network is a sequence of stage-level [`Layer`]s whose aggregate MACs
//! and parameter counts match the published figures recorded in
//! [`cc_data::ai_models`] (validated by tests). Stage-level granularity is
//! enough for a roofline model: what matters is how much work is dense vs
//! depthwise and how much weight/activation traffic each stage moves.

use cc_data::ai_models::CnnModel;

/// The kernel class of a layer, which determines achievable utilization.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LayerKind {
    /// Dense spatial convolution (3×3, 5×5, 7×7).
    Standard,
    /// Depthwise convolution: one filter per channel; starves wide engines.
    Depthwise,
    /// 1×1 (pointwise) convolution.
    Pointwise,
    /// Fully connected.
    Dense,
    /// Pooling / reshaping; negligible MACs, pure memory traffic.
    Pool,
}

impl LayerKind {
    /// Whether the execution model should use the depthwise utilization.
    #[must_use]
    pub fn is_depthwise(self) -> bool {
        matches!(self, Self::Depthwise)
    }
}

/// One (stage-aggregated) layer.
#[derive(Debug, Clone, PartialEq)]
pub struct Layer {
    /// Stage name, e.g. `"conv4_x"`.
    pub name: &'static str,
    /// Kernel class.
    pub kind: LayerKind,
    /// Multiply-accumulates, in billions.
    pub gmacs: f64,
    /// Weight elements, in millions.
    pub weight_melems: f64,
    /// Activation elements moved (read + write), in millions.
    pub act_melems: f64,
}

impl Layer {
    const fn new(
        name: &'static str,
        kind: LayerKind,
        gmacs: f64,
        weight_melems: f64,
        act_melems: f64,
    ) -> Self {
        Self {
            name,
            kind,
            gmacs,
            weight_melems,
            act_melems,
        }
    }
}

/// A network: an ordered list of layers.
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    /// Which published model this graph represents.
    pub model: CnnModel,
    layers: Vec<Layer>,
}

use LayerKind as K;

impl Network {
    /// Builds the layer graph for a published model.
    #[must_use]
    pub fn build(model: CnnModel) -> Self {
        let layers = match model {
            CnnModel::ResNet50 => vec![
                Layer::new("conv1 7x7", K::Standard, 0.118, 0.0094, 2.40),
                Layer::new("pool1", K::Pool, 0.0, 0.0, 1.60),
                Layer::new("conv2_x (3 blocks)", K::Standard, 0.680, 0.22, 7.80),
                Layer::new("conv3_x (4 blocks)", K::Standard, 0.850, 1.22, 5.20),
                Layer::new("conv4_x (6 blocks)", K::Standard, 1.330, 7.10, 3.70),
                Layer::new("conv5_x (3 blocks)", K::Standard, 1.110, 14.96, 1.50),
                Layer::new("avgpool", K::Pool, 0.0, 0.0, 0.10),
                Layer::new("fc1000", K::Dense, 0.002, 2.05, 0.01),
            ],
            CnnModel::InceptionV3 => vec![
                Layer::new("stem", K::Standard, 0.350, 0.50, 6.20),
                Layer::new("mixed_5 (3 blocks)", K::Standard, 1.200, 1.50, 6.80),
                Layer::new("mixed_6 (5 blocks)", K::Standard, 2.700, 10.00, 6.00),
                Layer::new("mixed_7 (3 blocks)", K::Standard, 1.448, 9.75, 2.70),
                Layer::new("avgpool", K::Pool, 0.0, 0.0, 0.10),
                Layer::new("fc1000", K::Dense, 0.002, 2.05, 0.01),
            ],
            CnnModel::MobileNetV1 => vec![
                Layer::new("conv1 3x3", K::Standard, 0.0109, 0.000864, 1.61),
                Layer::new(
                    "depthwise 3x3 (13 layers)",
                    K::Depthwise,
                    0.0171,
                    0.034,
                    4.20,
                ),
                Layer::new(
                    "pointwise 1x1 (13 layers)",
                    K::Pointwise,
                    0.5400,
                    3.10,
                    5.00,
                ),
                Layer::new("avgpool", K::Pool, 0.0, 0.0, 0.002),
                Layer::new("fc1000", K::Dense, 0.001, 1.025, 0.002),
            ],
            CnnModel::MobileNetV2 => vec![
                Layer::new("conv1 3x3", K::Standard, 0.0120, 0.000864, 1.61),
                Layer::new(
                    "depthwise 3x3 (17 blocks)",
                    K::Depthwise,
                    0.0180,
                    0.060,
                    5.90,
                ),
                Layer::new("expand/project 1x1", K::Pointwise, 0.2687, 2.06, 5.50),
                Layer::new("avgpool", K::Pool, 0.0, 0.0, 0.003),
                Layer::new("fc1000", K::Dense, 0.0013, 1.28, 0.002),
            ],
            CnnModel::MobileNetV3 => vec![
                Layer::new("conv1 3x3", K::Standard, 0.0100, 0.000432, 1.21),
                Layer::new("depthwise (15 blocks)", K::Depthwise, 0.0153, 0.095, 3.90),
                Layer::new("expand/project 1x1 + SE", K::Pointwise, 0.1917, 3.25, 3.80),
                Layer::new("avgpool", K::Pool, 0.0, 0.0, 0.002),
                Layer::new("classifier", K::Dense, 0.0020, 2.05, 0.003),
            ],
        };
        Self { model, layers }
    }

    /// Builds a custom network from explicit layers — for workloads beyond
    /// the paper's five (synthetic sweeps, new models). The `model` tag is
    /// kept for labeling; the layer payload is what the execution model
    /// consumes.
    ///
    /// # Panics
    ///
    /// Panics when `layers` is empty.
    #[must_use]
    pub fn from_layers(model: CnnModel, layers: Vec<Layer>) -> Self {
        assert!(!layers.is_empty(), "a network needs at least one layer");
        Self { model, layers }
    }

    /// All five paper networks.
    #[must_use]
    pub fn all() -> Vec<Self> {
        CnnModel::ALL.iter().map(|&m| Self::build(m)).collect()
    }

    /// The layers.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable layer access for in-crate transformations (batching).
    pub(crate) fn layers_mut(&mut self) -> &mut [Layer] {
        &mut self.layers
    }

    /// Total multiply-accumulates, billions.
    #[must_use]
    pub fn total_gmacs(&self) -> f64 {
        self.layers.iter().map(|l| l.gmacs).sum()
    }

    /// Total weight elements, millions (= parameter count).
    #[must_use]
    pub fn total_weight_melems(&self) -> f64 {
        self.layers.iter().map(|l| l.weight_melems).sum()
    }

    /// Total activation elements moved, millions.
    #[must_use]
    pub fn total_act_melems(&self) -> f64 {
        self.layers.iter().map(|l| l.act_melems).sum()
    }

    /// Fraction of MACs in depthwise layers.
    #[must_use]
    pub fn depthwise_mac_fraction(&self) -> f64 {
        let dw: f64 = self
            .layers
            .iter()
            .filter(|l| l.kind.is_depthwise())
            .map(|l| l.gmacs)
            .sum();
        dw / self.total_gmacs()
    }
}

impl core::fmt::Display for Network {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{} ({:.2} GMACs, {:.1}M params, {} stages)",
            self.model,
            self.total_gmacs(),
            self.total_weight_melems(),
            self.layers.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gmacs_match_published_figures() {
        for net in Network::all() {
            let published = net.model.gmacs();
            let built = net.total_gmacs();
            let err = (built - published).abs() / published;
            assert!(
                err < 0.02,
                "{}: built {built} vs published {published}",
                net.model
            );
        }
    }

    #[test]
    fn params_match_published_figures() {
        for net in Network::all() {
            let published = net.model.params_millions();
            let built = net.total_weight_melems();
            let err = (built - published).abs() / published;
            assert!(
                err < 0.05,
                "{}: built {built} vs published {published}",
                net.model
            );
        }
    }

    #[test]
    fn depthwise_fractions_match_descriptors() {
        for net in Network::all() {
            let expected = net.model.depthwise_mac_fraction();
            let built = net.depthwise_mac_fraction();
            assert!(
                (built - expected).abs() < 0.02,
                "{}: built {built} vs expected {expected}",
                net.model
            );
        }
    }

    #[test]
    fn classic_nets_have_no_depthwise() {
        for model in [CnnModel::ResNet50, CnnModel::InceptionV3] {
            let net = Network::build(model);
            assert!(net.layers().iter().all(|l| !l.kind.is_depthwise()));
        }
    }

    #[test]
    fn every_network_ends_in_a_classifier() {
        for net in Network::all() {
            assert_eq!(net.layers().last().unwrap().kind, LayerKind::Dense);
        }
    }

    #[test]
    fn display_summary() {
        let s = Network::build(CnnModel::MobileNetV2).to_string();
        assert!(s.contains("MobileNet v2"), "{s}");
    }
}
