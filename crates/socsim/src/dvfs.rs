//! Dynamic voltage and frequency scaling (DVFS).
//!
//! Section VI lists DVFS among the architecture community's levers on
//! opex-related carbon. The classic model: performance scales linearly with
//! frequency while dynamic energy per operation scales with V², and V scales
//! roughly with f in the DVFS-able range — so energy/op goes as the square of
//! the frequency scale. Static power scales with V (leakage grows with the
//! rail voltage).

use crate::soc::ComputeUnit;

/// Applies a frequency scale to a compute unit, returning the derived
/// operating point.
///
/// `scale = 1.0` is the nominal point; `0.5` is half frequency (and roughly
/// quarter dynamic energy per op); `1.2` is a 20% overclock.
///
/// # Panics
///
/// Panics when `scale` is outside the modelled DVFS range `[0.3, 1.5]`.
#[must_use]
pub fn at_frequency_scale(unit: &ComputeUnit, scale: f64) -> ComputeUnit {
    assert!(
        (0.3..=1.5).contains(&scale),
        "frequency scale {scale} outside modelled DVFS range [0.3, 1.5]"
    );
    let mut scaled = *unit;
    scaled.peak_gmacs_per_s = unit.peak_gmacs_per_s * scale;
    // V ~ f within the DVFS range: dynamic E/op ~ V^2 ~ f^2.
    scaled.pj_per_mac = unit.pj_per_mac * scale * scale;
    scaled.pj_per_byte = unit.pj_per_byte * scale * scale;
    // Leakage grows with voltage.
    scaled.static_power_w = unit.static_power_w * scale;
    scaled
}

/// Sweeps frequency scales, returning `(scale, latency_s, energy_j)` for one
/// network on one (scaled) unit — the raw material for an energy/latency
/// trade-off curve.
#[must_use]
pub fn sweep(
    unit: &ComputeUnit,
    network: &crate::network::Network,
    scales: &[f64],
) -> Vec<(f64, f64, f64)> {
    scales
        .iter()
        .map(|&s| {
            let scaled = at_frequency_scale(unit, s);
            let soc = crate::soc::Soc::new("dvfs-sweep", vec![scaled]);
            let model = crate::exec::ExecutionModel::new(soc);
            let report = model
                .run(network, unit.kind)
                .expect("unit kind present by construction");
            (s, report.latency.as_seconds(), report.energy.as_joules())
        })
        .collect()
}

/// Finds the energy-minimal frequency scale over a sweep.
///
/// Below some frequency, static energy (power × longer runtime) dominates and
/// total energy rises again — the classic energy-optimal DVFS point.
#[must_use]
pub fn energy_optimal_scale(
    unit: &ComputeUnit,
    network: &crate::network::Network,
    scales: &[f64],
) -> Option<f64> {
    sweep(unit, network, scales)
        .into_iter()
        .min_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(core::cmp::Ordering::Equal))
        .map(|(s, _, _)| s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::soc::{Soc, UnitKind};
    use cc_data::ai_models::CnnModel;

    fn cpu() -> ComputeUnit {
        *Soc::snapdragon_845().unit(UnitKind::Cpu).unwrap()
    }

    #[test]
    fn scaling_laws() {
        let base = cpu();
        let half = at_frequency_scale(&base, 0.5);
        assert!((half.peak_gmacs_per_s / base.peak_gmacs_per_s - 0.5).abs() < 1e-12);
        assert!((half.pj_per_mac / base.pj_per_mac - 0.25).abs() < 1e-12);
        assert!((half.static_power_w / base.static_power_w - 0.5).abs() < 1e-12);
        let nominal = at_frequency_scale(&base, 1.0);
        assert_eq!(nominal, base);
    }

    #[test]
    fn downclocking_trades_latency_for_energy() {
        let network = Network::build(CnnModel::MobileNetV3);
        let pts = sweep(&cpu(), &network, &[0.5, 1.0]);
        let (_, lat_half, e_half) = pts[0];
        let (_, lat_full, e_full) = pts[1];
        assert!(lat_half > lat_full, "half frequency must be slower");
        assert!(
            e_half < e_full,
            "half frequency must save energy for compute-bound nets"
        );
    }

    #[test]
    fn energy_optimum_is_interior_or_lowest() {
        let network = Network::build(CnnModel::MobileNetV2);
        let scales: Vec<f64> = (3..=15).map(|i| i as f64 / 10.0).collect();
        let opt = energy_optimal_scale(&cpu(), &network, &scales).unwrap();
        // With quadratic dynamic savings and linear static growth in runtime,
        // the optimum sits at or below nominal frequency.
        assert!(opt < 1.0, "optimum {opt}");
        assert!(opt >= 0.3);
    }

    #[test]
    fn memory_bound_layers_blunt_dvfs_gains() {
        // At low frequency, memory-bound layers stop getting slower (their
        // time is bandwidth-limited), so latency grows sublinearly.
        let network = Network::build(CnnModel::ResNet50);
        let pts = sweep(&cpu(), &network, &[0.5, 1.0]);
        let slowdown = pts[0].1 / pts[1].1;
        assert!(slowdown < 2.05, "slowdown {slowdown}");
    }

    #[test]
    #[should_panic(expected = "DVFS range")]
    fn rejects_out_of_range_scale() {
        let _ = at_frequency_scale(&cpu(), 2.0);
    }
}
