//! SoC hardware description.

use cc_units::Power;

/// The kind of compute unit an inference can be dispatched to (Fig 9's
/// x-axis groups).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum UnitKind {
    /// The big-core CPU cluster.
    Cpu,
    /// The mobile GPU.
    Gpu,
    /// The tensor/vector DSP (Hexagon-class).
    Dsp,
}

impl UnitKind {
    /// All units in Fig 9 order.
    pub const ALL: [Self; 3] = [Self::Cpu, Self::Gpu, Self::Dsp];

    /// Label used in the figures.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Cpu => "CPU",
            Self::Gpu => "GPU",
            Self::Dsp => "DSP",
        }
    }
}

impl core::fmt::Display for UnitKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

/// One compute unit of the SoC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ComputeUnit {
    /// Which kind of unit this is.
    pub kind: UnitKind,
    /// Peak multiply-accumulate throughput in GMAC/s for dense kernels.
    pub peak_gmacs_per_s: f64,
    /// Sustained memory bandwidth in GB/s available to this unit.
    pub mem_bw_gbps: f64,
    /// Achievable fraction of peak on dense (standard/pointwise/dense)
    /// layers.
    pub dense_utilization: f64,
    /// Achievable fraction of peak on depthwise layers (much lower:
    /// depthwise convolutions starve wide engines).
    pub depthwise_utilization: f64,
    /// Dynamic energy per MAC in picojoules.
    pub pj_per_mac: f64,
    /// Dynamic energy per byte of DRAM traffic in picojoules.
    pub pj_per_byte: f64,
    /// Device-level static/base power attributed while this unit runs
    /// (screen off, rails up — what a Monsoon monitor sees beyond dynamic
    /// power).
    pub static_power_w: f64,
    /// Bytes per weight/activation element (1 for the quantized int8 paths
    /// used on DSPs, 4 for fp32 CPU paths, 2 for fp16 GPU paths).
    pub element_bytes: f64,
}

impl ComputeUnit {
    /// Static power as a typed quantity.
    #[must_use]
    pub fn static_power(&self) -> Power {
        Power::from_watts(self.static_power_w)
    }

    /// Effective MAC throughput for a layer utilization class, GMAC/s.
    #[must_use]
    pub fn effective_gmacs(&self, depthwise: bool) -> f64 {
        let util = if depthwise {
            self.depthwise_utilization
        } else {
            self.dense_utilization
        };
        self.peak_gmacs_per_s * util
    }
}

/// A mobile SoC: a set of compute units.
#[derive(Debug, Clone, PartialEq)]
pub struct Soc {
    /// Marketing name.
    pub name: String,
    units: Vec<ComputeUnit>,
}

impl Soc {
    /// Creates an SoC from explicit units.
    ///
    /// # Panics
    ///
    /// Panics when two units share a kind.
    #[must_use]
    pub fn new(name: impl Into<String>, units: Vec<ComputeUnit>) -> Self {
        let mut kinds: Vec<UnitKind> = units.iter().map(|u| u.kind).collect();
        kinds.sort_unstable();
        let len_before = kinds.len();
        kinds.dedup();
        assert_eq!(len_before, kinds.len(), "duplicate unit kinds");
        Self {
            name: name.into(),
            units,
        }
    }

    /// The Snapdragon-845-class SoC of the paper's Pixel 3 testbed.
    ///
    /// Calibration notes (anchors from Fig 9/10 and the §III-C text):
    ///
    /// * CPU runs fp32 at modest utilization; MobileNet v3 lands at ≈ 6 ms /
    ///   ≈ 47 mJ per image so the Fig 10 break-even is ≈ 5 × 10⁹ images ≈ 350
    ///   days of continuous operation.
    /// * The DSP is ≈ 1.5× faster and ≈ 2.2× more power-efficient than the
    ///   CPU on MobileNets ("due to 1.5× and 2.2× improvements in performance
    ///   and power efficiency").
    /// * The GPU sits between the two.
    /// * Depthwise utilization is a small fraction of dense utilization,
    ///   which is why MobileNets do not reach the full peak-ratio speedup.
    #[must_use]
    pub fn snapdragon_845() -> Self {
        Self::new(
            "Snapdragon 845 (Pixel 3)",
            vec![
                ComputeUnit {
                    kind: UnitKind::Cpu,
                    peak_gmacs_per_s: 60.0,
                    mem_bw_gbps: 12.0,
                    dense_utilization: 0.75,
                    depthwise_utilization: 0.15,
                    pj_per_mac: 150.0,
                    pj_per_byte: 30.0,
                    static_power_w: 1.4,
                    element_bytes: 4.0,
                },
                ComputeUnit {
                    kind: UnitKind::Gpu,
                    peak_gmacs_per_s: 140.0,
                    mem_bw_gbps: 17.0,
                    dense_utilization: 0.55,
                    depthwise_utilization: 0.12,
                    pj_per_mac: 60.0,
                    pj_per_byte: 25.0,
                    static_power_w: 1.6,
                    element_bytes: 2.0,
                },
                ComputeUnit {
                    kind: UnitKind::Dsp,
                    peak_gmacs_per_s: 200.0,
                    mem_bw_gbps: 14.0,
                    dense_utilization: 0.50,
                    depthwise_utilization: 0.12,
                    pj_per_mac: 22.0,
                    pj_per_byte: 20.0,
                    static_power_w: 0.6,
                    element_bytes: 1.0,
                },
            ],
        )
    }

    /// Looks a unit up by kind.
    #[must_use]
    pub fn unit(&self, kind: UnitKind) -> Option<&ComputeUnit> {
        self.units.iter().find(|u| u.kind == kind)
    }

    /// All units.
    #[must_use]
    pub fn units(&self) -> &[ComputeUnit] {
        &self.units
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapdragon_has_all_units() {
        let soc = Soc::snapdragon_845();
        for kind in UnitKind::ALL {
            assert!(soc.unit(kind).is_some(), "{kind} missing");
        }
        assert_eq!(soc.units().len(), 3);
    }

    #[test]
    fn dsp_is_most_energy_efficient_per_mac() {
        let soc = Soc::snapdragon_845();
        let cpu = soc.unit(UnitKind::Cpu).unwrap();
        let dsp = soc.unit(UnitKind::Dsp).unwrap();
        assert!(dsp.pj_per_mac < cpu.pj_per_mac);
        assert!(dsp.peak_gmacs_per_s > cpu.peak_gmacs_per_s);
    }

    #[test]
    fn depthwise_utilization_is_lower() {
        for unit in Soc::snapdragon_845().units() {
            assert!(unit.depthwise_utilization < unit.dense_utilization);
            assert!(unit.effective_gmacs(true) < unit.effective_gmacs(false));
        }
    }

    #[test]
    #[should_panic(expected = "duplicate unit kinds")]
    fn rejects_duplicate_kinds() {
        let unit = *Soc::snapdragon_845().unit(UnitKind::Cpu).unwrap();
        let _ = Soc::new("bad", vec![unit, unit]);
    }

    #[test]
    fn unit_labels() {
        assert_eq!(UnitKind::Dsp.to_string(), "DSP");
    }
}
