//! Roofline execution model: per-layer latency and energy on a compute unit.
//!
//! Per layer, latency is `max(compute time, memory time)` — the classic
//! roofline — where compute time uses the unit's effective (utilization-
//! scaled) throughput for the layer's kernel class, and memory time moves
//! weights plus activations at the unit's element width over its bandwidth.
//! Dynamic energy charges every MAC and every byte; static energy charges
//! the unit's base power for the whole latency.

use crate::network::{Layer, Network};
use crate::soc::{ComputeUnit, Soc, UnitKind};
use cc_units::{Energy, Power, TimeSpan};

/// Per-layer simulation output.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Layer name.
    pub name: &'static str,
    /// Layer latency.
    pub latency: TimeSpan,
    /// Whether the layer was memory-bound (memory time exceeded compute
    /// time).
    pub memory_bound: bool,
    /// Dynamic energy (MACs + traffic).
    pub dynamic_energy: Energy,
}

/// End-to-end simulation output for one inference.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceReport {
    /// The unit the inference ran on.
    pub unit: UnitKind,
    /// Per-layer reports in execution order.
    pub layers: Vec<LayerReport>,
    /// End-to-end latency.
    pub latency: TimeSpan,
    /// Total energy (dynamic + static).
    pub energy: Energy,
}

impl InferenceReport {
    /// Inference throughput, images per second.
    #[must_use]
    pub fn throughput_ips(&self) -> f64 {
        1.0 / self.latency.as_seconds()
    }

    /// Average device power over the inference.
    #[must_use]
    pub fn average_power(&self) -> Power {
        self.energy / self.latency
    }

    /// Energy efficiency, inferences per joule.
    #[must_use]
    pub fn inferences_per_joule(&self) -> f64 {
        1.0 / self.energy.as_joules()
    }
}

/// The execution model: an SoC plus dispatch logic.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionModel {
    soc: Soc,
}

impl ExecutionModel {
    /// Creates a model over an SoC.
    #[must_use]
    pub fn new(soc: Soc) -> Self {
        Self { soc }
    }

    /// The paper's testbed: Snapdragon 845.
    #[must_use]
    pub fn pixel3() -> Self {
        Self::new(Soc::snapdragon_845())
    }

    /// The underlying SoC.
    #[must_use]
    pub fn soc(&self) -> &Soc {
        &self.soc
    }

    /// Simulates one single-image inference of `network` on `unit`.
    ///
    /// # Errors
    ///
    /// Returns [`ExecError::UnknownUnit`] when the SoC lacks the unit.
    pub fn run(&self, network: &Network, unit: UnitKind) -> Result<InferenceReport, ExecError> {
        let hw = self.soc.unit(unit).ok_or(ExecError::UnknownUnit { unit })?;
        let layers: Vec<LayerReport> = network
            .layers()
            .iter()
            .map(|l| Self::run_layer(hw, l))
            .collect();
        let latency: TimeSpan = layers
            .iter()
            .map(|l| l.latency)
            .fold(TimeSpan::ZERO, |acc, t| acc + t);
        let dynamic: Energy = layers
            .iter()
            .map(|l| l.dynamic_energy)
            .fold(Energy::ZERO, |acc, e| acc + e);
        let energy = dynamic + hw.static_power() * latency;
        Ok(InferenceReport {
            unit,
            layers,
            latency,
            energy,
        })
    }

    fn run_layer(hw: &ComputeUnit, layer: &Layer) -> LayerReport {
        let effective_gmacs = hw.effective_gmacs(layer.kind.is_depthwise());
        let compute_s = if layer.gmacs > 0.0 {
            layer.gmacs / effective_gmacs
        } else {
            0.0
        };
        let bytes = (layer.weight_melems + layer.act_melems) * 1e6 * hw.element_bytes;
        let memory_s = bytes / (hw.mem_bw_gbps * 1e9);
        let latency_s = compute_s.max(memory_s);
        let dynamic_j = layer.gmacs * 1e9 * hw.pj_per_mac * 1e-12 + bytes * hw.pj_per_byte * 1e-12;
        LayerReport {
            name: layer.name,
            latency: TimeSpan::from_seconds(latency_s),
            memory_bound: memory_s > compute_s,
            dynamic_energy: Energy::from_joules(dynamic_j),
        }
    }

    /// Runs a network on every unit of the SoC (a Fig 9 column group).
    pub fn run_all_units(&self, network: &Network) -> Vec<InferenceReport> {
        UnitKind::ALL
            .iter()
            .filter_map(|&u| self.run(network, u).ok())
            .collect()
    }
}

/// Errors from [`ExecutionModel::run`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// The SoC has no unit of the requested kind.
    UnknownUnit {
        /// The requested unit.
        unit: UnitKind,
    },
}

impl core::fmt::Display for ExecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Self::UnknownUnit { unit } => write!(f, "soc has no {unit} unit"),
        }
    }
}

impl std::error::Error for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;
    use cc_data::ai_models::CnnModel;

    fn pixel3() -> ExecutionModel {
        ExecutionModel::pixel3()
    }

    fn run(model: CnnModel, unit: UnitKind) -> InferenceReport {
        pixel3().run(&Network::build(model), unit).unwrap()
    }

    #[test]
    fn mobilenet_v2_is_roughly_17x_faster_than_inception_on_cpu() {
        let inception = run(CnnModel::InceptionV3, UnitKind::Cpu);
        let mnv2 = run(CnnModel::MobileNetV2, UnitKind::Cpu);
        let speedup = inception.latency / mnv2.latency;
        assert!(
            speedup > 12.0 && speedup < 20.0,
            "paper: 17x, got {speedup:.1}x"
        );
    }

    #[test]
    fn dsp_speeds_up_mobilenets_over_cpu() {
        for model in [CnnModel::MobileNetV2, CnnModel::MobileNetV3] {
            let cpu = run(model, UnitKind::Cpu);
            let dsp = run(model, UnitKind::Dsp);
            let speedup = cpu.latency / dsp.latency;
            assert!(speedup > 1.4 && speedup < 3.5, "{model}: {speedup:.1}x");
        }
    }

    #[test]
    fn energy_improves_by_more_than_an_order_of_magnitude_algorithmically() {
        let inception = run(CnnModel::InceptionV3, UnitKind::Cpu);
        let mnv3 = run(CnnModel::MobileNetV3, UnitKind::Cpu);
        let improvement = inception.energy / mnv3.energy;
        assert!(
            improvement > 15.0 && improvement < 40.0,
            "paper: ~30-36x, got {improvement:.0}x"
        );
    }

    #[test]
    fn dsp_cuts_energy_over_cpu() {
        let cpu = run(CnnModel::MobileNetV3, UnitKind::Cpu);
        let dsp = run(CnnModel::MobileNetV3, UnitKind::Dsp);
        let improvement = cpu.energy / dsp.energy;
        assert!(
            improvement > 2.0 && improvement < 8.0,
            "paper: >=2x, got {improvement:.1}x"
        );
    }

    #[test]
    fn mobilenet_v3_cpu_anchors_fig10() {
        // ~6 ms and ~45 mJ per image on CPU make the Fig 10 break-even land
        // at ~5e9 images / ~1 year of continuous operation.
        let r = run(CnnModel::MobileNetV3, UnitKind::Cpu);
        let ms = r.latency.as_millis();
        let mj = r.energy.as_joules() * 1e3;
        assert!(ms > 4.0 && ms < 9.0, "latency {ms} ms");
        assert!(mj > 30.0 && mj < 60.0, "energy {mj} mJ");
    }

    #[test]
    fn device_power_is_phone_like() {
        for model in CnnModel::FIG9 {
            for unit in UnitKind::ALL {
                let r = run(model, unit);
                let w = r.average_power().as_watts();
                assert!(w > 0.5 && w < 12.0, "{model} on {unit}: {w} W");
            }
        }
    }

    #[test]
    fn latency_is_sum_of_layers() {
        let r = run(CnnModel::ResNet50, UnitKind::Gpu);
        let sum: f64 = r.layers.iter().map(|l| l.latency.as_seconds()).sum();
        assert!((sum - r.latency.as_seconds()).abs() < 1e-12);
        assert_eq!(r.layers.len(), 8);
    }

    #[test]
    fn pool_layers_are_memory_bound() {
        let r = run(CnnModel::ResNet50, UnitKind::Cpu);
        let pool = r.layers.iter().find(|l| l.name == "pool1").unwrap();
        assert!(pool.memory_bound);
    }

    #[test]
    fn throughput_and_power_accessors() {
        let r = run(CnnModel::MobileNetV1, UnitKind::Dsp);
        assert!((r.throughput_ips() - 1.0 / r.latency.as_seconds()).abs() < 1e-9);
        assert!(r.inferences_per_joule() > 0.0);
    }

    #[test]
    fn run_all_units_covers_the_soc() {
        let reports = pixel3().run_all_units(&Network::build(CnnModel::MobileNetV2));
        assert_eq!(reports.len(), 3);
    }

    #[test]
    fn unknown_unit_errors() {
        let soc = Soc::new(
            "cpu-only",
            vec![*Soc::snapdragon_845().unit(UnitKind::Cpu).unwrap()],
        );
        let model = ExecutionModel::new(soc);
        let err = model
            .run(&Network::build(CnnModel::MobileNetV1), UnitKind::Dsp)
            .unwrap_err();
        assert_eq!(
            err,
            ExecError::UnknownUnit {
                unit: UnitKind::Dsp
            }
        );
        assert!(err.to_string().contains("DSP"));
    }
}
