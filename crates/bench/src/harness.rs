//! A minimal wall-clock benchmark harness.
//!
//! Offline stand-in for Criterion: each benchmark warms up, then runs
//! batches until a time budget is spent, and reports the per-iteration
//! mean/min over the measured batches. Good enough to (a) exercise every
//! model end to end under `cargo bench` and (b) spot order-of-magnitude
//! regressions; it does not attempt Criterion's statistical rigor.

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Result of one benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Measurement {
    /// Total iterations measured.
    pub iterations: u64,
    /// Mean wall-clock time per iteration.
    pub mean: Duration,
    /// Fastest observed batch, per iteration.
    pub min: Duration,
}

impl Measurement {
    fn format_duration(d: Duration) -> String {
        let nanos = d.as_nanos();
        if nanos < 10_000 {
            format!("{nanos} ns")
        } else if nanos < 10_000_000 {
            format!("{:.1} us", nanos as f64 / 1e3)
        } else if nanos < 10_000_000_000 {
            format!("{:.1} ms", nanos as f64 / 1e6)
        } else {
            format!("{:.2} s", nanos as f64 / 1e9)
        }
    }
}

/// A machine-readable benchmark report: named measurements collected across
/// groups, serializable to the JSON shape CI archives (`BENCH_ci.json`) so
/// the perf trajectory has data points to diff between runs.
#[derive(Debug, Default)]
pub struct Report {
    entries: Vec<(String, Measurement)>,
}

impl Report {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one named measurement.
    pub fn record(&mut self, name: impl Into<String>, measurement: Measurement) {
        self.entries.push((name.into(), measurement));
    }

    /// Number of recorded measurements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The report as a JSON array string: one object per benchmark with
    /// `name`, `mean_ns`, `min_ns` and `iterations`.
    #[must_use]
    pub fn to_json(&self) -> String {
        let ns = |d: Duration| {
            cc_report::JsonValue::Integer(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        };
        cc_report::JsonValue::array(self.entries.iter().map(|(name, m)| {
            cc_report::JsonValue::object([
                ("name", cc_report::JsonValue::from(name.as_str())),
                ("mean_ns", ns(m.mean)),
                ("min_ns", ns(m.min)),
                ("iterations", cc_report::JsonValue::Integer(m.iterations)),
            ])
        }))
        .render()
    }
}

/// Runs groups of named benchmarks and prints one line per benchmark.
#[derive(Debug)]
pub struct Bencher {
    group: String,
    budget: Duration,
}

impl Bencher {
    /// A benchmark group named `group` with the default 200 ms budget per
    /// benchmark.
    #[must_use]
    pub fn group(group: impl Into<String>) -> Self {
        Self {
            group: group.into(),
            budget: Duration::from_millis(200),
        }
    }

    /// Overrides the per-benchmark time budget.
    #[must_use]
    pub fn budget(mut self, budget: Duration) -> Self {
        self.budget = budget;
        self
    }

    /// Times `f`, prints `group/name: <mean> per iter`, and returns the
    /// measurement. The closure's return value is passed through
    /// [`black_box`] so the optimizer cannot elide the work.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) -> Measurement {
        // Warm-up: one untimed call (fills caches, triggers lazy statics).
        black_box(f());

        // Size batches so each batch is ~10% of the budget.
        let probe = Instant::now();
        black_box(f());
        let per_iter = probe.elapsed().max(Duration::from_nanos(1));
        let batch = ((self.budget.as_secs_f64() / 10.0 / per_iter.as_secs_f64()).ceil() as u64)
            .clamp(1, 1_000_000);

        let mut iterations = 0u64;
        let mut total = Duration::ZERO;
        let mut min_per_iter = Duration::MAX;
        let started = Instant::now();
        while started.elapsed() < self.budget {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t0.elapsed();
            iterations += batch;
            total += elapsed;
            min_per_iter = min_per_iter.min(elapsed / u32::try_from(batch).unwrap_or(u32::MAX));
        }
        let mean = total / u32::try_from(iterations.max(1)).unwrap_or(u32::MAX);
        let m = Measurement {
            iterations,
            mean,
            min: min_per_iter,
        };
        println!(
            "{:40} {:>12} per iter (min {:>12}, {} iters)",
            format!("{}/{}", self.group, name),
            Measurement::format_duration(m.mean),
            Measurement::format_duration(m.min),
            m.iterations
        );
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_cheap_work() {
        let b = Bencher::group("test").budget(Duration::from_millis(20));
        let m = b.bench("noop-ish", || 2u64.wrapping_mul(3));
        assert!(m.iterations > 0);
        assert!(m.mean > Duration::ZERO);
        assert!(m.min <= m.mean * 2);
    }

    #[test]
    fn report_serializes_measurements_to_json() {
        let mut report = Report::new();
        assert!(report.is_empty());
        report.record(
            "facility/paper",
            Measurement {
                iterations: 42,
                mean: Duration::from_nanos(1_500),
                min: Duration::from_nanos(1_200),
            },
        );
        assert_eq!(report.len(), 1);
        assert_eq!(
            report.to_json(),
            r#"[{"name":"facility/paper","mean_ns":1500,"min_ns":1200,"iterations":42}]"#
        );
    }

    #[test]
    fn duration_formatting_spans_scales() {
        assert_eq!(
            Measurement::format_duration(Duration::from_nanos(50)),
            "50 ns"
        );
        assert!(Measurement::format_duration(Duration::from_micros(50)).ends_with("us"));
        assert!(Measurement::format_duration(Duration::from_millis(50)).ends_with("ms"));
        assert!(Measurement::format_duration(Duration::from_secs(50)).ends_with(" s"));
    }
}
