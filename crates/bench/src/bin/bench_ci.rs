//! CI benchmark smoke: times the facility, sweep and serve hot paths with
//! the `cc_bench` harness and writes a machine-readable `BENCH_ci.json`
//! (name, mean ns, min ns, iterations) so every CI run contributes a data
//! point to the perf trajectory.
//!
//! ```text
//! bench-ci                                  # writes BENCH_ci.json
//! bench-ci out/BENCH_ci.json                # explicit output path
//! bench-ci --baseline BENCH_baseline.json   # …and gate: fail on a >25%
//!                                           # mean_ns regression on any
//!                                           # bench named in the baseline
//! bench-ci --update-baseline BENCH_baseline.json
//!                                           # …and rewrite the baseline
//!                                           # from this run; refuses to
//!                                           # raise any mean by >25%
//!                                           # unless --force is given
//! ```
//!
//! The per-benchmark budget is deliberately small (~100 ms): the goal is a
//! stable order-of-magnitude record per commit, not Criterion-grade
//! statistics — `cargo bench` remains the place for careful measurement.
//! The serve benches drive a real `cc_engine::Server` over loopback TCP on
//! a pre-warmed cache, so `serve/cache-hit-latency` is the end-to-end cost
//! of a cache-hit request (quoted as implied requests/sec = 1e9 / mean_ns
//! right next to the measurement),
//! `serve/sustained-requests-x16` measures 16 pipelined v1 (untagged)
//! requests, `serve/pipelined-depth-16` the same burst id-tagged through
//! the v2 worker pool, and `serve/overload-rejection` the cost of a
//! zero-depth queue shedding one multiplexed request.

use cc_bench::harness::Report;
use cc_bench::Bencher;
use cc_core::experiments;
use cc_engine::{Engine, McConfig, Server};
use cc_report::{
    dedup_groups, DistBinding, JsonValue, MonteCarloMatrix, RunContext, Scenario, ScenarioMatrix,
    ScenarioOverlay, SweepSpec,
};
use std::hint::black_box;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

/// Maximum tolerated `mean_ns` growth over the checked-in baseline before
/// the gate fails CI.
const REGRESSION_RATIO: f64 = 1.25;

fn main() {
    let mut baseline: Option<String> = None;
    let mut update_baseline: Option<String> = None;
    let mut force = false;
    let mut out_path = "BENCH_ci.json".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--baseline" => {
                baseline = Some(args.next().unwrap_or_else(|| {
                    eprintln!("bench-ci: --baseline requires a path");
                    std::process::exit(2);
                }));
            }
            "--update-baseline" => {
                update_baseline = Some(args.next().unwrap_or_else(|| {
                    eprintln!("bench-ci: --update-baseline requires a path");
                    std::process::exit(2);
                }));
            }
            "--force" => force = true,
            flag if flag.starts_with('-') => {
                eprintln!("bench-ci: unknown option `{flag}`");
                std::process::exit(2);
            }
            path => out_path = path.to_string(),
        }
    }

    let mut report = Report::new();
    let bencher = Bencher::group("ci").budget(Duration::from_millis(100));
    let mut bench = |name: &str, f: &mut dyn FnMut()| {
        let measurement = bencher.bench(name, f);
        report.record(format!("ci/{name}"), measurement);
        measurement
    };

    // Facility hot path: the scenario-driven simulation behind
    // ext-facility/fig02/fig11, pure and mixed.
    let paper = RunContext::paper();
    let facility = experiments::find("ext-facility").expect("registry");
    bench("facility/paper-run", &mut || {
        black_box(facility.run(&paper));
    });
    let mut ai = Scenario::paper_defaults();
    ai.set("fleet.mix", "web:0.7,ai-training:0.3")
        .expect("valid mix");
    let ai_ctx = RunContext::new(ai);
    bench("facility/mixed-fleet-run", &mut || {
        black_box(facility.run(&ai_ctx));
    });
    bench("facility/prineville-simulate", &mut || {
        black_box(cc_dcsim::prineville::simulate());
    });

    // Sweep hot path: matrix expansion plus the dependency-fingerprint
    // grouping the cached runner performs before any model runs.
    let specs = vec![SweepSpec::parse("fleet.growth=1.0..2.0/0.05").expect("valid spec")];
    bench("sweep/matrix-expand-21-points", &mut || {
        let matrix =
            ScenarioMatrix::new(Scenario::paper_defaults(), specs.clone()).expect("valid matrix");
        black_box(matrix.points().collect::<Vec<_>>());
    });
    let matrix = ScenarioMatrix::new(Scenario::paper_defaults(), specs).expect("valid matrix");
    let points: Vec<_> = matrix.points().collect();
    let overlays: Vec<&ScenarioOverlay> = points.iter().map(|p| &p.overlay).collect();
    bench("sweep/fingerprint-dedup-full-suite", &mut || {
        for entry in experiments::entries() {
            black_box(dedup_groups(&overlays, entry.deps()));
        }
    });

    // Monte-Carlo hot path: 1k sampled points through the draw → overlay →
    // fingerprint → cache → streaming-statistics pipeline. The sampled
    // field is outside ext-facility's dependencies, so the model runs once
    // and the bench isolates the per-sample machinery (model-run cost is
    // already tracked by facility/paper-run).
    let mc_engine = Engine::new();
    let mc_entries = vec![experiments::find_entry("ext-facility").expect("registry")];
    let mc_matrix = MonteCarloMatrix::new(
        Scenario::paper_defaults(),
        vec![DistBinding::parse("fab.node_nm ~ triangular(5,7,10)").expect("valid binding")],
        1000,
        7,
    )
    .expect("valid matrix");
    let mc_config = McConfig {
        jobs: 1,
        no_cache: false,
    };
    bench("mc-throughput", &mut || {
        black_box(
            mc_engine
                .run_mc(&mc_entries, &mc_matrix, &mc_config)
                .expect("mc run"),
        );
    });

    // Serve hot path: a resident daemon on loopback TCP, one persistent
    // client connection, cache pre-warmed so every measured request is the
    // full protocol round-trip (parse → validate → cache hit → render →
    // stream) without model runs.
    let engine = Arc::new(Engine::new());
    let server = Server::bind("127.0.0.1:0", Arc::clone(&engine), 8).unwrap_or_else(|e| {
        eprintln!("bench-ci: cannot bind loopback server: {e}");
        std::process::exit(1);
    });
    let addr = server.local_addr().expect("bound address");
    let daemon = std::thread::spawn(move || server.run());
    let stream = TcpStream::connect(addr).expect("connect to loopback server");
    stream.set_nodelay(true).expect("set TCP_NODELAY");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    let single = r#"{"op":"run","experiments":["fig05"]}"#;
    let sweep = r#"{"op":"run","experiments":["fig10"],"sweep":["grid.intensity=50,380,700"]}"#;
    roundtrip(&mut reader, &mut writer, single); // warm
    roundtrip(&mut reader, &mut writer, sweep); // warm
    let hit = bench("serve/cache-hit-latency", &mut || {
        roundtrip(&mut reader, &mut writer, single);
    });
    // The latency is easier to reason about as throughput: one connection
    // issuing back-to-back cache hits sustains 1e9 / mean_ns requests/sec.
    let hit_mean_ns = hit.mean.as_nanos() as f64;
    if hit_mean_ns > 0.0 {
        println!(
            "ci/serve/cache-hit-latency: implied {:.0} requests/sec per connection",
            1e9 / hit_mean_ns
        );
    }
    bench("serve/sweep-replay-3-points", &mut || {
        roundtrip(&mut reader, &mut writer, sweep);
    });
    bench("serve/sustained-requests-x16", &mut || {
        for _ in 0..16 {
            writeln!(writer, "{single}").expect("send request");
        }
        let mut done = 0;
        let mut response = String::new();
        while done < 16 {
            response.clear();
            reader.read_line(&mut response).expect("read response");
            if response.contains("\"type\":\"done\"") {
                done += 1;
            }
        }
    });
    // v2 multiplexing: the same 16 cache hits, id-tagged so they flow
    // through the per-connection work queue and worker pool instead of the
    // serial v1 reader loop, written in one burst and drained out of
    // order. Quoted against the serial round-trip rate above — this is the
    // number the protocol upgrade exists to move.
    let burst: String = (0..16)
        .map(|i| format!("{{\"op\":\"run\",\"id\":{i},\"experiments\":[\"fig05\"]}}\n"))
        .collect();
    let pipelined = bench("serve/pipelined-depth-16", &mut || {
        // One write for the whole burst — a pipelining client batches its
        // frames instead of paying a syscall (and a server wakeup) per
        // request.
        writer.write_all(burst.as_bytes()).expect("send burst");
        let mut done = 0;
        let mut response = String::new();
        while done < 16 {
            response.clear();
            reader.read_line(&mut response).expect("read response");
            if response.contains("\"type\":\"done\"") {
                done += 1;
            }
        }
    });
    let pipelined_per_request_ns = pipelined.mean.as_nanos() as f64 / 16.0;
    if pipelined_per_request_ns > 0.0 && hit_mean_ns > 0.0 {
        println!(
            "ci/serve/pipelined-depth-16: implied {:.0} requests/sec per connection \
             ({:.1}x the serial round-trip rate)",
            1e9 / pipelined_per_request_ns,
            hit_mean_ns / pipelined_per_request_ns
        );
    }
    roundtrip(&mut reader, &mut writer, r#"{"op":"shutdown"}"#);
    daemon
        .join()
        .expect("daemon thread joins")
        .expect("daemon exits cleanly");

    // Backpressure fast path: a zero-depth queue sheds every multiplexed
    // request with a structured `overloaded` error instead of buffering,
    // so rejection must stay far cheaper than service.
    let overload_server = Server::bind("127.0.0.1:0", Arc::new(Engine::new()), 2)
        .unwrap_or_else(|e| {
            eprintln!("bench-ci: cannot bind overload server: {e}");
            std::process::exit(1);
        })
        .queue_depth(0);
    let overload_addr = overload_server.local_addr().expect("bound address");
    let overload_daemon = std::thread::spawn(move || overload_server.run());
    let stream = TcpStream::connect(overload_addr).expect("connect to overload server");
    stream.set_nodelay(true).expect("set TCP_NODELAY");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = stream;
    bench("serve/overload-rejection", &mut || {
        writeln!(writer, r#"{{"op":"run","id":1,"experiments":["fig05"]}}"#).expect("send request");
        let mut response = String::new();
        reader.read_line(&mut response).expect("read response");
        assert!(
            response.contains("\"error\":\"overloaded\""),
            "expected an overloaded rejection, got: {response}"
        );
    });
    roundtrip(&mut reader, &mut writer, r#"{"op":"shutdown"}"#);
    overload_daemon
        .join()
        .expect("overload daemon joins")
        .expect("overload daemon exits cleanly");

    std::fs::write(&out_path, report.to_json()).unwrap_or_else(|e| {
        eprintln!("bench-ci: cannot write `{out_path}`: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path} ({} benchmarks)", report.len());

    if let Some(baseline_path) = baseline {
        compare_against_baseline(&report, &baseline_path);
    }
    if let Some(baseline_path) = update_baseline {
        rewrite_baseline(&report, &baseline_path, force);
    }
}

/// Rewrites the checked-in baseline from this run's report. Deliberately
/// loosening the gate is guarded: when any bench shared with the existing
/// baseline would have its `mean_ns` *raised* by more than
/// [`REGRESSION_RATIO`]×, the rewrite is refused unless `--force` is given
/// — a baseline refresh should record a speedup (or a new bench), not
/// quietly absorb a regression.
fn rewrite_baseline(report: &Report, baseline_path: &str, force: bool) {
    let current = parse_report(&report.to_json(), "bench report");
    if let Ok(old_text) = std::fs::read_to_string(baseline_path) {
        let old = parse_report(&old_text, "baseline");
        let mut raised = Vec::new();
        for base in &old {
            if let Some(now) = current.iter().find(|row| row.name == base.name) {
                let ratio = now.mean_ns / base.mean_ns;
                if ratio > REGRESSION_RATIO {
                    raised.push(format!(
                        "{}: {:.0} ns would raise the baseline {:.0} ns by {ratio:.2}x \
                         (limit {REGRESSION_RATIO}x)",
                        base.name, now.mean_ns, base.mean_ns
                    ));
                }
            }
        }
        if !raised.is_empty() && !force {
            eprintln!("bench-ci: refusing to raise baseline means (pass --force to override):");
            for line in &raised {
                eprintln!("  {line}");
            }
            std::process::exit(1);
        }
    }
    std::fs::write(baseline_path, report.to_json()).unwrap_or_else(|e| {
        eprintln!("bench-ci: cannot write baseline `{baseline_path}`: {e}");
        std::process::exit(1);
    });
    println!(
        "bench-ci: baseline `{baseline_path}` rewritten ({} benchmarks)",
        report.len()
    );
}

/// Sends one request line and drains responses through the terminal line.
fn roundtrip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, line: &str) {
    writeln!(writer, "{line}").expect("send request");
    let mut response = String::new();
    loop {
        response.clear();
        reader.read_line(&mut response).expect("read response");
        if response.contains("\"type\":\"done\"")
            || response.contains("\"type\":\"error\"")
            || response.contains("\"type\":\"bye\"")
        {
            break;
        }
    }
}

/// One row of a `BENCH_*.json` report.
struct BenchRow {
    name: String,
    mean_ns: f64,
    min_ns: f64,
}

/// Parses a `BENCH_*.json` report into named rows.
fn parse_report(text: &str, what: &str) -> Vec<BenchRow> {
    let value = JsonValue::parse(text).unwrap_or_else(|e| {
        eprintln!("bench-ci: unparseable {what}: {e}");
        std::process::exit(1);
    });
    let entries = value.as_array().unwrap_or_else(|| {
        eprintln!("bench-ci: {what} must be a JSON array");
        std::process::exit(1);
    });
    entries
        .iter()
        .filter_map(|entry| {
            Some(BenchRow {
                name: entry.get("name")?.as_str()?.to_string(),
                mean_ns: entry.get("mean_ns")?.as_f64()?,
                min_ns: entry.get("min_ns")?.as_f64()?,
            })
        })
        .collect()
}

/// The perf gate: every bench named in the baseline must exist in the
/// current report with `mean_ns` within [`REGRESSION_RATIO`]× of its
/// baseline value. A transient load spike inflates the mean but not the
/// minimum, so a bench only counts as regressed when `min_ns` breaches the
/// same ratio — a genuine code regression shifts both. Benches the current
/// report adds on top of the baseline pass silently (the baseline is
/// refreshed deliberately, not implicitly).
fn compare_against_baseline(report: &Report, baseline_path: &str) {
    let baseline_text = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
        eprintln!("bench-ci: cannot read baseline `{baseline_path}`: {e}");
        std::process::exit(1);
    });
    let baseline = parse_report(&baseline_text, "baseline");
    let current = parse_report(&report.to_json(), "bench report");
    let mut regressions = Vec::new();
    for base in &baseline {
        let Some(now) = current.iter().find(|row| row.name == base.name) else {
            regressions.push(format!(
                "{}: present in baseline but missing from this run",
                base.name
            ));
            continue;
        };
        let mean_ratio = now.mean_ns / base.mean_ns;
        let min_ratio = now.min_ns / base.min_ns;
        println!(
            "bench-ci: {}: {:.0} ns vs baseline {:.0} ns ({mean_ratio:.2}x mean, {min_ratio:.2}x min)",
            base.name, now.mean_ns, base.mean_ns
        );
        if mean_ratio > REGRESSION_RATIO && min_ratio > REGRESSION_RATIO {
            regressions.push(format!(
                "{}: {:.0} ns is {mean_ratio:.2}x the baseline {:.0} ns \
                 (min {min_ratio:.2}x; limit {REGRESSION_RATIO}x)",
                base.name, now.mean_ns, base.mean_ns
            ));
        }
    }
    if !regressions.is_empty() {
        eprintln!("bench-ci: perf regression gate failed:");
        for regression in &regressions {
            eprintln!("  {regression}");
        }
        std::process::exit(1);
    }
    println!(
        "bench-ci: perf gate passed ({} benches within {REGRESSION_RATIO}x of baseline)",
        baseline.len()
    );
}
