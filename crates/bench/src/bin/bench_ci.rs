//! CI benchmark smoke: times the facility and sweep hot paths with the
//! `cc_bench` harness and writes a machine-readable `BENCH_ci.json`
//! (name, mean ns, min ns, iterations) so every CI run contributes a data
//! point to the perf trajectory.
//!
//! ```text
//! bench-ci                    # writes BENCH_ci.json in the working dir
//! bench-ci out/BENCH_ci.json  # explicit output path
//! ```
//!
//! The per-benchmark budget is deliberately small (~100 ms): the goal is a
//! stable order-of-magnitude record per commit, not Criterion-grade
//! statistics — `cargo bench` remains the place for careful measurement.

use cc_bench::harness::Report;
use cc_bench::Bencher;
use cc_core::experiments;
use cc_report::{dedup_groups, RunContext, Scenario, ScenarioMatrix, SweepSpec};
use std::hint::black_box;
use std::time::Duration;

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "BENCH_ci.json".to_string());
    let mut report = Report::new();
    let bencher = Bencher::group("ci").budget(Duration::from_millis(100));
    let mut bench = |name: &str, f: &mut dyn FnMut()| {
        report.record(format!("ci/{name}"), bencher.bench(name, f));
    };

    // Facility hot path: the scenario-driven simulation behind
    // ext-facility/fig02/fig11, pure and mixed.
    let paper = RunContext::paper();
    let facility = experiments::find("ext-facility").expect("registry");
    bench("facility/paper-run", &mut || {
        black_box(facility.run(&paper));
    });
    let mut ai = Scenario::paper_defaults();
    ai.set("fleet.mix", "web:0.7,ai-training:0.3")
        .expect("valid mix");
    let ai_ctx = RunContext::new(ai);
    bench("facility/mixed-fleet-run", &mut || {
        black_box(facility.run(&ai_ctx));
    });
    bench("facility/prineville-simulate", &mut || {
        black_box(cc_dcsim::prineville::simulate());
    });

    // Sweep hot path: matrix expansion plus the dependency-fingerprint
    // grouping the cached runner performs before any model runs.
    let specs = vec![SweepSpec::parse("fleet.growth=1.0..2.0/0.05").expect("valid spec")];
    bench("sweep/matrix-expand-21-points", &mut || {
        let matrix =
            ScenarioMatrix::new(Scenario::paper_defaults(), specs.clone()).expect("valid matrix");
        black_box(matrix.points().collect::<Vec<_>>());
    });
    let matrix = ScenarioMatrix::new(Scenario::paper_defaults(), specs).expect("valid matrix");
    let points: Vec<_> = matrix.points().collect();
    let scenarios: Vec<&Scenario> = points.iter().map(|p| &p.scenario).collect();
    bench("sweep/fingerprint-dedup-full-suite", &mut || {
        for entry in experiments::entries() {
            black_box(dedup_groups(&scenarios, entry.deps()));
        }
    });

    std::fs::write(&out_path, report.to_json()).unwrap_or_else(|e| {
        eprintln!("bench-ci: cannot write `{out_path}`: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path} ({} benchmarks)", report.len());
}
