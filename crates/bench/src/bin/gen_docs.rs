//! Writes the generated scenario/CLI reference to
//! `docs/scenario-reference.md` (workspace-relative).
//!
//! ```text
//! cargo run --release -p cc-bench --bin gen-docs            # (re)write
//! cargo run --release -p cc-bench --bin gen-docs -- --check # fail on drift
//! ```
//!
//! CI runs the generator and fails when `git diff` reports the checked-in
//! file changed; the `--check` mode offers the same verdict without
//! touching the working tree.

use std::path::PathBuf;

fn reference_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../docs/scenario-reference.md")
}

fn main() {
    let text = cc_bench::docgen::scenario_reference();
    let path = reference_path();
    if std::env::args().any(|a| a == "--check") {
        let on_disk = std::fs::read_to_string(&path).unwrap_or_default();
        if on_disk == text {
            println!("docs/scenario-reference.md is fresh");
        } else {
            eprintln!(
                "docs/scenario-reference.md is stale; run \
                 `cargo run --release -p cc-bench --bin gen-docs`"
            );
            std::process::exit(1);
        }
        return;
    }
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .unwrap_or_else(|e| panic!("cannot create `{}`: {e}", parent.display()));
    }
    std::fs::write(&path, text)
        .unwrap_or_else(|e| panic!("cannot write `{}`: {e}", path.display()));
    println!("wrote {}", path.display());
}
