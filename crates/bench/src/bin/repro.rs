//! Regenerates the paper's figures and tables from the models, under any
//! scenario — or a whole matrix of scenarios.
//!
//! ```text
//! repro fig10                                  # paper scenario, text output
//! repro --scenario green.toml fig10            # custom scenario file
//! repro --set grid.intensity=50 fig10          # one-off overrides
//! repro --tag mobile --json                    # tag-filtered, JSON to stdout
//! repro --jobs 8 --json --out out/             # full suite, in parallel,
//!                                              # one artifact file per key
//! repro --experiment fig10 \
//!       --sweep grid.intensity=10..800/100 \
//!       --jobs 4 --json --out out/             # scenario sweep: one artifact
//!                                              # per grid point, plus a
//!                                              # cross-scenario comparison
//! repro serve --addr 127.0.0.1:7878            # resident sweep-as-a-service
//!                                              # daemon (NDJSON over TCP)
//! repro client --addr 127.0.0.1:7878 \
//!       --experiment fig10 \
//!       --sweep grid.intensity=100,300 \
//!       --out out/                             # drive a daemon from the CLI
//! ```
//!
//! With `--sweep`, the runner expands the cartesian product of all sweep
//! specs over the base scenario and schedules the full (scenario-point ×
//! experiment) grid on a streaming work-queue: workers pull jobs, artifacts
//! are written to `--out` the moment they complete (a small reorder buffer
//! keeps stdout in grid order), and each point's summary scalar feeds the
//! comparison report emitted at the end.
//!
//! All execution routes through [`cc_engine`]: the work-queue dedupes jobs
//! through each experiment's declared scenario-dependency set, so
//! (experiment × point) jobs whose dependency fingerprints agree share one
//! model run, scenario-independent experiments execute once per sweep and
//! partially-dependent ones skip axes they ignore. `--no-cache` restores
//! the one-run-per-job behavior, `--explain` prints the dedup plan without
//! running anything, and a sweep's footer reports the per-experiment
//! run/reuse counts. `repro serve` keeps the same engine resident behind a
//! TCP listener, so repeated and overlapping requests are answered from its
//! sharded fingerprint→artifact cache.

use cc_core::experiments::{self, Entry, Tag};
use cc_engine::artifact::{
    artifact_file_name, render_artifact, render_comparisons, render_mc_comparisons,
};
use cc_engine::grid::{build_comparisons, disk_footer_lines, explain_lines, footer_lines};
use cc_engine::{DiskCache, Engine, Format, GridConfig, GridJob, McConfig, Server};
use cc_report::{
    DistBinding, JsonValue, MonteCarloMatrix, RunContext, Scenario, ScenarioMatrix, ScenarioPoint,
    SweepSpec,
};
use std::io::{BufRead, Write as _};
use std::sync::Arc;

fn print_usage() {
    eprintln!("usage: repro [options] [<experiment-key>...]");
    eprintln!(
        "       repro serve --addr <host:port> [--jobs <n>] [--cache-capacity <n>] \
         [--cache-dir <dir>] [--queue-depth <n>] [--log <file>]"
    );
    eprintln!("       repro client --addr <host:port> [selection options] [--out <dir>]");
    eprintln!("       repro client --addr <host:port> --stats | --hello | --shutdown");
    eprintln!();
    eprintln!("options:");
    eprintln!("  --list               list selected experiment keys and exit");
    eprintln!("  --tag <tag>          filter experiments by tag (repeatable, AND-ed)");
    eprintln!("  --experiment <key>   select an experiment (repeatable; same as a");
    eprintln!("                       positional key)");
    eprintln!("  --scenario <file>    load scenario parameters from a TOML file");
    eprintln!("  --set <key>=<value>  override one scenario field (repeatable),");
    eprintln!("                       e.g. --set grid.intensity=50 --set device.lifetime=5");
    eprintln!("                       a `~` binds a distribution instead (Monte-Carlo):");
    eprintln!("                         --set 'fab.node_nm ~ triangular(5,7,10)'");
    eprintln!("                         --set 'fleet.growth ~ uniform(1.2,1.4)'");
    eprintln!("                         --set 'grid.intensity ~ normal(350,40)'");
    eprintln!("  --sweep <key>=<spec> sweep one scenario field over many values");
    eprintln!("                       (repeatable; specs multiply into a matrix):");
    eprintln!("                         range  --sweep grid.intensity=10..800/100");
    eprintln!("                         list   --sweep device.lifetime=2,3,4");
    eprintln!("                         named  --sweep grid.source=@sources");
    eprintln!("                       (a `~` spec binds a distribution, like --set)");
    eprintln!("  --samples <n>        draw n Monte-Carlo samples (max 1000000) over the");
    eprintln!("                       bound distributions and report streaming banded");
    eprintln!("                       statistics (mean, stddev, p05/p50/p95, 90% CI)");
    eprintln!("  --seed <n>           RNG seed for --samples (default 0); the same seed");
    eprintln!("                       is byte-reproducible at any --jobs value");
    eprintln!("  --markdown | --csv | --json   output format (default: text)");
    eprintln!("  --out <dir>          write one artifact file per experiment (and per");
    eprintln!("                       sweep point) into <dir>, streamed as they finish");
    eprintln!("  --jobs <n>           run the (point x experiment) grid on n worker");
    eprintln!("                       threads (default 1)");
    eprintln!("  --no-cache           run every (experiment x point) job even when the");
    eprintln!("                       experiment's declared scenario dependencies say");
    eprintln!("                       the output is identical across points");
    eprintln!("  --cache-dir <dir>    persist computed artifacts under <dir>, keyed on");
    eprintln!("                       (code fingerprint x dependency fingerprint); a");
    eprintln!("                       later run recomputes only the work groups whose");
    eprintln!("                       declared scenario fields changed");
    eprintln!("  --explain            print each experiment's scenario dependencies and");
    eprintln!("                       the sweep's run/reuse plan, without running");
    eprintln!();
    eprintln!("serve mode: a resident daemon speaking newline-delimited JSON over TCP");
    eprintln!("  (protocol v2: request ids multiplex many in-flight requests per");
    eprintln!("  connection; `batch` submits a whole sweep in one frame; a full work");
    eprintln!("  queue answers a structured `overloaded` error).");
    eprintln!("  every connection shares one engine, so artifacts computed for one");
    eprintln!("  client are cache hits for every other. `--jobs` caps per-request");
    eprintln!("  parallelism, `--queue-depth` caps in-flight multiplexed requests per");
    eprintln!("  connection; bind port 0 to let the OS pick (the chosen address is");
    eprintln!("  printed as `listening on <addr>`). the operational log goes to stderr");
    eprintln!("  by default, or to `--log <file>` — never into the working directory.");
    eprintln!();
    eprintln!("client mode: exit code 0 on success; a server rejection maps the error");
    eprintln!("  category to a stable exit code (malformed-request=10,");
    eprintln!("  unknown-experiment=11, unknown-tag=12, unknown-field=13,");
    eprintln!("  invalid-value=14, invalid-scenario=15, invalid-sweep=16,");
    eprintln!("  overloaded=17); other client failures exit 2.");
    eprintln!();
    let tags: Vec<&str> = Tag::ALL.iter().map(|t| t.name()).collect();
    eprintln!("tags: {}", tags.join(", "));
    eprintln!();
    eprintln!("keys:");
    for e in experiments::entries() {
        eprintln!("  {:10}  {} — {}", e.key, e.title(), e.description());
    }
}

/// Prints a line to stdout, exiting quietly when the reader has gone away
/// (`repro --list | head` must not panic on the broken pipe).
fn emit(line: impl std::fmt::Display) {
    let stdout = std::io::stdout();
    if writeln!(stdout.lock(), "{line}").is_err() {
        std::process::exit(0);
    }
}

fn fail(message: &str) -> ! {
    eprintln!("repro: {message}");
    eprintln!("(run `repro --help` for usage)");
    std::process::exit(2);
}

struct Options {
    list: bool,
    explain: bool,
    no_cache: bool,
    tags: Vec<Tag>,
    scenario: Scenario,
    sweeps: Vec<SweepSpec>,
    dists: Vec<DistBinding>,
    samples: Option<usize>,
    seed: u64,
    format: Format,
    out_dir: Option<std::path::PathBuf>,
    cache_dir: Option<std::path::PathBuf>,
    jobs: usize,
    keys: Vec<String>,
}

fn value_of(flag: &str, args: &mut dyn Iterator<Item = String>) -> String {
    args.next()
        .unwrap_or_else(|| fail(&format!("{flag} requires a value")))
}

fn parse_args(args: impl Iterator<Item = String>) -> Options {
    let mut args = args.peekable();
    let mut list = false;
    let mut explain = false;
    let mut no_cache = false;
    let mut tags = Vec::new();
    let mut scenario_file: Option<String> = None;
    let mut sets: Vec<(String, String)> = Vec::new();
    let mut sweeps = Vec::new();
    let mut dists: Vec<DistBinding> = Vec::new();
    let mut samples: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut format = Format::Text;
    let mut out_dir = None;
    let mut cache_dir = None;
    let mut jobs = 1usize;
    let mut keys = Vec::new();

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            "--list" => list = true,
            "--explain" => explain = true,
            "--no-cache" => no_cache = true,
            "--tag" => {
                let name = value_of("--tag", &mut args);
                match Tag::parse(&name) {
                    Some(tag) => tags.push(tag),
                    None => fail(&format!("unknown tag `{name}`")),
                }
            }
            "--experiment" => keys.push(value_of("--experiment", &mut args)),
            "--scenario" => scenario_file = Some(value_of("--scenario", &mut args)),
            // A `~` in a --set/--sweep value binds a distribution instead of
            // a scalar or an enumerated sweep — the Monte-Carlo front door.
            // Checked before the `=` split: `fab.node_nm ~ triangular(5,7,10)`
            // has no `=` at all.
            "--set" => {
                let pair = value_of("--set", &mut args);
                if pair.contains('~') {
                    match DistBinding::parse(&pair) {
                        Ok(binding) => dists.push(binding),
                        Err(e) => fail(&e.to_string()),
                    }
                    continue;
                }
                let Some((key, value)) = pair.split_once('=') else {
                    fail(&format!("--set expects key=value, got `{pair}`"));
                };
                sets.push((key.trim().to_string(), value.trim().to_string()));
            }
            "--sweep" => {
                let spec = value_of("--sweep", &mut args);
                if spec.contains('~') {
                    match DistBinding::parse(&spec) {
                        Ok(binding) => dists.push(binding),
                        Err(e) => fail(&e.to_string()),
                    }
                    continue;
                }
                match SweepSpec::parse(&spec) {
                    Ok(spec) => sweeps.push(spec),
                    Err(e) => fail(&e.to_string()),
                }
            }
            "--samples" => {
                let n = value_of("--samples", &mut args);
                samples = Some(n.parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
                    fail(&format!("--samples expects a positive integer, got `{n}`"))
                }));
            }
            "--seed" => {
                let n = value_of("--seed", &mut args);
                seed = Some(n.parse().unwrap_or_else(|_| {
                    fail(&format!("--seed expects a non-negative integer, got `{n}`"))
                }));
            }
            "--markdown" => format = Format::Markdown,
            "--csv" => format = Format::Csv,
            "--json" => format = Format::Json,
            "--out" => out_dir = Some(std::path::PathBuf::from(value_of("--out", &mut args))),
            "--cache-dir" => {
                cache_dir = Some(std::path::PathBuf::from(value_of("--cache-dir", &mut args)));
            }
            "--jobs" => {
                let n = value_of("--jobs", &mut args);
                jobs = n.parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
                    fail(&format!("--jobs expects a positive integer, got `{n}`"))
                });
            }
            // `cargo repro -- fig10` forwards the `--` separator; accept it.
            "--" => {}
            flag if flag.starts_with('-') => fail(&format!("unknown option `{flag}`")),
            key => keys.push(key.to_string()),
        }
    }

    // Assemble the base scenario: file (or paper defaults) first, then --set
    // overrides strictly in command-line order. `Scenario::set` resolves
    // `grid.source` to its Table II intensity itself, so a later
    // `--set grid.intensity=…` still wins — overrides never clobber each
    // other out of order.
    let mut scenario = match &scenario_file {
        None => Scenario::paper_defaults(),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(&format!("cannot read scenario `{path}`: {e}")));
            Scenario::from_toml(&text).unwrap_or_else(|e| fail(&format!("scenario `{path}`: {e}")))
        }
    };
    for (key, value) in &sets {
        scenario
            .set(key, value)
            .unwrap_or_else(|e| fail(&e.to_string()));
    }
    scenario.validate().unwrap_or_else(|e| fail(&e.to_string()));

    // Monte-Carlo flags travel together: distributions need a sample
    // count, a sample count needs distributions, and a sampled axis has no
    // enumerable grid to sweep or explain.
    if !dists.is_empty() {
        if samples.is_none() {
            fail("distribution bindings (`path ~ dist(...)`) require --samples <n>");
        }
        if !sweeps.is_empty() {
            fail("--sweep value sweeps cannot be combined with distribution sampling");
        }
        if explain {
            fail("--explain does not apply to Monte-Carlo runs");
        }
    } else {
        if samples.is_some() {
            fail("--samples requires at least one `path ~ dist(...)` binding");
        }
        if seed.is_some() {
            fail("--seed requires --samples");
        }
    }

    Options {
        list,
        explain,
        no_cache,
        tags,
        scenario,
        sweeps,
        dists,
        samples,
        seed: seed.unwrap_or(0),
        format,
        out_dir,
        cache_dir,
        jobs,
        keys,
    }
}

/// Opens the persistent cache at `dir`, exiting with a diagnostic when the
/// directory cannot be created.
fn open_disk_cache(dir: &std::path::Path) -> DiskCache {
    DiskCache::open(dir)
        .unwrap_or_else(|e| fail(&format!("cannot open cache dir `{}`: {e}", dir.display())))
}

fn select(options: &Options) -> Vec<&'static Entry> {
    if options.keys.is_empty() {
        return experiments::with_tags(&options.tags);
    }
    let mut selected = Vec::new();
    for key in &options.keys {
        match experiments::find_entry(key) {
            Some(entry) => {
                // An explicitly named key that fails the tag filter is a
                // contradiction in the request, not something to drop
                // silently.
                if let Some(&missing) = options.tags.iter().find(|&&t| !entry.has_tag(t)) {
                    fail(&format!(
                        "experiment `{key}` does not carry tag `{missing}`"
                    ));
                }
                selected.push(entry);
            }
            None => fail(&format!("unknown experiment `{key}`")),
        }
    }
    selected
}

/// `repro serve`: bind the listener, print the chosen address (port 0 is
/// resolved by the OS) and serve until a client sends `{"op":"shutdown"}`.
fn serve_main(args: &[String]) {
    let mut args = args.iter().cloned();
    let mut addr: Option<String> = None;
    let mut jobs = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let mut capacity = cc_engine::DEFAULT_CACHE_CAPACITY;
    let mut cache_dir: Option<std::path::PathBuf> = None;
    let mut queue_depth = cc_engine::server::DEFAULT_QUEUE_DEPTH;
    let mut log_file: Option<std::path::PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = Some(value_of("--addr", &mut args)),
            "--jobs" => {
                let n = value_of("--jobs", &mut args);
                jobs = n.parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
                    fail(&format!("--jobs expects a positive integer, got `{n}`"))
                });
            }
            "--cache-capacity" => {
                let n = value_of("--cache-capacity", &mut args);
                capacity = n.parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
                    fail(&format!(
                        "--cache-capacity expects a positive integer, got `{n}`"
                    ))
                });
            }
            "--cache-dir" => {
                cache_dir = Some(std::path::PathBuf::from(value_of("--cache-dir", &mut args)));
            }
            // Queue depth 0 is allowed: a drill server that rejects every
            // multiplexed request with `overloaded`.
            "--queue-depth" => {
                let n = value_of("--queue-depth", &mut args);
                queue_depth = n.parse().ok().unwrap_or_else(|| {
                    fail(&format!(
                        "--queue-depth expects a non-negative integer, got `{n}`"
                    ))
                });
            }
            "--log" => log_file = Some(std::path::PathBuf::from(value_of("--log", &mut args))),
            flag => fail(&format!("unknown serve option `{flag}`")),
        }
    }
    let addr = addr.unwrap_or_else(|| fail("serve requires --addr <host:port>"));
    let mut engine = Engine::with_capacity(capacity);
    if let Some(dir) = &cache_dir {
        // The daemon and the one-shot CLI share the same on-disk format, so
        // artifacts computed by either warm the other.
        engine = engine.with_disk(open_disk_cache(dir));
    }
    let engine = Arc::new(engine);
    // The operational log defaults to stderr — a daemon must not drop a
    // `serve.log` into whatever directory it happened to start from.
    let log = match &log_file {
        None => cc_engine::ServeLog::to_stderr(),
        Some(path) => cc_engine::ServeLog::to_file(path)
            .unwrap_or_else(|e| fail(&format!("cannot open log `{}`: {e}", path.display()))),
    };
    let server = Server::bind(&addr, engine, jobs)
        .unwrap_or_else(|e| fail(&format!("cannot bind `{addr}`: {e}")))
        .queue_depth(queue_depth)
        .log_to(log);
    let local = server
        .local_addr()
        .unwrap_or_else(|e| fail(&format!("cannot read bound address: {e}")));
    emit(format_args!("listening on {local}"));
    server
        .run()
        .unwrap_or_else(|e| fail(&format!("serve failed: {e}")));
}

/// Maps a server error category onto a stable exit code, so scripted
/// callers (and the stress suite) can tell `overloaded` from
/// `invalid-sweep` without parsing stderr. Unknown categories fall back to
/// the generic failure code 2.
fn category_exit_code(category: &str) -> i32 {
    match category {
        "malformed-request" => 10,
        "unknown-experiment" => 11,
        "unknown-tag" => 12,
        "unknown-field" => 13,
        "invalid-value" => 14,
        "invalid-scenario" => 15,
        "invalid-sweep" => 16,
        "overloaded" => 17,
        _ => 2,
    }
}

/// `repro client`: build one protocol request from CLI-shaped flags, send
/// it, and stream the responses — artifacts to `--out` files (byte-identical
/// to one-shot `repro --json --out` artifacts) or raw to stdout. A server
/// rejection exits with the category's [`category_exit_code`].
fn client_main(args: &[String]) {
    let mut args = args.iter().cloned();
    let mut addr: Option<String> = None;
    let mut keys: Vec<String> = Vec::new();
    let mut tags: Vec<String> = Vec::new();
    let mut sets: Vec<(String, String)> = Vec::new();
    let mut sweeps: Vec<String> = Vec::new();
    let mut dists: Vec<String> = Vec::new();
    let mut samples: Option<usize> = None;
    let mut seed: Option<u64> = None;
    let mut jobs: Option<usize> = None;
    let mut no_cache = false;
    let mut out_dir: Option<std::path::PathBuf> = None;
    let mut stats = false;
    let mut hello = false;
    let mut shutdown = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = Some(value_of("--addr", &mut args)),
            "--hello" => hello = true,
            "--experiment" => keys.push(value_of("--experiment", &mut args)),
            "--tag" => tags.push(value_of("--tag", &mut args)),
            // As in one-shot mode, a `~` in --set/--sweep binds a
            // distribution; the text travels to the server verbatim, which
            // parses it with the same DistBinding grammar.
            "--set" => {
                let pair = value_of("--set", &mut args);
                if pair.contains('~') {
                    dists.push(pair);
                    continue;
                }
                let Some((key, value)) = pair.split_once('=') else {
                    fail(&format!("--set expects key=value, got `{pair}`"));
                };
                sets.push((key.trim().to_string(), value.trim().to_string()));
            }
            "--sweep" => {
                let spec = value_of("--sweep", &mut args);
                if spec.contains('~') {
                    dists.push(spec);
                    continue;
                }
                sweeps.push(spec);
            }
            "--samples" => {
                let n = value_of("--samples", &mut args);
                samples = Some(n.parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
                    fail(&format!("--samples expects a positive integer, got `{n}`"))
                }));
            }
            "--seed" => {
                let n = value_of("--seed", &mut args);
                seed = Some(n.parse().unwrap_or_else(|_| {
                    fail(&format!("--seed expects a non-negative integer, got `{n}`"))
                }));
            }
            "--jobs" => {
                let n = value_of("--jobs", &mut args);
                jobs = Some(n.parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
                    fail(&format!("--jobs expects a positive integer, got `{n}`"))
                }));
            }
            "--no-cache" => no_cache = true,
            "--out" => out_dir = Some(std::path::PathBuf::from(value_of("--out", &mut args))),
            "--stats" => stats = true,
            "--shutdown" => shutdown = true,
            flag => fail(&format!("unknown client option `{flag}`")),
        }
    }
    let addr = addr.unwrap_or_else(|| fail("client requires --addr <host:port>"));

    let request = if hello {
        JsonValue::object([("op", JsonValue::from("hello"))])
    } else if stats {
        JsonValue::object([("op", JsonValue::from("stats"))])
    } else if shutdown {
        JsonValue::object([("op", JsonValue::from("shutdown"))])
    } else {
        let mut fields = vec![("op", JsonValue::from("run"))];
        if !keys.is_empty() {
            fields.push((
                "experiments",
                JsonValue::array(keys.iter().map(|k| JsonValue::from(k.as_str()))),
            ));
        }
        if !tags.is_empty() {
            fields.push((
                "tags",
                JsonValue::array(tags.iter().map(|t| JsonValue::from(t.as_str()))),
            ));
        }
        if !sets.is_empty() {
            fields.push((
                "set",
                JsonValue::Object(
                    sets.iter()
                        .map(|(k, v)| (k.clone(), JsonValue::from(v.as_str())))
                        .collect(),
                ),
            ));
        }
        if !sweeps.is_empty() {
            fields.push((
                "sweep",
                JsonValue::array(sweeps.iter().map(|s| JsonValue::from(s.as_str()))),
            ));
        }
        if !dists.is_empty() {
            fields.push((
                "dists",
                JsonValue::array(dists.iter().map(|d| JsonValue::from(d.as_str()))),
            ));
        }
        if let Some(samples) = samples {
            fields.push(("samples", JsonValue::Integer(samples as u64)));
        }
        if let Some(seed) = seed {
            fields.push(("seed", JsonValue::Integer(seed)));
        }
        if let Some(jobs) = jobs {
            fields.push(("jobs", JsonValue::Integer(jobs as u64)));
        }
        if no_cache {
            fields.push(("no_cache", JsonValue::Bool(true)));
        }
        JsonValue::object(fields)
    };

    if let Some(dir) = &out_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| fail(&format!("cannot create `{}`: {e}", dir.display())));
    }

    let stream = std::net::TcpStream::connect(&addr)
        .unwrap_or_else(|e| fail(&format!("cannot connect to `{addr}`: {e}")));
    let _ = stream.set_nodelay(true);
    let mut writer = stream
        .try_clone()
        .unwrap_or_else(|e| fail(&format!("cannot clone connection: {e}")));
    writeln!(writer, "{request}").unwrap_or_else(|e| fail(&format!("cannot send request: {e}")));

    for line in std::io::BufReader::new(stream).lines() {
        let line = line.unwrap_or_else(|e| fail(&format!("connection lost: {e}")));
        let response =
            JsonValue::parse(&line).unwrap_or_else(|e| fail(&format!("unparseable response: {e}")));
        match response.get("type").and_then(JsonValue::as_str) {
            Some("artifact") | Some("comparison") => {
                let payload = response
                    .get("artifact")
                    .or_else(|| response.get("comparison"))
                    .unwrap_or_else(|| fail("response is missing its payload"));
                match &out_dir {
                    // Re-rendering the parsed payload reproduces the server's
                    // bytes exactly (the JSON renderer is round-trip stable),
                    // which in turn match one-shot `repro --json --out` files.
                    Some(dir) => {
                        let name = response
                            .get("name")
                            .and_then(JsonValue::as_str)
                            .unwrap_or_else(|| fail("response is missing its artifact name"));
                        let path = dir.join(name);
                        std::fs::write(&path, payload.render()).unwrap_or_else(|e| {
                            fail(&format!("cannot write `{}`: {e}", path.display()))
                        });
                        emit(format_args!("wrote {}", path.display()));
                    }
                    None => emit(payload.render()),
                }
            }
            Some("done") | Some("stats") | Some("hello") => {
                emit(line);
                return;
            }
            Some("bye") => return,
            Some("error") => {
                let category = response
                    .get("error")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("error");
                let message = response
                    .get("message")
                    .and_then(JsonValue::as_str)
                    .unwrap_or("(no message)");
                eprintln!("repro: server rejected the request: {category}: {message}");
                if let Some(ms) = response.get("retry_after_ms").and_then(JsonValue::as_u64) {
                    eprintln!("repro: server advises retrying after {ms} ms");
                }
                std::process::exit(category_exit_code(category));
            }
            _ => fail(&format!("unexpected response `{line}`")),
        }
    }
    fail("server closed the connection before finishing the response");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => return serve_main(&args[1..]),
        Some("client") => return client_main(&args[1..]),
        _ => {}
    }
    let options = parse_args(args.into_iter());
    let selected = select(&options);

    if options.list {
        if options.format == Format::Json {
            let index = JsonValue::array(selected.iter().map(|e| {
                JsonValue::object([
                    ("key", JsonValue::from(e.key)),
                    ("title", JsonValue::from(e.title())),
                    ("description", JsonValue::from(e.description())),
                    (
                        "tags",
                        JsonValue::array(e.tags.iter().map(|t| JsonValue::from(t.name()))),
                    ),
                ])
            }));
            emit(index);
        } else {
            for entry in selected {
                emit(entry.key);
            }
        }
        return;
    }

    if selected.is_empty() {
        fail("no experiments match the given keys/tags");
    }

    // Monte-Carlo: distribution bindings sample the scenario instead of
    // enumerating it. One streaming run, one banded comparison report.
    if let Some(samples) = options.samples {
        let mc = MonteCarloMatrix::new(
            options.scenario.clone(),
            options.dists.clone(),
            samples,
            options.seed,
        )
        .unwrap_or_else(|e| fail(&e.to_string()));
        if let Some(dir) = &options.out_dir {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| fail(&format!("cannot create `{}`: {e}", dir.display())));
        }
        let mut engine = Engine::new();
        if let Some(dir) = &options.cache_dir {
            engine = engine.with_disk(open_disk_cache(dir));
        }
        engine.count_request();
        let config = McConfig {
            jobs: options.jobs,
            no_cache: options.no_cache,
        };
        let result = engine
            .run_mc(&selected, &mc, &config)
            .unwrap_or_else(|e| fail(&e.to_string()));
        let report = render_mc_comparisons(&result.comparisons, &mc, options.format);
        match &options.out_dir {
            None => emit(&report),
            Some(dir) => {
                let path = dir.join(format!("mc-comparison.{}", options.format.extension()));
                std::fs::write(&path, &report)
                    .unwrap_or_else(|e| fail(&format!("cannot write `{}`: {e}", path.display())));
                emit(format_args!("wrote {}", path.display()));
            }
        }
        // Same footer conventions as a sweep: run/reuse counts off stdout
        // in JSON mode, suppressed entirely with --no-cache.
        if !options.no_cache {
            let to_stderr = options.format == Format::Json;
            let mut footer = footer_lines(&selected, samples, &result.run_counts);
            if options.cache_dir.is_some() {
                footer.extend(disk_footer_lines(
                    &selected,
                    &result.disk_runs,
                    &result.disk_hits,
                ));
            }
            for line in footer {
                if to_stderr {
                    eprintln!("{line}");
                } else {
                    emit(line);
                }
            }
        }
        return;
    }

    let matrix = ScenarioMatrix::new(options.scenario.clone(), options.sweeps.clone())
        .unwrap_or_else(|e| fail(&e.to_string()));
    let points: Vec<ScenarioPoint> = matrix.points().collect();
    let contexts: Vec<RunContext> = points
        .iter()
        .map(|p| {
            RunContext::try_from_overlay(p.overlay.clone()).unwrap_or_else(|e| fail(&e.to_string()))
        })
        .collect();

    if options.explain {
        for line in explain_lines(&selected, &points, options.no_cache) {
            emit(line);
        }
        return;
    }

    if let Some(dir) = &options.out_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| fail(&format!("cannot create `{}`: {e}", dir.display())));
    }

    // A throwaway engine: the CLI is one request against a cold in-memory
    // cache (possibly warmed lazily from `--cache-dir`). The run/reuse
    // accounting comes from the dependency plan (group counts), so the
    // footer is identical to what a resident engine would print.
    let mut engine = Engine::new();
    if let Some(dir) = &options.cache_dir {
        engine = engine.with_disk(open_disk_cache(dir));
    }
    engine.count_request();
    let config = GridConfig {
        jobs: options.jobs,
        no_cache: options.no_cache,
        format: options.format,
    };
    // Renders one artifact on the worker thread, streaming it to `--out`
    // the moment the job finishes (not after the whole grid drains); the
    // returned lines reach stdout in grid order via the engine's sequencer.
    let render = |job: &GridJob<'_>| {
        let artifact = render_artifact(
            job.entry,
            job.experiment,
            job.output,
            job.context,
            job.sweeping.then_some(job.point),
            job.format,
        );
        match &options.out_dir {
            None => vec![artifact],
            Some(dir) => {
                let name = artifact_file_name(
                    job.entry.key,
                    job.sweeping.then_some(job.point),
                    job.format,
                );
                let path = dir.join(name);
                std::fs::write(&path, &artifact)
                    .unwrap_or_else(|e| fail(&format!("cannot write `{}`: {e}", path.display())));
                vec![format!("wrote {}", path.display())]
            }
        }
    };
    let result = engine.run_grid(&selected, &points, &contexts, &config, render, |line| {
        emit(line);
    });

    // With an active sweep, diff every experiment's summary scalar across the
    // grid points into the comparison report.
    if matrix.is_sweep() {
        let comparisons = build_comparisons(&selected, &points, &result.scalars, &matrix)
            .unwrap_or_else(|e| fail(&e.to_string()));
        let report = render_comparisons(&comparisons, &matrix, options.format);
        match &options.out_dir {
            None => emit(&report),
            Some(dir) => {
                let path = dir.join(format!("comparison.{}", options.format.extension()));
                std::fs::write(&path, &report)
                    .unwrap_or_else(|e| fail(&format!("cannot write `{}`: {e}", path.display())));
                emit(format_args!("wrote {}", path.display()));
            }
        }

        // Cache footer: how the dependency dedup compressed the grid. Not
        // part of the comparison artifact itself — a cached and an uncached
        // run must produce byte-identical comparison files — and kept off
        // stdout in *every* JSON mode, so JSON consumers can parse stdout
        // whether or not artifacts went to `--out`.
        if !options.no_cache {
            let to_stderr = options.format == Format::Json;
            let mut footer = footer_lines(&selected, points.len(), &result.run_counts);
            // With a persistent cache, also report what this process really
            // recomputed versus what the warm cache dir answered — the
            // incremental-evaluation footprint across restarts.
            if options.cache_dir.is_some() {
                footer.extend(disk_footer_lines(
                    &selected,
                    &result.disk_runs,
                    &result.disk_hits,
                ));
            }
            for line in footer {
                if to_stderr {
                    eprintln!("{line}");
                } else {
                    emit(line);
                }
            }
        }
    }
}
