//! Regenerates the paper's figures and tables from the models.

use cc_core::experiments;

fn print_usage() {
    eprintln!("usage: repro [--list | <experiment-key>...]");
    eprintln!("keys:");
    for e in experiments::all() {
        eprintln!("  {:10}  {} — {}", e.id().key(), e.id(), e.description());
    }
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Markdown,
    Csv,
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    if args.iter().any(|a| a == "--list") {
        for e in experiments::all() {
            println!("{}", e.id().key());
        }
        return;
    }
    let format = if args.iter().any(|a| a == "--markdown") {
        Format::Markdown
    } else if args.iter().any(|a| a == "--csv") {
        Format::Csv
    } else {
        Format::Text
    };
    args.retain(|a| a != "--markdown" && a != "--csv");

    let to_run: Vec<_> = if args.is_empty() {
        experiments::all()
    } else {
        let mut selected = Vec::new();
        for key in &args {
            match experiments::find(key) {
                Some(e) => selected.push(e),
                None => {
                    eprintln!("unknown experiment `{key}`");
                    print_usage();
                    std::process::exit(2);
                }
            }
        }
        selected
    };

    for e in to_run {
        let out = e.run();
        match format {
            Format::Text => {
                println!("==============================================================");
                println!("{} — {}", e.id(), e.description());
                println!("==============================================================");
                println!("{}", out.render());
            }
            Format::Markdown => {
                println!("## {} — {}\n", e.id(), e.description());
                println!("{}", out.render_markdown());
            }
            Format::Csv => {
                println!("# {} — {}", e.id(), e.description());
                println!("{}", out.render_csv());
            }
        }
    }
}
