//! Regenerates the paper's figures and tables from the models, under any
//! scenario — or a whole matrix of scenarios.
//!
//! ```text
//! repro fig10                                  # paper scenario, text output
//! repro --scenario green.toml fig10            # custom scenario file
//! repro --set grid.intensity=50 fig10          # one-off overrides
//! repro --tag mobile --json                    # tag-filtered, JSON to stdout
//! repro --jobs 8 --json --out out/             # full suite, in parallel,
//!                                              # one artifact file per key
//! repro --experiment fig10 \
//!       --sweep grid.intensity=10..800/100 \
//!       --jobs 4 --json --out out/             # scenario sweep: one artifact
//!                                              # per grid point, plus a
//!                                              # cross-scenario comparison
//! ```
//!
//! With `--sweep`, the runner expands the cartesian product of all sweep
//! specs over the base scenario and schedules the full (scenario-point ×
//! experiment) grid on a streaming work-queue: workers pull jobs, artifacts
//! are written to `--out` the moment they complete (a small reorder buffer
//! keeps stdout in grid order), and each point's summary scalar feeds the
//! comparison report emitted at the end.
//!
//! The work-queue dedupes jobs through each experiment's declared
//! scenario-dependency set: (experiment × point) jobs whose dependency
//! fingerprints agree share one model run, so scenario-independent
//! experiments execute once per sweep and partially-dependent ones skip
//! axes they ignore. `--no-cache` restores the one-run-per-job behavior,
//! `--explain` prints the dedup plan without running anything, and a sweep's
//! footer reports the per-experiment run/reuse counts.

use cc_core::experiments::{self, Entry, Tag};
use cc_report::{
    dedup_groups, Comparison, Experiment, ExperimentOutput, JsonValue, RunContext, Scalar,
    Scenario, ScenarioMatrix, ScenarioPoint, SweepSpec,
};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

fn print_usage() {
    eprintln!("usage: repro [options] [<experiment-key>...]");
    eprintln!();
    eprintln!("options:");
    eprintln!("  --list               list selected experiment keys and exit");
    eprintln!("  --tag <tag>          filter experiments by tag (repeatable, AND-ed)");
    eprintln!("  --experiment <key>   select an experiment (repeatable; same as a");
    eprintln!("                       positional key)");
    eprintln!("  --scenario <file>    load scenario parameters from a TOML file");
    eprintln!("  --set <key>=<value>  override one scenario field (repeatable),");
    eprintln!("                       e.g. --set grid.intensity=50 --set device.lifetime=5");
    eprintln!("  --sweep <key>=<spec> sweep one scenario field over many values");
    eprintln!("                       (repeatable; specs multiply into a matrix):");
    eprintln!("                         range  --sweep grid.intensity=10..800/100");
    eprintln!("                         list   --sweep device.lifetime=2,3,4");
    eprintln!("                         named  --sweep grid.source=@sources");
    eprintln!("  --markdown | --csv | --json   output format (default: text)");
    eprintln!("  --out <dir>          write one artifact file per experiment (and per");
    eprintln!("                       sweep point) into <dir>, streamed as they finish");
    eprintln!("  --jobs <n>           run the (point x experiment) grid on n worker");
    eprintln!("                       threads (default 1)");
    eprintln!("  --no-cache           run every (experiment x point) job even when the");
    eprintln!("                       experiment's declared scenario dependencies say");
    eprintln!("                       the output is identical across points");
    eprintln!("  --explain            print each experiment's scenario dependencies and");
    eprintln!("                       the sweep's run/reuse plan, without running");
    eprintln!();
    let tags: Vec<&str> = Tag::ALL.iter().map(|t| t.name()).collect();
    eprintln!("tags: {}", tags.join(", "));
    eprintln!();
    eprintln!("keys:");
    for e in experiments::entries() {
        eprintln!("  {:10}  {} — {}", e.key, e.title(), e.description());
    }
}

/// Prints a line to stdout, exiting quietly when the reader has gone away
/// (`repro --list | head` must not panic on the broken pipe).
fn emit(line: impl std::fmt::Display) {
    let stdout = std::io::stdout();
    if writeln!(stdout.lock(), "{line}").is_err() {
        std::process::exit(0);
    }
}

fn fail(message: &str) -> ! {
    eprintln!("repro: {message}");
    eprintln!("(run `repro --help` for usage)");
    std::process::exit(2);
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Markdown,
    Csv,
    Json,
}

impl Format {
    fn extension(self) -> &'static str {
        match self {
            Self::Text => "txt",
            Self::Markdown => "md",
            Self::Csv => "csv",
            Self::Json => "json",
        }
    }
}

struct Options {
    list: bool,
    explain: bool,
    no_cache: bool,
    tags: Vec<Tag>,
    scenario: Scenario,
    sweeps: Vec<SweepSpec>,
    format: Format,
    out_dir: Option<std::path::PathBuf>,
    jobs: usize,
    keys: Vec<String>,
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1).peekable();
    let mut list = false;
    let mut explain = false;
    let mut no_cache = false;
    let mut tags = Vec::new();
    let mut scenario_file: Option<String> = None;
    let mut sets: Vec<(String, String)> = Vec::new();
    let mut sweeps = Vec::new();
    let mut format = Format::Text;
    let mut out_dir = None;
    let mut jobs = 1usize;
    let mut keys = Vec::new();

    let value_of = |flag: &str, args: &mut dyn Iterator<Item = String>| -> String {
        args.next()
            .unwrap_or_else(|| fail(&format!("{flag} requires a value")))
    };

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            "--list" => list = true,
            "--explain" => explain = true,
            "--no-cache" => no_cache = true,
            "--tag" => {
                let name = value_of("--tag", &mut args);
                match Tag::parse(&name) {
                    Some(tag) => tags.push(tag),
                    None => fail(&format!("unknown tag `{name}`")),
                }
            }
            "--experiment" => keys.push(value_of("--experiment", &mut args)),
            "--scenario" => scenario_file = Some(value_of("--scenario", &mut args)),
            "--set" => {
                let pair = value_of("--set", &mut args);
                let Some((key, value)) = pair.split_once('=') else {
                    fail(&format!("--set expects key=value, got `{pair}`"));
                };
                sets.push((key.trim().to_string(), value.trim().to_string()));
            }
            "--sweep" => {
                let spec = value_of("--sweep", &mut args);
                match SweepSpec::parse(&spec) {
                    Ok(spec) => sweeps.push(spec),
                    Err(e) => fail(&e.to_string()),
                }
            }
            "--markdown" => format = Format::Markdown,
            "--csv" => format = Format::Csv,
            "--json" => format = Format::Json,
            "--out" => out_dir = Some(std::path::PathBuf::from(value_of("--out", &mut args))),
            "--jobs" => {
                let n = value_of("--jobs", &mut args);
                jobs = n.parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
                    fail(&format!("--jobs expects a positive integer, got `{n}`"))
                });
            }
            // `cargo repro -- fig10` forwards the `--` separator; accept it.
            "--" => {}
            flag if flag.starts_with('-') => fail(&format!("unknown option `{flag}`")),
            key => keys.push(key.to_string()),
        }
    }

    // Assemble the base scenario: file (or paper defaults) first, then --set
    // overrides strictly in command-line order. `Scenario::set` resolves
    // `grid.source` to its Table II intensity itself, so a later
    // `--set grid.intensity=…` still wins — overrides never clobber each
    // other out of order.
    let mut scenario = match &scenario_file {
        None => Scenario::paper_defaults(),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(&format!("cannot read scenario `{path}`: {e}")));
            Scenario::from_toml(&text).unwrap_or_else(|e| fail(&format!("scenario `{path}`: {e}")))
        }
    };
    for (key, value) in &sets {
        scenario
            .set(key, value)
            .unwrap_or_else(|e| fail(&e.to_string()));
    }
    scenario.validate().unwrap_or_else(|e| fail(&e.to_string()));

    Options {
        list,
        explain,
        no_cache,
        tags,
        scenario,
        sweeps,
        format,
        out_dir,
        jobs,
        keys,
    }
}

fn select(options: &Options) -> Vec<&'static Entry> {
    if options.keys.is_empty() {
        return experiments::with_tags(&options.tags);
    }
    let mut selected = Vec::new();
    for key in &options.keys {
        match experiments::find_entry(key) {
            Some(entry) => {
                // An explicitly named key that fails the tag filter is a
                // contradiction in the request, not something to drop
                // silently.
                if let Some(&missing) = options.tags.iter().find(|&&t| !entry.has_tag(t)) {
                    fail(&format!(
                        "experiment `{key}` does not carry tag `{missing}`"
                    ));
                }
                selected.push(entry);
            }
            None => fail(&format!("unknown experiment `{key}`")),
        }
    }
    selected
}

/// Renders one (experiment × scenario-point) artifact from an
/// already-computed output. Kept separate from the model run so the sweep
/// cache can render a shared [`ExperimentOutput`] once per point, with each
/// point's own scenario/point metadata.
fn render_output(
    entry: &Entry,
    experiment: &dyn Experiment,
    output: &ExperimentOutput,
    ctx: &RunContext,
    point: Option<&ScenarioPoint>,
    format: Format,
) -> String {
    match format {
        Format::Text => format!(
            "==============================================================\n\
             {} — {}\n\
             ==============================================================\n\
             {}",
            experiment.id(),
            experiment.description(),
            output.render()
        ),
        Format::Markdown => format!(
            "## {} — {}\n\n{}",
            experiment.id(),
            experiment.description(),
            output.render_markdown()
        ),
        Format::Csv => format!(
            "# {} — {}\n{}",
            experiment.id(),
            experiment.description(),
            output.render_csv()
        ),
        Format::Json => {
            let mut fields = vec![
                ("key", JsonValue::from(entry.key)),
                ("title", JsonValue::from(experiment.id().to_string())),
                ("description", JsonValue::from(experiment.description())),
                (
                    "tags",
                    JsonValue::array(entry.tags.iter().map(|t| JsonValue::from(t.name()))),
                ),
            ];
            if let Some(point) = point {
                fields.push(("point", point.to_json()));
            }
            fields.push(("scenario", ctx.scenario().to_json()));
            fields.push(("output", output.to_json()));
            JsonValue::object(fields).render()
        }
    }
}

/// Reorder buffer between out-of-order job completion and in-order stdout:
/// workers hand in `(job index, lines)`, the sequencer emits every line whose
/// predecessors have all arrived, buffering only the gap.
struct Sequencer {
    next: usize,
    pending: BTreeMap<usize, Vec<String>>,
}

impl Sequencer {
    fn new() -> Self {
        Self {
            next: 0,
            pending: BTreeMap::new(),
        }
    }

    fn complete(&mut self, index: usize, lines: Vec<String>) {
        self.pending.insert(index, lines);
        while let Some(lines) = self.pending.remove(&self.next) {
            for line in lines {
                emit(line);
            }
            self.next += 1;
        }
    }
}

/// Replaces filename-hostile characters in a sweep-point label.
fn sanitize(label: &str) -> String {
    label
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '-' | '_') {
                c
            } else {
                '-'
            }
        })
        .collect()
}

/// One unit of scheduled work: an experiment plus every grid point sharing
/// one dependency fingerprint. The first point is the representative whose
/// context actually runs the models; the remaining points reuse the output
/// (their declared-dependency fields are identical, so so is the output).
struct WorkGroup {
    entry_idx: usize,
    point_idxs: Vec<usize>,
}

/// Groups the (experiment × point) grid by dependency fingerprint. With
/// `--no-cache` every job is its own group, restoring one model run per
/// grid cell.
fn build_groups(
    entries: &[&'static Entry],
    points: &[ScenarioPoint],
    no_cache: bool,
) -> Vec<WorkGroup> {
    let scenarios: Vec<&Scenario> = points.iter().map(|p| &p.scenario).collect();
    let mut groups = Vec::new();
    for (entry_idx, entry) in entries.iter().enumerate() {
        if no_cache {
            groups.extend((0..points.len()).map(|point_idx| WorkGroup {
                entry_idx,
                point_idxs: vec![point_idx],
            }));
        } else {
            groups.extend(
                dedup_groups(&scenarios, entry.deps())
                    .into_iter()
                    .map(|point_idxs| WorkGroup {
                        entry_idx,
                        point_idxs,
                    }),
            );
        }
    }
    groups
}

/// Runs the (experiment × point) grid on up to `jobs` worker threads, one
/// model run per [`WorkGroup`], streaming artifacts out as they complete.
/// Returns the per-job scalar lists (indexed
/// `entry_idx * npoints + point_idx`; the first scalar is the summary) and
/// the per-entry model-run counts (the cache footer's "N runs").
fn run_grid(
    entries: &[&'static Entry],
    points: &[ScenarioPoint],
    contexts: &[RunContext],
    options: &Options,
) -> (Vec<Vec<Scalar>>, Vec<usize>) {
    let npoints = points.len();
    let total = entries.len() * npoints;
    let sweeping = npoints > 1;
    let groups = build_groups(entries, points, options.no_cache);
    let mut run_counts = vec![0usize; entries.len()];
    for group in &groups {
        run_counts[group.entry_idx] += 1;
    }
    let scalars: Vec<Mutex<Vec<Scalar>>> = (0..total).map(|_| Mutex::new(Vec::new())).collect();
    let sequencer = Mutex::new(Sequencer::new());
    let next_group = AtomicUsize::new(0);

    // Shared by the sequential path and every worker: run one group's models
    // once, then render/write every member point's artifact (each with its
    // own point/scenario metadata) and queue its stdout lines.
    let process = |group: &WorkGroup| {
        let entry = entries[group.entry_idx];
        let experiment = entry.build();
        let output = experiment.run(&contexts[group.point_idxs[0]]);
        let scalar = output.scalars.clone();
        for &point_idx in &group.point_idxs {
            let job_index = group.entry_idx * npoints + point_idx;
            let point = &points[point_idx];
            let artifact = render_output(
                entry,
                experiment.as_ref(),
                &output,
                &contexts[point_idx],
                sweeping.then_some(point),
                options.format,
            );
            *scalars[job_index].lock().expect("no panics under lock") = scalar.clone();
            let lines = match &options.out_dir {
                None => vec![artifact],
                Some(dir) => {
                    let name = if sweeping {
                        format!(
                            "{}@{}.{}",
                            entry.key,
                            sanitize(&point.label),
                            options.format.extension()
                        )
                    } else {
                        format!("{}.{}", entry.key, options.format.extension())
                    };
                    let path = dir.join(name);
                    // Streamed: the file lands the moment the job finishes,
                    // not after the whole grid drains.
                    std::fs::write(&path, &artifact).unwrap_or_else(|e| {
                        fail(&format!("cannot write `{}`: {e}", path.display()))
                    });
                    vec![format!("wrote {}", path.display())]
                }
            };
            sequencer
                .lock()
                .expect("no panics under lock")
                .complete(job_index, lines);
        }
    };

    let workers = options.jobs.min(groups.len().max(1));
    if workers <= 1 {
        for group in &groups {
            process(group);
        }
    } else {
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let group_index = next_group.fetch_add(1, Ordering::Relaxed);
                    let Some(group) = groups.get(group_index) else {
                        break;
                    };
                    process(group);
                });
            }
        });
    }

    let scalars = scalars
        .into_iter()
        .map(|slot| slot.into_inner().expect("no panics under lock"))
        .collect();
    (scalars, run_counts)
}

/// `1 run`, `7 reuses`: exact counts with naive pluralization.
fn count(n: usize, noun: &str) -> String {
    if n == 1 {
        format!("{n} {noun}")
    } else {
        format!("{n} {noun}s")
    }
}

/// Prints the dependency plan for the selected experiments over the matrix:
/// declared dependency paths plus how many model runs (and cache reuses)
/// the grid needs — without running anything.
fn explain(entries: &[&'static Entry], points: &[ScenarioPoint], options: &Options) {
    let npoints = points.len();
    let scenarios: Vec<&Scenario> = points.iter().map(|p| &p.scenario).collect();
    emit(format_args!(
        "dependency plan — {} x {} = {}",
        count(entries.len(), "experiment"),
        count(npoints, "point"),
        count(entries.len() * npoints, "job"),
    ));
    let mut total_runs = 0usize;
    for entry in entries {
        let runs = if options.no_cache {
            npoints
        } else {
            dedup_groups(&scenarios, entry.deps()).len()
        };
        total_runs += runs;
        let deps = if entry.is_scenario_independent() {
            "(scenario-independent)".to_string()
        } else {
            format!(
                "deps: {}",
                entry
                    .deps()
                    .iter()
                    .map(|d| d.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            )
        };
        emit(format_args!(
            "  {:13} {:>9}, {:>9}   {}",
            entry.key,
            count(runs, "run"),
            count(npoints - runs, "reuse"),
            deps
        ));
    }
    emit(format_args!(
        "total: {}, {}",
        count(total_runs, "run"),
        count(entries.len() * npoints - total_runs, "reuse"),
    ));
}

/// Builds the comparisons for each experiment from the scalar grid: the
/// experiment's summary scalar diffed across every sweep point, plus one
/// comparison per *additional* scalar carrying a decision threshold (a
/// secondary crossover metric, e.g. ext-facility's cumulative break-even
/// riding alongside its annual one). With a single numeric sweep dimension
/// each comparison also carries the axis (and the scalar's threshold, when
/// declared), enabling crossover analysis.
///
/// A missing scalar is a hard error: every experiment in the registry
/// declares a summary scalar, so a gap would silently hollow out the
/// comparison's spread statistics.
fn build_comparisons(
    entries: &[&'static Entry],
    points: &[ScenarioPoint],
    scalars: &[Vec<Scalar>],
    matrix: &ScenarioMatrix,
) -> Vec<Comparison> {
    let npoints = points.len();
    // The crossover x-axis: the swept path, when exactly one dimension is
    // swept and every value on it is numeric.
    let axis: Option<&str> = match matrix.specs() {
        [spec] if spec.values.iter().all(|v| v.parse::<f64>().is_ok()) => Some(spec.path.as_str()),
        _ => None,
    };
    let mut comparisons = Vec::new();
    for (entry_idx, entry) in entries.iter().enumerate() {
        let per_point = &scalars[entry_idx * npoints..(entry_idx + 1) * npoints];
        let reference = per_point.iter().find(|s| !s.is_empty()).unwrap_or_else(|| {
            fail(&format!(
                "experiment `{}` produced no summary scalar; sweep comparisons \
                 require full scalar coverage",
                entry.key
            ))
        });
        let metrics = reference
            .iter()
            .enumerate()
            .filter(|(i, scalar)| *i == 0 || scalar.threshold.is_some())
            .map(|(_, scalar)| scalar);
        for metric in metrics {
            let mut comparison = Comparison::new(entry.key, &metric.name, &metric.unit);
            if let Some(axis) = axis {
                comparison = comparison.with_axis(axis);
            }
            if let Some(threshold) = &metric.threshold {
                comparison = comparison.with_threshold(threshold.clone());
            }
            for (point, point_scalars) in points.iter().zip(per_point) {
                let scalar = point_scalars
                    .iter()
                    .find(|s| s.name == metric.name)
                    .unwrap_or_else(|| {
                        fail(&format!(
                            "experiment `{}` produced no `{}` scalar at point `{}`",
                            entry.key,
                            metric.name,
                            point.display_label()
                        ))
                    });
                let x = axis.and_then(|_| {
                    point
                        .assignments
                        .first()
                        .and_then(|(_, v)| v.parse::<f64>().ok())
                });
                match x {
                    Some(x) => comparison.push_at(point.display_label(), x, Some(scalar.value)),
                    None => comparison.push(point.display_label(), Some(scalar.value)),
                };
            }
            comparisons.push(comparison);
        }
    }
    comparisons
}

/// Renders the cross-scenario comparison report in the selected format.
fn render_comparisons(
    comparisons: &[Comparison],
    matrix: &ScenarioMatrix,
    format: Format,
) -> String {
    match format {
        Format::Json => JsonValue::object([
            (
                "sweep",
                JsonValue::array(matrix.specs().iter().map(|spec| {
                    JsonValue::object([
                        ("path", JsonValue::from(spec.path.as_str())),
                        (
                            "values",
                            JsonValue::array(
                                spec.values.iter().map(|v| JsonValue::from(v.as_str())),
                            ),
                        ),
                    ])
                })),
            ),
            ("points", JsonValue::Integer(matrix.len() as u64)),
            (
                "comparisons",
                JsonValue::array(comparisons.iter().map(Comparison::to_json)),
            ),
        ])
        .render(),
        Format::Markdown => {
            let mut out = String::from("# Cross-scenario comparison\n");
            for c in comparisons {
                out.push_str(&format!(
                    "\n## {} — {} ({})\n\n{}",
                    c.experiment,
                    c.metric,
                    c.unit,
                    c.to_table().to_markdown()
                ));
                if let Some(s) = c.summary() {
                    out.push_str(&format!(
                        "\nspread: min {:.4}, max {:.4}, mean {:.4}{}\n",
                        s.min,
                        s.max,
                        s.mean,
                        s.spread_ratio()
                            .map_or(String::new(), |r| format!(", {r:.2}x min..max")),
                    ));
                }
                for crossing in c.crossings() {
                    out.push_str(&format!("\ncrossing: {}\n", crossing.line));
                }
            }
            out
        }
        Format::Csv => {
            let mut out = String::new();
            for c in comparisons {
                out.push_str(&format!(
                    "# comparison: {} — {} ({})\n{}",
                    c.experiment,
                    c.metric,
                    c.unit,
                    c.to_table().to_csv()
                ));
                for crossing in c.crossings() {
                    out.push_str(&format!("# crossing: {}\n", crossing.line));
                }
            }
            out
        }
        Format::Text => {
            let mut out = format!(
                "==============================================================\n\
                 Cross-scenario comparison — {} sweep point(s)\n\
                 ==============================================================\n",
                matrix.len()
            );
            for c in comparisons {
                out.push_str(&format!(
                    "\n{} — {} ({})\n{}",
                    c.experiment,
                    c.metric,
                    c.unit,
                    c.to_table().render()
                ));
                if let Some(s) = c.summary() {
                    out.push_str(&format!(
                        "spread: min {:.4}, max {:.4}, mean {:.4}{}\n",
                        s.min,
                        s.max,
                        s.mean,
                        s.spread_ratio()
                            .map_or(String::new(), |r| format!(" ({r:.2}x min..max)")),
                    ));
                }
                for crossing in c.crossings() {
                    out.push_str(&format!("crossing: {}\n", crossing.line));
                }
            }
            out
        }
    }
}

fn main() {
    let options = parse_args();
    let selected = select(&options);

    if options.list {
        if options.format == Format::Json {
            let index = JsonValue::array(selected.iter().map(|e| {
                JsonValue::object([
                    ("key", JsonValue::from(e.key)),
                    ("title", JsonValue::from(e.title())),
                    ("description", JsonValue::from(e.description())),
                    (
                        "tags",
                        JsonValue::array(e.tags.iter().map(|t| JsonValue::from(t.name()))),
                    ),
                ])
            }));
            emit(index);
        } else {
            for entry in selected {
                emit(entry.key);
            }
        }
        return;
    }

    if selected.is_empty() {
        fail("no experiments match the given keys/tags");
    }

    let matrix = ScenarioMatrix::new(options.scenario.clone(), options.sweeps.clone())
        .unwrap_or_else(|e| fail(&e.to_string()));
    let points: Vec<ScenarioPoint> = matrix.points().collect();
    let contexts: Vec<RunContext> = points
        .iter()
        .map(|p| RunContext::try_new(p.scenario.clone()).unwrap_or_else(|e| fail(&e.to_string())))
        .collect();

    if options.explain {
        explain(&selected, &points, &options);
        return;
    }

    if let Some(dir) = &options.out_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| fail(&format!("cannot create `{}`: {e}", dir.display())));
    }

    let (scalars, run_counts) = run_grid(&selected, &points, &contexts, &options);

    // With an active sweep, diff every experiment's summary scalar across the
    // grid points into the comparison report.
    if matrix.is_sweep() {
        let comparisons = build_comparisons(&selected, &points, &scalars, &matrix);
        let report = render_comparisons(&comparisons, &matrix, options.format);
        match &options.out_dir {
            None => emit(&report),
            Some(dir) => {
                let path = dir.join(format!("comparison.{}", options.format.extension()));
                std::fs::write(&path, &report)
                    .unwrap_or_else(|e| fail(&format!("cannot write `{}`: {e}", path.display())));
                emit(format_args!("wrote {}", path.display()));
            }
        }

        // Cache footer: how the dependency dedup compressed the grid. Not
        // part of the comparison artifact itself — a cached and an uncached
        // run must produce byte-identical comparison files — and kept off
        // stdout when stdout is a pure-JSON stream.
        if !options.no_cache {
            let to_stderr = options.format == Format::Json && options.out_dir.is_none();
            let mut footer: Vec<String> = selected
                .iter()
                .zip(&run_counts)
                .map(|(entry, &runs)| {
                    format!(
                        "cache: {}: {}, {}",
                        entry.key,
                        count(runs, "run"),
                        count(points.len() - runs, "reuse")
                    )
                })
                .collect();
            let total_runs: usize = run_counts.iter().sum();
            footer.push(format!(
                "cache: total: {}, {}",
                count(total_runs, "run"),
                count(selected.len() * points.len() - total_runs, "reuse")
            ));
            for line in footer {
                if to_stderr {
                    eprintln!("{line}");
                } else {
                    emit(line);
                }
            }
        }
    }
}
