//! Regenerates the paper's figures and tables from the models, under any
//! scenario.
//!
//! ```text
//! repro fig10                                  # paper scenario, text output
//! repro --scenario green.toml fig10            # custom scenario file
//! repro --set grid.intensity=50 fig10          # one-off overrides
//! repro --tag mobile --json                    # tag-filtered, JSON to stdout
//! repro --jobs 8 --json --out out/             # full suite, in parallel,
//!                                              # one artifact file per key
//! ```

use cc_core::experiments::{self, Entry, Tag};
use cc_report::{JsonValue, RunContext, Scenario};
use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

fn print_usage() {
    eprintln!("usage: repro [options] [<experiment-key>...]");
    eprintln!();
    eprintln!("options:");
    eprintln!("  --list               list selected experiment keys and exit");
    eprintln!("  --tag <tag>          filter experiments by tag (repeatable, AND-ed)");
    eprintln!("  --scenario <file>    load scenario parameters from a TOML file");
    eprintln!("  --set <key>=<value>  override one scenario field (repeatable),");
    eprintln!("                       e.g. --set grid.intensity=50 --set device.lifetime=5");
    eprintln!("  --markdown | --csv | --json   output format (default: text)");
    eprintln!("  --out <dir>          write one artifact file per experiment into <dir>");
    eprintln!("  --jobs <n>           run experiments on n worker threads (default 1)");
    eprintln!();
    let tags: Vec<&str> = Tag::ALL.iter().map(|t| t.name()).collect();
    eprintln!("tags: {}", tags.join(", "));
    eprintln!();
    eprintln!("keys:");
    for e in experiments::entries() {
        eprintln!("  {:10}  {} — {}", e.key, e.title(), e.description());
    }
}

/// Prints a line to stdout, exiting quietly when the reader has gone away
/// (`repro --list | head` must not panic on the broken pipe).
fn emit(line: impl std::fmt::Display) {
    let stdout = std::io::stdout();
    if writeln!(stdout.lock(), "{line}").is_err() {
        std::process::exit(0);
    }
}

fn fail(message: &str) -> ! {
    eprintln!("repro: {message}");
    eprintln!("(run `repro --help` for usage)");
    std::process::exit(2);
}

#[derive(Clone, Copy, PartialEq)]
enum Format {
    Text,
    Markdown,
    Csv,
    Json,
}

impl Format {
    fn extension(self) -> &'static str {
        match self {
            Self::Text => "txt",
            Self::Markdown => "md",
            Self::Csv => "csv",
            Self::Json => "json",
        }
    }
}

struct Options {
    list: bool,
    tags: Vec<Tag>,
    scenario: Scenario,
    format: Format,
    out_dir: Option<std::path::PathBuf>,
    jobs: usize,
    keys: Vec<String>,
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1).peekable();
    let mut list = false;
    let mut tags = Vec::new();
    let mut scenario_file: Option<String> = None;
    let mut sets: Vec<(String, String)> = Vec::new();
    let mut format = Format::Text;
    let mut out_dir = None;
    let mut jobs = 1usize;
    let mut keys = Vec::new();

    let value_of = |flag: &str, args: &mut dyn Iterator<Item = String>| -> String {
        args.next()
            .unwrap_or_else(|| fail(&format!("{flag} requires a value")))
    };

    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print_usage();
                std::process::exit(0);
            }
            "--list" => list = true,
            "--tag" => {
                let name = value_of("--tag", &mut args);
                match Tag::parse(&name) {
                    Some(tag) => tags.push(tag),
                    None => fail(&format!("unknown tag `{name}`")),
                }
            }
            "--scenario" => scenario_file = Some(value_of("--scenario", &mut args)),
            "--set" => {
                let pair = value_of("--set", &mut args);
                let Some((key, value)) = pair.split_once('=') else {
                    fail(&format!("--set expects key=value, got `{pair}`"));
                };
                sets.push((key.trim().to_string(), value.trim().to_string()));
            }
            "--markdown" => format = Format::Markdown,
            "--csv" => format = Format::Csv,
            "--json" => format = Format::Json,
            "--out" => out_dir = Some(std::path::PathBuf::from(value_of("--out", &mut args))),
            "--jobs" => {
                let n = value_of("--jobs", &mut args);
                jobs = n.parse().ok().filter(|&n| n >= 1).unwrap_or_else(|| {
                    fail(&format!("--jobs expects a positive integer, got `{n}`"))
                });
            }
            // `cargo repro -- fig10` forwards the `--` separator; accept it.
            "--" => {}
            flag if flag.starts_with('-') => fail(&format!("unknown option `{flag}`")),
            key => keys.push(key.to_string()),
        }
    }

    // Assemble the scenario: file (or paper defaults) first, then --set
    // overrides strictly in command-line order. Setting `grid.source`
    // resolves the Table II intensity at that point, so a later
    // `--set grid.intensity=…` still wins — overrides never clobber each
    // other out of order.
    let mut scenario = match &scenario_file {
        None => Scenario::paper_defaults(),
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| fail(&format!("cannot read scenario `{path}`: {e}")));
            let (mut from_file, file_keys) = Scenario::from_toml_keys(&text)
                .unwrap_or_else(|e| fail(&format!("scenario `{path}`: {e}")));
            // Within a file, an explicitly written intensity wins and the
            // source stays an informational label; otherwise the source
            // determines the intensity.
            let file_pins_intensity = file_keys
                .iter()
                .any(|k| k == "grid.intensity" || k == "grid.intensity_g_per_kwh");
            if from_file.grid.source.is_some() && !file_pins_intensity {
                resolve_energy_source(&mut from_file);
            }
            from_file
        }
    };
    for (key, value) in &sets {
        scenario
            .set(key, value)
            .unwrap_or_else(|e| fail(&e.to_string()));
        if key == "grid.source" {
            resolve_energy_source(&mut scenario);
        }
    }
    scenario.validate().unwrap_or_else(|e| fail(&e.to_string()));

    Options {
        list,
        tags,
        scenario,
        format,
        out_dir,
        jobs,
        keys,
    }
}

/// Overwrites `grid.intensity_g_per_kwh` with the Table II intensity of the
/// scenario's named energy source.
fn resolve_energy_source(scenario: &mut Scenario) {
    let Some(source) = scenario.grid.source.clone() else {
        return;
    };
    let wanted = source.to_lowercase();
    let matched = cc_data::energy_sources::EnergySource::ALL
        .into_iter()
        .find(|s| s.to_string().to_lowercase() == wanted)
        .unwrap_or_else(|| {
            let names: Vec<String> = cc_data::energy_sources::EnergySource::ALL
                .into_iter()
                .map(|s| s.to_string().to_lowercase())
                .collect();
            fail(&format!(
                "unknown energy source `{source}` (known: {})",
                names.join(", ")
            ))
        });
    scenario.grid.intensity_g_per_kwh = matched.carbon_intensity().as_g_per_kwh();
}

fn select(options: &Options) -> Vec<&'static Entry> {
    if options.keys.is_empty() {
        return experiments::with_tags(&options.tags);
    }
    let mut selected = Vec::new();
    for key in &options.keys {
        match experiments::find_entry(key) {
            Some(entry) => {
                // An explicitly named key that fails the tag filter is a
                // contradiction in the request, not something to drop
                // silently.
                if let Some(&missing) = options.tags.iter().find(|&&t| !entry.has_tag(t)) {
                    fail(&format!(
                        "experiment `{key}` does not carry tag `{missing}`"
                    ));
                }
                selected.push(entry);
            }
            None => fail(&format!("unknown experiment `{key}`")),
        }
    }
    selected
}

fn render(entry: &Entry, ctx: &RunContext, format: Format) -> String {
    let experiment = entry.build();
    let output = experiment.run(ctx);
    match format {
        Format::Text => format!(
            "==============================================================\n\
             {} — {}\n\
             ==============================================================\n\
             {}",
            experiment.id(),
            experiment.description(),
            output.render()
        ),
        Format::Markdown => format!(
            "## {} — {}\n\n{}",
            experiment.id(),
            experiment.description(),
            output.render_markdown()
        ),
        Format::Csv => format!(
            "# {} — {}\n{}",
            experiment.id(),
            experiment.description(),
            output.render_csv()
        ),
        Format::Json => JsonValue::object([
            ("key", JsonValue::from(entry.key)),
            ("title", JsonValue::from(experiment.id().to_string())),
            ("description", JsonValue::from(experiment.description())),
            (
                "tags",
                JsonValue::array(entry.tags.iter().map(|t| JsonValue::from(t.name()))),
            ),
            ("scenario", ctx.scenario().to_json()),
            ("output", output.to_json()),
        ])
        .render(),
    }
}

/// Runs `entries` under `ctx` on up to `jobs` threads, returning rendered
/// artifacts in input order.
fn run_all(
    entries: &[&'static Entry],
    ctx: &RunContext,
    format: Format,
    jobs: usize,
) -> Vec<String> {
    let mut results: Vec<Option<String>> = vec![None; entries.len()];
    if jobs <= 1 || entries.len() <= 1 {
        for (slot, entry) in results.iter_mut().zip(entries) {
            *slot = Some(render(entry, ctx, format));
        }
    } else {
        let next = AtomicUsize::new(0);
        let slots = Mutex::new(&mut results);
        std::thread::scope(|scope| {
            for _ in 0..jobs.min(entries.len()) {
                scope.spawn(|| loop {
                    let index = next.fetch_add(1, Ordering::Relaxed);
                    let Some(entry) = entries.get(index) else {
                        break;
                    };
                    let rendered = render(entry, ctx, format);
                    slots.lock().expect("no panics while holding lock")[index] = Some(rendered);
                });
            }
        });
    }
    results
        .into_iter()
        .map(|r| r.expect("every slot filled"))
        .collect()
}

fn main() {
    let options = parse_args();
    let selected = select(&options);

    if options.list {
        if options.format == Format::Json {
            let index = JsonValue::array(selected.iter().map(|e| {
                JsonValue::object([
                    ("key", JsonValue::from(e.key)),
                    ("title", JsonValue::from(e.title())),
                    ("description", JsonValue::from(e.description())),
                    (
                        "tags",
                        JsonValue::array(e.tags.iter().map(|t| JsonValue::from(t.name()))),
                    ),
                ])
            }));
            emit(index);
        } else {
            for entry in selected {
                emit(entry.key);
            }
        }
        return;
    }

    if selected.is_empty() {
        fail("no experiments match the given keys/tags");
    }

    let ctx = RunContext::new(options.scenario.clone());
    let artifacts = run_all(&selected, &ctx, options.format, options.jobs);

    match &options.out_dir {
        None => {
            for artifact in &artifacts {
                emit(artifact);
            }
        }
        Some(dir) => {
            std::fs::create_dir_all(dir)
                .unwrap_or_else(|e| fail(&format!("cannot create `{}`: {e}", dir.display())));
            for (entry, artifact) in selected.iter().zip(&artifacts) {
                let path = dir.join(format!("{}.{}", entry.key, options.format.extension()));
                std::fs::write(&path, artifact)
                    .unwrap_or_else(|e| fail(&format!("cannot write `{}`: {e}", path.display())));
                emit(format_args!("wrote {}", path.display()));
            }
        }
    }
}
