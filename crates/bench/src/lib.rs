//! # cc-bench
//!
//! The benchmark harness (a small self-contained timing framework — the
//! workspace builds offline, so no Criterion) and the `repro` binary that
//! regenerates any experiment's rows from the command line:
//!
//! ```text
//! repro                        # run everything, paper scenario
//! repro --list                 # list experiment keys
//! repro fig10                  # regenerate one artifact
//! repro --scenario green.toml --set device.lifetime=5 fig10
//! repro --jobs 8 --json --out out/   # parallel run, one JSON per artifact
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;

pub use cc_core::experiments;

pub use harness::Bencher;
