//! # cc-bench
//!
//! The benchmark harness (a small self-contained timing framework — the
//! workspace builds offline, so no Criterion) and the workspace's two
//! binaries: `repro`, which regenerates any experiment's rows from the
//! command line, and `gen-docs`, which emits the generated
//! `docs/scenario-reference.md` from the field and experiment registries
//! ([`docgen`]).
//!
//! ```text
//! repro                        # run everything, paper scenario
//! repro --list                 # list experiment keys
//! repro fig10                  # regenerate one artifact
//! repro --scenario green.toml --set device.lifetime=5 fig10
//! repro --jobs 8 --json --out out/   # parallel run, one JSON per artifact
//! repro --sweep fleet.growth=1.0..2.0/0.25 --jobs 8 --out out/
//!                              # scenario sweep; the dependency cache runs
//!                              # scenario-independent experiments once
//! repro --explain --sweep fleet.growth=1.0..2.0/0.25
//!                              # print the run/reuse plan without running
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod docgen;
pub mod harness;

pub use cc_core::experiments;

pub use harness::Bencher;
