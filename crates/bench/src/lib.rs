//! # cc-bench
//!
//! The benchmark harness: Criterion benches (one group per paper figure and
//! table, plus ablations) and the `repro` binary that regenerates any
//! experiment's rows from the command line:
//!
//! ```text
//! repro            # run everything
//! repro --list     # list experiment keys
//! repro fig10      # regenerate one artifact
//! ```

#![forbid(unsafe_code)]

pub use cc_core::experiments;
