//! Generates `docs/scenario-reference.md` from the canonical scenario-field
//! registry ([`cc_report::scenario::deps::FIELDS`]) and the experiment
//! registry ([`cc_core::experiments::entries`]).
//!
//! The reference is *derived*, never hand-maintained: every settable dotted
//! path with its type, aliases, paper default, validation rule and the
//! experiments whose output it affects, plus the experiment table and the
//! `repro` CLI surface. The `gen-docs` binary writes the file; a freshness
//! test (and a CI step) regenerates it and fails on drift, so the checked-in
//! document can never disagree with the code.

use cc_core::experiments;
use cc_report::scenario::deps::{FieldInfo, FIELDS};
use cc_report::Scenario;

/// The paper-default value of `field`, formatted for the reference table.
fn default_of(defaults: &Scenario, field: &FieldInfo) -> String {
    let value = defaults
        .field_value(field.path)
        .expect("FIELDS lists only canonical paths");
    if value.is_empty() {
        "(unset)".to_string()
    } else {
        format!("`{value}`")
    }
}

/// The experiments whose declared dependency set covers `field` — the
/// "what re-runs when I sweep this?" column.
fn affected_by(field: &FieldInfo) -> String {
    if !field.semantic {
        return if field.path == "grid.source" {
            "resolves into `grid.intensity` at set time".to_string()
        } else {
            "none (labeling only)".to_string()
        };
    }
    let keys: Vec<&str> = experiments::entries()
        .iter()
        .filter(|e| e.deps().iter().any(|d| d.matches(field.path)))
        .map(|e| e.key)
        .collect();
    if keys.is_empty() {
        "none".to_string()
    } else {
        keys.join(", ")
    }
}

/// Renders the complete scenario/CLI reference document.
#[must_use]
pub fn scenario_reference() -> String {
    let defaults = Scenario::paper_defaults();
    let mut out = String::new();
    out.push_str(
        "# Scenario & CLI reference\n\
         \n\
         > **Generated file — do not edit.** Regenerate with\n\
         > `cargo run --release -p cc-bench --bin gen-docs`. The content is\n\
         > derived from the canonical field registry\n\
         > (`cc_report::scenario::deps::FIELDS`) and the experiment registry\n\
         > (`cc_core::experiments::entries`); a freshness test and a CI step\n\
         > fail when this file drifts from the code.\n\
         \n\
         ## Scenario fields\n\
         \n\
         Every field is settable three ways: in a `--scenario` TOML file\n\
         (`[grid]` table, `intensity = 50`), as a one-off `--set` override\n\
         (`--set grid.intensity=50`), or as a swept axis\n\
         (`--sweep grid.intensity=10..800/100`). Unset fields keep the paper\n\
         defaults below. *Experiments affected* lists the experiments whose\n\
         declared scenario-dependency set covers the field — sweeping any\n\
         other axis reuses their output from the dependency cache instead of\n\
         re-running them. Fields marked *yes* in the *Dist?* column also\n\
         accept a distribution binding (`--set 'path ~ dist(...)'`) for\n\
         Monte-Carlo sampling — see [Distributions](#distributions).\n\
         \n\
         | Path | Aliases | Type | Dist? | Paper default | Validation | Experiments affected |\n\
         |---|---|---|---|---|---|---|\n",
    );
    for field in &FIELDS {
        let aliases = if field.aliases.is_empty() {
            "—".to_string()
        } else {
            field
                .aliases
                .iter()
                .map(|a| format!("`{a}`"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        out.push_str(&format!(
            "| `{}` | {} | {} | {} | {} | {} | {} |\n",
            field.path,
            aliases,
            field.ty,
            if field.distribution_eligible() {
                "yes"
            } else {
                "—"
            },
            default_of(&defaults, field),
            field.validation,
            affected_by(field),
        ));
    }

    out.push_str(
        "\n## Experiments\n\
         \n\
         Scenario dependencies are declared per registry entry and verified\n\
         against actual reads by a read-tracking test: an experiment marked\n\
         *scenario-independent* provably reads nothing from the scenario and\n\
         runs exactly once per sweep.\n\
         \n\
         | Key | Title | Tags | Scenario dependencies | Description |\n\
         |---|---|---|---|---|\n",
    );
    for entry in experiments::entries() {
        let tags = entry
            .tags
            .iter()
            .map(|t| t.name())
            .collect::<Vec<_>>()
            .join(", ");
        let deps = if entry.is_scenario_independent() {
            "scenario-independent".to_string()
        } else {
            entry
                .deps()
                .iter()
                .map(|d| format!("`{d}`"))
                .collect::<Vec<_>>()
                .join(", ")
        };
        out.push_str(&format!(
            "| `{}` | {} | {} | {} | {} |\n",
            entry.key,
            entry.title(),
            tags,
            deps,
            entry.description(),
        ));
    }

    out.push_str(
        "\n## The `repro` CLI\n\
         \n\
         `cargo run --release -p cc-bench --bin repro -- [options] [<key>...]`\n\
         \n\
         | Flag | Meaning |\n\
         |---|---|\n\
         | `--list` | list selected experiment keys and exit |\n\
         | `--tag <tag>` | filter experiments by tag (repeatable, AND-ed) |\n\
         | `--experiment <key>` | select an experiment (repeatable; same as a positional key) |\n\
         | `--scenario <file>` | load scenario parameters from a TOML file |\n\
         | `--set <path>=<value>` | override one scenario field (repeatable, applied in order) |\n\
         | `--sweep <path>=<spec>` | sweep one field over many values (repeatable; specs multiply into a matrix) |\n\
         | `--markdown` / `--csv` / `--json` | output format (default: text) |\n\
         | `--out <dir>` | write one artifact file per (experiment × point), streamed as they finish |\n\
         | `--jobs <n>` | run the grid on `n` worker threads (default 1) |\n\
         | `--no-cache` | disable dependency-based result reuse (one model run per grid cell) |\n\
         | `--explain` | print the dependency/dedup plan without running anything |\n\
         | `--samples <n>` | Monte-Carlo sample count (requires at least one distribution binding) |\n\
         | `--seed <s>` | PRNG seed for Monte-Carlo sampling (default 0; same seed → byte-identical output) |\n\
         \n\
         Sweep value grammar: a range `10..800/100` (inclusive start, `/step`\n\
         optional — five evenly spaced points by default), an explicit list\n\
         `2,3,4`, or the named list `@sources` (the Table II energy sources,\n\
         for `grid.source` / `grid.intensity`).\n\
         \n\
         ## Distributions\n\
         \n\
         A `--set` or `--sweep` value containing `~` is a *distribution\n\
         binding* instead of a scalar or a sweep: the field is drawn fresh\n\
         for every Monte-Carlo sample. Bindings require `--samples <n>` and\n\
         are mutually exclusive with value sweeps; `--seed <s>` picks the\n\
         deterministic PRNG stream (default 0).\n\
         \n\
         ```\n\
         repro --experiment ext-facility \\\n\
               --set 'fab.node_nm ~ triangular(5,7,10)' \\\n\
               --samples 10000 --seed 7\n\
         ```\n\
         \n\
         | Form | Parameters | Notes |\n\
         |---|---|---|\n\
         | `uniform(a,b)` | lower, upper bound | requires `a < b` |\n\
         | `triangular(a,c,b)` | lower, mode, upper | requires `a <= c <= b`, `a < b` |\n\
         | `normal(mu,sigma)` | mean, std deviation | requires `sigma > 0`; draws outside a field's validation range abort the run |\n\
         \n\
         Only `f64`-typed semantic fields accept a binding (*yes* in the\n\
         *Dist?* column above). Each sampled point flows through the same\n\
         dependency fingerprinting as a sweep point, so experiments that do\n\
         not depend on a sampled field still run their model exactly once.\n\
         Results are folded into streaming digests (mean, stddev, min/max,\n\
         P² quantile estimates for p05/p50/p95) — memory stays bounded no\n\
         matter the sample count — and the comparison artifact reports each\n\
         tracked metric with a 90% confidence band.\n\
         \n\
         ## Sweep caching\n\
         \n\
         The runner fingerprints each (experiment × point) job over the\n\
         experiment's declared dependency fields only. Jobs whose\n\
         fingerprints agree share a single model run: scenario-independent\n\
         experiments execute once per sweep, and partially-dependent ones\n\
         dedupe across axes they ignore. Per-point artifacts are still\n\
         rendered with their own point/scenario metadata, and the comparison\n\
         artifact is byte-identical to a `--no-cache` run. After a sweep the\n\
         footer reports the dedup (`cache: fig05: 1 run, 7 reuses`); with\n\
         `--json` to stdout the footer moves to stderr so the JSON stream\n\
         stays parseable.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_covers_every_field_alias_and_experiment() {
        let text = scenario_reference();
        for field in &FIELDS {
            assert!(
                text.contains(&format!("| `{}` |", field.path)),
                "missing field {}",
                field.path
            );
            for alias in field.aliases {
                assert!(
                    text.contains(&format!("`{alias}`")),
                    "missing alias {alias}"
                );
            }
        }
        for entry in experiments::entries() {
            assert!(
                text.contains(&format!("| `{}` |", entry.key)),
                "missing experiment {}",
                entry.key
            );
        }
    }

    #[test]
    fn reference_documents_defaults_and_dependencies() {
        let text = scenario_reference();
        // Paper defaults come from Scenario::paper_defaults, not prose.
        assert!(text.contains("`380.0`"));
        assert!(text.contains("`0.05,0.1,0.2,0.35,0.6,0.85,1.0`"));
        // The affected-experiments column reflects the registry.
        assert!(text.contains("fig02, fig11, ext-facility"));
        assert!(text.contains("scenario-independent"));
        // CLI flags documented.
        for flag in ["--sweep", "--no-cache", "--explain", "--set"] {
            assert!(text.contains(flag), "missing {flag}");
        }
    }

    #[test]
    fn reference_documents_distribution_bindings() {
        let text = scenario_reference();
        // Grammar section with all three distribution forms and the flags.
        assert!(text.contains("## Distributions"));
        for needle in ["uniform(a,b)", "triangular(a,c,b)", "normal(mu,sigma)"] {
            assert!(text.contains(needle), "missing {needle}");
        }
        for flag in ["--samples", "--seed"] {
            assert!(text.contains(flag), "missing {flag}");
        }
        // The Dist? column reflects FieldInfo::distribution_eligible.
        for field in &FIELDS {
            let marker = if field.distribution_eligible() {
                "yes"
            } else {
                "—"
            };
            let row = format!("| `{}` |", field.path);
            let line = text
                .lines()
                .find(|l| l.starts_with(&row))
                .unwrap_or_else(|| panic!("missing row for {}", field.path));
            let dist_cell = line.split('|').nth(4).expect("Dist? column").trim();
            assert_eq!(dist_cell, marker, "wrong Dist? marker for {}", field.path);
        }
    }

    #[test]
    fn fleet_growth_affects_exactly_the_facility_experiments() {
        let growth = FIELDS
            .iter()
            .find(|f| f.path == "fleet.growth")
            .expect("fleet.growth is canonical");
        assert_eq!(
            affected_by(growth),
            "fig02, fig11, ext-facility, ext-scheduler"
        );
    }
}
