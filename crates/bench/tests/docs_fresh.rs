//! Freshness gate for the generated scenario/CLI reference: the checked-in
//! `docs/scenario-reference.md` must match what the generator produces from
//! the current field and experiment registries.

use std::path::PathBuf;

#[test]
fn scenario_reference_matches_the_generator() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../docs/scenario-reference.md");
    let on_disk = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read `{}` ({e}); run `cargo run --release -p cc-bench --bin gen-docs`",
            path.display()
        )
    });
    assert_eq!(
        on_disk,
        cc_bench::docgen::scenario_reference(),
        "docs/scenario-reference.md is stale; run \
         `cargo run --release -p cc-bench --bin gen-docs`"
    );
}
