//! End-to-end tests for `repro serve` and `repro client`: daemon lifecycle,
//! protocol error handling, cross-request caching, and byte-identity of
//! served artifacts against the one-shot CLI.

use cc_report::JsonValue;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};

struct Daemon {
    child: Child,
    addr: String,
}

impl Daemon {
    /// Starts `repro serve` on an OS-assigned port and reads the bound
    /// address off its `listening on <addr>` stdout line.
    fn start() -> Self {
        Self::start_with(&[])
    }

    /// Like [`Daemon::start`], with extra `serve` options appended.
    fn start_with(extra: &[&str]) -> Self {
        let mut child = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(["serve", "--addr", "127.0.0.1:0", "--jobs", "4"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn repro serve");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut banner = String::new();
        BufReader::new(stdout)
            .read_line(&mut banner)
            .expect("read listen banner");
        let addr = banner
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
            .to_string();
        Self { child, addr }
    }

    fn connect(&self) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(&self.addr).expect("connect to daemon");
        let reader = BufReader::new(stream.try_clone().expect("clone stream"));
        (reader, stream)
    }

    /// Sends one request line and collects responses through the terminal
    /// line (`done`/`error`/`stats`/`bye`).
    fn request(
        reader: &mut BufReader<TcpStream>,
        stream: &mut TcpStream,
        line: &str,
    ) -> Vec<JsonValue> {
        writeln!(stream, "{line}").expect("send request");
        let mut responses = Vec::new();
        loop {
            let mut response = String::new();
            reader.read_line(&mut response).expect("read response");
            assert!(!response.is_empty(), "daemon closed the connection");
            let value =
                JsonValue::parse(response.trim_end()).expect("every response line is valid JSON");
            let kind = value
                .get("type")
                .and_then(JsonValue::as_str)
                .expect("every response carries a type")
                .to_string();
            responses.push(value);
            if matches!(kind.as_str(), "done" | "error" | "stats" | "bye") {
                return responses;
            }
        }
    }

    /// Graceful shutdown; waits for the daemon to exit cleanly.
    fn shutdown(mut self) {
        let (mut reader, mut stream) = self.connect();
        let bye = Self::request(&mut reader, &mut stream, r#"{"op":"shutdown"}"#);
        assert_eq!(bye[0].get("type").and_then(JsonValue::as_str), Some("bye"));
        let status = self.child.wait().expect("daemon exits");
        assert!(status.success(), "daemon must exit cleanly");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        // Belt and braces: don't leak a daemon if an assertion fired.
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn client(addr: &str, args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["client", "--addr", addr])
        .args(args)
        .output()
        .expect("run repro client")
}

#[test]
fn protocol_errors_leave_the_daemon_and_cache_untouched() {
    let daemon = Daemon::start();
    let (mut reader, mut stream) = daemon.connect();

    // Every malformed request yields one structured error on the same
    // still-open connection.
    for (line, category) in [
        ("{definitely not json", "malformed-request"),
        (r#"{"op":"launch"}"#, "malformed-request"),
        (
            r#"{"op":"run","experiments":["fig99"]}"#,
            "unknown-experiment",
        ),
        (
            r#"{"op":"run","experiments":["fig10"],"set":{"grid.wattage":5}}"#,
            "unknown-field",
        ),
        (
            r#"{"op":"run","experiments":["fig10"],"set":{"grid.intensity":"emerald"}}"#,
            "invalid-value",
        ),
        (
            r#"{"op":"run","experiments":["fig10"],"set":{"grid.renewable_fraction":2}}"#,
            "invalid-scenario",
        ),
        (
            r#"{"op":"run","experiments":["fig10"],"sweep":["grid.intensity=800..10/100"]}"#,
            "invalid-sweep",
        ),
    ] {
        let responses = Daemon::request(&mut reader, &mut stream, line);
        assert_eq!(responses.len(), 1, "one error line per bad request");
        assert_eq!(
            responses[0].get("error").and_then(JsonValue::as_str),
            Some(category),
            "request: {line}"
        );
        assert!(
            responses[0]
                .get("message")
                .and_then(JsonValue::as_str)
                .is_some_and(|m| !m.is_empty()),
            "errors carry a human-readable message"
        );
    }

    // None of the rejects computed anything or counted as a served run.
    let stats = Daemon::request(&mut reader, &mut stream, r#"{"op":"stats"}"#);
    let stats = stats[0].get("stats").expect("stats payload");
    assert_eq!(stats.get("requests").and_then(JsonValue::as_u64), Some(0));
    assert_eq!(stats.get("misses").and_then(JsonValue::as_u64), Some(0));
    assert_eq!(stats.get("entries").and_then(JsonValue::as_u64), Some(0));

    // The same connection still serves a valid request afterwards.
    let responses = Daemon::request(
        &mut reader,
        &mut stream,
        r#"{"op":"run","experiments":["fig05"]}"#,
    );
    let kinds: Vec<&str> = responses
        .iter()
        .filter_map(|r| r.get("type").and_then(JsonValue::as_str))
        .collect();
    assert_eq!(kinds, ["artifact", "done"]);

    daemon.shutdown();
}

#[test]
fn repeated_sweeps_hit_the_resident_cache() {
    let daemon = Daemon::start();
    let (mut reader, mut stream) = daemon.connect();
    let run = r#"{"op":"run","experiments":["fig10","ext-die"],"sweep":["device.lifetime=2..4/1"],"jobs":2}"#;

    let first = Daemon::request(&mut reader, &mut stream, run);
    let done = first.last().expect("done line");
    let cache = done.get("cache").expect("cache summary");
    assert_eq!(cache.get("hits").and_then(JsonValue::as_u64), Some(0));
    let first_misses = cache.get("misses").and_then(JsonValue::as_u64).unwrap();
    assert!(first_misses >= 1, "a cold cache computes");

    // A second identical sweep — from a *different* connection — is served
    // entirely from the shared cache.
    let (mut reader2, mut stream2) = daemon.connect();
    let second = Daemon::request(&mut reader2, &mut stream2, run);
    let done = second.last().expect("done line");
    let cache = done.get("cache").expect("cache summary");
    assert_eq!(
        cache.get("misses").and_then(JsonValue::as_u64),
        Some(0),
        "repeat sweep must be all hits"
    );
    assert_eq!(
        cache.get("hits").and_then(JsonValue::as_u64),
        Some(first_misses)
    );

    // Responses are byte-identical across the two passes (minus nothing —
    // the artifact stream is deterministic and cache-invisible).
    let render = |responses: &[JsonValue]| -> Vec<String> {
        responses
            .iter()
            .filter(|r| r.get("type").and_then(JsonValue::as_str) == Some("artifact"))
            .map(JsonValue::render)
            .collect()
    };
    assert_eq!(render(&first), render(&second));

    daemon.shutdown();
}

#[test]
fn served_artifacts_byte_match_the_one_shot_cli() {
    let daemon = Daemon::start();
    let dir = std::env::temp_dir().join(format!("cc-serve-diff-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let served_dir = dir.join("served");
    let cli_dir = dir.join("cli");

    // Same sweep through the daemon (via `repro client --out`) and through
    // the one-shot CLI.
    let sweep = "grid.intensity=50,380,700";
    let out = client(
        &daemon.addr,
        &[
            "--experiment",
            "fig10",
            "--sweep",
            sweep,
            "--jobs",
            "2",
            "--out",
            served_dir.to_str().unwrap(),
        ],
    );
    assert!(
        out.status.success(),
        "client failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains(r#""type":"done""#),
        "client prints the done line: {stdout}"
    );

    let cli = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--experiment",
            "fig10",
            "--sweep",
            sweep,
            "--jobs",
            "2",
            "--json",
            "--out",
            cli_dir.to_str().unwrap(),
        ])
        .output()
        .expect("run one-shot repro");
    assert!(cli.status.success());

    let mut names: Vec<String> = std::fs::read_dir(&served_dir)
        .unwrap()
        .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
        .collect();
    names.sort();
    assert_eq!(
        names,
        [
            "comparison.json",
            "fig10@grid.intensity-380.json",
            "fig10@grid.intensity-50.json",
            "fig10@grid.intensity-700.json",
        ]
    );
    for name in &names {
        let served = std::fs::read(served_dir.join(name)).unwrap();
        let one_shot = std::fs::read(cli_dir.join(name)).unwrap();
        assert_eq!(served, one_shot, "`{name}` must be byte-identical");
    }

    std::fs::remove_dir_all(&dir).ok();
    daemon.shutdown();
}

#[test]
fn client_surfaces_server_rejections() {
    let daemon = Daemon::start();
    // The error category maps to a stable exit code (unknown-experiment=11)
    // so scripts can branch on the rejection kind without parsing stderr.
    let out = client(&daemon.addr, &["--experiment", "fig99"]);
    assert_eq!(out.status.code(), Some(11));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown-experiment"), "{stderr}");
    assert!(stderr.contains("fig99"));

    let out = client(
        &daemon.addr,
        &["--experiment", "fig10", "--sweep", "grid.intensity=10.."],
    );
    assert_eq!(out.status.code(), Some(16), "invalid-sweep exit code");

    // Stats round-trips through the client too.
    let out = client(&daemon.addr, &["--stats"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let stats = JsonValue::parse(stdout.trim()).expect("stats line is JSON");
    assert_eq!(stats.get("type").and_then(JsonValue::as_str), Some("stats"));

    // Hello reports the protocol version and the server's limits.
    let out = client(&daemon.addr, &["--hello"]);
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    let hello = JsonValue::parse(stdout.trim()).expect("hello line is JSON");
    assert_eq!(hello.get("type").and_then(JsonValue::as_str), Some("hello"));
    assert_eq!(hello.get("version").and_then(JsonValue::as_u64), Some(2));

    daemon.shutdown();
}

#[test]
fn daemon_survives_an_abruptly_dropped_connection() {
    let daemon = Daemon::start();
    {
        // Half a request, then hang up.
        let (_reader, mut stream) = daemon.connect();
        stream.write_all(b"{\"op\":\"ru").expect("partial write");
        drop(stream);
    }
    // The daemon still answers.
    let (mut reader, mut stream) = daemon.connect();
    let responses = Daemon::request(
        &mut reader,
        &mut stream,
        r#"{"op":"run","experiments":["fig05"]}"#,
    );
    assert_eq!(
        responses
            .last()
            .and_then(|r| r.get("type"))
            .and_then(JsonValue::as_str),
        Some("done")
    );
    daemon.shutdown();
}

#[test]
fn daemon_and_one_shot_cli_share_the_disk_cache_format() {
    // An artifact computed inside the daemon must be replayable by the
    // one-shot CLI from the same `--cache-dir` (and vice versa): both sides
    // speak one on-disk entry format, keyed the same way.
    let dir = std::env::temp_dir().join(format!("cc-serve-disk-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cache_dir = dir.join("cache");
    std::fs::create_dir_all(&cache_dir).unwrap();

    // The daemon computes fig05 once and persists it.
    let daemon = Daemon::start_with(&["--cache-dir", cache_dir.to_str().unwrap()]);
    let (mut reader, mut stream) = daemon.connect();
    let responses = Daemon::request(
        &mut reader,
        &mut stream,
        r#"{"op":"run","experiments":["fig05"]}"#,
    );
    assert_eq!(
        responses
            .last()
            .and_then(|r| r.get("type"))
            .and_then(JsonValue::as_str),
        Some("done")
    );
    daemon.shutdown();

    // A fresh one-shot sweep replays the daemon-written entry: fig05 is
    // scenario-independent, so its dependency fingerprint matches across
    // the daemon's paper-defaults run and every point of this sweep — the
    // disk footer must report a hit, not a recompute.
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--sweep",
            "fleet.growth=1.0,1.5",
            "--cache-dir",
            cache_dir.to_str().unwrap(),
            "--json",
            "fig05",
        ])
        .output()
        .expect("run one-shot repro");
    assert!(out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("disk: fig05: 0 recomputes, 1 disk hit"),
        "one-shot must replay the daemon's entry: {stderr}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn serve_requires_an_addr_and_rejects_unknown_flags() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["serve"])
        .output()
        .expect("run repro serve");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--addr"));

    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["serve", "--addr", "127.0.0.1:0", "--daemonize"])
        .output()
        .expect("run repro serve");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown serve option"));
}

#[test]
fn served_mc_comparison_byte_matches_the_one_shot_cli() {
    let daemon = Daemon::start();
    let dir = std::env::temp_dir().join(format!("cc-serve-mc-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let served_dir = dir.join("served");
    let cli_dir = dir.join("cli");

    // Same sampled run through the daemon (via `repro client --out`) and
    // through the one-shot CLI: the seed pins the sample stream, so the
    // banded comparison artifact must agree byte for byte.
    let binding = "fleet.growth ~ uniform(1.2,1.4)";
    let out = client(
        &daemon.addr,
        &[
            "--experiment",
            "ext-facility",
            "--set",
            binding,
            "--samples",
            "300",
            "--seed",
            "7",
            "--jobs",
            "2",
            "--out",
            served_dir.to_str().unwrap(),
        ],
    );
    assert!(
        out.status.success(),
        "client failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(
        stdout.contains(r#""samples":300"#),
        "the done line confirms the server ran a Monte-Carlo request: {stdout}"
    );

    let cli = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "--experiment",
            "ext-facility",
            "--set",
            binding,
            "--samples",
            "300",
            "--seed",
            "7",
            "--jobs",
            "1",
            "--json",
            "--out",
            cli_dir.to_str().unwrap(),
        ])
        .output()
        .expect("run one-shot repro");
    assert!(
        cli.status.success(),
        "one-shot failed: {}",
        String::from_utf8_lossy(&cli.stderr)
    );

    let served = std::fs::read(served_dir.join("mc-comparison.json")).unwrap();
    let one_shot = std::fs::read(cli_dir.join("mc-comparison.json")).unwrap();
    assert_eq!(
        served, one_shot,
        "served and one-shot Monte-Carlo artifacts must be byte-identical"
    );

    std::fs::remove_dir_all(&dir).ok();
    daemon.shutdown();
}
